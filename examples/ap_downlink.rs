//! The paper's Fig. 4 scenario: different antenna counts at transmitter
//! and receiver.
//!
//! A single-antenna client c1 uploads to its 2-antenna AP (AP1) while a
//! 3-antenna AP (AP2) pushes traffic down to two 2-antenna clients. With
//! stock 802.11n, whoever wins the medium excludes everyone else. With
//! n+, AP2 joins c1's transmission and serves *both* clients at once —
//! its packets arrive at AP1 orthogonal to c1's signal and at each client
//! aligned with the interference it already sees (§2, Fig. 4).
//!
//! Run with: `cargo run --release --example ap_downlink`

use nplus::sim::{simulate, Protocol, Scenario, SimConfig};
use nplus_channel::placement::Testbed;
use nplus_medium::topology::{build_topology, TopologyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scenario = Scenario::ap_downlink();
    let testbed = Testbed::sigcomm11();
    let names = ["c1", "AP1", "AP2", "c2", "c3"];
    let flow_names = ["c1->AP1", "AP2->c2", "AP2->c3"];

    println!("== Fig. 4 scenario: heterogeneous tx/rx antenna counts ==");
    println!("   c1 (1 ant) -> AP1 (2 ant);  AP2 (3 ant) -> c2, c3 (2 ant each)\n");

    // Average over several placements, as the paper's CDFs do.
    let n_placements = 8;
    let mut totals = [0.0f64; 3]; // per protocol
    let mut per_flow = [[0.0f64; 3]; 3];
    let protocols = [Protocol::Dot11n, Protocol::Beamforming, Protocol::NPlus];

    for seed in 0..n_placements {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = build_topology(
            &testbed,
            &TopologyConfig::new(scenario.antennas.clone()),
            10e6,
            seed,
            &mut rng,
        );
        let cfg = SimConfig {
            rounds: 30,
            ..SimConfig::default()
        };
        for (p, &protocol) in protocols.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let r = simulate(&topo, &scenario, protocol, &cfg, &mut rng);
            totals[p] += r.total_mbps / n_placements as f64;
            for f in 0..3 {
                per_flow[p][f] += r.per_flow_mbps[f] / n_placements as f64;
            }
        }
        let _ = names;
    }

    println!("averages over {n_placements} random placements:\n");
    println!(
        "{:<14}{:>10}{:>12}{:>12}{:>12}",
        "protocol", "total", flow_names[0], flow_names[1], flow_names[2]
    );
    for (p, &protocol) in protocols.iter().enumerate() {
        println!(
            "{:<14}{:>8.1} M{:>10.2} M{:>10.2} M{:>10.2} M",
            format!("{protocol:?}"),
            totals[p],
            per_flow[p][0],
            per_flow[p][1],
            per_flow[p][2]
        );
    }

    println!(
        "\nn+ gain over 802.11n:      {:.2}x   (paper: 2.4x)",
        totals[2] / totals[0]
    );
    println!(
        "n+ gain over beamforming:  {:.2}x   (paper: 1.8x)",
        totals[2] / totals[1]
    );
    println!(
        "AP2's clients gain         {:.1}x / {:.1}x over 802.11n (paper: 3.5-3.6x)",
        per_flow[2][1] / per_flow[0][1].max(1e-9),
        per_flow[2][2] / per_flow[0][2].max(1e-9)
    );
}
