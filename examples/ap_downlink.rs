//! The paper's Fig. 4 scenario: different antenna counts at transmitter
//! and receiver.
//!
//! A single-antenna client c1 uploads to its 2-antenna AP (AP1) while a
//! 3-antenna AP (AP2) pushes traffic down to two 2-antenna clients. With
//! stock 802.11n, whoever wins the medium excludes everyone else. With
//! n+, AP2 joins c1's transmission and serves *both* clients at once —
//! its packets arrive at AP1 orthogonal to c1's signal and at each client
//! aligned with the interference it already sees (§2, Fig. 4).
//!
//! The whole Monte-Carlo comparison is one `SweepSpec`: the three
//! head-to-head protocols plus the omniscient-scheduler upper bound the
//! closed protocol enum could not express.
//!
//! Run with: `cargo run --release --example ap_downlink`

use nplus_sim::prelude::*;

fn main() {
    let scenario = Scenario::ap_downlink();
    let flow_names = ["c1->AP1", "AP2->c2", "AP2->c3"];

    println!("== Fig. 4 scenario: heterogeneous tx/rx antenna counts ==");
    println!("   c1 (1 ant) -> AP1 (2 ant);  AP2 (3 ant) -> c2, c3 (2 ant each)\n");

    // Average over several placements, as the paper's CDFs do (the
    // protocol gap on this scenario is small per placement; ~32 keeps
    // the means on the right side of the Monte-Carlo noise).
    let n_placements = 32;
    let stats = SweepSpec::new(scenario)
        .rounds(30)
        .seed_count(n_placements)
        .protocols(&[Protocol::Dot11n, Protocol::Beamforming, Protocol::NPlus])
        .policy(Oracle)
        .run();

    println!("averages over {n_placements} random placements:\n");
    println!(
        "{:<14}{:>10}{:>12}{:>12}{:>12}{:>10}",
        "policy", "total", flow_names[0], flow_names[1], flow_names[2], "fairness"
    );
    for s in &stats {
        println!(
            "{:<14}{:>8.1} M{:>10.2} M{:>10.2} M{:>10.2} M{:>10.2}",
            s.policy,
            s.mean_total_mbps,
            s.mean_per_flow_mbps[0],
            s.mean_per_flow_mbps[1],
            s.mean_per_flow_mbps[2],
            s.mean_fairness,
        );
    }

    let total = |name: &str| {
        stats
            .iter()
            .find(|s| s.policy == name)
            .map(|s| s.mean_total_mbps)
            .unwrap_or(f64::NAN)
    };
    println!(
        "\nn+ gain over 802.11n:      {:.2}x   (paper: 2.4x)",
        total("nplus") / total("dot11n")
    );
    println!(
        "n+ gain over beamforming:  {:.2}x   (paper: 1.8x)",
        total("nplus") / total("beamforming")
    );
    println!(
        "omniscient headroom:       {:.2}x over n+ (upper bound — perfect knowledge,\n                           exhaustive scheduling, zero contention)",
        total("oracle") / total("nplus")
    );
    let np = stats.iter().find(|s| s.policy == "nplus").unwrap();
    let dn = stats.iter().find(|s| s.policy == "dot11n").unwrap();
    println!(
        "AP2's clients gain         {:.1}x / {:.1}x over 802.11n (paper: 3.5-3.6x)",
        np.mean_per_flow_mbps[1] / dn.mean_per_flow_mbps[1].max(1e-9),
        np.mean_per_flow_mbps[2] / dn.mean_per_flow_mbps[2].max(1e-9)
    );
}
