//! Multi-dimensional carrier sense, sample by sample (paper §3.2,
//! Fig. 6 and Fig. 9).
//!
//! A 3-antenna contender (tx3) watches the medium while a single-antenna
//! transmitter (tx1) occupies the first degree of freedom. A 2-antenna
//! transmitter (tx2) then starts at a much lower power. Raw power sensing
//! barely notices tx2; sensing in the subspace orthogonal to tx1's signal
//! makes tx2's transmission obvious — both in power and in preamble
//! cross-correlation.
//!
//! Run with: `cargo run --release --example carrier_sense`

use nplus::carrier_sense::MultiDimCarrierSense;
use nplus_channel::fading::DelayProfile;
use nplus_channel::mimo::MimoLink;
use nplus_linalg::CMatrix;
use nplus_medium::medium::{Medium, Transmission};
use nplus_phy::params::OfdmConfig;
use nplus_phy::preamble::{mimo_preamble, stf_time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let cfg = OfdmConfig::usrp2();
    let mut medium = Medium::new(cfg.bandwidth_hz, 99);
    let mut rng = StdRng::seed_from_u64(7);

    // Nodes: tx1 (1 ant, strong), tx2 (2 ant, weak), tx3 (3 ant, sensing).
    let tx1 = medium.add_node(1, 0.0);
    let tx2 = medium.add_node(2, 0.0);
    let tx3 = medium.add_node(3, 0.0);
    // tx1 arrives at tx3 at ~26 dB, tx2 at only ~10 dB.
    medium.set_link(
        tx1,
        tx3,
        MimoLink::sample(1, 3, 20.0, &DelayProfile::los(), &mut rng),
    );
    medium.set_link(
        tx2,
        tx3,
        MimoLink::sample(2, 3, 3.2, &DelayProfile::nlos(), &mut rng),
    );

    // tx1 transmits a long random payload starting at t=0.
    let tx1_wave: Vec<_> = (0..4000)
        .map(|_| {
            nplus_linalg::c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5).scale(2.0_f64.sqrt())
        })
        .collect();
    medium.transmit(Transmission {
        from: tx1,
        start: 0,
        streams: vec![tx1_wave],
        cfo_precompensation_hz: 0.0,
    });

    // tx2 begins its preamble at sample 2000.
    let preamble = mimo_preamble(&cfg, 2);
    medium.transmit(Transmission {
        from: tx2,
        start: 2000,
        streams: preamble,
        cfo_precompensation_hz: 0.0,
    });

    // tx3 builds its sensor from tx1's channel (learned from tx1's RTS
    // preamble in the real protocol; here we read it off the medium).
    let h_tx1: Vec<CMatrix> = medium.link(tx1, tx3).unwrap().channel_matrices(cfg.fft_len);
    let sensor = MultiDimCarrierSense::from_ongoing(3, cfg, &[h_tx1]);
    println!("== multi-dimensional carrier sense at tx3 (3 antennas) ==\n");
    println!(
        "degrees of freedom free after tx1 won: {}\n",
        sensor.free_dof()
    );

    let stf = stf_time(&cfg);
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>12}",
        "window", "raw pwr", "proj pwr", "raw corr", "proj corr"
    );
    for (label, start) in [("tx1 only", 512u64), ("tx1 + tx2", 2048u64)] {
        let capture = medium.capture(tx3, start, 512);
        let raw = MultiDimCarrierSense::raw_power(&capture);
        let proj = sensor.sense_power(&capture);
        let raw_corr = MultiDimCarrierSense::detect_preamble_raw(&capture, &stf[..64]);
        let proj_corr = sensor.detect_preamble(&capture, &stf[..64]);
        println!("{label:>14} {raw:>12.2} {proj:>12.2} {raw_corr:>12.2} {proj_corr:>12.2}");
    }

    let before = sensor.sense_power(&medium.capture(tx3, 512, 512));
    let after = sensor.sense_power(&medium.capture(tx3, 2048, 512));
    println!(
        "\nprojected power jump when tx2 starts: {:.1} dB \
         (Fig. 9(a) reports 8.5 dB for a weak joiner)",
        10.0 * (after / before).log10()
    );
    println!(
        "raw power jump:                      {:.1} dB — easy to miss under tx1",
        10.0 * (MultiDimCarrierSense::raw_power(&medium.capture(tx3, 2048, 512))
            / MultiDimCarrierSense::raw_power(&medium.capture(tx3, 512, 512)))
        .log10()
    );
}
