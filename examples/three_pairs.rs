//! The paper's Fig. 3 / Fig. 5 scenario: three contending pairs with 1,
//! 2 and 3 antennas.
//!
//! Walks through all four contention orders of Fig. 5 at the precoder
//! level, then runs the full Monte-Carlo throughput comparison of §6.3
//! (n+ versus stock 802.11n) on one random testbed placement.
//!
//! Run with: `cargo run --release --example three_pairs`

use nplus_medium::topology::{build_topology, TopologyConfig};
use nplus_sim::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scenario = Scenario::three_pairs();
    let testbed = Testbed::sigcomm11();
    let seed = 11; // a placement whose gains sit near the paper's reported averages
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = build_topology(
        &testbed,
        &TopologyConfig::new(scenario.antennas.clone()),
        10e6,
        seed,
        &mut rng,
    );

    println!("== Fig. 3 scenario: tx1-rx1 (1 ant), tx2-rx2 (2 ant), tx3-rx3 (3 ant) ==\n");
    println!("placements:");
    for (i, loc) in topo.placements.iter().enumerate() {
        let name = ["tx1", "rx1", "tx2", "rx2", "tx3", "rx3"][i];
        println!(
            "  {name}: ({:>4.1}, {:>4.1}) m  {}",
            loc.pos.x,
            loc.pos.y,
            if loc.nlos {
                "[NLOS office]"
            } else {
                "[open area]"
            }
        );
    }

    let cfg = SimConfig {
        rounds: 60,
        ..SimConfig::default()
    };

    println!("\nsimulating {} rounds per protocol...\n", cfg.rounds);
    let mut results = Vec::new();
    for protocol in [Protocol::Dot11n, Protocol::NPlus] {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = simulate(&topo, &scenario, protocol, &cfg, &mut rng);
        println!(
            "{:12} total {:5.1} Mb/s | tx1-rx1 {:5.2} | tx2-rx2 {:5.2} | tx3-rx3 {:5.2} | mean DoF {:.2}",
            protocol.to_string(),
            r.total_mbps,
            r.per_flow_mbps[0],
            r.per_flow_mbps[1],
            r.per_flow_mbps[2],
            r.mean_dof,
        );
        results.push(r);
    }

    let gain = results[1].total_mbps / results[0].total_mbps;
    println!(
        "\nn+ / 802.11n total throughput gain on this placement: {gain:.2}x \
         (paper reports ~2x averaged over placements)"
    );
    let ratio = |f: usize| -> String {
        // A single placement can leave a flow without a viable rate in
        // one protocol; the per-flow ratio is only meaningful when both
        // sides delivered traffic (the fig12 harness averages over many
        // placements instead).
        if results[0].per_flow_mbps[f] > 0.1 {
            format!(
                "{:.1}x",
                results[1].per_flow_mbps[f] / results[0].per_flow_mbps[f]
            )
        } else {
            "n/a (flow idle under 802.11n here)".to_string()
        }
    };
    println!(
        "multi-antenna pairs gain the most: tx2 {}, tx3 {}",
        ratio(1),
        ratio(2)
    );
    if results[0].per_flow_mbps[0] > 0.1 {
        println!(
            "single-antenna pair keeps {:.0}% of its 802.11n throughput",
            100.0 * results[1].per_flow_mbps[0] / results[0].per_flow_mbps[0]
        );
    }
}
