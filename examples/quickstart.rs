//! Quickstart: the paper's Fig. 2 scenario, end to end.
//!
//! A single-antenna pair (tx1 → rx1) occupies the medium. A two-antenna
//! pair (tx2 → rx2) uses n+ to join: tx2 computes a pre-coding vector
//! that nulls its signal at rx1 (using reciprocity-derived channel
//! knowledge) and delivers one stream to rx2, which zero-forces tx1's
//! interference away.
//!
//! Run with: `cargo run --example quickstart`

use nplus::link::{select_stream_rate, zf_sinr, SubcarrierObservation};
use nplus::precoder::{compute_precoders, residual_interference, OwnReceiver, ProtectedReceiver};
use nplus_channel::fading::DelayProfile;
use nplus_channel::impairments::HardwareProfile;
use nplus_channel::mimo::MimoLink;
use nplus_linalg::Subspace;
use nplus_phy::params::{occupied_subcarrier_indices, OfdmConfig};
use nplus_phy::rates::RATE_TABLE;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = OfdmConfig::usrp2();
    let mut rng = StdRng::seed_from_u64(7);
    let hardware = HardwareProfile::default();

    // Channels (noise-normalized amplitudes: |h|² = SNR).
    // tx2 -> rx1 at ~20 dB, tx2 -> rx2 at ~25 dB.
    let h_tx2_rx1 = MimoLink::sample(2, 1, 10.0, &DelayProfile::los(), &mut rng);
    let h_tx2_rx2 = MimoLink::sample(2, 2, 18.0, &DelayProfile::nlos(), &mut rng);
    // tx1 -> rx2 interference at ~20 dB.
    let h_tx1_rx2 = MimoLink::sample(1, 2, 10.0, &DelayProfile::los(), &mut rng);

    println!("== n+ quickstart: 2-antenna pair joins a 1-antenna transmission ==\n");

    let occ = occupied_subcarrier_indices();
    let mut worst_residual_db = f64::NEG_INFINITY;
    let mut sinrs = Vec::with_capacity(occ.len());

    for &k in &occ {
        let h1_true = h_tx2_rx1.channel_matrix(k, cfg.fft_len);
        // What tx2 *believes* via reciprocity + hardware calibration error.
        let h1_believed = hardware.reciprocal_channel_knowledge(&h1_true, &mut rng);
        let h2_believed = hardware
            .reciprocal_channel_knowledge(&h_tx2_rx2.channel_matrix(k, cfg.fft_len), &mut rng);

        let precoding = compute_precoders(
            2,
            &[ProtectedReceiver::nulling(h1_believed)],
            &[OwnReceiver {
                channel: h2_believed,
                n_streams: 1,
                unwanted: Subspace::zero(2),
            }],
        )
        .expect("a 2-antenna node always has a null direction for 1 rx antenna");
        let v = &precoding.vectors[0];

        // Residual interference at rx1, evaluated against the TRUE channel.
        let resid = residual_interference(&h1_true, &Subspace::zero(1), v);
        let pre = h1_true.frobenius_norm().powi(2) / 2.0;
        let depth_db = 10.0 * (resid / pre).log10();
        worst_residual_db = worst_residual_db.max(depth_db);

        // rx2 decodes by projecting orthogonal to tx1's interference.
        let h2_true = h_tx2_rx2.channel_matrix(k, cfg.fft_len);
        let obs = SubcarrierObservation {
            wanted: vec![h2_true.mul_vec(v)],
            known_interference: vec![h_tx1_rx2.channel_matrix(k, cfg.fft_len).col(0)],
            residual_interference: vec![],
            noise_power: 1.0,
        };
        sinrs.push(zf_sinr(&obs)[0]);
    }

    println!(
        "nulling depth at rx1 (worst subcarrier): {worst_residual_db:.1} dB \
         (paper measures 25–27 dB cancellation)",
    );
    let mean_sinr_db = 10.0 * (sinrs.iter().sum::<f64>() / sinrs.len() as f64).log10();
    println!("rx2 post-projection SINR (mean):        {mean_sinr_db:.1} dB");

    match select_stream_rate(&sinrs) {
        Some(idx) => {
            let mcs = RATE_TABLE[idx];
            println!(
                "rx2 picks bitrate:                      {} = {:.1} Mb/s on the 10 MHz channel",
                mcs,
                mcs.bitrate_mbps(&cfg)
            );
            println!(
                "\ntx2 now transmits concurrently with tx1 — the second degree of \
                 freedom is in use\nwhile rx1's reception continues undisturbed."
            );
        }
        None => println!("channel too weak to join — tx2 stays silent"),
    }
}
