//! One scenario, four worlds: runs the paper's Fig. 3 comparison in
//! every registered propagation environment.
//!
//! The paper evaluates in a single indoor office (Fig. 10). With the
//! `ChannelEnvironment` seam the same protocols sweep unchanged across
//! an outdoor free-space field, a rich-scattering all-NLOS world, and
//! the indoor map on degraded radios (where the §4 power-control
//! threshold honestly tracks the worse cancellation depth) — and the
//! n+ > 802.11n concurrency win survives in all of them.
//!
//! ```console
//! $ cargo run --release --example environments
//! ```

use nplus_sim::prelude::*;

fn main() {
    println!("Fig. 3 scenario (1/2/3-antenna pairs), 10 placements x 12 rounds:\n");
    println!(
        "{:>18} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "environment", "dot11n", "nplus", "oracle", "gain", "L (dB)"
    );
    for name in BUILTIN_ENVIRONMENT_NAMES {
        let env = environment_from_name(name).expect("builtin environment");
        let stats = SweepSpec::new(Scenario::three_pairs())
            .rounds(12)
            .seed_count(10)
            .protocols(&[Protocol::Dot11n, Protocol::NPlus])
            .policy(Oracle)
            .environment_named(name)
            .expect("builtin environment")
            .run();
        println!(
            "{:>18} {:>10.2} {:>10.2} {:>10.2} {:>7.2}x {:>8.1}",
            name,
            stats[0].mean_total_mbps,
            stats[1].mean_total_mbps,
            stats[2].mean_total_mbps,
            stats[1].mean_total_mbps / stats[0].mean_total_mbps,
            env.join_power_l_db(),
        );
    }

    // A custom world is one impl away — here, the indoor map with a
    // genuinely Gaussian oscillator draw.
    let custom = Sigcomm11Indoor {
        oscillator: OscillatorDraw::Gaussian { sigma_hz: 1_000.0 },
        ..Sigcomm11Indoor::default()
    };
    let stats = SweepSpec::new(Scenario::three_pairs())
        .rounds(12)
        .seed_count(10)
        .protocols(&[Protocol::Dot11n, Protocol::NPlus])
        .environment(custom)
        .run();
    println!(
        "\ncustom (Gaussian oscillators): dot11n {:.2} Mb/s, nplus {:.2} Mb/s",
        stats[0].mean_total_mbps, stats[1].mean_total_mbps
    );

    // A scenario that outsizes the world reports cleanly.
    let oversized = Scenario {
        antennas: vec![1; 41],
        flows: vec![Flow { tx: 0, rx: 1 }],
    };
    match SweepSpec::new(oversized).try_run() {
        Err(e) => println!("oversized scenario: {e}"),
        Ok(_) => unreachable!("41 nodes cannot fit the 40-slot maps"),
    }
}
