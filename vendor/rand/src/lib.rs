//! Offline vendored subset of the `rand` crate (API-compatible with the
//! slice of rand 0.8 this workspace uses — see `vendor/README.md`).
//!
//! `StdRng` is xoshiro256++ seeded through splitmix64: deterministic per
//! seed, which is what every test and scenario builder in the workspace
//! relies on.

// Vendored subsets document their public surface selectively; the
// workspace-wide missing_docs warning is first-party policy only.
#![allow(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a `a..b` or `a..=b` range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // Expand the u64 through splitmix64, as rand does.
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform sampling from range types (the subset of rand's
/// `SampleRange`/`SampleUniform` machinery the workspace needs).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by rejection sampling (span 0 means
/// the full 2^64 range).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);
