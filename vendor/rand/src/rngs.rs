//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator standing in for rand's `StdRng`.
///
/// Not the same stream as crates.io rand (which uses ChaCha12); every
/// seed in this workspace is tuned against this generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // A xoshiro state of all zeros is a fixed point; nudge it.
        if s == [0; 4] {
            s = [0x9E3779B97F4A7C15, 0xD1B54A32D192ED03, 0xDEADBEEF, 1];
        }
        StdRng { s }
    }
}

/// Alias kept for call sites written against `SmallRng`.
pub type SmallRng = StdRng;
