//! The `Standard` distribution: uniform over a type's natural range.

use crate::RngCore;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform over the whole type (floats: `[0, 1)`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}
