//! Offline vendored subset of `criterion` (see `vendor/README.md`).
//!
//! Under `cargo bench` (which passes `--bench` to the harness binary)
//! each benchmark is measured adaptively and reported as ns/iter. Under
//! any other invocation — notably `cargo test`, which runs bench
//! targets with `--test` — every benchmark body executes once as a
//! smoke test so the suite stays fast.

// Vendored subsets document their public surface selectively; the
// workspace-wide missing_docs warning is first-party policy only.
#![allow(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; the shim treats all variants the
/// same (fresh input per iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    /// Full measurement (cargo bench) versus single-shot smoke run.
    measure: bool,
}

impl Criterion {
    pub fn from_args() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measure: self.measure,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            let ns = b.total.as_nanos() as f64 / b.iters as f64;
            println!("bench {id:<32} {ns:>14.1} ns/iter  ({} iters)", b.iters);
        } else {
            println!("bench {id:<32} (no iterations)");
        }
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

pub struct Bencher {
    measure: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Number of iterations to run: adaptive under measurement (until
    /// ~100 ms of samples), exactly one otherwise.
    fn run<F: FnMut() -> Duration>(&mut self, mut timed_once: F) {
        let budget = Duration::from_millis(100);
        loop {
            self.total += timed_once();
            self.iters += 1;
            if !self.measure || self.total >= budget || self.iters >= 100_000 {
                break;
            }
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            let t = Instant::now();
            black_box(routine());
            t.elapsed()
        });
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            t.elapsed()
        });
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
