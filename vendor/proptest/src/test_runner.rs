//! The deterministic, non-shrinking case runner.

use crate::ProptestConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A rejected case (`prop_assume!` failed); does not count as a run.
#[derive(Debug)]
pub struct Reject {
    pub reason: &'static str,
}

impl Reject {
    pub fn new(reason: &'static str) -> Self {
        Reject { reason }
    }
}

pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fnv1a(name));
        TestRunner { config, name, seed }
    }

    /// Run `f` until `config.cases` cases have passed. `f` generates its
    /// inputs from the provided RNG and returns `Err(Reject)` to discard
    /// the case. Panics (assertion failures) are annotated with the case
    /// number and seed, then propagated.
    pub fn run<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), Reject>,
    {
        let mut rng = TestRng::seed_from_u64(self.seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_idx = 0u64;
        while passed < self.config.cases {
            case_idx += 1;
            match catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
                Ok(Ok(())) => passed += 1,
                Ok(Err(reject)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest '{}': too many rejected cases ({}), last: {}",
                            self.name, rejected, reject.reason
                        );
                    }
                }
                Err(payload) => {
                    eprintln!(
                        "proptest '{}' failed at case {} (rng seed {:#x}); \
                         re-run reproduces it deterministically",
                        self.name, case_idx, self.seed
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
