//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification: a fixed size or a range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange(core::ops::Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange(r)
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange(*r.start()..r.end() + 1)
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.0.len() <= 1 {
            self.size.0.start
        } else {
            rng.gen_range(self.size.0.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
