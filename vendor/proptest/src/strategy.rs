//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Object-safe view of a strategy, for `BoxedStrategy`/`Union`.
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// `any::<T>()` for types sampled from rand's `Standard` distribution.
pub struct AnyValue<T>(pub(crate) core::marker::PhantomData<T>);

impl<T> Strategy for AnyValue<T>
where
    rand::Standard: rand::Distribution<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

// Ranges of numbers are strategies (uniform over the range).
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

// Tuples of strategies are strategies over tuples of values.
macro_rules! impl_tuple_strategy {
    ($($name:ident $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A 0);
impl_tuple_strategy!(A 0, B 1);
impl_tuple_strategy!(A 0, B 1, C 2);
impl_tuple_strategy!(A 0, B 1, C 2, D 3);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
