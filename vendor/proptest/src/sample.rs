//! `sample::Index` — a position into a collection of yet-unknown length.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Clone, Copy, Debug)]
pub struct Index(u64);

impl Index {
    /// Map this draw onto `0..len`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;
    fn generate(&self, rng: &mut TestRng) -> Index {
        Index(rng.gen())
    }
}

impl crate::Arbitrary for Index {
    type Strategy = IndexStrategy;
    fn arbitrary() -> IndexStrategy {
        IndexStrategy
    }
}
