//! Offline vendored subset of `proptest` (see `vendor/README.md`).
//!
//! Differences from crates.io proptest, by design:
//!
//! * no shrinking — a failing case is reported with its deterministic
//!   seed and case number instead;
//! * generation is driven by a seeded [`rand::rngs::StdRng`], with the
//!   per-test seed derived from the test name (override with the
//!   `PROPTEST_RNG_SEED` env var), so every run is reproducible;
//! * `PROPTEST_CASES` overrides the case count of every config,
//!   including explicit `ProptestConfig::with_cases(..)` call sites —
//!   that is how CI pins the suites' runtime.

// Vendored subsets document their public surface selectively; the
// workspace-wide missing_docs warning is first-party policy only.
#![allow(missing_docs)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Mirror of proptest's `prop` facade module (`prop::sample::Index`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Runner configuration. Only `cases` is meaningful in this subset; the
/// other fields exist so `..ProptestConfig::default()` call sites keep
/// compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
            max_global_rejects: 65_536,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Strategy producing any value of `A` (uniform over the type).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::AnyValue<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::AnyValue(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// The macro that wraps property functions into `#[test]` items.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(expr)]          // optional
///     #[test]
///     fn name(pat in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(|__proptest_rng| {
                    $( let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng); )+
                    let mut __proptest_case =
                        || -> ::core::result::Result<(), $crate::test_runner::Reject> {
                            $body
                            ::core::result::Result::Ok(())
                        };
                    __proptest_case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Reject the current case (it does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject::new(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
