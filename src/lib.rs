//! Workspace facade for the 802.11n+ reproduction.
//!
//! The real API lives in the member crates; this crate exists so the
//! workspace-level integration tests (`tests/`) and examples
//! (`examples/`) have a package to hang off, and re-exports the members
//! for consumers that want a single dependency.

pub use nplus as core;
pub use nplus_channel as channel;
pub use nplus_linalg as linalg;
pub use nplus_mac as mac;
pub use nplus_medium as medium;
pub use nplus_phy as phy;
