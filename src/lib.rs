//! Workspace facade for the 802.11n+ reproduction.
//!
//! The real API lives in the member crates; this crate exists so the
//! workspace-level integration tests (`tests/`) and examples
//! (`examples/`) have a package to hang off, and re-exports the members
//! for consumers that want a single dependency.
//!
//! Simulation users want [`prelude`]:
//!
//! ```
//! use nplus_sim::prelude::*;
//!
//! let stats = SweepSpec::new(Scenario::three_pairs())
//!     .rounds(3)
//!     .seed_count(2)
//!     .protocols(&[Protocol::Dot11n, Protocol::NPlus])
//!     .policy(Oracle) // the omniscient upper bound — not in the enum
//!     .run();
//! assert_eq!(stats.last().unwrap().policy, "oracle");
//! ```

#![forbid(unsafe_code)]

pub use nplus as core;
pub use nplus_channel as channel;
pub use nplus_linalg as linalg;
pub use nplus_mac as mac;
pub use nplus_medium as medium;
pub use nplus_phy as phy;

/// The simulation prelude: `SweepSpec`, scenarios, every built-in
/// [`MacPolicy`](crate::core::policy::MacPolicy), the observer API, and
/// the testbed map — one import for the whole public simulation
/// surface.
pub mod prelude {
    pub use nplus::prelude::*;
    pub use nplus_channel::placement::Testbed;
}
