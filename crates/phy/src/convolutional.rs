//! Convolutional coding: the 802.11 rate-1/2, K=7 code and its Viterbi
//! decoder.
//!
//! Generators are the industry-standard octal (133, 171). Higher code
//! rates (2/3, 3/4) are produced by puncturing in [`crate::puncture`];
//! the decoder accepts erasure marks at punctured positions and simply
//! skips them in the branch metric.

/// Constraint length of the 802.11 code.
pub const CONSTRAINT: usize = 7;
/// Number of trellis states (2^(K-1)).
pub const NUM_STATES: usize = 64;
/// Generator polynomial A (octal 133).
pub const GEN_A: u8 = 0o133;
/// Generator polynomial B (octal 171).
pub const GEN_B: u8 = 0o171;

/// Sentinel bit value marking an erased (punctured) position in the coded
/// stream handed to [`viterbi_decode`].
pub const ERASURE: u8 = 2;

#[inline]
fn parity(x: u8) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Encodes `bits` at rate 1/2. The encoder is flushed with `K-1 = 6` zero
/// tail bits so the trellis terminates in state 0; the output therefore has
/// `2 * (bits.len() + 6)` coded bits.
pub fn encode(bits: &[u8]) -> Vec<u8> {
    let mut state = 0u8; // 6-bit shift register
    let mut out = Vec::with_capacity(2 * (bits.len() + CONSTRAINT - 1));
    for &b in bits.iter().chain(std::iter::repeat_n(&0u8, CONSTRAINT - 1)) {
        let reg = ((b & 1) << 6) | state;
        out.push(parity(reg & GEN_A));
        out.push(parity(reg & GEN_B));
        state = reg >> 1;
    }
    out
}

/// Number of coded bits produced for `n` information bits (including tail).
pub fn coded_len(n: usize) -> usize {
    2 * (n + CONSTRAINT - 1)
}

/// Hard-decision Viterbi decoder with erasure support.
///
/// `coded` holds pairs of bits per trellis step; positions equal to
/// [`ERASURE`] contribute nothing to the branch metric (this is how
/// punctured bits are handled). The decoder assumes the encoder was
/// flushed (trellis ends in state 0) and returns the information bits
/// without the tail.
pub fn viterbi_decode(coded: &[u8]) -> Vec<u8> {
    assert!(
        coded.len().is_multiple_of(2),
        "coded stream must hold bit pairs"
    );
    let steps = coded.len() / 2;
    if steps < CONSTRAINT - 1 {
        return Vec::new();
    }

    // Precompute per-(state, input) outputs.
    // next_state[s][b], out_a[s][b], out_b[s][b]
    let mut next_state = [[0usize; 2]; NUM_STATES];
    let mut out_bits = [[(0u8, 0u8); 2]; NUM_STATES];
    for s in 0..NUM_STATES {
        for b in 0..2usize {
            let reg = ((b as u8) << 6) | s as u8;
            next_state[s][b] = (reg >> 1) as usize;
            out_bits[s][b] = (parity(reg & GEN_A), parity(reg & GEN_B));
        }
    }

    const INF: u32 = u32::MAX / 2;
    let mut metric = vec![INF; NUM_STATES];
    metric[0] = 0; // encoder starts in state 0
                   // Survivor table: for each step and state, the (prev_state, input) pair.
    let mut survivors: Vec<[(u8, u8); NUM_STATES]> = Vec::with_capacity(steps);

    for t in 0..steps {
        let ra = coded[2 * t];
        let rb = coded[2 * t + 1];
        let mut new_metric = vec![INF; NUM_STATES];
        let mut surv = [(0u8, 0u8); NUM_STATES];
        for s in 0..NUM_STATES {
            let m = metric[s];
            if m >= INF {
                continue;
            }
            for b in 0..2usize {
                let (oa, ob) = out_bits[s][b];
                let mut cost = m;
                if ra != ERASURE && ra != oa {
                    cost += 1;
                }
                if rb != ERASURE && rb != ob {
                    cost += 1;
                }
                let ns = next_state[s][b];
                if cost < new_metric[ns] {
                    new_metric[ns] = cost;
                    surv[ns] = (s as u8, b as u8);
                }
            }
        }
        metric = new_metric;
        survivors.push(surv);
    }

    // Trace back from state 0 (flushed trellis).
    let mut state = 0usize;
    let mut decoded = vec![0u8; steps];
    for t in (0..steps).rev() {
        let (prev, input) = survivors[t][state];
        decoded[t] = input;
        state = prev as usize;
    }
    decoded.truncate(steps - (CONSTRAINT - 1)); // strip the tail
    decoded
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 1) as u8
            })
            .collect()
    }

    #[test]
    fn encode_known_impulse_response() {
        // A single 1 followed by zeros produces the generator sequences.
        let coded = encode(&[1]);
        assert_eq!(coded.len(), coded_len(1));
        // First output pair: register = 1000000 -> gA(133 octal = 1011011):
        // taps at bits 6,4,3,1,0 -> only bit 6 set -> parity 1.
        // gB(171 octal = 1111001): taps at 6,5,4,3,0 -> parity 1.
        assert_eq!(&coded[..2], &[1, 1]);
    }

    #[test]
    fn clean_channel_round_trip() {
        let bits = pseudo_bits(200, 42);
        let coded = encode(&bits);
        assert_eq!(viterbi_decode(&coded), bits);
    }

    #[test]
    fn empty_input() {
        let coded = encode(&[]);
        assert_eq!(coded.len(), 12); // 6 tail bits * 2
        assert!(viterbi_decode(&coded).is_empty());
    }

    #[test]
    fn corrects_scattered_errors() {
        // The free distance of (133,171) is 10, so sparse single errors
        // are easily corrected.
        let bits = pseudo_bits(120, 7);
        let mut coded = encode(&bits);
        for idx in [5usize, 40, 77, 130, 188] {
            if idx < coded.len() {
                coded[idx] ^= 1;
            }
        }
        assert_eq!(viterbi_decode(&coded), bits);
    }

    #[test]
    fn corrects_with_erasures() {
        let bits = pseudo_bits(100, 99);
        let mut coded = encode(&bits);
        // Erase every 6th coded bit (more aggressive than rate-3/4
        // puncturing's 1/3 erasures... actually 1/6 here).
        for i in (0..coded.len()).step_by(6) {
            coded[i] = ERASURE;
        }
        assert_eq!(viterbi_decode(&coded), bits);
    }

    #[test]
    fn burst_beyond_capability_fails_gracefully() {
        // A long error burst will corrupt the decode but must not panic,
        // and the output length must still be right.
        let bits = pseudo_bits(100, 3);
        let mut coded = encode(&bits);
        for b in coded.iter_mut().take(40) {
            *b ^= 1;
        }
        let decoded = viterbi_decode(&coded);
        assert_eq!(decoded.len(), bits.len());
    }

    #[test]
    fn all_zero_and_all_one_inputs() {
        let zeros = vec![0u8; 64];
        assert_eq!(viterbi_decode(&encode(&zeros)), zeros);
        let ones = vec![1u8; 64];
        assert_eq!(viterbi_decode(&encode(&ones)), ones);
    }

    #[test]
    #[should_panic(expected = "bit pairs")]
    fn odd_length_rejected() {
        viterbi_decode(&[1, 0, 1]);
    }
}
