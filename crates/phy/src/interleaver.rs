//! Block interleaver.
//!
//! 802.11's two-permutation interleaver (IEEE 802.11-2007 §17.3.5.7)
//! operates on one OFDM symbol's worth of coded bits. The first permutation
//! spreads adjacent coded bits across non-adjacent subcarriers (defeating
//! frequency-selective fade bursts); the second rotates bits across
//! constellation bit positions so errors don't always land on the
//! least-protected bits of a QAM symbol.

/// Computes the interleaved position for each input index, for a symbol of
/// `n_cbps` coded bits and `n_bpsc` coded bits per subcarrier.
fn permutation(n_cbps: usize, n_bpsc: usize) -> Vec<usize> {
    let s = (n_bpsc / 2).max(1);
    let mut table = vec![0usize; n_cbps];
    for k in 0..n_cbps {
        // First permutation.
        let i = (n_cbps / 16) * (k % 16) + k / 16;
        // Second permutation.
        let j = s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
        table[k] = j;
    }
    table
}

/// A block interleaver bound to one symbol geometry.
#[derive(Debug, Clone)]
pub struct Interleaver {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl Interleaver {
    /// Creates an interleaver for `n_cbps` coded bits per symbol with
    /// `n_bpsc` coded bits per subcarrier. `n_cbps` must be a multiple
    /// of 16 (always true for the 802.11 symbol geometries).
    pub fn new(n_cbps: usize, n_bpsc: usize) -> Self {
        assert!(n_cbps.is_multiple_of(16), "N_CBPS must be a multiple of 16");
        let forward = permutation(n_cbps, n_bpsc);
        let mut inverse = vec![0usize; n_cbps];
        for (k, &j) in forward.iter().enumerate() {
            inverse[j] = k;
        }
        Interleaver { forward, inverse }
    }

    /// Block size in bits.
    pub fn block_len(&self) -> usize {
        self.forward.len()
    }

    /// Interleaves one block. `bits.len()` must equal [`Self::block_len`].
    pub fn interleave(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(
            bits.len(),
            self.forward.len(),
            "interleave: wrong block size"
        );
        let mut out = vec![0u8; bits.len()];
        for (k, &j) in self.forward.iter().enumerate() {
            out[j] = bits[k];
        }
        out
    }

    /// Inverts [`Self::interleave`].
    pub fn deinterleave(&self, bits: &[u8]) -> Vec<u8> {
        assert_eq!(
            bits.len(),
            self.inverse.len(),
            "deinterleave: wrong block size"
        );
        let mut out = vec![0u8; bits.len()];
        for (j, &k) in self.inverse.iter().enumerate() {
            out[k] = bits[j];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 1) as u8
            })
            .collect()
    }

    #[test]
    fn round_trip_all_geometries() {
        // (N_CBPS, N_BPSC) for BPSK, QPSK, 16-QAM, 64-QAM at 48 data tones.
        for &(n_cbps, n_bpsc) in &[(48usize, 1usize), (96, 2), (192, 4), (288, 6)] {
            let il = Interleaver::new(n_cbps, n_bpsc);
            let bits = pseudo_bits(n_cbps, n_cbps as u64);
            let rt = il.deinterleave(&il.interleave(&bits));
            assert_eq!(rt, bits, "round trip failed for N_CBPS={n_cbps}");
        }
    }

    #[test]
    fn permutation_is_bijective() {
        for &(n_cbps, n_bpsc) in &[(48usize, 1usize), (96, 2), (192, 4), (288, 6)] {
            let il = Interleaver::new(n_cbps, n_bpsc);
            let mut seen = vec![false; n_cbps];
            for &j in &il.forward {
                assert!(!seen[j], "position {j} hit twice");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn adjacent_bits_are_separated() {
        // The whole point: adjacent coded bits must not land on adjacent
        // positions (same subcarrier region).
        let il = Interleaver::new(192, 4);
        for k in 0..191 {
            let d = il.forward[k].abs_diff(il.forward[k + 1]);
            assert!(d >= 4, "bits {k},{} map {} apart", k + 1, d);
        }
    }

    #[test]
    fn bpsk_first_permutation_known_values() {
        // For BPSK (s=1) the second permutation is the identity, so
        // position k maps to (N/16)*(k%16) + k/16 = 3*(k%16) + k/16.
        let il = Interleaver::new(48, 1);
        assert_eq!(il.forward[0], 0);
        assert_eq!(il.forward[1], 3);
        assert_eq!(il.forward[16], 1);
        assert_eq!(il.forward[47], 47);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn bad_block_size_rejected() {
        let _ = Interleaver::new(50, 1);
    }
}
