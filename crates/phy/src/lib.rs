//! # nplus-phy
//!
//! OFDM physical layer substrate for the `nplus` workspace — the
//! reproduction of *"Random Access Heterogeneous MIMO Networks"*
//! (SIGCOMM 2011).
//!
//! The paper's prototype (§5) builds on the GNURadio OFDM code base with
//! 802.11 modulations (BPSK, 4/16/64-QAM) and coding rates on a 10 MHz
//! USRP2 channel. This crate reimplements that PHY from scratch:
//!
//! * [`fft`] — radix-2 (I)FFT and the normalized cross-correlation kernel
//!   used by preamble-based carrier sense;
//! * [`scrambler`], [`convolutional`], [`puncture`], [`interleaver`] — the
//!   802.11 coding chain (K=7 (133,171) code, Viterbi decoding, rates
//!   1/2, 2/3, 3/4);
//! * [`modulation`] — Gray-coded BPSK/QPSK/16-QAM/64-QAM;
//! * [`preamble`], [`chanest`] — short/long training fields, staggered
//!   MIMO sounding and per-subcarrier channel estimation;
//! * [`ofdm`] — symbol assembly and the end-to-end single-stream chain;
//! * [`esnr`] — the effective-SNR metric (Halperin et al.) and the
//!   bitrate selection table of §3.4;
//! * [`params`], [`rates`] — OFDM geometry and the 8-rate 802.11 menu.

#![forbid(unsafe_code)]

pub mod bits;
pub mod chanest;
pub mod convolutional;
pub mod crc;
pub mod esnr;
pub mod fft;
pub mod interleaver;
pub mod modulation;
pub mod ofdm;
pub mod params;
pub mod preamble;
pub mod puncture;
pub mod rates;
pub mod scrambler;
pub mod signal_field;

pub use chanest::{estimate_from_ltf, estimate_mimo_from_preamble, ChannelEstimate};
pub use esnr::{ber_awgn, effective_snr, effective_snr_db, select_rate, RATE_ESNR_THRESHOLDS_DB};
pub use modulation::Modulation;
pub use params::{MacTiming, OfdmConfig, NUM_DATA_SUBCARRIERS, NUM_SUBCARRIERS};
pub use puncture::CodeRate;
pub use rates::{Mcs, RateIndex, BASE_RATE, RATE_TABLE};
pub use signal_field::{SignalError, SignalField};
