//! CRC-32 frame check sequence.
//!
//! 802.11 frames end with the IEEE 802.3 CRC-32 (polynomial 0x04C11DB7,
//! reflected, init and final XOR `0xFFFF_FFFF`). The light-weight handshake
//! of §3.5 additionally protects the detached header with its own
//! checksum; both use this implementation.

/// Reflected CRC-32 (IEEE 802.3 / zlib) over the given bytes.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= POLY;
            }
        }
    }
    !crc
}

/// Appends the CRC-32 of `data` (little-endian) and returns the framed
/// buffer.
pub fn append_crc(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 4);
    out.extend_from_slice(data);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out
}

/// Validates and strips a trailing CRC-32. Returns the payload on success.
pub fn check_crc(framed: &[u8]) -> Option<&[u8]> {
    if framed.len() < 4 {
        return None;
    }
    let (payload, fcs) = framed.split_at(framed.len() - 4);
    let expect = u32::from_le_bytes([fcs[0], fcs[1], fcs[2], fcs[3]]);
    if crc32(payload) == expect {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn round_trip() {
        let payload = b"the quick brown fox";
        let framed = append_crc(payload);
        assert_eq!(check_crc(&framed), Some(&payload[..]));
    }

    #[test]
    fn detects_single_bit_flip() {
        let payload: Vec<u8> = (0..64).collect();
        let framed = append_crc(&payload);
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut corrupted = framed.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    check_crc(&corrupted).is_none(),
                    "undetected flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn short_frames_rejected() {
        assert!(check_crc(&[]).is_none());
        assert!(check_crc(&[1, 2, 3]).is_none());
    }
}
