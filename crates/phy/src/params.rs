//! OFDM and timing parameters.
//!
//! The paper's prototype runs an 802.11-style OFDM PHY on USRP2 radios over
//! a **10 MHz** channel (§5). The constants here default to that profile but
//! are parameterized so the benches can also model a standard 20 MHz
//! 802.11 channel (the paper notes 20 MHz would only change the
//! alignment-space compressibility, §3.5).

/// Number of OFDM subcarriers (FFT size), as in 802.11a/g/n 20 MHz.
pub const NUM_SUBCARRIERS: usize = 64;

/// Number of data subcarriers per OFDM symbol.
pub const NUM_DATA_SUBCARRIERS: usize = 48;

/// Number of pilot subcarriers per OFDM symbol.
pub const NUM_PILOTS: usize = 4;

/// Cyclic-prefix length in samples for the standard profile.
///
/// §4 of the paper notes that n+ scales both the CP and the FFT size by the
/// same factor to give joiners timing leeway; [`OfdmConfig::scaled`]
/// implements that.
pub const CP_LEN: usize = 16;

/// Indices (in natural FFT order 0..64) of the data subcarriers.
///
/// Matches the 802.11a mapping: subcarriers ±1..±26 are used, of which
/// ±7 and ±21 carry pilots, and 0 (DC) plus ±27..±31 are null.
pub fn data_subcarrier_indices() -> Vec<usize> {
    let mut idx = Vec::with_capacity(NUM_DATA_SUBCARRIERS);
    // Positive frequencies 1..=26, skipping pilots 7 and 21.
    for k in 1..=26usize {
        if k != 7 && k != 21 {
            idx.push(k);
        }
    }
    // Negative frequencies -26..=-1 map to 38..=63, pilots at -21 (43) and -7 (57).
    for k in 38..=63usize {
        if k != 43 && k != 57 {
            idx.push(k);
        }
    }
    idx
}

/// Indices of the pilot subcarriers (±7, ±21 in natural FFT order).
pub fn pilot_subcarrier_indices() -> [usize; NUM_PILOTS] {
    [7, 21, 43, 57]
}

/// Indices of all occupied subcarriers (data + pilots), the set over which
/// channels are estimated and nulling/alignment is performed.
pub fn occupied_subcarrier_indices() -> Vec<usize> {
    let mut idx = data_subcarrier_indices().to_vec();
    idx.extend_from_slice(&pilot_subcarrier_indices());
    idx.sort_unstable();
    idx
}

/// Static OFDM configuration shared by transmitter and receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfdmConfig {
    /// FFT size (number of subcarriers).
    pub fft_len: usize,
    /// Cyclic-prefix length in samples.
    pub cp_len: usize,
    /// Channel bandwidth in Hz (also the complex sample rate).
    pub bandwidth_hz: f64,
}

impl OfdmConfig {
    /// The paper's USRP2 profile: 64 subcarriers over 10 MHz.
    pub const fn usrp2() -> Self {
        OfdmConfig {
            fft_len: NUM_SUBCARRIERS,
            cp_len: CP_LEN,
            bandwidth_hz: 10e6,
        }
    }

    /// Standard 802.11 20 MHz profile.
    pub const fn wifi20() -> Self {
        OfdmConfig {
            fft_len: NUM_SUBCARRIERS,
            cp_len: CP_LEN,
            bandwidth_hz: 20e6,
        }
    }

    /// Scales the FFT size and cyclic prefix by the same integer factor
    /// (§4 "Time Synchronization"): a longer CP gives joining transmitters
    /// more slack to align symbol boundaries, at constant relative
    /// overhead.
    pub fn scaled(&self, factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be >= 1");
        OfdmConfig {
            fft_len: self.fft_len * factor,
            cp_len: self.cp_len * factor,
            bandwidth_hz: self.bandwidth_hz,
        }
    }

    /// Samples per OFDM symbol including the cyclic prefix.
    #[inline]
    pub fn symbol_len(&self) -> usize {
        self.fft_len + self.cp_len
    }

    /// Duration of one OFDM symbol in seconds.
    #[inline]
    pub fn symbol_duration(&self) -> f64 {
        self.symbol_len() as f64 / self.bandwidth_hz
    }

    /// Duration of one sample in seconds.
    #[inline]
    pub fn sample_duration(&self) -> f64 {
        1.0 / self.bandwidth_hz
    }

    /// Subcarrier spacing in Hz.
    #[inline]
    pub fn subcarrier_spacing(&self) -> f64 {
        self.bandwidth_hz / self.fft_len as f64
    }

    /// Relative cyclic-prefix overhead (CP / symbol length).
    #[inline]
    pub fn cp_overhead(&self) -> f64 {
        self.cp_len as f64 / self.symbol_len() as f64
    }
}

impl Default for OfdmConfig {
    fn default() -> Self {
        Self::usrp2()
    }
}

/// 802.11 MAC timing constants, expressed in microseconds.
///
/// These are the OFDM-PHY (802.11a) values; the MAC crate converts them to
/// sample counts through the PHY bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacTiming {
    /// Short inter-frame space (µs).
    pub sifs_us: f64,
    /// Slot time (µs).
    pub slot_us: f64,
    /// Minimum contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
}

impl MacTiming {
    /// 802.11a OFDM timing: SIFS 16 µs, slot 9 µs, CW 15..1023.
    pub const fn dot11a() -> Self {
        MacTiming {
            sifs_us: 16.0,
            slot_us: 9.0,
            cw_min: 15,
            cw_max: 1023,
        }
    }

    /// DIFS = SIFS + 2 × slot.
    #[inline]
    pub fn difs_us(&self) -> f64 {
        self.sifs_us + 2.0 * self.slot_us
    }
}

impl Default for MacTiming {
    fn default() -> Self {
        Self::dot11a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subcarrier_counts() {
        assert_eq!(data_subcarrier_indices().len(), NUM_DATA_SUBCARRIERS);
        assert_eq!(occupied_subcarrier_indices().len(), 52);
    }

    #[test]
    fn data_and_pilots_disjoint() {
        let data = data_subcarrier_indices();
        for p in pilot_subcarrier_indices() {
            assert!(!data.contains(&p), "pilot {p} collides with data");
        }
    }

    #[test]
    fn dc_and_guards_unused() {
        let occ = occupied_subcarrier_indices();
        assert!(!occ.contains(&0), "DC must be null");
        for k in 27..=37 {
            assert!(!occ.contains(&k), "guard band {k} must be null");
        }
    }

    #[test]
    fn usrp2_symbol_timing() {
        let cfg = OfdmConfig::usrp2();
        assert_eq!(cfg.symbol_len(), 80);
        // 80 samples at 10 MHz = 8 µs per symbol (double 802.11a's 4 µs).
        assert!((cfg.symbol_duration() - 8e-6).abs() < 1e-12);
        assert!((cfg.subcarrier_spacing() - 156_250.0).abs() < 1e-6);
    }

    #[test]
    fn scaled_preserves_overhead() {
        let cfg = OfdmConfig::usrp2();
        let big = cfg.scaled(2);
        assert_eq!(big.fft_len, 128);
        assert_eq!(big.cp_len, 32);
        assert!((big.cp_overhead() - cfg.cp_overhead()).abs() < 1e-12);
    }

    #[test]
    fn difs_value() {
        let t = MacTiming::dot11a();
        assert!((t.difs_us() - 34.0).abs() < 1e-12);
    }
}
