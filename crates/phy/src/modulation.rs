//! Constellation mapping: BPSK, QPSK, 16-QAM, 64-QAM.
//!
//! These are the modulations the paper's prototype supports (§5). All
//! constellations are Gray-coded and normalized to unit average symbol
//! energy, so transmit power accounting is independent of the modulation.

use nplus_linalg::{c64, Complex64};

/// Modulation scheme of one spatial stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Binary phase shift keying — 1 bit/symbol.
    Bpsk,
    /// Quadrature phase shift keying (4-QAM) — 2 bits/symbol.
    Qpsk,
    /// 16-point quadrature amplitude modulation — 4 bits/symbol.
    Qam16,
    /// 64-point quadrature amplitude modulation — 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// Coded bits carried per subcarrier symbol (`N_BPSC`).
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Per-axis normalization factor giving unit average symbol energy.
    fn kmod(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
        }
    }

    /// Number of constellation points.
    pub fn points(self) -> usize {
        1 << self.bits_per_symbol()
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16-QAM",
            Modulation::Qam64 => "64-QAM",
        }
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Gray-codes `bits` (LSB-first slice of length 1, 2, or 3) onto a PAM
/// axis: 1 bit -> {-1, 1}; 2 bits -> {-3, -1, 1, 3}; 3 bits -> {-7..7}.
fn gray_axis(bits: &[u8]) -> f64 {
    match bits.len() {
        1 => {
            if bits[0] == 0 {
                -1.0
            } else {
                1.0
            }
        }
        2 => match (bits[0], bits[1]) {
            (0, 0) => -3.0,
            (0, 1) => -1.0,
            (1, 1) => 1.0,
            (1, 0) => 3.0,
            _ => unreachable!(),
        },
        3 => match (bits[0], bits[1], bits[2]) {
            (0, 0, 0) => -7.0,
            (0, 0, 1) => -5.0,
            (0, 1, 1) => -3.0,
            (0, 1, 0) => -1.0,
            (1, 1, 0) => 1.0,
            (1, 1, 1) => 3.0,
            (1, 0, 1) => 5.0,
            (1, 0, 0) => 7.0,
            _ => unreachable!(),
        },
        n => panic!("unsupported axis width {n}"),
    }
}

/// Inverse of [`gray_axis`]: slices the axis value back into Gray bits by
/// minimum distance.
fn gray_axis_demap(value: f64, width: usize, out: &mut Vec<u8>) {
    let levels: &[f64] = match width {
        1 => &[-1.0, 1.0],
        2 => &[-3.0, -1.0, 1.0, 3.0],
        3 => &[-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0],
        n => panic!("unsupported axis width {n}"),
    };
    // Nearest level (hard decision).
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, &l) in levels.iter().enumerate() {
        let d = (value - l).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    let l = levels[best];
    // Re-encode through gray_axis by scanning the bit patterns.
    let n_patterns = 1usize << width;
    for pattern in 0..n_patterns {
        let bits: Vec<u8> = (0..width).map(|k| ((pattern >> k) & 1) as u8).collect();
        if (gray_axis(&bits) - l).abs() < 1e-9 {
            out.extend_from_slice(&bits);
            return;
        }
    }
    unreachable!("level {l} not produced by any Gray pattern");
}

/// Maps coded bits to constellation symbols. `bits.len()` must be a
/// multiple of [`Modulation::bits_per_symbol`].
pub fn modulate(bits: &[u8], m: Modulation) -> Vec<Complex64> {
    let bps = m.bits_per_symbol();
    assert!(
        bits.len().is_multiple_of(bps),
        "modulate: {} bits is not a multiple of {bps}",
        bits.len()
    );
    let k = m.kmod();
    bits.chunks(bps)
        .map(|chunk| match m {
            Modulation::Bpsk => c64(gray_axis(&chunk[..1]) * k, 0.0),
            Modulation::Qpsk => c64(gray_axis(&chunk[..1]) * k, gray_axis(&chunk[1..2]) * k),
            Modulation::Qam16 => c64(gray_axis(&chunk[..2]) * k, gray_axis(&chunk[2..4]) * k),
            Modulation::Qam64 => c64(gray_axis(&chunk[..3]) * k, gray_axis(&chunk[3..6]) * k),
        })
        .collect()
}

/// Hard-decision demapping of constellation symbols back to coded bits.
pub fn demodulate(symbols: &[Complex64], m: Modulation) -> Vec<u8> {
    let k = m.kmod();
    let mut bits = Vec::with_capacity(symbols.len() * m.bits_per_symbol());
    for &s in symbols {
        let re = s.re / k;
        let im = s.im / k;
        match m {
            Modulation::Bpsk => gray_axis_demap(re, 1, &mut bits),
            Modulation::Qpsk => {
                gray_axis_demap(re, 1, &mut bits);
                gray_axis_demap(im, 1, &mut bits);
            }
            Modulation::Qam16 => {
                gray_axis_demap(re, 2, &mut bits);
                gray_axis_demap(im, 2, &mut bits);
            }
            Modulation::Qam64 => {
                gray_axis_demap(re, 3, &mut bits);
                gray_axis_demap(im, 3, &mut bits);
            }
        }
    }
    bits
}

/// Average symbol energy of the constellation (should be 1 by
/// construction; exposed for tests and power accounting).
pub fn average_energy(m: Modulation) -> f64 {
    let bps = m.bits_per_symbol();
    let n = 1usize << bps;
    let mut e = 0.0;
    for pattern in 0..n {
        let bits: Vec<u8> = (0..bps).map(|k| ((pattern >> k) & 1) as u8).collect();
        let s = modulate(&bits, m)[0];
        e += s.norm_sqr();
    }
    e / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    fn pseudo_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 1) as u8
            })
            .collect()
    }

    #[test]
    fn unit_average_energy() {
        for m in ALL {
            let e = average_energy(m);
            assert!((e - 1.0).abs() < 1e-12, "{m}: energy {e}");
        }
    }

    #[test]
    fn round_trip_every_constellation_point() {
        for m in ALL {
            let bps = m.bits_per_symbol();
            for pattern in 0..(1usize << bps) {
                let bits: Vec<u8> = (0..bps).map(|k| ((pattern >> k) & 1) as u8).collect();
                let sym = modulate(&bits, m);
                assert_eq!(demodulate(&sym, m), bits, "{m} pattern {pattern:b}");
            }
        }
    }

    #[test]
    fn round_trip_long_streams() {
        for m in ALL {
            let bps = m.bits_per_symbol();
            let bits = pseudo_bits(bps * 100, 31);
            let syms = modulate(&bits, m);
            assert_eq!(syms.len(), 100);
            assert_eq!(demodulate(&syms, m), bits);
        }
    }

    #[test]
    fn demap_tolerates_small_noise() {
        for m in ALL {
            let bps = m.bits_per_symbol();
            let bits = pseudo_bits(bps * 50, 17);
            let mut syms = modulate(&bits, m);
            // Perturb by much less than half the minimum distance.
            let eps = 0.4 * m.kmod();
            for (i, s) in syms.iter_mut().enumerate() {
                *s += c64(if i % 2 == 0 { eps } else { -eps } * 0.5, eps * 0.3);
            }
            assert_eq!(demodulate(&syms, m), bits, "{m}");
        }
    }

    #[test]
    fn gray_property_adjacent_levels_differ_by_one_bit() {
        // Adjacent PAM levels of the 3-bit axis must differ in exactly one
        // bit — the defining Gray-code property that bounds bit errors per
        // symbol error.
        let patterns: Vec<Vec<u8>> = (0..8usize)
            .map(|p| (0..3).map(|k| ((p >> k) & 1) as u8).collect())
            .collect();
        let mut by_level: Vec<(f64, &Vec<u8>)> =
            patterns.iter().map(|b| (gray_axis(b), b)).collect();
        by_level.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in by_level.windows(2) {
            let diff: usize = w[0].1.iter().zip(w[1].1).filter(|(a, b)| a != b).count();
            assert_eq!(
                diff, 1,
                "levels {} and {} differ in {diff} bits",
                w[0].0, w[1].0
            );
        }
    }

    #[test]
    fn bpsk_is_real_valued() {
        let syms = modulate(&[0, 1, 1, 0], Modulation::Bpsk);
        for s in syms {
            assert_eq!(s.im, 0.0);
            assert!((s.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_bits_rejected() {
        modulate(&[1, 0, 1], Modulation::Qpsk);
    }
}
