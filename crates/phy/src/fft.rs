//! Radix-2 FFT for OFDM modulation.
//!
//! No FFT crate is available offline, so this is a self-contained iterative
//! Cooley–Tukey implementation. OFDM sizes here are tiny (64–256 points),
//! so the simple in-place radix-2 kernel is plenty fast — the criterion
//! bench in `nplus-bench` confirms sub-microsecond 64-point transforms.

use nplus_linalg::Complex64;
use std::f64::consts::PI;

/// In-place forward FFT. `data.len()` must be a power of two.
pub fn fft_in_place(data: &mut [Complex64]) {
    transform(data, false);
}

/// In-place inverse FFT (includes the 1/N normalization).
pub fn ifft_in_place(data: &mut [Complex64]) {
    transform(data, true);
    let scale = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(scale);
    }
}

/// Forward FFT returning a new vector.
pub fn fft(data: &[Complex64]) -> Vec<Complex64> {
    let mut out = data.to_vec();
    fft_in_place(&mut out);
    out
}

/// Inverse FFT returning a new vector.
pub fn ifft(data: &[Complex64]) -> Vec<Complex64> {
    let mut out = data.to_vec();
    ifft_in_place(&mut out);
    out
}

fn transform(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Iterative butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        let mut start = 0;
        while start < n {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Cross-correlates `haystack` with `needle` at every lag, returning the
/// normalized correlation magnitude in `[0, 1]` per lag.
///
/// This is the 802.11 preamble detector's kernel: the normalization divides
/// by the energy of both windows, so a perfect match scores 1 regardless of
/// power — exactly the statistic whose CDFs Fig. 9(b) plots.
pub fn normalized_cross_correlation(haystack: &[Complex64], needle: &[Complex64]) -> Vec<f64> {
    let n = needle.len();
    if haystack.len() < n || n == 0 {
        return Vec::new();
    }
    let needle_energy: f64 = needle.iter().map(|z| z.norm_sqr()).sum();
    if needle_energy <= 1e-300 {
        return vec![0.0; haystack.len() - n + 1];
    }
    let mut out = Vec::with_capacity(haystack.len() - n + 1);
    for lag in 0..=(haystack.len() - n) {
        let window = &haystack[lag..lag + n];
        let mut acc = Complex64::ZERO;
        let mut window_energy = 0.0;
        for (h, s) in window.iter().zip(needle) {
            acc += *h * s.conj();
            window_energy += h.norm_sqr();
        }
        let denom = (window_energy * needle_energy).sqrt();
        out.push(if denom <= 1e-300 {
            0.0
        } else {
            (acc.abs() / denom).min(1.0)
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_linalg::c64;

    const TOL: f64 = 1e-10;

    fn approx_vec(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(*y, tol))
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let y = fft(&x);
        for z in y {
            assert!(z.approx_eq(Complex64::ONE, TOL));
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let x = vec![Complex64::ONE; 16];
        let y = fft(&x);
        assert!(y[0].approx_eq(c64(16.0, 0.0), TOL));
        for z in &y[1..] {
            assert!(z.abs() < TOL);
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 64;
        let k = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * PI * k as f64 * t as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (bin, z) in y.iter().enumerate() {
            if bin == k {
                assert!(z.approx_eq(c64(n as f64, 0.0), 1e-8));
            } else {
                assert!(z.abs() < 1e-8, "leakage at bin {bin}: {z:?}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex64> = (0..64)
            .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let y = ifft(&fft(&x));
        assert!(approx_vec(&x, &y, 1e-9));
    }

    #[test]
    fn parseval_energy_preserved() {
        let x: Vec<Complex64> = (0..32)
            .map(|i| c64((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let y = fft(&x);
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((ex - ey).abs() < 1e-8);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..16).map(|i| c64(i as f64, -(i as f64))).collect();
        let b: Vec<Complex64> = (0..16).map(|i| c64((i as f64).cos(), 0.5)).collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let expect: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(approx_vec(&fsum, &expect, 1e-9));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex64::ZERO; 12];
        fft_in_place(&mut x);
    }

    #[test]
    fn correlation_peaks_at_alignment() {
        let needle: Vec<Complex64> = (0..16).map(|i| Complex64::cis(0.7 * i as f64)).collect();
        let mut haystack = vec![Complex64::ZERO; 64];
        haystack[20..36].copy_from_slice(&needle);
        let corr = normalized_cross_correlation(&haystack, &needle);
        let (peak_lag, peak) = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(peak_lag, 20);
        assert!((peak - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_is_power_invariant() {
        let needle: Vec<Complex64> = (0..16).map(|i| Complex64::cis(1.1 * i as f64)).collect();
        let strong: Vec<Complex64> = needle.iter().map(|z| z.scale(100.0)).collect();
        let corr = normalized_cross_correlation(&strong, &needle);
        assert!((corr[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_of_noise_is_low() {
        // Deterministic pseudo-noise should not correlate with a chirp.
        let needle: Vec<Complex64> = (0..32)
            .map(|i| Complex64::cis(0.3 * (i * i) as f64))
            .collect();
        let noise: Vec<Complex64> = (0..128)
            .map(|i| {
                c64(
                    ((i * 2654435761usize) % 1000) as f64 / 500.0 - 1.0,
                    ((i * 40503usize) % 1000) as f64 / 500.0 - 1.0,
                )
            })
            .collect();
        let corr = normalized_cross_correlation(&noise, &needle);
        for c in corr {
            assert!(c < 0.6, "spurious correlation {c}");
        }
    }
}
