//! Bit/byte manipulation helpers shared across the PHY pipeline.
//!
//! The coding chain (scrambler → convolutional encoder → interleaver →
//! constellation mapper) operates on individual bits; frames arrive as
//! bytes. Bits are transmitted LSB-first within each byte, matching
//! 802.11's serialization order.

/// Expands bytes into bits, LSB-first within each byte.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for k in 0..8 {
            bits.push((b >> k) & 1);
        }
    }
    bits
}

/// Packs bits (LSB-first) back into bytes. The bit count must be a
/// multiple of 8.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    assert!(
        bits.len().is_multiple_of(8),
        "bits_to_bytes: {} bits is not a whole number of bytes",
        bits.len()
    );
    bits.chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u8, |acc, (k, &bit)| acc | ((bit & 1) << k))
        })
        .collect()
}

/// Pads `bits` with zeros up to a multiple of `block`.
pub fn pad_to_multiple(bits: &mut Vec<u8>, block: usize) {
    let rem = bits.len() % block;
    if rem != 0 {
        bits.resize(bits.len() + (block - rem), 0);
    }
}

/// Counts positions where the two bit slices differ (they are compared up
/// to the shorter length).
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    a.iter()
        .zip(b)
        .filter(|(x, y)| (**x & 1) != (**y & 1))
        .count()
}

/// Writes an unsigned value into `bits` LSB-first using `width` bits.
pub fn push_bits(bits: &mut Vec<u8>, value: u64, width: usize) {
    assert!(width <= 64);
    for k in 0..width {
        bits.push(((value >> k) & 1) as u8);
    }
}

/// Reads an unsigned value of `width` bits (LSB-first) starting at
/// `offset`. Returns `(value, next_offset)`.
pub fn read_bits(bits: &[u8], offset: usize, width: usize) -> (u64, usize) {
    assert!(offset + width <= bits.len(), "read_bits out of range");
    let mut value = 0u64;
    for k in 0..width {
        value |= ((bits[offset + k] & 1) as u64) << k;
    }
    (value, offset + width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_bit_round_trip() {
        let bytes = vec![0x00, 0xFF, 0xA5, 0x3C, 0x01, 0x80];
        let bits = bytes_to_bits(&bytes);
        assert_eq!(bits.len(), bytes.len() * 8);
        assert_eq!(bits_to_bytes(&bits), bytes);
    }

    #[test]
    fn lsb_first_order() {
        let bits = bytes_to_bits(&[0b0000_0001]);
        assert_eq!(bits[0], 1);
        assert_eq!(&bits[1..], &[0; 7]);
        let bits = bytes_to_bits(&[0b1000_0000]);
        assert_eq!(bits[7], 1);
        assert_eq!(&bits[..7], &[0; 7]);
    }

    #[test]
    fn padding() {
        let mut bits = vec![1, 0, 1];
        pad_to_multiple(&mut bits, 8);
        assert_eq!(bits.len(), 8);
        assert_eq!(&bits[3..], &[0; 5]);
        // Already aligned: no change.
        let mut aligned = vec![1; 16];
        pad_to_multiple(&mut aligned, 8);
        assert_eq!(aligned.len(), 16);
    }

    #[test]
    fn hamming() {
        assert_eq!(hamming_distance(&[0, 1, 1, 0], &[0, 1, 0, 1]), 2);
        assert_eq!(hamming_distance(&[1, 1], &[1, 1]), 0);
    }

    #[test]
    fn push_read_round_trip() {
        let mut bits = Vec::new();
        push_bits(&mut bits, 0xBEEF, 16);
        push_bits(&mut bits, 5, 3);
        let (v1, off) = read_bits(&bits, 0, 16);
        assert_eq!(v1, 0xBEEF);
        let (v2, off2) = read_bits(&bits, off, 3);
        assert_eq!(v2, 5);
        assert_eq!(off2, 19);
    }

    #[test]
    #[should_panic(expected = "whole number of bytes")]
    fn unaligned_bits_panic() {
        bits_to_bytes(&[1, 0, 1]);
    }
}
