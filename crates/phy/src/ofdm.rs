//! OFDM symbol assembly and the full single-stream transmit/receive chain.
//!
//! Transmit chain (per spatial stream, matching the §5 prototype):
//!
//! ```text
//! bytes → bits → scramble → convolutional encode → puncture
//!       → interleave (per symbol) → constellation map
//!       → subcarrier placement (+ pilots) → IFFT → cyclic prefix
//! ```
//!
//! The receive chain inverts each stage, with per-subcarrier equalization
//! (the MIMO zero-forcing projection lives in the `nplus` core crate; this
//! module handles the scalar post-projection stream).

use crate::bits::{bits_to_bytes, bytes_to_bits};
use crate::convolutional::{coded_len, encode as conv_encode, viterbi_decode};
use crate::fft::{fft, ifft};
use crate::interleaver::Interleaver;
use crate::modulation::{demodulate, modulate};
use crate::params::{data_subcarrier_indices, pilot_subcarrier_indices, OfdmConfig};
use crate::puncture::{depuncture, puncture, punctured_len};
use crate::rates::Mcs;
use crate::scrambler::Scrambler;
use nplus_linalg::{c64, Complex64};

/// The pilot polarity sequence (127-long, from the all-ones scrambler).
fn pilot_polarity() -> Vec<f64> {
    let mut s = Scrambler::new(0x7F);
    let mut zeros = vec![0u8; 127];
    s.apply_in_place(&mut zeros);
    zeros
        .iter()
        .map(|&b| if b == 0 { 1.0 } else { -1.0 })
        .collect()
}

/// Base pilot values on the four pilot subcarriers (±7: +1, ±21: +1/−1
/// per 802.11a Table 17-)
const PILOT_BASE: [f64; 4] = [1.0, 1.0, 1.0, -1.0];

/// Assembles one OFDM symbol from 48 data-subcarrier constellation points.
///
/// `symbol_index` selects the pilot polarity. Returns `fft_len + cp_len`
/// time-domain samples.
pub fn assemble_symbol(
    data: &[Complex64],
    symbol_index: usize,
    cfg: &OfdmConfig,
) -> Vec<Complex64> {
    let data_idx = data_subcarrier_indices();
    assert_eq!(
        data.len(),
        data_idx.len(),
        "assemble_symbol: need 48 points"
    );
    let mut freq = vec![Complex64::ZERO; cfg.fft_len];
    for (&bin, &sym) in data_idx.iter().zip(data) {
        freq[bin] = sym;
    }
    let polarity = pilot_polarity();
    let p = polarity[symbol_index % polarity.len()];
    for (&bin, &base) in pilot_subcarrier_indices().iter().zip(&PILOT_BASE) {
        freq[bin] = c64(base * p, 0.0);
    }
    let mut time = ifft(&freq);
    // Scale so average transmit power over occupied subcarriers is one.
    let occupied = (data_idx.len() + 4) as f64;
    let k = (cfg.fft_len as f64 / occupied).sqrt() * (cfg.fft_len as f64).sqrt();
    for z in time.iter_mut() {
        *z = z.scale(k);
    }
    let mut out = Vec::with_capacity(cfg.symbol_len());
    out.extend_from_slice(&time[cfg.fft_len - cfg.cp_len..]);
    out.extend_from_slice(&time);
    out
}

/// Assembles one OFDM symbol with per-antenna pilot gains.
///
/// Multi-antenna transmitters that precode their data must precode their
/// pilots the same way, or the pilots would violate the nulls the data
/// maintains. `pilot_gain` scales all four pilots of this antenna's
/// symbol (typically the precoding vector's component for this antenna at
/// the pilot subcarriers).
pub fn assemble_symbol_with_pilot_gain(
    data: &[Complex64],
    symbol_index: usize,
    pilot_gain: Complex64,
    cfg: &OfdmConfig,
) -> Vec<Complex64> {
    let data_idx = data_subcarrier_indices();
    assert_eq!(
        data.len(),
        data_idx.len(),
        "assemble_symbol: need 48 points"
    );
    let mut freq = vec![Complex64::ZERO; cfg.fft_len];
    for (&bin, &sym) in data_idx.iter().zip(data) {
        freq[bin] = sym;
    }
    let polarity = pilot_polarity();
    let p = polarity[symbol_index % polarity.len()];
    for (&bin, &base) in pilot_subcarrier_indices().iter().zip(&PILOT_BASE) {
        freq[bin] = pilot_gain.scale(base * p);
    }
    let mut time = ifft(&freq);
    let occupied = (data_idx.len() + 4) as f64;
    let k = (cfg.fft_len as f64 / occupied).sqrt() * (cfg.fft_len as f64).sqrt();
    for z in time.iter_mut() {
        *z = z.scale(k);
    }
    let mut out = Vec::with_capacity(cfg.symbol_len());
    out.extend_from_slice(&time[cfg.fft_len - cfg.cp_len..]);
    out.extend_from_slice(&time);
    out
}

/// Recovered frequency-domain content of one OFDM symbol.
#[derive(Debug, Clone)]
pub struct SymbolObservation {
    /// Raw FFT output per subcarrier (natural order), before equalization.
    pub freq: Vec<Complex64>,
}

impl SymbolObservation {
    /// Data-subcarrier observations in transmit order.
    pub fn data_carriers(&self) -> Vec<Complex64> {
        data_subcarrier_indices()
            .iter()
            .map(|&bin| self.freq[bin])
            .collect()
    }

    /// Pilot observations in transmit order.
    pub fn pilots(&self) -> [Complex64; 4] {
        let idx = pilot_subcarrier_indices();
        [
            self.freq[idx[0]],
            self.freq[idx[1]],
            self.freq[idx[2]],
            self.freq[idx[3]],
        ]
    }
}

/// Disassembles one OFDM symbol: strips the CP and FFTs. The inverse of
/// [`assemble_symbol`] up to channel effects.
pub fn disassemble_symbol(samples: &[Complex64], cfg: &OfdmConfig) -> SymbolObservation {
    assert_eq!(samples.len(), cfg.symbol_len(), "disassemble: wrong length");
    let body = &samples[cfg.cp_len..];
    let mut freq = fft(body);
    let occupied = (data_subcarrier_indices().len() + 4) as f64;
    let k = 1.0 / ((cfg.fft_len as f64 / occupied).sqrt() * (cfg.fft_len as f64).sqrt());
    for z in freq.iter_mut() {
        *z = z.scale(k);
    }
    SymbolObservation { freq }
}

/// Corrects the common phase error of one symbol using its pilots and
/// equalizes the data subcarriers against the per-subcarrier channel
/// `chan` (natural FFT order, as estimated from the LTF).
pub fn equalize_symbol(
    obs: &SymbolObservation,
    chan: &[Complex64],
    symbol_index: usize,
) -> Vec<Complex64> {
    let polarity = pilot_polarity();
    let p = polarity[symbol_index % polarity.len()];
    // Estimate residual common phase from pilots.
    let mut acc = Complex64::ZERO;
    for ((&bin, &base), &obs_p) in pilot_subcarrier_indices()
        .iter()
        .zip(&PILOT_BASE)
        .zip(&obs.pilots())
    {
        let expect = chan[bin].scale(base * p);
        if expect.abs() > 1e-12 {
            acc += obs_p * expect.conj();
        }
    }
    let cpe = if acc.abs() > 1e-12 {
        acc.scale(1.0 / acc.abs())
    } else {
        Complex64::ONE
    };
    data_subcarrier_indices()
        .iter()
        .map(|&bin| {
            let h = chan[bin] * cpe;
            if h.abs() > 1e-12 {
                obs.freq[bin] / h
            } else {
                Complex64::ZERO
            }
        })
        .collect()
}

/// Encodes a byte payload into a sequence of constellation points, one
/// entry of 48 points per OFDM symbol (the "bits on subcarriers" part of
/// the TX chain, before IFFT).
pub fn encode_payload_to_carriers(payload: &[u8], mcs: Mcs) -> Vec<Vec<Complex64>> {
    let mut bits = bytes_to_bits(payload);
    Scrambler::default_seed().apply_in_place(&mut bits);
    let coded = conv_encode(&bits);
    let mut on_air = puncture(&coded, mcs.code_rate);
    // Pad the on-air stream to a whole number of OFDM symbols.
    let n_cbps = mcs.coded_bits_per_symbol();
    let rem = on_air.len() % n_cbps;
    if rem != 0 {
        on_air.resize(on_air.len() + (n_cbps - rem), 0);
    }
    let il = Interleaver::new(n_cbps, mcs.modulation.bits_per_symbol());
    on_air
        .chunks(n_cbps)
        .map(|chunk| modulate(&il.interleave(chunk), mcs.modulation))
        .collect()
}

/// Inverse of [`encode_payload_to_carriers`]: demaps equalized data
/// carriers back to the byte payload. `payload_len` is the expected byte
/// count (known from the header).
pub fn decode_carriers_to_payload(
    carriers: &[Vec<Complex64>],
    mcs: Mcs,
    payload_len: usize,
) -> Vec<u8> {
    let n_cbps = mcs.coded_bits_per_symbol();
    let il = Interleaver::new(n_cbps, mcs.modulation.bits_per_symbol());
    let mut on_air = Vec::with_capacity(carriers.len() * n_cbps);
    for sym in carriers {
        on_air.extend(il.deinterleave(&demodulate(sym, mcs.modulation)));
    }
    let n_info = payload_len * 8;
    let n_coded = coded_len(n_info);
    let n_punctured = punctured_len(n_coded, mcs.code_rate);
    assert!(
        on_air.len() >= n_punctured,
        "not enough symbols: have {} on-air bits, need {n_punctured}",
        on_air.len()
    );
    on_air.truncate(n_punctured);
    let restored = depuncture(&on_air, mcs.code_rate, n_coded);
    let mut bits = viterbi_decode(&restored);
    bits.truncate(n_info);
    Scrambler::default_seed().apply_in_place(&mut bits);
    bits_to_bytes(&bits)
}

/// Full single-antenna transmit chain: payload bytes to time-domain
/// samples (without preamble; see [`crate::preamble`]).
pub fn transmit_payload(payload: &[u8], mcs: Mcs, cfg: &OfdmConfig) -> Vec<Complex64> {
    let carriers = encode_payload_to_carriers(payload, mcs);
    let mut out = Vec::with_capacity(carriers.len() * cfg.symbol_len());
    for (i, sym) in carriers.iter().enumerate() {
        out.extend(assemble_symbol(sym, i, cfg));
    }
    out
}

/// Full single-antenna receive chain: time-domain samples (aligned to the
/// first data symbol) back to payload bytes, equalizing with the given
/// per-subcarrier channel estimate.
pub fn receive_payload(
    samples: &[Complex64],
    chan: &[Complex64],
    mcs: Mcs,
    payload_len: usize,
    cfg: &OfdmConfig,
) -> Vec<u8> {
    let n_symbols = samples.len() / cfg.symbol_len();
    let mut carriers = Vec::with_capacity(n_symbols);
    for i in 0..n_symbols {
        let sym = &samples[i * cfg.symbol_len()..(i + 1) * cfg.symbol_len()];
        let obs = disassemble_symbol(sym, cfg);
        carriers.push(equalize_symbol(&obs, chan, i));
    }
    decode_carriers_to_payload(&carriers, mcs, payload_len)
}

/// Number of OFDM symbols a payload of `n_bytes` occupies at the given
/// MCS, including the convolutional tail.
pub fn symbols_for_payload(n_bytes: usize, mcs: Mcs) -> usize {
    let n_coded = coded_len(n_bytes * 8);
    let n_air = punctured_len(n_coded, mcs.code_rate);
    n_air.div_ceil(mcs.coded_bits_per_symbol())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::RATE_TABLE;

    fn flat_channel(cfg: &OfdmConfig) -> Vec<Complex64> {
        vec![Complex64::ONE; cfg.fft_len]
    }

    fn pseudo_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 0xFF) as u8
            })
            .collect()
    }

    #[test]
    fn symbol_round_trip_ideal_channel() {
        let cfg = OfdmConfig::usrp2();
        let mcs = RATE_TABLE[2]; // QPSK 1/2
        let bits: Vec<u8> = (0..96).map(|i| (i % 2) as u8).collect();
        let data = modulate(&bits[..96], mcs.modulation);
        let t = assemble_symbol(&data, 0, &cfg);
        assert_eq!(t.len(), cfg.symbol_len());
        let obs = disassemble_symbol(&t, &cfg);
        let eq = equalize_symbol(&obs, &flat_channel(&cfg), 0);
        for (a, b) in data.iter().zip(&eq) {
            assert!(a.approx_eq(*b, 1e-9), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn payload_round_trip_every_rate() {
        let cfg = OfdmConfig::usrp2();
        let payload = pseudo_bytes(100, 77);
        for mcs in RATE_TABLE {
            let samples = transmit_payload(&payload, mcs, &cfg);
            assert_eq!(
                samples.len(),
                symbols_for_payload(payload.len(), mcs) * cfg.symbol_len()
            );
            let rx = receive_payload(&samples, &flat_channel(&cfg), mcs, payload.len(), &cfg);
            assert_eq!(rx, payload, "round trip failed at {mcs}");
        }
    }

    #[test]
    fn payload_round_trip_with_channel() {
        // A frequency-selective but known channel must equalize out.
        let cfg = OfdmConfig::usrp2();
        let payload = pseudo_bytes(64, 5);
        let mcs = RATE_TABLE[4]; // 16QAM 1/2
        let chan: Vec<Complex64> = (0..cfg.fft_len)
            .map(|k| Complex64::from_polar(0.5 + 0.1 * (k % 7) as f64, 0.13 * k as f64))
            .collect();
        let clean = transmit_payload(&payload, mcs, &cfg);
        // Apply the channel per subcarrier: easiest done symbol by symbol
        // in the frequency domain.
        let mut rx_samples = Vec::with_capacity(clean.len());
        for i in 0..clean.len() / cfg.symbol_len() {
            let sym = &clean[i * cfg.symbol_len()..(i + 1) * cfg.symbol_len()];
            let mut freq = fft(&sym[cfg.cp_len..]);
            for (k, z) in freq.iter_mut().enumerate() {
                *z *= chan[k];
            }
            let time = ifft(&freq);
            rx_samples.extend_from_slice(&time[cfg.fft_len - cfg.cp_len..]);
            rx_samples.extend_from_slice(&time);
        }
        let rx = receive_payload(&rx_samples, &chan, mcs, payload.len(), &cfg);
        assert_eq!(rx, payload);
    }

    #[test]
    fn cpe_correction_fixes_common_phase() {
        let cfg = OfdmConfig::usrp2();
        let payload = pseudo_bytes(48, 9);
        let mcs = RATE_TABLE[2];
        let clean = transmit_payload(&payload, mcs, &cfg);
        // Rotate everything by a common phase (residual CFO effect).
        let rotated: Vec<Complex64> = clean.iter().map(|z| *z * Complex64::cis(0.4)).collect();
        let rx = receive_payload(&rotated, &flat_channel(&cfg), mcs, payload.len(), &cfg);
        assert_eq!(rx, payload, "pilot CPE correction failed");
    }

    #[test]
    fn symbol_power_is_normalized() {
        let cfg = OfdmConfig::usrp2();
        let bits: Vec<u8> = (0..96).map(|i| ((i * 5) % 3 == 0) as u8).collect();
        let data = modulate(&bits, crate::modulation::Modulation::Qpsk);
        let t = assemble_symbol(&data, 0, &cfg);
        let p: f64 = t.iter().map(|z| z.norm_sqr()).sum::<f64>() / t.len() as f64;
        // Average transmit power should be near 1 (within the CP repeat
        // and constellation variance).
        assert!(p > 0.5 && p < 2.0, "symbol power {p}");
    }

    #[test]
    fn empty_payload() {
        let cfg = OfdmConfig::usrp2();
        let mcs = RATE_TABLE[0];
        let samples = transmit_payload(&[], mcs, &cfg);
        // Tail bits alone still occupy one symbol.
        assert_eq!(samples.len(), cfg.symbol_len());
        let rx = receive_payload(&samples, &flat_channel(&cfg), mcs, 0, &cfg);
        assert!(rx.is_empty());
    }

    #[test]
    fn pilot_polarity_has_period_127() {
        let p = pilot_polarity();
        assert_eq!(p.len(), 127);
        assert!(p.iter().all(|&v| v == 1.0 || v == -1.0));
    }
}
