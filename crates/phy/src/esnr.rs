//! Effective SNR (ESNR) and bitrate selection.
//!
//! Implements the metric of Halperin et al., *"Predictable 802.11 Packet
//! Delivery from Wireless Channel Measurements"* (SIGCOMM 2010), which the
//! paper adopts for per-packet bitrate selection (§3.4):
//!
//! 1. measure the post-projection SNR on every OFDM subcarrier;
//! 2. for a candidate modulation, map each subcarrier SNR to a bit error
//!    rate through the AWGN BER curve;
//! 3. average the BERs across subcarriers;
//! 4. invert the BER curve: the *effective SNR* is the flat-channel SNR
//!    that would produce the same average BER.
//!
//! Unlike average SNR, ESNR correctly penalizes frequency-selective fades:
//! one deeply faded subcarrier dominates the average BER.

use crate::modulation::Modulation;
use crate::params::OfdmConfig;
use crate::rates::{Mcs, RateIndex, RATE_TABLE};

/// Complementary error function, Abramowitz & Stegun 7.1.26-style rational
/// approximation refined for double precision (max relative error < 1.2e-7,
/// far below anything BER mapping can notice).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.5 * x);
    // Numerical Recipes' erfc approximation.

    t * (-x * x - 1.26551223
        + t * (1.00002368
            + t * (0.37409196
                + t * (0.09678418
                    + t * (-0.18628806
                        + t * (0.27886807
                            + t * (-1.13520398
                                + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp()
}

/// Gaussian tail function `Q(x) = 0.5 * erfc(x / sqrt(2))`.
pub fn q_func(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Uncoded bit error rate of the modulation on an AWGN channel at the
/// given *symbol* SNR (linear, Es/N0). Standard Gray-coded expressions.
pub fn ber_awgn(m: Modulation, snr_linear: f64) -> f64 {
    let snr = snr_linear.max(0.0);
    let ber = match m {
        // BPSK: Q(sqrt(2 Eb/N0)); Es == Eb.
        Modulation::Bpsk => q_func((2.0 * snr).sqrt()),
        // Gray QPSK per-bit: Q(sqrt(Es/N0)).
        Modulation::Qpsk => q_func(snr.sqrt()),
        // Square M-QAM per-bit approximations (standard):
        // BER ≈ 4/log2(M) * (1 - 1/sqrt(M)) * Q( sqrt(3 Es / ((M-1) N0)) ).
        // For M=16 the leading 4/log2(M) coefficient is exactly 1.
        Modulation::Qam16 => (1.0 - 0.25) * q_func((3.0 * snr / 15.0).sqrt()),
        Modulation::Qam64 => (4.0 / 6.0) * (1.0 - 1.0 / 8.0) * q_func((3.0 * snr / 63.0).sqrt()),
    };
    ber.clamp(0.0, 0.5)
}

/// Inverts [`ber_awgn`] by bisection: the SNR (linear) at which the
/// modulation reaches `target_ber`. BER is monotone decreasing in SNR, so
/// bisection over a wide bracket is robust.
pub fn snr_for_ber(m: Modulation, target_ber: f64) -> f64 {
    let target = target_ber.clamp(1e-12, 0.5);
    let mut lo = 1e-6; // -60 dB
    let mut hi = 1e8; // +80 dB
    if ber_awgn(m, lo) < target {
        return lo;
    }
    for _ in 0..200 {
        let mid = (lo * hi).sqrt(); // geometric bisection for dB-scale
                                    // Once the midpoint collapses onto an endpoint the iteration is
                                    // at its fixed point: every further pass recomputes the same
                                    // `mid` and reassigns the same endpoint (`sqrt(x*x) == x` holds
                                    // exactly in this bracket), so the final answer is already
                                    // determined — apply this pass's assignment and stop. Bitwise
                                    // identical to running out the full 200 passes.
        let converged = mid == lo || mid == hi;
        if ber_awgn(m, mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if converged {
            break;
        }
    }
    (lo * hi).sqrt()
}

/// Computes the effective SNR (linear) of a set of per-subcarrier SNRs for
/// the given modulation.
pub fn effective_snr(m: Modulation, subcarrier_snrs: &[f64]) -> f64 {
    assert!(!subcarrier_snrs.is_empty(), "no subcarrier SNRs given");
    let mean_ber =
        subcarrier_snrs.iter().map(|&s| ber_awgn(m, s)).sum::<f64>() / subcarrier_snrs.len() as f64;
    if mean_ber <= 1e-12 {
        // The BER curve has saturated (error-free for this modulation);
        // the inversion is meaningless below the floor, so report the
        // arithmetic mean SNR — the channel is effectively flat-good.
        return subcarrier_snrs.iter().sum::<f64>() / subcarrier_snrs.len() as f64;
    }
    snr_for_ber(m, mean_ber)
}

/// Effective SNR in dB.
pub fn effective_snr_db(m: Modulation, subcarrier_snrs: &[f64]) -> f64 {
    10.0 * effective_snr(m, subcarrier_snrs).log10()
}

/// Minimum ESNR (dB) at which each [`RATE_TABLE`] entry delivers roughly a
/// 90%+ packet success rate for ~1500-byte packets.
///
/// Derived from the coded-performance curves in Halperin et al. (Fig. 5)
/// — within ~1 dB of the 802.11a receiver sensitivity ladder.
pub const RATE_ESNR_THRESHOLDS_DB: [f64; 8] = [
    2.0,  // BPSK 1/2
    4.5,  // BPSK 3/4
    5.0,  // QPSK 1/2
    7.5,  // QPSK 3/4
    10.5, // 16QAM 1/2
    14.0, // 16QAM 3/4
    18.5, // 64QAM 2/3
    20.0, // 64QAM 3/4
];

/// Picks the fastest rate whose ESNR threshold the channel satisfies.
///
/// `subcarrier_snrs` are the post-projection per-subcarrier SNRs (linear)
/// measured from the light-weight RTS. Returns `None` when even the most
/// robust rate is below threshold (the receiver should then refuse the
/// exchange).
pub fn select_rate(subcarrier_snrs: &[f64]) -> Option<RateIndex> {
    let mut best = None;
    for (idx, mcs) in RATE_TABLE.iter().enumerate() {
        let esnr_db = effective_snr_db(mcs.modulation, subcarrier_snrs);
        if esnr_db >= RATE_ESNR_THRESHOLDS_DB[idx] {
            best = Some(idx);
        }
    }
    best
}

/// Convenience: the expected throughput (Mb/s) of a rate choice on the
/// given channel, `bitrate * (1 - PER)`, using a crude PER model from the
/// mean coded BER. Useful for benches comparing rate-selection policies.
pub fn expected_throughput_mbps(
    idx: RateIndex,
    subcarrier_snrs: &[f64],
    cfg: &OfdmConfig,
    packet_bits: usize,
) -> f64 {
    let mcs: Mcs = RATE_TABLE[idx];
    let esnr = effective_snr(mcs.modulation, subcarrier_snrs);
    let raw_ber = ber_awgn(mcs.modulation, esnr);
    // Effective post-Viterbi BER model: coding gain shifts the curve; a
    // simple exponent model keeps orderings right without a full decoder
    // Monte-Carlo (benches that need exact numbers run the real decoder).
    let coded_ber = (raw_ber.powi(3) * 10.0).min(0.5);
    let per = 1.0 - (1.0 - coded_ber).powi(packet_bits as i32);
    mcs.bitrate_mbps(cfg) * (1.0 - per)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn q_func_known_values() {
        assert!((q_func(0.0) - 0.5).abs() < 2e-8);
        assert!((q_func(1.0) - 0.158_655).abs() < 1e-5);
        assert!((q_func(3.0) - 0.001_349_9).abs() < 1e-6);
    }

    #[test]
    fn ber_decreases_with_snr() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let mut last = 0.6;
            for snr_db in [-5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0] {
                let ber = ber_awgn(m, 10f64.powf(snr_db / 10.0));
                assert!(ber <= last, "{m} BER not monotone at {snr_db} dB");
                last = ber;
            }
        }
    }

    #[test]
    fn ber_ordering_by_modulation() {
        // At the same SNR, denser constellations must have higher BER.
        let snr = 10f64.powf(1.2); // 12 dB
        let b = ber_awgn(Modulation::Bpsk, snr);
        let q = ber_awgn(Modulation::Qpsk, snr);
        let q16 = ber_awgn(Modulation::Qam16, snr);
        let q64 = ber_awgn(Modulation::Qam64, snr);
        assert!(b <= q && q <= q16 && q16 <= q64);
    }

    #[test]
    fn bpsk_ber_at_known_point() {
        // BPSK at Eb/N0 = 9.6 dB has BER ~ 1e-5 (textbook value).
        let snr = 10f64.powf(0.96);
        let ber = ber_awgn(Modulation::Bpsk, snr);
        assert!(ber > 1e-6 && ber < 1e-4, "got {ber}");
    }

    #[test]
    fn snr_for_ber_inverts() {
        for m in [Modulation::Bpsk, Modulation::Qam16, Modulation::Qam64] {
            for target in [1e-2, 1e-3, 1e-5] {
                let snr = snr_for_ber(m, target);
                let ber = ber_awgn(m, snr);
                assert!(
                    (ber.log10() - target.log10()).abs() < 0.01,
                    "{m}: target {target}, got {ber}"
                );
            }
        }
    }

    #[test]
    fn esnr_of_flat_channel_is_the_snr() {
        let snr = 10f64.powf(1.5); // 15 dB flat
        let snrs = vec![snr; 52];
        for m in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16] {
            let esnr = effective_snr(m, &snrs);
            assert!(
                (10.0 * (esnr / snr).log10()).abs() < 0.05,
                "{m}: esnr {esnr} vs {snr}"
            );
        }
    }

    #[test]
    fn esnr_penalizes_selective_fades() {
        // 51 strong subcarriers + 1 deeply faded one: the ESNR must drop
        // well below the arithmetic-mean SNR.
        let mut snrs = vec![10f64.powf(2.0); 51]; // 20 dB
        snrs.push(10f64.powf(-0.5)); // -5 dB fade
        let mean: f64 = snrs.iter().sum::<f64>() / snrs.len() as f64;
        let esnr = effective_snr(Modulation::Qam16, &snrs);
        assert!(
            esnr < 0.7 * mean,
            "esnr {esnr} should be well below mean {mean}"
        );
    }

    #[test]
    fn rate_selection_tracks_snr() {
        // Flat channels at increasing SNR must select non-decreasing rates.
        let mut last: Option<RateIndex> = None;
        for snr_db in [0.0, 3.0, 6.0, 9.0, 12.0, 16.0, 20.0, 24.0, 28.0] {
            let snrs = vec![10f64.powf(snr_db / 10.0); 52];
            let r = select_rate(&snrs);
            if let (Some(prev), Some(cur)) = (last, r) {
                assert!(
                    cur >= prev,
                    "rate dropped from {prev} to {cur} at {snr_db} dB"
                );
            }
            if r.is_some() {
                last = r;
            }
        }
        // At 28 dB the fastest rate must be selected.
        let snrs = vec![10f64.powf(2.8); 52];
        assert_eq!(select_rate(&snrs), Some(7));
        // Below -5 dB nothing decodes.
        let snrs = vec![10f64.powf(-0.8); 52];
        assert_eq!(select_rate(&snrs), None);
    }

    #[test]
    fn expected_throughput_is_finite_and_ordered() {
        let cfg = OfdmConfig::usrp2();
        let snrs = vec![10f64.powf(2.5); 52]; // 25 dB: fast rates viable
        let t_fast = expected_throughput_mbps(7, &snrs, &cfg, 12000);
        let t_slow = expected_throughput_mbps(0, &snrs, &cfg, 12000);
        assert!(t_fast.is_finite() && t_slow.is_finite());
        assert!(t_fast > t_slow, "at high SNR the fast rate must win");
        // At very low SNR the robust rate wins.
        let snrs = vec![10f64.powf(0.3); 52]; // 3 dB
        let t_fast = expected_throughput_mbps(7, &snrs, &cfg, 12000);
        let t_slow = expected_throughput_mbps(0, &snrs, &cfg, 12000);
        assert!(t_slow > t_fast);
    }
}
