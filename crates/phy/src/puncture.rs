//! Puncturing for code rates 2/3 and 3/4.
//!
//! 802.11 derives its higher code rates from the rate-1/2 mother code by
//! deleting (puncturing) coded bits in a fixed periodic pattern
//! (IEEE 802.11-2007 §17.3.5.6). The receiver re-inserts
//! [`crate::convolutional::ERASURE`] marks at the deleted positions before
//! Viterbi decoding.

use crate::convolutional::ERASURE;

/// Code rate of the convolutional coding stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2 (no puncturing).
    R12,
    /// Rate 2/3 (one of every four coded bits deleted).
    R23,
    /// Rate 3/4 (two of every six coded bits deleted).
    R34,
}

impl CodeRate {
    /// The puncturing pattern over one period of the *coded* (rate-1/2)
    /// stream; `true` = keep, `false` = delete. Patterns follow the
    /// standard: A bits are the even positions, B bits the odd.
    pub fn pattern(self) -> &'static [bool] {
        match self {
            CodeRate::R12 => &[true, true],
            // Period 4 (two A/B pairs): keep A1 B1 A2, drop B2.
            CodeRate::R23 => &[true, true, true, false],
            // Period 6 (three pairs): keep A1 B1, drop A2, keep B2, keep A3, drop B3.
            CodeRate::R34 => &[true, true, false, true, true, false],
        }
    }

    /// Numerator of the rate fraction.
    pub fn num(self) -> usize {
        match self {
            CodeRate::R12 => 1,
            CodeRate::R23 => 2,
            CodeRate::R34 => 3,
        }
    }

    /// Denominator of the rate fraction.
    pub fn den(self) -> usize {
        match self {
            CodeRate::R12 => 2,
            CodeRate::R23 => 3,
            CodeRate::R34 => 4,
        }
    }

    /// The rate as a float (information bits per coded bit on air).
    pub fn as_f64(self) -> f64 {
        self.num() as f64 / self.den() as f64
    }
}

impl std::fmt::Display for CodeRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.num(), self.den())
    }
}

/// Deletes bits from a rate-1/2 coded stream according to the pattern.
pub fn puncture(coded: &[u8], rate: CodeRate) -> Vec<u8> {
    let pattern = rate.pattern();
    coded
        .iter()
        .enumerate()
        .filter(|(i, _)| pattern[i % pattern.len()])
        .map(|(_, &b)| b)
        .collect()
}

/// Re-inserts [`ERASURE`] marks at the punctured positions, restoring the
/// rate-1/2 stream geometry expected by the Viterbi decoder.
///
/// `original_len` is the length of the pre-puncturing coded stream.
pub fn depuncture(punctured: &[u8], rate: CodeRate, original_len: usize) -> Vec<u8> {
    let pattern = rate.pattern();
    let mut out = Vec::with_capacity(original_len);
    let mut src = punctured.iter();
    for i in 0..original_len {
        if pattern[i % pattern.len()] {
            out.push(*src.next().expect("punctured stream too short"));
        } else {
            out.push(ERASURE);
        }
    }
    assert!(
        src.next().is_none(),
        "punctured stream longer than expected for original_len {original_len}"
    );
    out
}

/// Number of on-air bits after puncturing a coded stream of `coded_len`
/// bits.
pub fn punctured_len(coded_len: usize, rate: CodeRate) -> usize {
    let pattern = rate.pattern();
    let full_periods = coded_len / pattern.len();
    let kept_per_period = pattern.iter().filter(|&&k| k).count();
    let mut n = full_periods * kept_per_period;
    for (i, &keep) in pattern.iter().enumerate().take(coded_len % pattern.len()) {
        let _ = i;
        if keep {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolutional::{encode, viterbi_decode};

    fn pseudo_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 1) as u8
            })
            .collect()
    }

    #[test]
    fn rates_as_fractions() {
        assert_eq!(CodeRate::R12.as_f64(), 0.5);
        assert!((CodeRate::R23.as_f64() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CodeRate::R34.as_f64(), 0.75);
    }

    #[test]
    fn puncture_reduces_length_correctly() {
        let coded = vec![0u8; 24];
        assert_eq!(puncture(&coded, CodeRate::R12).len(), 24);
        assert_eq!(puncture(&coded, CodeRate::R23).len(), 18); // 24 * 3/4
        assert_eq!(puncture(&coded, CodeRate::R34).len(), 16); // 24 * 2/3
        for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R34] {
            assert_eq!(puncture(&coded, rate).len(), punctured_len(24, rate));
        }
    }

    #[test]
    fn depuncture_restores_geometry() {
        let coded: Vec<u8> = (0..24).map(|i| (i % 2) as u8).collect();
        for rate in [CodeRate::R12, CodeRate::R23, CodeRate::R34] {
            let p = puncture(&coded, rate);
            let d = depuncture(&p, rate, coded.len());
            assert_eq!(d.len(), coded.len());
            // Non-erased positions carry the original bits.
            for (orig, got) in coded.iter().zip(&d) {
                if *got != ERASURE {
                    assert_eq!(orig, got);
                }
            }
        }
    }

    #[test]
    fn end_to_end_r23_round_trip() {
        let bits = pseudo_bits(300, 11);
        let coded = encode(&bits);
        let on_air = puncture(&coded, CodeRate::R23);
        let restored = depuncture(&on_air, CodeRate::R23, coded.len());
        assert_eq!(viterbi_decode(&restored), bits);
    }

    #[test]
    fn end_to_end_r34_round_trip() {
        let bits = pseudo_bits(300, 13);
        let coded = encode(&bits);
        let on_air = puncture(&coded, CodeRate::R34);
        let restored = depuncture(&on_air, CodeRate::R34, coded.len());
        assert_eq!(viterbi_decode(&restored), bits);
    }

    #[test]
    fn r34_corrects_light_errors() {
        let bits = pseudo_bits(200, 5);
        let coded = encode(&bits);
        let mut on_air = puncture(&coded, CodeRate::R34);
        on_air[10] ^= 1;
        on_air[150] ^= 1;
        let restored = depuncture(&on_air, CodeRate::R34, coded.len());
        assert_eq!(viterbi_decode(&restored), bits);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn depuncture_checks_length() {
        depuncture(&[1, 0], CodeRate::R12, 8);
    }
}
