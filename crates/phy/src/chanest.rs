//! Channel estimation from the long training field.
//!
//! Every node in n+ — receivers of a transmission *and* overhearing
//! contenders — estimates the per-subcarrier channel of each transmit
//! antenna from that antenna's LTF slot in the MIMO preamble
//! (see [`crate::preamble::mimo_preamble`]). Contenders use these
//! estimates for multi-dimensional carrier sense and, through
//! reciprocity, for nulling/alignment precoding.

use crate::fft::fft;
use crate::params::{occupied_subcarrier_indices, OfdmConfig};
use crate::preamble::ltf_freq;
use nplus_linalg::Complex64;

/// Per-subcarrier channel estimate of one transmit-antenna → one
/// receive-antenna link, in natural FFT order. Unoccupied bins are zero.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelEstimate {
    /// Channel coefficients, one per FFT bin.
    pub h: Vec<Complex64>,
}

impl ChannelEstimate {
    /// A flat unit channel (useful as a test stand-in).
    pub fn flat(fft_len: usize) -> Self {
        let occ = occupied_subcarrier_indices();
        let mut h = vec![Complex64::ZERO; fft_len];
        for &k in &occ {
            h[k] = Complex64::ONE;
        }
        ChannelEstimate { h }
    }

    /// Average channel power over the occupied subcarriers.
    pub fn mean_power(&self) -> f64 {
        let occ = occupied_subcarrier_indices();
        occ.iter().map(|&k| self.h[k].norm_sqr()).sum::<f64>() / occ.len() as f64
    }

    /// Mean squared error against another estimate, over occupied bins.
    pub fn mse(&self, other: &ChannelEstimate) -> f64 {
        let occ = occupied_subcarrier_indices();
        occ.iter()
            .map(|&k| (self.h[k] - other.h[k]).norm_sqr())
            .sum::<f64>()
            / occ.len() as f64
    }
}

/// Estimates the channel from one received LTF (160 samples at the
/// standard geometry, aligned to the start of the LTF including its
/// double guard interval).
///
/// The two repeated long symbols are averaged before division by the known
/// sequence, halving the estimation noise power — exactly what commodity
/// 802.11 receivers do.
pub fn estimate_from_ltf(rx: &[Complex64], cfg: &OfdmConfig) -> ChannelEstimate {
    let gi = 2 * cfg.cp_len;
    let n = cfg.fft_len;
    assert!(
        rx.len() >= gi + 2 * n,
        "LTF capture too short: {} < {}",
        rx.len(),
        gi + 2 * n
    );
    let sym1 = fft(&rx[gi..gi + n]);
    let sym2 = fft(&rx[gi + n..gi + 2 * n]);
    let known = ltf_freq(n);
    // Average power normalization: the transmitted LTF was scaled to unit
    // time-domain power; invert that scaling so H reflects the medium.
    // ltf_time normalizes by sqrt(mean power); mean power of the raw ifft
    // is 52 / n^2, so the applied gain was n / sqrt(52).
    let tx_gain = n as f64 / (52.0f64).sqrt();
    let mut h = vec![Complex64::ZERO; n];
    for k in 0..n {
        if known[k].abs() > 1e-12 {
            let avg = (sym1[k] + sym2[k]).scale(0.5);
            h[k] = avg / (known[k].scale(tx_gain));
        }
    }
    ChannelEstimate { h }
}

/// Estimates the full MIMO channel from a received preamble capture.
///
/// `rx` holds the samples of **one receive antenna**, aligned to the start
/// of the preamble of an `n_tx`-antenna transmitter. Returns one
/// [`ChannelEstimate`] per transmit antenna.
pub fn estimate_mimo_from_preamble(
    rx: &[Complex64],
    n_tx: usize,
    cfg: &OfdmConfig,
) -> Vec<ChannelEstimate> {
    let stf_len = cfg.fft_len / 4 * 10;
    let ltf_len = 2 * cfg.cp_len + 2 * cfg.fft_len;
    assert!(
        rx.len() >= stf_len + n_tx * ltf_len,
        "preamble capture too short"
    );
    (0..n_tx)
        .map(|ant| {
            let start = stf_len + ant * ltf_len;
            estimate_from_ltf(&rx[start..start + ltf_len], cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::ifft;
    use crate::preamble::{ltf_time, mimo_preamble, preamble_len};
    use nplus_linalg::c64;

    fn cfg() -> OfdmConfig {
        OfdmConfig::usrp2()
    }

    /// Applies a per-subcarrier channel to a time-domain stream,
    /// symbol-agnostically via circular convolution per 64-sample block.
    /// For preamble tests we apply it in the frequency domain per LTF.
    fn apply_flat_gain(samples: &[Complex64], gain: Complex64) -> Vec<Complex64> {
        samples.iter().map(|&z| z * gain).collect()
    }

    #[test]
    fn flat_channel_estimated_exactly() {
        let c = cfg();
        let gain = c64(0.8, -0.6); // |gain|^2 = 1
        let rx = apply_flat_gain(&ltf_time(&c), gain);
        let est = estimate_from_ltf(&rx, &c);
        let occ = occupied_subcarrier_indices();
        for &k in &occ {
            assert!(
                est.h[k].approx_eq(gain, 1e-9),
                "bin {k}: {:?} vs {gain:?}",
                est.h[k]
            );
        }
        assert!((est.mean_power() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_selective_channel_estimated() {
        let c = cfg();
        // Build a 3-tap channel and apply it by frequency-domain
        // multiplication of each long symbol (valid because of the GI).
        let taps = [c64(1.0, 0.0), c64(0.4, -0.2), c64(0.0, 0.15)];
        let mut hfreq = vec![Complex64::ZERO; c.fft_len];
        for k in 0..c.fft_len {
            let mut acc = Complex64::ZERO;
            for (d, &t) in taps.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * d) as f64 / c.fft_len as f64;
                acc += t * Complex64::cis(ang);
            }
            hfreq[k] = acc;
        }
        let ltf = ltf_time(&c);
        // Frequency-domain application block by block (GI then two syms).
        let gi = 2 * c.cp_len;
        let mut rx = vec![Complex64::ZERO; ltf.len()];
        for (start, len) in [(gi, c.fft_len), (gi + c.fft_len, c.fft_len)] {
            let mut f = fft(&ltf[start..start + len]);
            for k in 0..c.fft_len {
                f[k] *= hfreq[k];
            }
            let t = ifft(&f);
            rx[start..start + len].copy_from_slice(&t);
        }
        // Reconstruct the GI as the cyclic tail of symbol 1.
        for i in 0..gi {
            rx[i] = rx[gi + c.fft_len - gi + i];
        }
        let est = estimate_from_ltf(&rx, &c);
        for &k in &occupied_subcarrier_indices() {
            assert!(
                est.h[k].approx_eq(hfreq[k], 1e-9),
                "bin {k}: {:?} vs {:?}",
                est.h[k],
                hfreq[k]
            );
        }
    }

    #[test]
    fn mimo_preamble_estimates_each_antenna() {
        let c = cfg();
        let n_tx = 3;
        let streams = mimo_preamble(&c, n_tx);
        // Each tx antenna has its own flat gain to this rx antenna.
        let gains = [c64(1.0, 0.0), c64(0.3, 0.6), c64(-0.5, 0.2)];
        let len = preamble_len(&c, n_tx);
        let mut rx = vec![Complex64::ZERO; len];
        for (ant, stream) in streams.iter().enumerate() {
            for (i, &s) in stream.iter().enumerate() {
                rx[i] += s * gains[ant];
            }
        }
        let ests = estimate_mimo_from_preamble(&rx, n_tx, &c);
        assert_eq!(ests.len(), n_tx);
        for (ant, est) in ests.iter().enumerate() {
            for &k in &occupied_subcarrier_indices() {
                assert!(
                    est.h[k].approx_eq(gains[ant], 1e-9),
                    "antenna {ant} bin {k}: {:?} vs {:?}",
                    est.h[k],
                    gains[ant]
                );
            }
        }
    }

    #[test]
    fn mse_of_identical_estimates_is_zero() {
        let e = ChannelEstimate::flat(64);
        assert_eq!(e.mse(&e), 0.0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_capture_rejected() {
        let c = cfg();
        let rx = vec![Complex64::ZERO; 10];
        let _ = estimate_from_ltf(&rx, &c);
    }
}
