//! The 802.11 OFDM SIGNAL field (PLCP header).
//!
//! Every 802.11a/g frame begins with one BPSK-1/2 OFDM symbol carrying
//! 24 bits: RATE (4), a reserved bit, LENGTH (12), even PARITY (1), and
//! six zero TAIL bits (IEEE 802.11-2007 §17.3.4). The light-weight
//! handshake of n+ (§3.5) keeps this structure — the detached data header
//! still starts with a standard SIGNAL symbol, which is how overhearing
//! contenders learn the rate and duration of a transmission they are not
//! party to.

use crate::rates::{Mcs, RateIndex, RATE_TABLE};

/// The decoded content of a SIGNAL field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalField {
    /// Index into [`RATE_TABLE`].
    pub rate: RateIndex,
    /// PSDU length in bytes (12 bits: 0..4096).
    pub length: usize,
}

/// SIGNAL decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalError {
    /// The parity bit did not match.
    Parity,
    /// The RATE bits are not one of the eight defined patterns.
    BadRate,
    /// Reserved or tail bits were non-zero.
    BadStructure,
}

impl std::fmt::Display for SignalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignalError::Parity => write!(f, "SIGNAL parity check failed"),
            SignalError::BadRate => write!(f, "undefined RATE pattern"),
            SignalError::BadStructure => write!(f, "non-zero reserved/tail bits"),
        }
    }
}

impl std::error::Error for SignalError {}

/// The standard RATE bit patterns (R1..R4, transmitted R1 first), in
/// [`RATE_TABLE`] order: 6, 9, 12, 18, 24, 36, 48, 54 Mb/s labels.
const RATE_BITS: [[u8; 4]; 8] = [
    [1, 1, 0, 1], // 6  Mb/s label — BPSK 1/2
    [1, 1, 1, 1], // 9            — BPSK 3/4
    [0, 1, 0, 1], // 12           — QPSK 1/2
    [0, 1, 1, 1], // 18           — QPSK 3/4
    [1, 0, 0, 1], // 24           — 16-QAM 1/2
    [1, 0, 1, 1], // 36           — 16-QAM 3/4
    [0, 0, 0, 1], // 48           — 64-QAM 2/3
    [0, 0, 1, 1], // 54           — 64-QAM 3/4
];

impl SignalField {
    /// Creates a SIGNAL field; panics if `length` exceeds 12 bits or the
    /// rate index is out of range.
    pub fn new(rate: RateIndex, length: usize) -> Self {
        assert!(rate < RATE_TABLE.len(), "rate index out of range");
        assert!(length < (1 << 12), "LENGTH field is 12 bits");
        SignalField { rate, length }
    }

    /// The MCS this field announces.
    pub fn mcs(&self) -> Mcs {
        RATE_TABLE[self.rate]
    }

    /// Serializes to the 24-bit SIGNAL layout (LSB-first within fields,
    /// field order RATE, reserved, LENGTH, parity, tail).
    pub fn to_bits(&self) -> [u8; 24] {
        let mut bits = [0u8; 24];
        bits[..4].copy_from_slice(&RATE_BITS[self.rate]);
        // bits[4] reserved = 0.
        for k in 0..12 {
            bits[5 + k] = ((self.length >> k) & 1) as u8;
        }
        // Even parity over bits 0..=16.
        let ones: u8 = bits[..17].iter().sum();
        bits[17] = ones & 1;
        // bits[18..24] tail = 0.
        bits
    }

    /// Parses and validates 24 SIGNAL bits.
    pub fn from_bits(bits: &[u8; 24]) -> Result<Self, SignalError> {
        let ones: u32 = bits[..18].iter().map(|&b| b as u32).sum();
        if !ones.is_multiple_of(2) {
            return Err(SignalError::Parity);
        }
        if bits[4] != 0 || bits[18..].iter().any(|&b| b != 0) {
            return Err(SignalError::BadStructure);
        }
        let rate = RATE_BITS
            .iter()
            .position(|p| p[..] == bits[..4])
            .ok_or(SignalError::BadRate)?;
        let mut length = 0usize;
        for k in 0..12 {
            length |= (bits[5 + k] as usize) << k;
        }
        Ok(SignalField { rate, length })
    }

    /// Number of data OFDM symbols the announced PSDU occupies at the
    /// announced rate — the duration information overhearing contenders
    /// need (§3.1: joiners end with the first winner).
    pub fn psdu_symbols(&self) -> usize {
        // 16 SERVICE bits + 8·length + 6 tail bits, per 802.11 §17.3.5.
        let bits = 16 + 8 * self.length + 6;
        bits.div_ceil(self.mcs().data_bits_per_symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_rates_and_lengths() {
        for rate in 0..8 {
            for &length in &[0usize, 1, 14, 1500, 4095] {
                let f = SignalField::new(rate, length);
                let parsed = SignalField::from_bits(&f.to_bits()).unwrap();
                assert_eq!(parsed, f);
            }
        }
    }

    #[test]
    fn parity_flip_detected() {
        let f = SignalField::new(3, 1500);
        let mut bits = f.to_bits();
        bits[7] ^= 1;
        assert_eq!(SignalField::from_bits(&bits), Err(SignalError::Parity));
    }

    #[test]
    fn bad_rate_detected() {
        let f = SignalField::new(0, 100);
        let mut bits = f.to_bits();
        // Flip two rate bits so parity still passes but the pattern is
        // undefined (0b0011 with trailing 0 -> [1,1,0,0] reversed...).
        bits[0] ^= 1;
        bits[3] ^= 1;
        let r = SignalField::from_bits(&bits);
        assert!(matches!(
            r,
            Err(SignalError::BadRate) | Err(SignalError::Parity)
        ));
    }

    #[test]
    fn nonzero_tail_detected() {
        let f = SignalField::new(2, 64);
        let mut bits = f.to_bits();
        bits[20] ^= 1;
        bits[21] ^= 1; // keep parity-neutral region (tail not covered by parity)
        assert_eq!(
            SignalField::from_bits(&bits),
            Err(SignalError::BadStructure)
        );
    }

    #[test]
    fn known_rate_patterns() {
        // 6 Mb/s label = 1101, 54 Mb/s = 0011 (transmitted R1 first).
        assert_eq!(SignalField::new(0, 0).to_bits()[..4], [1, 1, 0, 1]);
        assert_eq!(SignalField::new(7, 0).to_bits()[..4], [0, 0, 1, 1]);
    }

    #[test]
    fn duration_math() {
        // 1500 B at the 24 Mb/s-label rate (16-QAM 1/2, 96 bits/sym):
        // (16 + 12000 + 6) / 96 = 125.2 -> 126 symbols.
        let f = SignalField::new(4, 1500);
        assert_eq!(f.psdu_symbols(), 126);
        // Zero-length PSDU still needs one symbol for SERVICE + tail.
        assert_eq!(SignalField::new(0, 0).psdu_symbols(), 1);
    }

    #[test]
    #[should_panic(expected = "LENGTH field")]
    fn oversized_length_rejected() {
        let _ = SignalField::new(0, 4096);
    }
}
