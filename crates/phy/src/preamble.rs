//! 802.11 OFDM preambles: short and long training fields.
//!
//! The short training field (STF) drives packet detection and coarse
//! synchronization — its 16-sample periodicity is what 802.11 carrier
//! sense cross-correlates against (§6.1 of the paper evaluates exactly
//! this statistic, with and without projection). The long training field
//! (LTF) drives channel estimation.
//!
//! For MIMO transmitters, each antenna sends the LTF in its own time slot
//! (time-orthogonal sounding, as in 802.11n's staggered HT-LTFs). This is
//! what lets every overhearing node estimate the per-antenna channel
//! vectors it needs for nulling, alignment, and multi-dimensional carrier
//! sense — including channels of transmissions it is not a party to.

use crate::fft::ifft;
use crate::params::OfdmConfig;
use nplus_linalg::{c64, Complex64};

/// The 802.11a STF frequency-domain sequence, subcarriers −26..=26
/// (53 entries, DC in the middle), before the `sqrt(13/6)` scaling.
const STF_SEQ: [(f64, f64); 53] = {
    const P: (f64, f64) = (1.0, 1.0);
    const N: (f64, f64) = (-1.0, -1.0);
    const Z: (f64, f64) = (0.0, 0.0);
    [
        Z, Z, P, Z, Z, Z, N, Z, Z, Z, P, Z, Z, Z, N, Z, Z, Z, N, Z, Z, Z, P, Z, Z,
        Z, // -26..-1
        Z, // DC
        Z, Z, Z, N, Z, Z, Z, N, Z, Z, Z, P, Z, Z, Z, P, Z, Z, Z, P, Z, Z, Z, P, Z, Z, // 1..26
    ]
};

/// The 802.11a LTF frequency-domain sequence, subcarriers −26..=26.
const LTF_SEQ: [f64; 53] = [
    1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, -1.0, -1.0, 1.0,
    1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, // -26..-1
    0.0, // DC
    1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0, -1.0,
    -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0, 1.0, 1.0, // 1..26
];

/// Maps a logical subcarrier index −26..=26 to the natural FFT bin 0..64.
fn fft_bin(logical: i32, fft_len: usize) -> usize {
    if logical >= 0 {
        logical as usize
    } else {
        (fft_len as i32 + logical) as usize
    }
}

/// STF in natural FFT order (length `fft_len`), scaled for unit average
/// time-domain power.
pub fn stf_freq(fft_len: usize) -> Vec<Complex64> {
    let mut f = vec![Complex64::ZERO; fft_len];
    let scale = (13.0f64 / 6.0).sqrt();
    for (i, &(re, im)) in STF_SEQ.iter().enumerate() {
        let logical = i as i32 - 26;
        f[fft_bin(logical, fft_len)] = c64(re, im).scale(scale);
    }
    f
}

/// LTF in natural FFT order (length `fft_len`).
pub fn ltf_freq(fft_len: usize) -> Vec<Complex64> {
    let mut f = vec![Complex64::ZERO; fft_len];
    for (i, &v) in LTF_SEQ.iter().enumerate() {
        let logical = i as i32 - 26;
        f[fft_bin(logical, fft_len)] = c64(v, 0.0);
    }
    f
}

/// One 16-sample period of the time-domain STF (for the standard 64-point
/// FFT; scales with `cfg.fft_len`).
pub fn stf_period(cfg: &OfdmConfig) -> Vec<Complex64> {
    let t = ifft(&stf_freq(cfg.fft_len));
    // The STF occupies every 4th subcarrier, so the time signal has
    // period fft_len / 4.
    t[..cfg.fft_len / 4].to_vec()
}

/// The full time-domain STF: 10 repetitions of the short period
/// (160 samples at the standard geometry), normalized to unit average
/// power.
pub fn stf_time(cfg: &OfdmConfig) -> Vec<Complex64> {
    let period = stf_period(cfg);
    let mut out = Vec::with_capacity(period.len() * 10);
    for _ in 0..10 {
        out.extend_from_slice(&period);
    }
    normalize_power(&mut out);
    out
}

/// The full time-domain LTF: a double-length guard interval followed by
/// two repetitions of the 64-sample long symbol (160 samples total at the
/// standard geometry), normalized to unit average power.
pub fn ltf_time(cfg: &OfdmConfig) -> Vec<Complex64> {
    let sym = ifft(&ltf_freq(cfg.fft_len));
    let gi = 2 * cfg.cp_len;
    let mut out = Vec::with_capacity(gi + 2 * cfg.fft_len);
    out.extend_from_slice(&sym[cfg.fft_len - gi..]);
    out.extend_from_slice(&sym);
    out.extend_from_slice(&sym);
    normalize_power(&mut out);
    out
}

fn normalize_power(samples: &mut [Complex64]) {
    let p: f64 = samples.iter().map(|z| z.norm_sqr()).sum::<f64>() / samples.len() as f64;
    if p > 1e-300 {
        let k = 1.0 / p.sqrt();
        for z in samples.iter_mut() {
            *z = z.scale(k);
        }
    }
}

/// The per-antenna preamble of an `n_antennas` transmitter:
/// STF sent from antenna 0, followed by one LTF slot per antenna
/// (time-orthogonal sounding). Returns one sample stream per antenna, all
/// of equal length.
///
/// Layout (standard geometry): `[STF 160][LTF_0 160][LTF_1 160]...`
/// where antenna `i` is silent outside its own LTF slot but during the
/// STF slot if `i != 0`.
pub fn mimo_preamble(cfg: &OfdmConfig, n_antennas: usize) -> Vec<Vec<Complex64>> {
    assert!(n_antennas >= 1);
    let stf = stf_time(cfg);
    let ltf = ltf_time(cfg);
    let total = stf.len() + n_antennas * ltf.len();
    let mut streams = vec![vec![Complex64::ZERO; total]; n_antennas];
    streams[0][..stf.len()].copy_from_slice(&stf);
    for (i, stream) in streams.iter_mut().enumerate() {
        let start = stf.len() + i * ltf.len();
        stream[start..start + ltf.len()].copy_from_slice(&ltf);
    }
    streams
}

/// Total preamble length in samples for an `n_antennas` transmitter.
pub fn preamble_len(cfg: &OfdmConfig, n_antennas: usize) -> usize {
    stf_time(cfg).len() + n_antennas * ltf_time(cfg).len()
}

/// Offset (in samples) of antenna `i`'s LTF slot within the preamble.
pub fn ltf_slot_offset(cfg: &OfdmConfig, antenna: usize) -> usize {
    stf_time(cfg).len() + antenna * ltf_time(cfg).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::normalized_cross_correlation;

    fn cfg() -> OfdmConfig {
        OfdmConfig::usrp2()
    }

    #[test]
    fn stf_has_16_sample_periodicity() {
        let stf = stf_time(&cfg());
        assert_eq!(stf.len(), 160);
        for i in 0..stf.len() - 16 {
            assert!(
                stf[i].approx_eq(stf[i + 16], 1e-9),
                "STF not periodic at sample {i}"
            );
        }
    }

    #[test]
    fn stf_unit_power() {
        let stf = stf_time(&cfg());
        let p: f64 = stf.iter().map(|z| z.norm_sqr()).sum::<f64>() / stf.len() as f64;
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ltf_repeats_long_symbol() {
        let c = cfg();
        let ltf = ltf_time(&c);
        assert_eq!(ltf.len(), 160);
        // The two long symbols (after the 32-sample GI) are identical.
        for i in 0..c.fft_len {
            assert!(ltf[32 + i].approx_eq(ltf[32 + 64 + i], 1e-9));
        }
        // The GI is the cyclic tail of the long symbol.
        for i in 0..32 {
            assert!(ltf[i].approx_eq(ltf[i + 64], 1e-9));
        }
    }

    #[test]
    fn ltf_occupies_52_subcarriers() {
        let f = ltf_freq(64);
        let occupied = f.iter().filter(|z| z.abs() > 1e-12).count();
        assert_eq!(occupied, 52);
        assert_eq!(f[0], Complex64::ZERO, "DC must be empty");
    }

    #[test]
    fn stf_correlates_with_itself() {
        let stf = stf_time(&cfg());
        let period = &stf[..16];
        let corr = normalized_cross_correlation(&stf, period);
        // Every 16-sample lag is a perfect match.
        for lag in (0..corr.len()).step_by(16) {
            assert!((corr[lag] - 1.0).abs() < 1e-9, "lag {lag}: {}", corr[lag]);
        }
    }

    #[test]
    fn stf_does_not_correlate_with_ltf() {
        let c = cfg();
        let ltf = ltf_time(&c);
        let stf = stf_time(&c);
        let corr = normalized_cross_correlation(&ltf, &stf[..32]);
        for v in corr {
            assert!(v < 0.75, "STF matched inside LTF: {v}");
        }
    }

    #[test]
    fn mimo_preamble_slots_are_orthogonal_in_time() {
        let c = cfg();
        let streams = mimo_preamble(&c, 3);
        assert_eq!(streams.len(), 3);
        let len = preamble_len(&c, 3);
        for s in &streams {
            assert_eq!(s.len(), len);
        }
        // At any sample inside an LTF slot, only the owning antenna is live.
        for ant in 0..3 {
            let start = ltf_slot_offset(&c, ant);
            for t in start..start + 160 {
                for (other, s) in streams.iter().enumerate() {
                    if other != ant {
                        assert!(
                            s[t].abs() < 1e-12,
                            "antenna {other} active during antenna {ant}'s LTF"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn preamble_len_scales_with_antennas() {
        let c = cfg();
        assert_eq!(preamble_len(&c, 1), 320);
        assert_eq!(preamble_len(&c, 2), 480);
        assert_eq!(preamble_len(&c, 3), 640);
    }
}
