//! The bitrate menu: modulation × code rate combinations.
//!
//! Mirrors the 802.11a/g OFDM rate set. On the paper's 10 MHz USRP2
//! channel every rate is exactly half its 20 MHz value (the symbol clock
//! halves), so "18 Mb/s" in the paper's overhead math corresponds to the
//! 36 Mb/s geometry.

use crate::modulation::Modulation;
use crate::params::{OfdmConfig, NUM_DATA_SUBCARRIERS};
use crate::puncture::CodeRate;

/// One entry of the bitrate menu.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mcs {
    /// Constellation used on every data subcarrier.
    pub modulation: Modulation,
    /// Convolutional code rate.
    pub code_rate: CodeRate,
}

impl Mcs {
    /// Coded bits per OFDM symbol (`N_CBPS`).
    pub fn coded_bits_per_symbol(&self) -> usize {
        NUM_DATA_SUBCARRIERS * self.modulation.bits_per_symbol()
    }

    /// Information (data) bits per OFDM symbol (`N_DBPS`).
    pub fn data_bits_per_symbol(&self) -> usize {
        self.coded_bits_per_symbol() * self.code_rate.num() / self.code_rate.den()
    }

    /// Bitrate in bits/second for the given OFDM configuration.
    pub fn bitrate_bps(&self, cfg: &OfdmConfig) -> f64 {
        self.data_bits_per_symbol() as f64 / cfg.symbol_duration()
    }

    /// Bitrate in Mb/s for the given OFDM configuration.
    pub fn bitrate_mbps(&self, cfg: &OfdmConfig) -> f64 {
        self.bitrate_bps(cfg) / 1e6
    }

    /// Number of OFDM symbols needed to carry `n_bits` information bits.
    pub fn symbols_for_bits(&self, n_bits: usize) -> usize {
        n_bits.div_ceil(self.data_bits_per_symbol())
    }
}

impl std::fmt::Display for Mcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} r{}", self.modulation, self.code_rate)
    }
}

/// The eight-rate 802.11a/g menu, ordered from most to least robust.
pub const RATE_TABLE: [Mcs; 8] = [
    Mcs {
        modulation: Modulation::Bpsk,
        code_rate: CodeRate::R12,
    },
    Mcs {
        modulation: Modulation::Bpsk,
        code_rate: CodeRate::R34,
    },
    Mcs {
        modulation: Modulation::Qpsk,
        code_rate: CodeRate::R12,
    },
    Mcs {
        modulation: Modulation::Qpsk,
        code_rate: CodeRate::R34,
    },
    Mcs {
        modulation: Modulation::Qam16,
        code_rate: CodeRate::R12,
    },
    Mcs {
        modulation: Modulation::Qam16,
        code_rate: CodeRate::R34,
    },
    Mcs {
        modulation: Modulation::Qam64,
        code_rate: CodeRate::R23,
    },
    Mcs {
        modulation: Modulation::Qam64,
        code_rate: CodeRate::R34,
    },
];

/// Index into [`RATE_TABLE`] (0 = most robust, 7 = fastest).
pub type RateIndex = usize;

/// The most robust rate, used for headers and handshake frames so that any
/// contender can decode them.
pub const BASE_RATE: Mcs = RATE_TABLE[0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_table_is_monotonic() {
        let cfg = OfdmConfig::usrp2();
        let mut last = 0.0;
        for mcs in RATE_TABLE {
            let r = mcs.bitrate_mbps(&cfg);
            assert!(r > last, "{mcs}: {r} not faster than {last}");
            last = r;
        }
    }

    #[test]
    fn rates_match_80211a_at_20mhz() {
        // At 20 MHz with 4 µs symbols the menu is the canonical
        // 6/9/12/18/24/36/48/54 Mb/s.
        let cfg = OfdmConfig::wifi20();
        let expect = [6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0];
        for (mcs, e) in RATE_TABLE.iter().zip(expect) {
            assert!(
                (mcs.bitrate_mbps(&cfg) - e).abs() < 1e-9,
                "{mcs}: got {} expected {e}",
                mcs.bitrate_mbps(&cfg)
            );
        }
    }

    #[test]
    fn rates_halve_at_10mhz() {
        let c20 = OfdmConfig::wifi20();
        let c10 = OfdmConfig::usrp2();
        for mcs in RATE_TABLE {
            assert!((mcs.bitrate_mbps(&c10) * 2.0 - mcs.bitrate_mbps(&c20)).abs() < 1e-9);
        }
    }

    #[test]
    fn data_bits_per_symbol_known_values() {
        assert_eq!(RATE_TABLE[0].data_bits_per_symbol(), 24); // BPSK 1/2
        assert_eq!(RATE_TABLE[4].data_bits_per_symbol(), 96); // 16QAM 1/2
        assert_eq!(RATE_TABLE[7].data_bits_per_symbol(), 216); // 64QAM 3/4
    }

    #[test]
    fn symbols_for_bits_rounds_up() {
        let mcs = RATE_TABLE[0]; // 24 bits per symbol
        assert_eq!(mcs.symbols_for_bits(24), 1);
        assert_eq!(mcs.symbols_for_bits(25), 2);
        assert_eq!(mcs.symbols_for_bits(0), 0);
    }

    #[test]
    fn coded_bits_are_multiple_of_16() {
        // Interleaver precondition.
        for mcs in RATE_TABLE {
            assert_eq!(mcs.coded_bits_per_symbol() % 16, 0);
        }
    }
}
