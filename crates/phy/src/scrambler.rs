//! 802.11 data scrambler.
//!
//! The 7-bit self-synchronizing scrambler with polynomial `x^7 + x^4 + 1`
//! (IEEE 802.11-2007 §17.3.5.4). Whitening the payload keeps the OFDM
//! peak-to-average ratio bounded and decorrelates consecutive symbols.
//! Scrambling is an involution for a fixed seed: applying the same sequence
//! twice restores the input, which is how the descrambler works.

/// The 802.11 scrambler/descrambler.
#[derive(Debug, Clone)]
pub struct Scrambler {
    state: u8, // 7-bit LFSR state
}

impl Scrambler {
    /// Creates a scrambler with the given 7-bit seed (must be non-zero:
    /// the all-zero state never leaves zero).
    pub fn new(seed: u8) -> Self {
        let state = seed & 0x7F;
        assert!(state != 0, "scrambler seed must be non-zero");
        Scrambler { state }
    }

    /// The default seed used throughout the workspace (all ones, a common
    /// 802.11 choice).
    pub fn default_seed() -> Self {
        Self::new(0x7F)
    }

    /// Advances the LFSR and returns the next scrambling bit.
    fn next_bit(&mut self) -> u8 {
        // Feedback: x^7 + x^4 + 1 -> new bit = s6 XOR s3 (0-indexed).
        let b = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | b) & 0x7F;
        b
    }

    /// Scrambles (or descrambles) a bit sequence in place.
    pub fn apply_in_place(&mut self, bits: &mut [u8]) {
        for bit in bits {
            *bit ^= self.next_bit();
        }
    }

    /// Scrambles (or descrambles) a bit sequence.
    pub fn apply(&mut self, bits: &[u8]) -> Vec<u8> {
        let mut out = bits.to_vec();
        self.apply_in_place(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_descramble_round_trip() {
        let bits: Vec<u8> = (0..256).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        let scrambled = Scrambler::new(0x5B).apply(&bits);
        let restored = Scrambler::new(0x5B).apply(&scrambled);
        assert_eq!(restored, bits);
        assert_ne!(scrambled, bits, "scrambler must actually change the data");
    }

    #[test]
    fn first_16_bits_of_standard_sequence() {
        // With the all-ones seed, the 802.11 scrambling sequence begins
        // 0000 1110 1111 0010 ... (IEEE 802.11-2007 Fig. 17-7 repeats with
        // period 127; we check the well-known first bits).
        let mut s = Scrambler::new(0x7F);
        let seq: Vec<u8> = (0..16).map(|_| s.next_bit()).collect();
        assert_eq!(seq, vec![0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn period_is_127() {
        let mut s = Scrambler::new(0x7F);
        let first: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        let second: Vec<u8> = (0..127).map(|_| s.next_bit()).collect();
        assert_eq!(first, second);
        // Maximal-length sequence: 64 ones, 63 zeros.
        assert_eq!(first.iter().filter(|&&b| b == 1).count(), 64);
    }

    #[test]
    fn different_seeds_differ() {
        let bits = vec![0u8; 64];
        let a = Scrambler::new(0x7F).apply(&bits);
        let b = Scrambler::new(0x01).apply(&bits);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_seed_rejected() {
        let _ = Scrambler::new(0);
    }
}
