//! Property-based tests for the PHY coding and modulation chain.

use nplus_linalg::{c64, Complex64};
use nplus_phy::bits::{bits_to_bytes, bytes_to_bits};
use nplus_phy::convolutional::{coded_len, encode, viterbi_decode, ERASURE};
use nplus_phy::crc::{append_crc, check_crc};
use nplus_phy::fft::{fft, ifft};
use nplus_phy::interleaver::Interleaver;
use nplus_phy::modulation::{demodulate, modulate, Modulation};
use nplus_phy::ofdm::{receive_payload, transmit_payload};
use nplus_phy::params::OfdmConfig;
use nplus_phy::puncture::{depuncture, puncture, CodeRate};
use nplus_phy::rates::RATE_TABLE;
use nplus_phy::scrambler::Scrambler;
use proptest::prelude::*;

fn bit_vec(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..2, 1..max_len)
}

fn byte_vec(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..max_len)
}

fn code_rate() -> impl Strategy<Value = CodeRate> {
    prop_oneof![
        Just(CodeRate::R12),
        Just(CodeRate::R23),
        Just(CodeRate::R34),
    ]
}

fn modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
        Just(Modulation::Qam64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// bytes → bits → bytes is the identity.
    #[test]
    fn bits_bytes_round_trip(bytes in byte_vec(300)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    /// The scrambler is an involution under the same seed and always
    /// changes a non-trivial input.
    #[test]
    fn scrambler_involution(bits in bit_vec(400), seed in 1u8..128) {
        let scrambled = Scrambler::new(seed).apply(&bits);
        let restored = Scrambler::new(seed).apply(&scrambled);
        prop_assert_eq!(&restored, &bits);
    }

    /// Viterbi inverts the convolutional encoder on a clean channel for
    /// any input, at every puncturing rate.
    #[test]
    fn coding_chain_round_trip(bits in bit_vec(300), rate in code_rate()) {
        let coded = encode(&bits);
        let on_air = puncture(&coded, rate);
        let restored = depuncture(&on_air, rate, coded.len());
        prop_assert_eq!(viterbi_decode(&restored), bits);
    }

    /// The decoder tolerates one corrupted coded bit anywhere (the free
    /// distance of the mother code is 10).
    #[test]
    fn single_error_corrected(bits in bit_vec(200), pos in any::<prop::sample::Index>()) {
        let mut coded = encode(&bits);
        let idx = pos.index(coded.len());
        coded[idx] ^= 1;
        prop_assert_eq!(viterbi_decode(&coded), bits);
    }

    /// Erasing any single pair position still decodes.
    #[test]
    fn single_erasure_corrected(bits in bit_vec(200), pos in any::<prop::sample::Index>()) {
        let mut coded = encode(&bits);
        let idx = pos.index(coded.len() / 2) * 2;
        coded[idx] = ERASURE;
        coded[idx + 1] = ERASURE;
        prop_assert_eq!(viterbi_decode(&coded), bits);
    }

    /// Constellation mapping round-trips for any bit pattern.
    #[test]
    fn modulation_round_trip(m in modulation(), seed in any::<u64>()) {
        let bps = m.bits_per_symbol();
        let mut s = seed | 1;
        let bits: Vec<u8> = (0..bps * 64).map(|_| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s & 1) as u8
        }).collect();
        prop_assert_eq!(demodulate(&modulate(&bits, m), m), bits);
    }

    /// Interleaving is a bijection for every symbol geometry.
    #[test]
    fn interleaver_round_trip(m in modulation(), bits in bit_vec(400)) {
        let n_cbps = 48 * m.bits_per_symbol();
        let mut block = bits;
        block.resize(n_cbps, 0);
        let il = Interleaver::new(n_cbps, m.bits_per_symbol());
        prop_assert_eq!(il.deinterleave(&il.interleave(&block)), block);
    }

    /// CRC framing detects any single flipped bit.
    #[test]
    fn crc_detects_any_flip(payload in byte_vec(128), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let framed = append_crc(&payload);
        prop_assert_eq!(check_crc(&framed), Some(&payload[..]));
        let mut corrupted = framed.clone();
        let idx = pos.index(corrupted.len());
        corrupted[idx] ^= 1 << bit;
        prop_assert_eq!(check_crc(&corrupted), None);
    }

    /// FFT/IFFT round-trip and Parseval hold for random signals.
    #[test]
    fn fft_round_trip(res in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 64)) {
        let x: Vec<Complex64> = res.into_iter().map(|(r, i)| c64(r, i)).collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!(a.approx_eq(*b, 1e-9));
        }
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ef: f64 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        prop_assert!((ex - ef).abs() < 1e-7 * (1.0 + ex));
    }

    /// The full TX → RX payload chain round-trips on an ideal channel for
    /// any payload and rate.
    #[test]
    fn payload_chain_round_trip(payload in byte_vec(120), rate_idx in 0usize..8) {
        let cfg = OfdmConfig::usrp2();
        let mcs = RATE_TABLE[rate_idx];
        let flat = vec![Complex64::ONE; cfg.fft_len];
        let wave = transmit_payload(&payload, mcs, &cfg);
        let rx = receive_payload(&wave, &flat, mcs, payload.len(), &cfg);
        prop_assert_eq!(rx, payload);
    }

    /// Coded length accounting is consistent with the encoder.
    #[test]
    fn coded_len_matches_encoder(bits in bit_vec(300)) {
        prop_assert_eq!(encode(&bits).len(), coded_len(bits.len()));
    }
}
