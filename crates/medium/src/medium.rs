//! The wireless medium: superposition of transmissions through MIMO
//! channels, observed with receiver noise.
//!
//! This is the simulated replacement for the paper's USRP2 radios and the
//! air between them. Design goals, in order: **physical consistency**
//! (time-domain convolution through the same taps the precoder sees in the
//! frequency domain), **determinism** (seeded noise, reproducible
//! captures), and **clarity** (an event-free sample-clock model — callers
//! schedule transmissions at absolute sample times and capture windows
//! wherever they like).
//!
//! Units: the sample clock runs at the channel bandwidth; signal
//! amplitudes are noise-normalized (receiver AWGN has unit power, so
//! `|h|² = SNR`).

use crate::node::{NodeId, NodeInfo};
use nplus_channel::cfo::apply_cfo;
use nplus_channel::mimo::MimoLink;
use nplus_channel::noise::noise_sample;
use nplus_linalg::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// A transmission scheduled on the medium.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// Transmitting node.
    pub from: NodeId,
    /// Absolute start sample.
    pub start: u64,
    /// One stream per transmit antenna (equal lengths).
    pub streams: Vec<Vec<Complex64>>,
    /// CFO pre-compensation the transmitter applies, in Hz (0 for the
    /// first contention winner; joiners set this to their estimated offset
    /// to the first winner, §4).
    pub cfo_precompensation_hz: f64,
}

impl Transmission {
    /// Length of the transmission in samples.
    pub fn len(&self) -> usize {
        self.streams.first().map_or(0, |s| s.len())
    }

    /// True when the transmission carries no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Absolute end sample (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.len() as u64
    }
}

/// The simulated wireless medium.
#[derive(Debug)]
pub struct Medium {
    nodes: Vec<NodeInfo>,
    /// Directed links keyed by (from, to). The reverse direction is
    /// always present and electromagnetically reciprocal.
    links: HashMap<(NodeId, NodeId), MimoLink>,
    transmissions: Vec<Transmission>,
    sample_rate_hz: f64,
    noise_power: f64,
    seed: u64,
}

impl Medium {
    /// Creates an empty medium with the given sample rate and noise seed.
    /// Receiver noise power is 1 (noise-normalized units).
    pub fn new(sample_rate_hz: f64, seed: u64) -> Self {
        Medium {
            nodes: Vec::new(),
            links: HashMap::new(),
            transmissions: Vec::new(),
            sample_rate_hz,
            noise_power: 1.0,
            seed,
        }
    }

    /// Overrides the receiver noise power (default 1.0). Setting 0
    /// disables noise — useful for isolating precoding residuals.
    pub fn set_noise_power(&mut self, power: f64) {
        self.noise_power = power;
    }

    /// Sample rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Attaches a node with `n_antennas` antennas and an oscillator
    /// offset (Hz relative to nominal).
    pub fn add_node(&mut self, n_antennas: usize, oscillator_offset_hz: f64) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeInfo {
            id,
            n_antennas,
            oscillator_offset_hz,
        });
        id
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &NodeInfo {
        &self.nodes[id.0]
    }

    /// Number of attached nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Installs the channel between two nodes. The reverse direction is
    /// derived by reciprocity ([`MimoLink::reverse`]), so both directions
    /// stay consistent — the property n+'s distributed channel estimation
    /// relies on.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: MimoLink) {
        assert_ne!(from, to, "no self-links");
        assert_eq!(
            link.n_tx(),
            self.node(from).n_antennas,
            "link tx antennas != node antennas"
        );
        assert_eq!(
            link.n_rx(),
            self.node(to).n_antennas,
            "link rx antennas != node antennas"
        );
        self.links.insert((to, from), link.reverse());
        self.links.insert((from, to), link);
    }

    /// The directed link between two nodes, if installed.
    pub fn link(&self, from: NodeId, to: NodeId) -> Option<&MimoLink> {
        self.links.get(&(from, to))
    }

    /// Iterates every installed directed link as `((from, to), link)`,
    /// in ascending `(from, to)` order. Sparse worlds install only the
    /// pairs above their power floor, so this is how consumers (the
    /// channel cache) visit the real link set without an all-pairs
    /// scan. The sort costs `O(E log E)` once per call — `links()` is a
    /// build-time walk, never on the per-sample capture path, which
    /// keeps the map itself a `HashMap` for its O(1) hot-path lookups.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, NodeId), &MimoLink)> {
        // nplus:allow(DET003): order is erased by the sort below.
        let mut entries: Vec<_> = self.links.iter().map(|(&k, v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        entries.into_iter()
    }

    /// Number of installed directed links (both directions counted).
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Schedules a transmission. Streams must be one per antenna.
    pub fn transmit(&mut self, tx: Transmission) {
        assert_eq!(
            tx.streams.len(),
            self.node(tx.from).n_antennas,
            "transmit: stream count != antennas"
        );
        let len = tx.len();
        assert!(
            tx.streams.iter().all(|s| s.len() == len),
            "transmit: ragged stream lengths"
        );
        self.transmissions.push(tx);
    }

    /// Removes all scheduled transmissions (keeps nodes and links).
    pub fn clear_transmissions(&mut self) {
        self.transmissions.clear();
    }

    /// All scheduled transmissions.
    pub fn transmissions(&self) -> &[Transmission] {
        &self.transmissions
    }

    /// Renders what node `at` observes over the window
    /// `[start, start + len)`: the superposition of every scheduled
    /// transmission (except the node's own — radios are half-duplex)
    /// propagated through its link, CFO-rotated by the oscillator
    /// difference, plus receiver AWGN.
    ///
    /// Returns one stream per receive antenna. Noise is deterministic in
    /// `(seed, at, start, len)` so experiments are reproducible.
    pub fn capture(&self, at: NodeId, start: u64, len: usize) -> Vec<Vec<Complex64>> {
        let rx_info = self.node(at);
        let mut out = vec![vec![Complex64::ZERO; len]; rx_info.n_antennas];

        for tx in &self.transmissions {
            if tx.from == at || tx.is_empty() {
                continue;
            }
            let Some(link) = self.links.get(&(tx.from, at)) else {
                continue; // out of range / not modeled
            };
            // Render the transmission through the channel once, then slice
            // the overlap. (Transmissions are short in these experiments;
            // if they grow, per-window convolution would be the upgrade.)
            let mut streams = tx.streams.clone();
            // Apply the effective CFO of this tx→rx pair: transmitter
            // oscillator minus its pre-compensation, relative to the
            // receiver's oscillator.
            let delta = self.node(tx.from).oscillator_offset_hz
                - tx.cfo_precompensation_hz
                - rx_info.oscillator_offset_hz;
            if delta != 0.0 {
                for s in streams.iter_mut() {
                    apply_cfo(s, delta, self.sample_rate_hz, tx.start);
                }
            }
            let rendered = link.apply(&streams);
            let tx_start = tx.start;
            let tx_end = tx_start + rendered[0].len() as u64;
            let w_start = start.max(tx_start);
            let w_end = (start + len as u64).min(tx_end);
            if w_start >= w_end {
                continue;
            }
            for ant in 0..rx_info.n_antennas {
                for t in w_start..w_end {
                    out[ant][(t - start) as usize] += rendered[ant][(t - tx_start) as usize];
                }
            }
        }

        // Deterministic receiver noise.
        if self.noise_power > 0.0 {
            let mut rng = self.capture_rng(at, start, len);
            for stream in out.iter_mut() {
                for z in stream.iter_mut() {
                    *z += noise_sample(self.noise_power, &mut rng);
                }
            }
        }
        out
    }

    /// Renders the noiseless signal only — used by tests and by benches
    /// that measure residual interference below the noise floor.
    pub fn capture_noiseless(&self, at: NodeId, start: u64, len: usize) -> Vec<Vec<Complex64>> {
        let saved = self.noise_power;
        // Cheap interior mutability avoidance: temporarily emulate by
        // re-running the same loop without noise. Cleanest is to clone the
        // config; the struct is small and transmissions are shared.
        let mut no_noise = Medium {
            nodes: self.nodes.clone(),
            links: self.links.clone(),
            transmissions: self.transmissions.clone(),
            sample_rate_hz: self.sample_rate_hz,
            noise_power: 0.0,
            seed: self.seed,
        };
        no_noise.noise_power = 0.0;
        let out = no_noise.capture(at, start, len);
        let _ = saved;
        out
    }

    fn capture_rng(&self, at: NodeId, start: u64, len: usize) -> StdRng {
        // Mix the capture coordinates into a per-capture seed.
        let mut h = self.seed;
        for v in [at.0 as u64 + 1, start ^ 0x9E37_79B9_7F4A_7C15, len as u64] {
            h ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = h.rotate_left(31).wrapping_mul(0x94D0_49BB_1331_11EB);
        }
        StdRng::seed_from_u64(h)
    }

    /// Convenience for experiments: draws a deterministic RNG derived from
    /// the medium seed and a label, for placement/fading draws.
    pub fn derived_rng(&self, label: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(label))
    }
}

// Sweep workers hold media inside per-thread topologies; the type must
// stay `Send + Sync` (deterministic noise comes from per-capture seeding,
// not shared RNG state).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Medium>();
    assert_send_sync::<Transmission>();
};

/// Returns true when any scheduled transmission overlaps the window
/// `[start, start+len)` — a cheap "is the medium busy" oracle for tests
/// (real nodes must carrier-sense, of course).
pub fn any_transmission_overlaps(medium: &Medium, start: u64, len: usize) -> bool {
    medium
        .transmissions()
        .iter()
        .any(|t| t.start < start + len as u64 && start < t.end())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_channel::fading::DelayProfile;
    use nplus_linalg::c64;

    fn two_node_medium(amp: f64) -> (Medium, NodeId, NodeId) {
        let mut m = Medium::new(10e6, 42);
        let a = m.add_node(1, 0.0);
        let b = m.add_node(1, 0.0);
        m.set_link(a, b, MimoLink::flat(1, 1, amp));
        (m, a, b)
    }

    #[test]
    fn silent_medium_is_noise_only() {
        let (mut m, _, b) = two_node_medium(1.0);
        m.set_noise_power(1.0);
        let cap = m.capture(b, 0, 4000);
        let p = nplus_channel::noise::measure_power(&cap[0]);
        assert!((p - 1.0).abs() < 0.1, "noise power {p}");
    }

    #[test]
    fn transmission_arrives_scaled() {
        let (mut m, a, b) = two_node_medium(3.0);
        m.set_noise_power(0.0);
        m.transmit(Transmission {
            from: a,
            start: 100,
            streams: vec![vec![c64(1.0, 0.0); 50]],
            cfo_precompensation_hz: 0.0,
        });
        let cap = m.capture(b, 100, 50);
        for z in &cap[0] {
            assert!(z.approx_eq(c64(3.0, 0.0), 1e-12));
        }
        // Before and after the transmission: silence.
        let before = m.capture(b, 0, 100);
        assert!(before[0].iter().all(|z| z.abs() < 1e-12));
        let after = m.capture(b, 151, 50);
        assert!(after[0].iter().all(|z| z.abs() < 1e-12));
    }

    #[test]
    fn transmissions_superimpose() {
        let mut m = Medium::new(10e6, 1);
        let a = m.add_node(1, 0.0);
        let b = m.add_node(1, 0.0);
        let c = m.add_node(1, 0.0);
        m.set_link(a, c, MimoLink::flat(1, 1, 1.0));
        m.set_link(b, c, MimoLink::flat(1, 1, 2.0));
        m.set_noise_power(0.0);
        m.transmit(Transmission {
            from: a,
            start: 0,
            streams: vec![vec![c64(1.0, 0.0); 10]],
            cfo_precompensation_hz: 0.0,
        });
        m.transmit(Transmission {
            from: b,
            start: 5,
            streams: vec![vec![c64(0.0, 1.0); 10]],
            cfo_precompensation_hz: 0.0,
        });
        let cap = m.capture(c, 0, 15);
        for t in 0..5 {
            assert!(cap[0][t].approx_eq(c64(1.0, 0.0), 1e-12));
        }
        for t in 5..10 {
            assert!(cap[0][t].approx_eq(c64(1.0, 2.0), 1e-12));
        }
        for t in 10..15 {
            assert!(cap[0][t].approx_eq(c64(0.0, 2.0), 1e-12));
        }
    }

    #[test]
    fn half_duplex_own_transmission_invisible() {
        let (mut m, a, _) = two_node_medium(1.0);
        m.set_noise_power(0.0);
        m.transmit(Transmission {
            from: a,
            start: 0,
            streams: vec![vec![c64(1.0, 0.0); 10]],
            cfo_precompensation_hz: 0.0,
        });
        let cap = m.capture(a, 0, 10);
        assert!(cap[0].iter().all(|z| z.abs() < 1e-12));
    }

    #[test]
    fn captures_are_deterministic() {
        let (m, _, b) = two_node_medium(1.0);
        let c1 = m.capture(b, 0, 64);
        let c2 = m.capture(b, 0, 64);
        for (x, y) in c1[0].iter().zip(&c2[0]) {
            assert!(x.approx_eq(*y, 0.0));
        }
        // Different windows get different noise.
        let c3 = m.capture(b, 64, 64);
        let same = c1[0]
            .iter()
            .zip(&c3[0])
            .all(|(x, y)| x.approx_eq(*y, 1e-12));
        assert!(!same);
    }

    #[test]
    fn reciprocity_of_installed_links() {
        let mut m = Medium::new(10e6, 7);
        let a = m.add_node(2, 0.0);
        let b = m.add_node(3, 0.0);
        let mut rng = m.derived_rng(0);
        let link = MimoLink::sample(2, 3, 1.0, &DelayProfile::nlos(), &mut rng);
        m.set_link(a, b, link);
        let fwd = m.link(a, b).unwrap();
        let rev = m.link(b, a).unwrap();
        for k in [0usize, 13, 50] {
            let h = fwd.channel_matrix(k, 64);
            let hr = rev.channel_matrix(k, 64);
            assert!(hr.approx_eq(&h.transpose(), 1e-12));
        }
    }

    #[test]
    fn cfo_between_nodes_rotates_signal() {
        let mut m = Medium::new(10e6, 3);
        let a = m.add_node(1, 2_000.0); // +2 kHz oscillator
        let b = m.add_node(1, -1_000.0); // -1 kHz oscillator
        m.set_link(a, b, MimoLink::flat(1, 1, 1.0));
        m.set_noise_power(0.0);
        m.transmit(Transmission {
            from: a,
            start: 0,
            streams: vec![vec![c64(1.0, 0.0); 1000]],
            cfo_precompensation_hz: 0.0,
        });
        let cap = m.capture(b, 0, 1000);
        // Effective offset = 3 kHz: phase advances 2π·3e3/10e6 per sample.
        let expected_step = 2.0 * std::f64::consts::PI * 3000.0 / 10e6;
        let measured = (cap[0][500] * cap[0][499].conj()).arg();
        assert!(
            (measured - expected_step).abs() < 1e-9,
            "phase step {measured} vs {expected_step}"
        );
        // Pre-compensation cancels it.
        let mut m2 = Medium::new(10e6, 3);
        let a2 = m2.add_node(1, 2_000.0);
        let b2 = m2.add_node(1, -1_000.0);
        m2.set_link(a2, b2, MimoLink::flat(1, 1, 1.0));
        m2.set_noise_power(0.0);
        m2.transmit(Transmission {
            from: a2,
            start: 0,
            streams: vec![vec![c64(1.0, 0.0); 100]],
            cfo_precompensation_hz: 3_000.0,
        });
        let cap2 = m2.capture(b2, 0, 100);
        for z in &cap2[0] {
            assert!(z.approx_eq(c64(1.0, 0.0), 1e-9));
        }
    }

    #[test]
    fn overlap_oracle() {
        let (mut m, a, _) = two_node_medium(1.0);
        m.transmit(Transmission {
            from: a,
            start: 100,
            streams: vec![vec![c64(1.0, 0.0); 50]],
            cfo_precompensation_hz: 0.0,
        });
        assert!(any_transmission_overlaps(&m, 120, 10));
        assert!(any_transmission_overlaps(&m, 90, 20));
        assert!(!any_transmission_overlaps(&m, 0, 100));
        assert!(!any_transmission_overlaps(&m, 150, 10));
    }

    #[test]
    #[should_panic(expected = "stream count")]
    fn wrong_stream_count_rejected() {
        let (mut m, a, _) = two_node_medium(1.0);
        m.transmit(Transmission {
            from: a,
            start: 0,
            streams: vec![vec![]; 2],
            cfo_precompensation_hz: 0.0,
        });
    }
}
