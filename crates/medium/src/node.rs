//! Node registry.

/// Identifier of a node attached to the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Static description of a node on the medium.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// The node's identifier.
    pub id: NodeId,
    /// Number of antennas.
    pub n_antennas: usize,
    /// Oscillator offset of this node's radio relative to the nominal
    /// carrier, in Hz. Differences between nodes produce CFO.
    pub oscillator_offset_hz: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }

    #[test]
    fn node_id_ordering() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5), NodeId(5));
    }
}
