//! Per-topology cache of pure channel frequency responses.
//!
//! A [`ChannelCache`] holds one [`FreqResponseTable`] per directed node
//! pair of a built [`Topology`], keyed by the node's *position* in the
//! topology's node list (the same index the protocol simulator's
//! scenarios use). Only the **pure true channels** are cached — they are
//! deterministic functions of the drawn taps — while believed channels
//! (hardware error) keep drawing from the caller's RNG on every lookup,
//! so seeded simulations stay bit-for-bit identical with and without the
//! cache.

use crate::topology::Topology;
use nplus_channel::freq_table::FreqResponseTable;
use nplus_linalg::CMatrix;

/// Cached per-subcarrier channel matrices for every directed link of a
/// topology.
#[derive(Debug, Clone)]
pub struct ChannelCache {
    /// `tables[from * n_nodes + to]`; `None` on the diagonal and for
    /// unmodeled links.
    tables: Vec<Option<FreqResponseTable>>,
    n_nodes: usize,
    bins: Vec<usize>,
}

impl ChannelCache {
    /// Evaluates every installed directed link of `topo` on the given
    /// FFT `bins` of an `n_fft` grid (one pass over each link's taps).
    pub fn build(topo: &Topology, bins: &[usize], n_fft: usize) -> Self {
        let n = topo.nodes.len();
        let mut tables = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    tables.push(None);
                    continue;
                }
                tables.push(
                    topo.medium
                        .link(topo.nodes[from], topo.nodes[to])
                        .map(|link| FreqResponseTable::new(link, bins, n_fft)),
                );
            }
        }
        ChannelCache {
            tables,
            n_nodes: n,
            bins: bins.to_vec(),
        }
    }

    /// The cached table of the directed link `from → to` (node positions
    /// in the topology's node list), if that link is modeled.
    pub fn table(&self, from: usize, to: usize) -> Option<&FreqResponseTable> {
        self.tables[from * self.n_nodes + to].as_ref()
    }

    /// The cached channel matrix of link `from → to` at bin position
    /// `pos` (index into the `bins` slice the cache was built with).
    ///
    /// Panics when the link is not modeled — same contract as the
    /// simulator's direct lookup.
    pub fn matrix(&self, from: usize, to: usize, pos: usize) -> &CMatrix {
        self.table(from, to)
            .expect("missing link in channel cache")
            .matrix(pos)
    }

    /// The FFT bins the cache covers, in request order.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Number of nodes the cache spans.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }
}

// One channel cache is read by every protocol run of a sweep job; the
// parallel engine requires it to be shareable across scoped threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ChannelCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_topology, TopologyConfig};
    use nplus_channel::placement::Testbed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn built() -> Topology {
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(5);
        build_topology(&tb, &TopologyConfig::new(vec![1, 2, 3]), 10e6, 5, &mut rng)
    }

    #[test]
    fn matches_direct_channel_matrix() {
        let topo = built();
        let bins: Vec<usize> = (1..60).step_by(7).collect();
        let cache = ChannelCache::build(&topo, &bins, 64);
        for from in 0..3 {
            for to in 0..3 {
                if from == to {
                    assert!(cache.table(from, to).is_none());
                    continue;
                }
                let link = topo.medium.link(topo.nodes[from], topo.nodes[to]).unwrap();
                for (pos, &k) in bins.iter().enumerate() {
                    let direct = link.channel_matrix(k, 64);
                    assert!(
                        cache.matrix(from, to, pos).approx_eq(&direct, 0.0),
                        "link {from}->{to} bin {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn table_shapes_follow_antenna_counts() {
        let topo = built();
        let bins = vec![0usize, 10];
        let cache = ChannelCache::build(&topo, &bins, 64);
        assert_eq!(cache.n_nodes(), 3);
        assert_eq!(cache.bins(), &[0, 10]);
        // 1-antenna node 0 transmitting to 3-antenna node 2: 3×1.
        assert_eq!(cache.matrix(0, 2, 0).shape(), (3, 1));
        assert_eq!(cache.matrix(2, 0, 0).shape(), (1, 3));
    }
}
