//! Per-topology cache of pure channel frequency responses.
//!
//! A [`ChannelCache`] holds one [`FreqResponseTable`] per **installed**
//! directed node pair of a built [`Topology`], keyed by the node's
//! *position* in the topology's node list (the same index the protocol
//! simulator's scenarios use). Storage is sparse — a map over the
//! medium's real link set — so city-scale worlds that materialize only
//! links above their power floor pay for the links they have, not the
//! `n²` table a dense `Vec` would allocate. Only the **pure true
//! channels** are cached — they are deterministic functions of the
//! drawn taps — while believed channels (hardware error) keep drawing
//! from the caller's RNG on every lookup, so seeded simulations stay
//! bit-for-bit identical with and without the cache.
//!
//! Lookups are fallible by design: [`ChannelCache::matrix`] returns
//! `None` for an absent link instead of panicking, and the engine
//! treats that as "below the floor" (nothing sensed, nothing
//! delivered).

use crate::topology::Topology;
use nplus_channel::freq_table::FreqResponseTable;
use nplus_linalg::CMatrixSoA;
use std::collections::HashMap;

/// Cached per-subcarrier channel matrices for every installed directed
/// link of a topology.
#[derive(Debug, Clone)]
pub struct ChannelCache {
    /// One table per installed directed link, keyed by `(from, to)`
    /// node positions. Absent key = link below the environment's floor
    /// (or the diagonal).
    tables: HashMap<(usize, usize), FreqResponseTable>,
    /// The table keys in ascending order — [`ChannelCache::links`]
    /// iterates this, never the map, so link walks are deterministic
    /// while lookups stay O(1) on the hash map.
    keys: Vec<(usize, usize)>,
    n_nodes: usize,
    bins: Vec<usize>,
}

impl ChannelCache {
    /// Evaluates every installed directed link of `topo` on the given
    /// FFT `bins` of an `n_fft` grid (one pass over each link's taps).
    /// Visits the medium's sparse link set directly — cost scales with
    /// links installed, not nodes squared.
    pub fn build(topo: &Topology, bins: &[usize], n_fft: usize) -> Self {
        let n = topo.nodes.len();
        let index: HashMap<_, _> = topo
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let mut tables = HashMap::with_capacity(topo.medium.n_links());
        let mut keys = Vec::with_capacity(topo.medium.n_links());
        for ((from, to), link) in topo.medium.links() {
            let (Some(&fi), Some(&ti)) = (index.get(&from), index.get(&to)) else {
                continue; // link between nodes outside this topology's list
            };
            tables.insert((fi, ti), FreqResponseTable::new(link, bins, n_fft));
            keys.push((fi, ti));
        }
        // The medium iterates in NodeId order; positions may permute
        // that, so sort once here (O(E log E) at build, free afterward).
        keys.sort_unstable();
        ChannelCache {
            tables,
            keys,
            n_nodes: n,
            bins: bins.to_vec(),
        }
    }

    /// The cached table of the directed link `from → to` (node positions
    /// in the topology's node list), if that link is modeled.
    pub fn table(&self, from: usize, to: usize) -> Option<&FreqResponseTable> {
        self.tables.get(&(from, to))
    }

    /// The cached channel matrix of link `from → to` at bin position
    /// `pos` (index into the `bins` slice the cache was built with).
    ///
    /// `None` when the link is not modeled — in sparse worlds that
    /// means "below the environment's power floor", and consumers skip
    /// the link instead of panicking. Matrices are served in split
    /// (structure-of-arrays) storage, ready for the engine's kernels.
    pub fn matrix(&self, from: usize, to: usize, pos: usize) -> Option<&CMatrixSoA> {
        self.table(from, to).map(|t| t.matrix(pos))
    }

    /// The FFT bins the cache covers, in request order.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Number of nodes the cache spans.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of cached directed links (both directions counted) — the
    /// sparsity observable city-scale tests assert on.
    pub fn n_links(&self) -> usize {
        self.tables.len()
    }

    /// Iterates the cached directed link keys `(from, to)` in ascending
    /// order. Mobility uses this to find the links incident to a moved
    /// node without scanning `n²` pairs; the sorted key list makes the
    /// walk deterministic regardless of hash-map layout.
    pub fn links(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.keys.iter().copied()
    }

    /// Replaces (or installs) the table of the directed link
    /// `from → to`. Mobility rescales moved links through this; a
    /// genuinely new key binary-search-inserts into the sorted key
    /// list, so [`ChannelCache::links`] order survives installs.
    pub fn set_table(&mut self, from: usize, to: usize, table: FreqResponseTable) {
        if self.tables.insert((from, to), table).is_none() {
            let at = self.keys.partition_point(|&k| k < (from, to));
            self.keys.insert(at, (from, to));
        }
    }
}

// One channel cache is read by every protocol run of a sweep job; the
// parallel engine requires it to be shareable across scoped threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ChannelCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_environment_topology, build_topology, TopologyConfig};
    use nplus_channel::environment::{ChannelEnvironment, MULTI_CELL};
    use nplus_channel::placement::Testbed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn built() -> Topology {
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(5);
        build_topology(&tb, &TopologyConfig::new(vec![1, 2, 3]), 10e6, 5, &mut rng)
    }

    #[test]
    fn matches_direct_channel_matrix() {
        let topo = built();
        let bins: Vec<usize> = (1..60).step_by(7).collect();
        let cache = ChannelCache::build(&topo, &bins, 64);
        for from in 0..3 {
            for to in 0..3 {
                if from == to {
                    assert!(cache.table(from, to).is_none());
                    assert!(cache.matrix(from, to, 0).is_none());
                    continue;
                }
                let link = topo.medium.link(topo.nodes[from], topo.nodes[to]).unwrap();
                for (pos, &k) in bins.iter().enumerate() {
                    let direct = link.channel_matrix(k, 64);
                    assert!(
                        cache
                            .matrix(from, to, pos)
                            .expect("dense world: every off-diagonal link cached")
                            .to_aos()
                            .approx_eq(&direct, 0.0),
                        "link {from}->{to} bin {k}"
                    );
                }
            }
        }
        // Dense world: all n(n-1) directed links cached.
        assert_eq!(cache.n_links(), 6);
    }

    #[test]
    fn table_shapes_follow_antenna_counts() {
        let topo = built();
        let bins = vec![0usize, 10];
        let cache = ChannelCache::build(&topo, &bins, 64);
        assert_eq!(cache.n_nodes(), 3);
        assert_eq!(cache.bins(), &[0, 10]);
        // 1-antenna node 0 transmitting to 3-antenna node 2: 3×1.
        assert_eq!(cache.matrix(0, 2, 0).unwrap().shape(), (3, 1));
        assert_eq!(cache.matrix(2, 0, 0).unwrap().shape(), (1, 3));
    }

    /// `links()` iterates in ascending key order, and installing a new
    /// table through `set_table` keeps that order — the walk mobility
    /// does every epoch is deterministic by construction (DET003).
    #[test]
    fn link_keys_iterate_sorted_and_survive_installs() {
        let topo = built();
        let bins = vec![0usize, 10];
        let mut cache = ChannelCache::build(&topo, &bins, 64);
        let keys: Vec<_> = cache.links().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "build must leave keys sorted");
        assert_eq!(keys.len(), 6);
        // Replacing an existing table must not duplicate its key;
        // installing a brand-new one must land in sorted position.
        let table = cache.table(0, 1).unwrap().clone();
        cache.set_table(2, 1, table.clone());
        assert_eq!(cache.links().count(), 6);
        cache.set_table(0, 0, table);
        let keys: Vec<_> = cache.links().collect();
        assert_eq!(keys.first(), Some(&(0, 0)));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "set_table must keep keys sorted");
    }

    /// In a floored world the cache stores only what the medium
    /// installed, and absent links answer `None` instead of panicking.
    #[test]
    fn sparse_world_caches_only_installed_links() {
        let n = 32; // 4 multi-cell cells
        let antennas: Vec<usize> = (0..n).map(|i| if i % 8 == 0 { 2 } else { 1 }).collect();
        let tb = MULTI_CELL.testbed(n).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let topo =
            build_environment_topology(&MULTI_CELL, &tb, &antennas, 10e6, 3, &mut rng).unwrap();
        let cache = ChannelCache::build(&topo, &[0, 7, 21], 64);
        assert_eq!(cache.n_links(), topo.medium.n_links());
        assert!(
            cache.n_links() < n * (n - 1) / 2,
            "cache not sparse: {} links",
            cache.n_links()
        );
        // A pair across the map is below the floor almost surely; find
        // one absent link and check the typed miss.
        let mut saw_miss = false;
        for i in 0..n {
            for j in 0..n {
                if i != j && cache.table(i, j).is_none() {
                    assert!(cache.matrix(i, j, 0).is_none());
                    saw_miss = true;
                }
            }
        }
        assert!(saw_miss, "city world unexpectedly dense");
    }
}
