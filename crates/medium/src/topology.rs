//! Topology builder: wires a [`Medium`] from the
//! testbed geometry.
//!
//! Given node antenna counts and a random placement draw, installs every
//! pairwise link with large-scale gain from the path-loss model and
//! small-scale fading matched to the link's LOS/NLOS class — the full
//! "random assignment of nodes to locations in Fig. 10" methodology the
//! paper's experiments repeat per run.

use crate::medium::Medium;
use crate::node::NodeId;
use nplus_channel::fading::DelayProfile;
use nplus_channel::mimo::MimoLink;
use nplus_channel::pathloss::{LinkBudget, PathLossModel};
use nplus_channel::placement::{Location, Testbed};
use rand::Rng;

/// Configuration of a topology draw.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Antenna count per node, in node order.
    pub antennas: Vec<usize>,
    /// Large-scale propagation model.
    pub path_loss: PathLossModel,
    /// Power/noise budget.
    pub budget: LinkBudget,
    /// Oscillator offset standard deviation (Hz). Each node draws its
    /// offset from a uniform ±2σ range.
    pub oscillator_sigma_hz: f64,
}

impl TopologyConfig {
    /// A config for `antennas.len()` nodes with default propagation.
    pub fn new(antennas: Vec<usize>) -> Self {
        TopologyConfig {
            antennas,
            path_loss: PathLossModel::default(),
            budget: LinkBudget::default(),
            oscillator_sigma_hz: 2_000.0,
        }
    }
}

/// A built topology: the medium plus the placement that produced it.
#[derive(Debug)]
pub struct Topology {
    /// The wired medium.
    pub medium: Medium,
    /// Node ids in the same order as `config.antennas`.
    pub nodes: Vec<NodeId>,
    /// The drawn locations per node.
    pub placements: Vec<Location>,
}

/// Draws a placement on the testbed and wires all pairwise links.
///
/// `sample_rate_hz` sets the medium clock (10 MHz for the paper's
/// profile); `seed` makes the draw reproducible.
pub fn build_topology<R: Rng>(
    testbed: &Testbed,
    config: &TopologyConfig,
    sample_rate_hz: f64,
    seed: u64,
    rng: &mut R,
) -> Topology {
    let n = config.antennas.len();
    let placements = testbed.random_assignment(n, rng);
    let mut medium = Medium::new(sample_rate_hz, seed);
    let nodes: Vec<NodeId> = config
        .antennas
        .iter()
        .map(|&ants| {
            let offset = (rng.gen::<f64>() - 0.5) * 4.0 * config.oscillator_sigma_hz;
            medium.add_node(ants, offset)
        })
        .collect();

    for i in 0..n {
        for j in (i + 1)..n {
            let d = placements[i].pos.distance(&placements[j].pos);
            let nlos = testbed.link_is_nlos(&placements[i], &placements[j]);
            let loss = config.path_loss.sample_loss_db(d, nlos, rng);
            let amp = config.budget.amplitude_scale(loss);
            let profile = if nlos {
                DelayProfile::nlos()
            } else {
                DelayProfile::los()
            };
            let link = MimoLink::sample(config.antennas[i], config.antennas[j], amp, &profile, rng);
            medium.set_link(nodes[i], nodes[j], link);
        }
    }

    Topology {
        medium,
        nodes,
        placements,
    }
}

// The parallel sweep engine builds and consumes topologies on scoped
// worker threads; keep the type thread-safe by construction (no interior
// mutability, no shared handles).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Topology>();
    assert_send_sync::<TopologyConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_fully_connected_topology() {
        let tb = Testbed::sigcomm11();
        let cfg = TopologyConfig::new(vec![1, 2, 3, 1]);
        let mut rng = StdRng::seed_from_u64(5);
        let topo = build_topology(&tb, &cfg, 10e6, 5, &mut rng);
        assert_eq!(topo.nodes.len(), 4);
        assert_eq!(topo.placements.len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(
                        topo.medium.link(topo.nodes[i], topo.nodes[j]).is_some(),
                        "missing link {i}->{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn antenna_counts_respected() {
        let tb = Testbed::sigcomm11();
        let cfg = TopologyConfig::new(vec![1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(9);
        let topo = build_topology(&tb, &cfg, 10e6, 9, &mut rng);
        for (i, &ants) in cfg.antennas.iter().enumerate() {
            assert_eq!(topo.medium.node(topo.nodes[i]).n_antennas, ants);
        }
        let l = topo.medium.link(topo.nodes[0], topo.nodes[2]).unwrap();
        assert_eq!(l.n_tx(), 1);
        assert_eq!(l.n_rx(), 3);
    }

    #[test]
    fn different_seeds_different_topologies() {
        let tb = Testbed::sigcomm11();
        let cfg = TopologyConfig::new(vec![1, 1]);
        let t1 = build_topology(&tb, &cfg, 10e6, 1, &mut StdRng::seed_from_u64(1));
        let t2 = build_topology(&tb, &cfg, 10e6, 2, &mut StdRng::seed_from_u64(2));
        let h1 = t1
            .medium
            .link(t1.nodes[0], t1.nodes[1])
            .unwrap()
            .channel_matrix(5, 64);
        let h2 = t2
            .medium
            .link(t2.nodes[0], t2.nodes[1])
            .unwrap()
            .channel_matrix(5, 64);
        assert!(!h1.approx_eq(&h2, 1e-9));
    }

    #[test]
    fn link_snrs_in_operating_range() {
        // Mean per-antenna SNR (|amplitude|² × unit fading energy) should
        // mostly fall in the paper's experimental range.
        let tb = Testbed::sigcomm11();
        let cfg = TopologyConfig::new(vec![1, 1, 1, 1, 1, 1]);
        let mut in_range = 0;
        let mut total = 0;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = build_topology(&tb, &cfg, 10e6, seed, &mut rng);
            for i in 0..6 {
                for j in (i + 1)..6 {
                    let amp = topo
                        .medium
                        .link(topo.nodes[i], topo.nodes[j])
                        .unwrap()
                        .amplitude();
                    let snr_db = 20.0 * amp.log10();
                    total += 1;
                    if (0.0..50.0).contains(&snr_db) {
                        in_range += 1;
                    }
                }
            }
        }
        assert!(
            in_range as f64 / total as f64 > 0.85,
            "only {in_range}/{total} links in range"
        );
    }
}
