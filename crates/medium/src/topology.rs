//! Topology builder: wires a [`Medium`] from a propagation
//! environment.
//!
//! Given node antenna counts and a random placement draw, installs every
//! pairwise link with large-scale gain from the environment's path-loss
//! law and small-scale fading matched to the link's LOS/NLOS class — the
//! full "random assignment of nodes to locations in Fig. 10" methodology
//! the paper's experiments repeat per run. The world itself is a
//! pluggable [`ChannelEnvironment`]: [`build_environment_topology`] is
//! the general entry point, and [`build_topology`] survives as a thin
//! wrapper that runs the paper's [`Sigcomm11Indoor`] world with the
//! classic `TopologyConfig` knobs (bit-for-bit identical to the
//! pre-environment implementation — pinned by the
//! `environment_regression` suite).

use crate::medium::Medium;
use crate::node::NodeId;
use nplus_channel::environment::{
    ChannelEnvironment, EnvironmentError, OscillatorDraw, Sigcomm11Indoor,
};
use nplus_channel::mimo::MimoLink;
use nplus_channel::pathloss::{LinkBudget, PathLossModel};
use nplus_channel::placement::{Location, Point, SpatialGrid, Testbed};
use rand::{Rng, RngCore};

/// Configuration of a topology draw under the paper's indoor world —
/// the classic knobs [`build_topology`] feeds into a
/// [`Sigcomm11Indoor`] environment.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Antenna count per node, in node order.
    pub antennas: Vec<usize>,
    /// Large-scale propagation model.
    pub path_loss: PathLossModel,
    /// Power/noise budget.
    pub budget: LinkBudget,
    /// Per-node oscillator-offset draw. The default is the seed code's
    /// draw under its honest name: uniform in ±4 kHz (the old
    /// `oscillator_sigma_hz: σ = 2 kHz` field was consumed by a uniform
    /// `±2σ` draw, never a Gaussian — [`OscillatorDraw::Gaussian`] is
    /// now available for environments that want the real thing).
    pub oscillator: OscillatorDraw,
}

impl TopologyConfig {
    /// A config for `antennas.len()` nodes with default propagation.
    pub fn new(antennas: Vec<usize>) -> Self {
        TopologyConfig {
            antennas,
            path_loss: PathLossModel::default(),
            budget: LinkBudget::default(),
            oscillator: OscillatorDraw::DEFAULT_UNIFORM,
        }
    }
}

/// A built topology: the medium plus the placement that produced it.
#[derive(Debug)]
pub struct Topology {
    /// The wired medium.
    pub medium: Medium,
    /// Node ids in the same order as `config.antennas`.
    pub nodes: Vec<NodeId>,
    /// The drawn locations per node.
    pub placements: Vec<Location>,
}

/// Draws a placement on `testbed` and wires links through the
/// environment's hooks: placement assignment
/// ([`ChannelEnvironment::assign_placements`] — the paper's shuffle by
/// default), one oscillator draw per node, then one loss draw (plus one
/// fading draw for every materialized link) per pair `(i, j)`, `i < j`
/// ascending — a fixed consumption order, so topologies are a pure
/// function of `(environment, testbed, antennas, seed, rng state)`.
///
/// Link storage is **sparse**: when the environment sets
/// [`link_floor_dbm`](ChannelEnvironment::link_floor_dbm), candidate
/// pairs come from a [`SpatialGrid`] at
/// [`max_link_range`](ChannelEnvironment::max_link_range) (all pairs
/// when `None`), each candidate gets its loss draw in the same
/// ascending order the dense loop uses, and only links whose received
/// power clears the floor get a fading draw and a slot in the medium.
/// The default `link_floor_dbm() == None` runs the dense all-pairs loop
/// unchanged — bit-for-bit the pre-sparse wiring — and a floor set
/// below every link budget (with no range cutoff) reproduces it
/// exactly too, since the candidate set and draw order coincide.
///
/// `testbed` is passed explicitly (rather than taken from
/// [`ChannelEnvironment::testbed`]) so callers can override the map;
/// resolve it via the environment when no override is wanted.
/// `sample_rate_hz` sets the medium clock (10 MHz for the paper's
/// profile); `seed` makes the medium's noise draw reproducible.
///
/// # Errors
/// [`EnvironmentError::TooManyNodes`] when `testbed` has fewer
/// locations than `antennas.len()` (nothing is drawn from `rng` in
/// that case).
pub fn build_environment_topology(
    env: &dyn ChannelEnvironment,
    testbed: &Testbed,
    antennas: &[usize],
    sample_rate_hz: f64,
    seed: u64,
    rng: &mut dyn RngCore,
) -> Result<Topology, EnvironmentError> {
    let n = antennas.len();
    let placements = env.assign_placements(testbed, n, rng)?;
    let mut medium = Medium::new(sample_rate_hz, seed);
    let nodes: Vec<NodeId> = antennas
        .iter()
        .map(|&ants| {
            let offset = env.oscillator_offset_hz(rng);
            medium.add_node(ants, offset)
        })
        .collect();

    let wire = |i: usize, j: usize, medium: &mut Medium, rng: &mut dyn RngCore| {
        let d = placements[i].pos.distance(&placements[j].pos);
        let nlos = env.link_is_nlos(testbed, &placements[i], &placements[j]);
        let loss = env.sample_loss_db(d, nlos, rng);
        if let Some(floor) = env.link_floor_dbm() {
            if env.received_power_dbm(loss) < floor {
                return; // below the floor: no fading draw, no link
            }
        }
        let amp = env.amplitude_scale(loss);
        let profile = env.delay_profile(nlos);
        let link = MimoLink::sample(antennas[i], antennas[j], amp, &profile, &mut &mut *rng);
        medium.set_link(nodes[i], nodes[j], link);
    };

    match env.link_floor_dbm().and(env.max_link_range()) {
        Some(range) => {
            // Sparse construction: a grid index answers "who is within
            // range of i", ascending — same draw order as the dense
            // loop restricted to the candidate set.
            let points: Vec<Point> = placements.iter().map(|l| l.pos).collect();
            let grid = SpatialGrid::build(&points, range);
            for i in 0..n {
                for j in grid.neighbors_above(i, range) {
                    wire(i, j, &mut medium, rng);
                }
            }
        }
        None => {
            // Dense candidate set (also the floor-only sparse case).
            for i in 0..n {
                for j in (i + 1)..n {
                    wire(i, j, &mut medium, rng);
                }
            }
        }
    }

    Ok(Topology {
        medium,
        nodes,
        placements,
    })
}

/// Draws a placement on the testbed and wires all pairwise links under
/// the paper's indoor world — a thin wrapper over
/// [`build_environment_topology`] with a [`Sigcomm11Indoor`] built from
/// `config`, bit-for-bit identical to the pre-environment
/// implementation. Panics when the testbed is too small (use the
/// environment path for a `Result`).
pub fn build_topology<R: Rng>(
    testbed: &Testbed,
    config: &TopologyConfig,
    sample_rate_hz: f64,
    seed: u64,
    rng: &mut R,
) -> Topology {
    let env = Sigcomm11Indoor {
        path_loss: config.path_loss,
        budget: config.budget,
        oscillator: config.oscillator,
        ..Sigcomm11Indoor::new()
    };
    build_environment_topology(&env, testbed, &config.antennas, sample_rate_hz, seed, rng)
        .unwrap_or_else(|e| {
            panic!(
                "build_topology: cannot place {} nodes on the {}-slot {} testbed: {e}",
                config.antennas.len(),
                testbed.len(),
                env.name()
            )
        })
}

// The parallel sweep engine builds and consumes topologies on scoped
// worker threads; keep the type thread-safe by construction (no interior
// mutability, no shared handles).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Topology>();
    assert_send_sync::<TopologyConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_channel::environment::{OutdoorFreeSpace, RichScatter, SIGCOMM11_INDOOR};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_fully_connected_topology() {
        let tb = Testbed::sigcomm11();
        let cfg = TopologyConfig::new(vec![1, 2, 3, 1]);
        let mut rng = StdRng::seed_from_u64(5);
        let topo = build_topology(&tb, &cfg, 10e6, 5, &mut rng);
        assert_eq!(topo.nodes.len(), 4);
        assert_eq!(topo.placements.len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(
                        topo.medium.link(topo.nodes[i], topo.nodes[j]).is_some(),
                        "missing link {i}->{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn antenna_counts_respected() {
        let tb = Testbed::sigcomm11();
        let cfg = TopologyConfig::new(vec![1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(9);
        let topo = build_topology(&tb, &cfg, 10e6, 9, &mut rng);
        for (i, &ants) in cfg.antennas.iter().enumerate() {
            assert_eq!(topo.medium.node(topo.nodes[i]).n_antennas, ants);
        }
        let l = topo.medium.link(topo.nodes[0], topo.nodes[2]).unwrap();
        assert_eq!(l.n_tx(), 1);
        assert_eq!(l.n_rx(), 3);
    }

    #[test]
    fn different_seeds_different_topologies() {
        let tb = Testbed::sigcomm11();
        let cfg = TopologyConfig::new(vec![1, 1]);
        let t1 = build_topology(&tb, &cfg, 10e6, 1, &mut StdRng::seed_from_u64(1));
        let t2 = build_topology(&tb, &cfg, 10e6, 2, &mut StdRng::seed_from_u64(2));
        let h1 = t1
            .medium
            .link(t1.nodes[0], t1.nodes[1])
            .unwrap()
            .channel_matrix(5, 64);
        let h2 = t2
            .medium
            .link(t2.nodes[0], t2.nodes[1])
            .unwrap()
            .channel_matrix(5, 64);
        assert!(!h1.approx_eq(&h2, 1e-9));
    }

    /// `build_topology` is exactly the default environment: the wrapper
    /// and the explicit [`SIGCOMM11_INDOOR`] path produce bit-identical
    /// placements, offsets and channels at every seed.
    #[test]
    fn wrapper_equals_default_environment_bitwise() {
        let antennas = vec![1, 2, 3, 2];
        let tb = Testbed::sigcomm11();
        for seed in 0..10u64 {
            let cfg = TopologyConfig::new(antennas.clone());
            let a = build_topology(&tb, &cfg, 10e6, seed, &mut StdRng::seed_from_u64(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let b =
                build_environment_topology(&SIGCOMM11_INDOOR, &tb, &antennas, 10e6, seed, &mut rng)
                    .unwrap();
            for i in 0..antennas.len() {
                assert_eq!(
                    a.placements[i].pos.x.to_bits(),
                    b.placements[i].pos.x.to_bits()
                );
                assert_eq!(
                    a.medium.node(a.nodes[i]).oscillator_offset_hz.to_bits(),
                    b.medium.node(b.nodes[i]).oscillator_offset_hz.to_bits()
                );
                for j in 0..antennas.len() {
                    if i == j {
                        continue;
                    }
                    let ha = a
                        .medium
                        .link(a.nodes[i], a.nodes[j])
                        .unwrap()
                        .channel_matrix(7, 64);
                    let hb = b
                        .medium
                        .link(b.nodes[i], b.nodes[j])
                        .unwrap()
                        .channel_matrix(7, 64);
                    assert!(ha.approx_eq(&hb, 0.0), "seed {seed} link {i}->{j}");
                }
            }
        }
    }

    /// Distinct environments on the same seed draw distinct worlds.
    #[test]
    fn environments_change_the_world() {
        let antennas = vec![1, 2];
        let build = |env: &dyn ChannelEnvironment| {
            let tb = env.testbed(antennas.len()).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            build_environment_topology(env, &tb, &antennas, 10e6, 3, &mut rng).unwrap()
        };
        let indoor = build(&SIGCOMM11_INDOOR);
        let outdoor = build(&OutdoorFreeSpace);
        let scatter = build(&RichScatter);
        let h = |t: &Topology| {
            t.medium
                .link(t.nodes[0], t.nodes[1])
                .unwrap()
                .channel_matrix(5, 64)
        };
        assert!(!h(&indoor).approx_eq(&h(&outdoor), 1e-9));
        assert!(!h(&indoor).approx_eq(&h(&scatter), 1e-9));
        // Rich scatter's built links carry more delay taps than the
        // indoor world's — the deeper delay spread survives all the way
        // into the wired medium, not just the profile constant.
        let built_taps = |t: &Topology| {
            t.medium
                .link(t.nodes[0], t.nodes[1])
                .unwrap()
                .pair(0, 0)
                .taps
                .len()
        };
        assert!(
            built_taps(&scatter) > built_taps(&indoor),
            "rich scatter drew {} taps, indoor {}",
            built_taps(&scatter),
            built_taps(&indoor)
        );
    }

    /// An oversized scenario is an error, not a panic, and consumes no
    /// RNG.
    #[test]
    fn oversize_scenario_is_a_clean_error() {
        let antennas = vec![1; 41];
        let tb = Testbed::sigcomm11_extended();
        let mut rng = StdRng::seed_from_u64(0);
        let err = build_environment_topology(&SIGCOMM11_INDOOR, &tb, &antennas, 10e6, 0, &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            EnvironmentError::TooManyNodes {
                requested: 41,
                capacity: 40
            }
        );
        // The RNG was untouched: the next draw equals a fresh stream's.
        use rand::Rng;
        assert_eq!(rng.gen::<u64>(), StdRng::seed_from_u64(0).gen::<u64>());
    }

    #[test]
    fn link_snrs_in_operating_range() {
        // Mean per-antenna SNR (|amplitude|² × unit fading energy) should
        // mostly fall in the paper's experimental range.
        let tb = Testbed::sigcomm11();
        let cfg = TopologyConfig::new(vec![1, 1, 1, 1, 1, 1]);
        let mut in_range = 0;
        let mut total = 0;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = build_topology(&tb, &cfg, 10e6, seed, &mut rng);
            for i in 0..6 {
                for j in (i + 1)..6 {
                    let amp = topo
                        .medium
                        .link(topo.nodes[i], topo.nodes[j])
                        .unwrap()
                        .amplitude();
                    let snr_db = 20.0 * amp.log10();
                    total += 1;
                    if (0.0..50.0).contains(&snr_db) {
                        in_range += 1;
                    }
                }
            }
        }
        assert!(
            in_range as f64 / total as f64 > 0.85,
            "only {in_range}/{total} links in range"
        );
    }

    /// The indoor world with a received-power floor bolted on — the
    /// test double for the sparse≡dense identity contract.
    struct FlooredIndoor {
        floor_dbm: f64,
        max_range: Option<f64>,
    }

    impl ChannelEnvironment for FlooredIndoor {
        fn name(&self) -> &str {
            "floored_indoor"
        }
        fn capacity(&self) -> usize {
            SIGCOMM11_INDOOR.capacity()
        }
        fn testbed(&self, n: usize) -> Result<Testbed, EnvironmentError> {
            SIGCOMM11_INDOOR.testbed(n)
        }
        fn sample_loss_db(&self, d: f64, nlos: bool, rng: &mut dyn RngCore) -> f64 {
            SIGCOMM11_INDOOR.sample_loss_db(d, nlos, rng)
        }
        fn amplitude_scale(&self, loss_db: f64) -> f64 {
            SIGCOMM11_INDOOR.amplitude_scale(loss_db)
        }
        fn oscillator_offset_hz(&self, rng: &mut dyn RngCore) -> f64 {
            SIGCOMM11_INDOOR.oscillator_offset_hz(rng)
        }
        fn link_floor_dbm(&self) -> Option<f64> {
            Some(self.floor_dbm)
        }
        fn max_link_range(&self) -> Option<f64> {
            self.max_range
        }
    }

    /// With the floor set below every conceivable link budget (and no
    /// range cutoff), the sparse path visits the same candidates in the
    /// same order and draws identically — topologies are bit-for-bit
    /// the dense world's.
    #[test]
    fn floor_below_every_budget_is_dense_bitwise() {
        let antennas = vec![1, 2, 3, 2, 1, 2];
        let tb = Testbed::sigcomm11();
        let sparse_env = FlooredIndoor {
            floor_dbm: -1e9,
            max_range: None,
        };
        for seed in 0..8u64 {
            let mut ra = StdRng::seed_from_u64(seed);
            let mut rb = StdRng::seed_from_u64(seed);
            let dense =
                build_environment_topology(&SIGCOMM11_INDOOR, &tb, &antennas, 10e6, seed, &mut ra)
                    .unwrap();
            let sparse =
                build_environment_topology(&sparse_env, &tb, &antennas, 10e6, seed, &mut rb)
                    .unwrap();
            for i in 0..antennas.len() {
                assert_eq!(
                    dense.placements[i].pos.x.to_bits(),
                    sparse.placements[i].pos.x.to_bits()
                );
                for j in 0..antennas.len() {
                    if i == j {
                        continue;
                    }
                    let hd = dense
                        .medium
                        .link(dense.nodes[i], dense.nodes[j])
                        .unwrap()
                        .channel_matrix(11, 64);
                    let hs = sparse
                        .medium
                        .link(sparse.nodes[i], sparse.nodes[j])
                        .unwrap()
                        .channel_matrix(11, 64);
                    assert!(hd.approx_eq(&hs, 0.0), "seed {seed} link {i}->{j}");
                }
            }
            // Both paths consumed the RNG identically.
            use rand::Rng;
            assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
        }
    }

    /// A high floor prunes links — and every skipped link costs exactly
    /// one loss draw (no fading), keeping the stream deterministic.
    #[test]
    fn floor_prunes_far_links_but_keeps_near_ones() {
        let antennas = vec![1; 12];
        let tb = Testbed::sigcomm11();
        // 12 dBm tx - ~55 dB near-field loss keeps only short links.
        let env = FlooredIndoor {
            floor_dbm: -68.0,
            max_range: None,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let topo = build_environment_topology(&env, &tb, &antennas, 10e6, 2, &mut rng).unwrap();
        let n_links = count_links(&topo);
        assert!(n_links < 12 * 11 / 2, "floor pruned nothing: {n_links}");
        // Determinism: same seed, same sparse world.
        let mut rng2 = StdRng::seed_from_u64(2);
        let topo2 = build_environment_topology(&env, &tb, &antennas, 10e6, 2, &mut rng2).unwrap();
        assert_eq!(n_links, count_links(&topo2));
    }

    /// The multi-cell city world builds a genuinely sparse medium: every
    /// station keeps its own AP, almost nobody keeps a link across town.
    #[test]
    fn multi_cell_topology_is_sparse_with_cells_intact() {
        use nplus_channel::environment::MULTI_CELL;
        let n = 64; // 8 cells of 1 AP + 7 stations
        let antennas: Vec<usize> = (0..n).map(|i| if i % 8 == 0 { 4 } else { 1 }).collect();
        let tb = MULTI_CELL.testbed(n).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let topo =
            build_environment_topology(&MULTI_CELL, &tb, &antennas, 10e6, 7, &mut rng).unwrap();
        let n_links = count_links(&topo);
        assert!(
            n_links < n * (n - 1) / 4,
            "city world is not sparse: {n_links} of {} pairs",
            n * (n - 1) / 2
        );
        // Almost every station hears its own AP (a rare deep-shadowed
        // station is honestly disconnected — the engine skips it).
        let mut heard = 0;
        let mut stations = 0;
        for cell in 0..n / 8 {
            let ap = topo.nodes[cell * 8];
            for j in 1..8 {
                stations += 1;
                if topo.medium.link(topo.nodes[cell * 8 + j], ap).is_some() {
                    heard += 1;
                }
            }
        }
        assert!(
            heard * 10 >= stations * 9,
            "only {heard}/{stations} stations hear their AP"
        );
        // And some cross-cell interference survives the floor.
        let mut cross = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if i / 8 != j / 8 && topo.medium.link(topo.nodes[i], topo.nodes[j]).is_some() {
                    cross += 1;
                }
            }
        }
        assert!(cross > 0, "no cross-cell links at all");
    }

    fn count_links(topo: &Topology) -> usize {
        let n = topo.nodes.len();
        let mut count = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if topo.medium.link(topo.nodes[i], topo.nodes[j]).is_some() {
                    count += 1;
                }
            }
        }
        count
    }

    /// The new environments keep link SNRs in an operable band too.
    #[test]
    fn new_environment_snrs_in_operating_range() {
        for env in [&OutdoorFreeSpace as &dyn ChannelEnvironment, &RichScatter] {
            let antennas = vec![1; 8];
            let tb = env.testbed(8).unwrap();
            let mut in_range = 0;
            let mut total = 0;
            for seed in 0..10u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let topo =
                    build_environment_topology(env, &tb, &antennas, 10e6, seed, &mut rng).unwrap();
                for i in 0..8 {
                    for j in (i + 1)..8 {
                        let amp = topo
                            .medium
                            .link(topo.nodes[i], topo.nodes[j])
                            .unwrap()
                            .amplitude();
                        let snr_db = 20.0 * amp.log10();
                        total += 1;
                        if (0.0..50.0).contains(&snr_db) {
                            in_range += 1;
                        }
                    }
                }
            }
            assert!(
                in_range as f64 / total as f64 > 0.8,
                "{}: only {in_range}/{total} links in range",
                env.name()
            );
        }
    }
}
