//! # nplus-medium
//!
//! Sample-level wireless medium simulator for the `nplus` workspace — the
//! reproduction of *"Random Access Heterogeneous MIMO Networks"*
//! (SIGCOMM 2011).
//!
//! The paper's prototype runs on USRP2 software radios; this crate is the
//! substitute for the radios and the air: nodes attach with antenna counts
//! and oscillator offsets, pairwise MIMO channels are installed (always
//! reciprocal), transmissions are scheduled at absolute sample times, and
//! any node can capture what its antennas observe — the superposition of
//! all concurrent transmissions convolved through their channels, rotated
//! by CFO, plus calibrated receiver noise.
//!
//! Everything is deterministic under a seed, so every figure the bench
//! harness regenerates is reproducible.

#![forbid(unsafe_code)]

pub mod chancache;
pub mod medium;
pub mod node;
pub mod topology;

pub use chancache::ChannelCache;
pub use medium::{any_transmission_overlaps, Medium, Transmission};
pub use node::{NodeId, NodeInfo};
pub use topology::{build_environment_topology, build_topology, Topology, TopologyConfig};
