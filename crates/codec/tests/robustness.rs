//! Hostile-input suite: recordings are untrusted bytes, and `decode`
//! must return a typed [`DecodeError`] — never panic, never
//! over-allocate from attacker-declared counts — for every truncation,
//! corruption, wrong-magic and future-version input.

mod common;

use common::record_sweep;
use nplus_codec::{DecodeError, Event, Recording, MAGIC, VERSION};
use proptest::prelude::*;

/// One small, real recording to mutate (nplus on pairs:2 exercises
/// every frame kind: contentions, joins, rounds).
fn valid_bytes() -> Vec<u8> {
    let r = record_sweep("pairs:2", "sigcomm11", &["nplus"], 1, 4);
    r.bytes.into_iter().next().expect("one recording")
}

/// Every strict prefix fails with a typed error — a recording cut off
/// at any byte is detected (the end frame makes clean-looking cuts at
/// frame boundaries detectable too).
#[test]
fn every_truncation_is_detected() {
    let bytes = valid_bytes();
    assert!(Recording::decode(&bytes).is_ok());
    for len in 0..bytes.len() {
        let err = Recording::decode(&bytes[..len]).expect_err("strict prefix must not decode");
        match err {
            DecodeError::BadMagic
            | DecodeError::Truncated { .. }
            | DecodeError::MissingEnd
            | DecodeError::Corrupt { .. } => {}
            other => panic!("prefix of {len} bytes gave unexpected error {other:?}"),
        }
    }
}

/// Flipping any single byte never panics; it either still decodes (a
/// value changed in place) or reports a typed error.
#[test]
fn single_byte_flips_never_panic() {
    let bytes = valid_bytes();
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0xFF;
        let _ = Recording::decode(&mutated);
    }
}

/// Wrong magic is the first check — even on otherwise valid bytes.
#[test]
fn bad_magic_is_rejected() {
    let mut bytes = valid_bytes();
    bytes[0] ^= 0x20;
    assert_eq!(Recording::decode(&bytes), Err(DecodeError::BadMagic));
    assert_eq!(Recording::decode(b""), Err(DecodeError::BadMagic));
    assert_eq!(Recording::decode(b"NPLUSRE"), Err(DecodeError::BadMagic));
}

/// A future format version is refused up front with the version it
/// saw, not mis-parsed as v1.
#[test]
fn future_version_is_refused() {
    let mut bytes = valid_bytes();
    let v2 = (VERSION + 1).to_le_bytes();
    bytes[MAGIC.len()..MAGIC.len() + 2].copy_from_slice(&v2);
    assert_eq!(
        Recording::decode(&bytes),
        Err(DecodeError::UnsupportedVersion(VERSION + 1))
    );
}

/// Bytes after the end frame are an error, not silently ignored.
#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = valid_bytes();
    let offset = bytes.len();
    bytes.push(0);
    assert_eq!(
        Recording::decode(&bytes),
        Err(DecodeError::TrailingBytes { offset })
    );
}

/// The end frame's declared tallies must match the frames actually
/// decoded — a spliced or doctored stream is caught.
#[test]
fn end_count_mismatch_is_detected() {
    let bytes = valid_bytes();
    // The file ends with the end frame's three count varints; the
    // recording is small, so each count fits one varint byte and the
    // last byte is the round count.
    let mut mutated = bytes.clone();
    let last = mutated.len() - 1;
    assert!(mutated[last] < 0x7F, "round count fits one varint byte");
    mutated[last] += 1;
    match Recording::decode(&mutated) {
        Err(DecodeError::CountMismatch {
            what: "round",
            declared,
            actual,
        }) => assert_eq!(declared, actual + 1),
        other => panic!("expected round-count mismatch, got {other:?}"),
    }
}

/// A stream that simply stops before the end frame (a crashed writer)
/// reports `MissingEnd`, distinct from a mid-frame cut.
#[test]
fn missing_end_frame_is_detected() {
    let rec = Recording::decode(&valid_bytes()).expect("valid bytes decode");
    let headless = Recording {
        header: rec.header,
        events: Vec::new(),
    };
    let encoded = headless.encode().expect("empty recording encodes");
    // The end frame of an empty recording is exactly 4 bytes: the tag
    // and three zero counts.
    let cut = &encoded[..encoded.len() - 4];
    assert_eq!(Recording::decode(cut), Err(DecodeError::MissingEnd));
}

/// Errors carry absolute byte offsets into the input.
#[test]
fn truncation_errors_report_absolute_offsets() {
    let bytes = valid_bytes();
    let err = Recording::decode(&bytes[..bytes.len() / 2]).expect_err("prefix must not decode");
    if let DecodeError::Truncated { offset, .. } = err {
        assert!(offset <= bytes.len() / 2, "offset {offset} inside input");
        assert!(offset > MAGIC.len(), "offset {offset} past the magic");
    }
}

/// Hostile headers cannot force large allocations: a declared
/// `n_flows` is only believed once the bytes for every flow's bits
/// are actually present.
#[test]
fn declared_counts_do_not_allocate_ahead_of_bytes() {
    let rec = Recording::decode(&valid_bytes()).expect("valid bytes decode");
    let mut huge = Recording {
        header: rec.header,
        events: Vec::new(),
    };
    huge.header.n_flows = usize::MAX / 16;
    let mut bytes = huge.encode().expect("header-only recording encodes");
    // Swap the end frame for a hand-built round frame (tag, then zero
    // varints for delta, body_symbols and duration_samples) so the
    // decoder has to face the declared flow count.
    bytes.truncate(bytes.len() - 4);
    bytes.extend_from_slice(&[0x03, 0x00, 0x00, 0x00]);
    // Decoding must fail fast on the first missing flow-bits bytes
    // rather than trying to reserve n_flows slots up front.
    match Recording::decode(&bytes) {
        Err(DecodeError::Truncated { .. }) => {}
        other => panic!("expected truncation, got {other:?}"),
    }
}

/// Encoding rejects a non-monotone event stream instead of producing
/// bytes that cannot round-trip.
#[test]
fn encode_rejects_non_monotone_rounds() {
    let rec = Recording::decode(&valid_bytes()).expect("valid bytes decode");
    let rounds: Vec<Event> = rec
        .events
        .iter()
        .filter(|e| matches!(e, Event::Round(_)))
        .cloned()
        .collect();
    assert!(rounds.len() >= 2, "enough rounds to reverse");
    let mut reversed = rec.clone();
    reversed.events = rounds.into_iter().rev().collect();
    assert!(matches!(
        reversed.encode(),
        Err(nplus_codec::EncodeError::NonMonotoneRound { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Recording::decode(&bytes);
    }

    /// Arbitrary bytes behind a valid magic+version prefix never panic
    /// the header and frame decoders either.
    #[test]
    fn arbitrary_frames_never_panic(tail in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut bytes = Vec::from(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&tail);
        let _ = Recording::decode(&bytes);
    }
}
