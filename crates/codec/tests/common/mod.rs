//! Shared helper for the codec integration suites: run a sweep from a
//! spec string with one [`RecordingObserver`] per (policy, seed), the
//! way the `sweep` bin's `--record` does, and keep the live results
//! alongside the encoded bytes for bit-for-bit comparison.

#![allow(dead_code)]

use nplus::prelude::*;
use nplus_codec::{RecordingContext, RecordingObserver};
use nplus_testkit::parse_spec;

/// One recorded sweep: the encoded recordings in seed-major,
/// policy-within-seed order, plus everything the live run produced.
pub struct Recorded {
    /// The resolved spec (for canonical-key and re-run comparisons).
    pub spec: SweepSpec,
    /// The spec string the sweep was built from.
    pub spec_str: String,
    /// Encoded recordings, `bytes[seed_index * n_policies + policy_index]`.
    pub bytes: Vec<Vec<u8>>,
    /// The live per-seed results the observed runs produced.
    pub live: Vec<SeedResults>,
    /// Live statistics from an independent, unobserved `try_run`.
    pub live_stats: Vec<SweepStats>,
    /// Resolved policy names, in job order.
    pub names: Vec<String>,
    /// Flows in the scenario.
    pub n_flows: usize,
}

/// Records `n_seeds` x `policies` runs of `spec_str` in `env` and
/// returns the encoded recordings next to the live results.
pub fn record_sweep(
    spec_str: &str,
    env: &str,
    policies: &[&str],
    n_seeds: u64,
    rounds: usize,
) -> Recorded {
    let environment = environment_from_name(env).expect("known environment");
    let parsed = parse_spec(spec_str, environment.capacity()).expect("valid spec");
    let traffic = parsed.traffic.unwrap_or_default();
    let n_flows = parsed.scenario.flows.len();
    let mut spec = SweepSpec::new(parsed.scenario)
        .rounds(rounds)
        .seed_count(n_seeds)
        .traffic(traffic)
        .environment_named(env)
        .expect("known environment");
    for name in policies {
        spec = spec.policy_named(name).expect("known policy");
    }
    let names = spec.policy_names();
    let seeds = spec.seed_list().to_vec();

    let mut bytes = Vec::new();
    let mut live = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let mut recorders: Vec<RecordingObserver<Vec<u8>>> = (0..names.len())
            .map(|p| {
                RecordingObserver::new(
                    Vec::new(),
                    RecordingContext {
                        scenario: spec_str.to_string(),
                        traffic: traffic.spec_string(),
                        mobility: MobilityModel::Static.spec_string(),
                        seed_index: i,
                        n_seeds: seeds.len(),
                        policy_index: p,
                        n_policies: names.len(),
                    },
                )
            })
            .collect();
        let mut taps: Vec<&mut dyn RoundObserver> = recorders
            .iter_mut()
            .map(|r| r as &mut dyn RoundObserver)
            .collect();
        let results = spec
            .try_run_seed_observed(seed, &mut taps)
            .expect("sweep runs");
        drop(taps);
        for rec in recorders {
            bytes.push(rec.finish().expect("in-memory sink never fails"));
        }
        live.push(results);
    }
    let live_stats = spec.try_run().expect("sweep runs");
    Recorded {
        spec,
        spec_str: spec_str.to_string(),
        bytes,
        live,
        live_stats,
        names,
        n_flows,
    }
}

/// Asserts two floats are bitwise-identical (the recording contract —
/// stricter than `==`, which would pass `-0.0 == 0.0`).
pub fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
}

/// Asserts two run results are bitwise-identical in every float.
pub fn assert_run_bitwise(a: &RunResult, b: &RunResult, what: &str) {
    assert_bits(a.total_mbps, b.total_mbps, &format!("{what}: total_mbps"));
    assert_bits(a.mean_dof, b.mean_dof, &format!("{what}: mean_dof"));
    assert_eq!(
        a.per_flow_mbps.len(),
        b.per_flow_mbps.len(),
        "{what}: flows"
    );
    for (f, (x, y)) in a.per_flow_mbps.iter().zip(&b.per_flow_mbps).enumerate() {
        assert_bits(*x, *y, &format!("{what}: per_flow_mbps[{f}]"));
    }
}

/// Asserts two stat sets are bitwise-identical in every float.
pub fn assert_stats_bitwise(a: &[SweepStats], b: &[SweepStats]) {
    assert_eq!(a.len(), b.len(), "policy count");
    for (sa, sb) in a.iter().zip(b) {
        let w = &sa.policy;
        assert_eq!(sa.policy, sb.policy);
        assert_eq!(sa.n_runs, sb.n_runs, "{w}: n_runs");
        assert_bits(
            sa.mean_total_mbps,
            sb.mean_total_mbps,
            &format!("{w}: mean_total_mbps"),
        );
        assert_bits(
            sa.ci95_total_mbps,
            sb.ci95_total_mbps,
            &format!("{w}: ci95_total_mbps"),
        );
        assert_bits(sa.mean_dof, sb.mean_dof, &format!("{w}: mean_dof"));
        assert_bits(
            sa.mean_fairness,
            sb.mean_fairness,
            &format!("{w}: mean_fairness"),
        );
        assert_eq!(
            sa.mean_per_flow_mbps.len(),
            sb.mean_per_flow_mbps.len(),
            "{w}: flows"
        );
        for (f, (x, y)) in sa
            .mean_per_flow_mbps
            .iter()
            .zip(&sb.mean_per_flow_mbps)
            .enumerate()
        {
            assert_bits(*x, *y, &format!("{w}: mean_per_flow_mbps[{f}]"));
        }
    }
}
