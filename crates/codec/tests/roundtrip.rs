//! Roundtrip and replay-equivalence suite: encode→decode is
//! bitwise-exact, replay reproduces live results bit-for-bit for every
//! built-in policy across environments and generated families
//! (including sparse `city:` worlds and non-saturated traffic), and
//! the diff localizes an injected divergence to its exact round and
//! field.

mod common;

use common::{assert_run_bitwise, assert_stats_bitwise, record_sweep};
use nplus_codec::{diff_recordings, replay_run, replay_sweep, Event, Recording};
use proptest::prelude::*;

/// Every built-in policy, in the order the suites sweep them.
const ALL_POLICIES: [&str; 5] = ["dot11n", "beamforming", "nplus", "oracle", "greedy_join"];

/// The acceptance bar: all five policies across two environments —
/// recordings decode back to the exact bytes, per-run replay matches
/// the live `RunResult` bit-for-bit, and sweep replay reproduces the
/// independently computed `SweepStats` bit-for-bit.
#[test]
fn replay_reproduces_sweeps_for_all_policies_across_environments() {
    for env in ["sigcomm11", "outdoor"] {
        let r = record_sweep("three_pairs", env, &ALL_POLICIES, 3, 5);
        let recs: Vec<Recording> = r
            .bytes
            .iter()
            .map(|b| Recording::decode(b).expect("recorded bytes decode"))
            .collect();
        for (bytes, rec) in r.bytes.iter().zip(&recs) {
            assert_eq!(&rec.encode().expect("decoded recording re-encodes"), bytes);
            assert_eq!(diff_recordings(rec, rec), None);
        }
        for (i, rec) in recs.iter().enumerate() {
            let seed_index = i / ALL_POLICIES.len();
            let policy_index = i % ALL_POLICIES.len();
            assert_eq!(rec.header.policy, r.names[policy_index]);
            assert_eq!(rec.header.environment, env);
            let live = &r.live[seed_index].per_policy[policy_index];
            assert_run_bitwise(
                &replay_run(rec),
                live,
                &format!("{env}/{}/seed{seed_index}", rec.header.policy),
            );
        }
        let sweep = replay_sweep(&recs).expect("complete grid replays");
        assert_eq!(sweep.policies, r.names);
        assert_eq!(sweep.environment, env);
        assert_stats_bitwise(&sweep.stats, &r.live_stats);
    }
}

/// `replay_sweep` is input-order independent: a shuffled grid
/// reassembles to the same stats because positions are recorded in
/// each header.
#[test]
fn replay_sweep_is_input_order_independent() {
    let r = record_sweep("pairs:2", "sigcomm11", &["dot11n", "nplus"], 2, 4);
    let mut recs: Vec<Recording> = r
        .bytes
        .iter()
        .map(|b| Recording::decode(b).expect("recorded bytes decode"))
        .collect();
    recs.reverse();
    let sweep = replay_sweep(&recs).expect("shuffled grid replays");
    assert_stats_bitwise(&sweep.stats, &r.live_stats);
}

/// The header carries the full run identity: spec labels, grid
/// position, seed, and the spec's canonical v3 key.
#[test]
fn header_carries_run_identity() {
    let r = record_sweep(
        "load:poisson:0.5/pairs:2",
        "outdoor",
        &["nplus", "oracle"],
        2,
        3,
    );
    let key = r.spec.canonical().ok().map(|c| c.key());
    assert!(key.is_some(), "registry-named spec canonicalizes");
    for (i, bytes) in r.bytes.iter().enumerate() {
        let h = Recording::decode(bytes)
            .expect("recorded bytes decode")
            .header;
        assert_eq!(h.scenario, "load:poisson:0.5/pairs:2");
        assert_eq!(h.environment, "outdoor");
        assert_eq!(h.traffic, "poisson:0.5");
        assert_eq!(h.mobility, "static");
        assert_eq!(h.canonical_key, key);
        assert_eq!(h.seed_index, i / 2);
        assert_eq!(h.policy_index, i % 2);
        assert_eq!(h.n_seeds, 2);
        assert_eq!(h.n_policies, 2);
        assert_eq!(h.rounds, 3);
        assert_eq!(h.seed, r.spec.seed_list()[i / 2]);
        assert_eq!(h.policy, r.names[i % 2]);
    }
}

/// A one-ulp flip injected into one round's `flow_bits` is localized
/// to exactly that round and field.
#[test]
fn diff_localizes_injected_divergence() {
    let r = record_sweep("pairs:2", "sigcomm11", &["nplus"], 1, 4);
    let a = Recording::decode(&r.bytes[0]).expect("recorded bytes decode");
    let mut b = a.clone();
    let mut hit = false;
    for ev in &mut b.events {
        if let Event::Round(re) = ev {
            if re.round == 2 {
                re.flow_bits[1] = f64::from_bits(re.flow_bits[1].to_bits() ^ 1);
                hit = true;
                break;
            }
        }
    }
    assert!(hit, "round 2 exists");
    let d = diff_recordings(&a, &b).expect("divergence found");
    assert_eq!(d.round, Some(2));
    assert_eq!(d.field, "flow_bits[1]");
    assert_ne!(
        d.a, d.b,
        "rendered values show the ulp step: {} vs {}",
        d.a, d.b
    );
}

/// Recordings of different seeds diverge at the header (seed field),
/// not deep in the stream.
#[test]
fn diff_reports_seed_mismatch_in_header() {
    let r = record_sweep("pairs:2", "sigcomm11", &["nplus"], 2, 3);
    let a = Recording::decode(&r.bytes[0]).expect("recorded bytes decode");
    let b = Recording::decode(&r.bytes[1]).expect("recorded bytes decode");
    let d = diff_recordings(&a, &b).expect("different seeds diverge");
    assert_eq!(d.location, "header");
    assert_eq!(d.field, "seed");
}

/// Spec families the generator produces, the sparse `city:` world and
/// non-saturated traffic models included.
fn family() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("pairs:2"),
        Just("pairs:3"),
        Just("hidden:3"),
        Just("asym:2"),
        Just("multi_ap:2x2"),
        Just("city:8"),
        Just("load:poisson:0.5/pairs:2"),
        Just("load:bursty:3x9/hidden:3"),
    ]
}

proptest! {
    // Each case runs a real (small) sweep; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any (family, environment, policy): the recorded bytes decode
    /// to a recording that re-encodes to the same bytes, and replaying
    /// it reproduces the live result bit-for-bit.
    #[test]
    fn encode_decode_replay_bitwise(
        spec in family(),
        env_i in 0usize..2,
        policy_i in 0usize..ALL_POLICIES.len(),
        rounds in 1usize..5,
    ) {
        let env = ["sigcomm11", "outdoor"][env_i];
        let policy = ALL_POLICIES[policy_i];
        let r = record_sweep(spec, env, &[policy], 1, rounds);
        let rec = Recording::decode(&r.bytes[0]).expect("recorded bytes decode");
        prop_assert_eq!(&rec.encode().expect("re-encodes"), &r.bytes[0]);
        prop_assert_eq!(diff_recordings(&rec, &rec), None);
        let live = &r.live[0].per_policy[0];
        let replayed = replay_run(&rec);
        prop_assert_eq!(replayed.total_mbps.to_bits(), live.total_mbps.to_bits());
        prop_assert_eq!(replayed.mean_dof.to_bits(), live.mean_dof.to_bits());
        for (a, b) in replayed.per_flow_mbps.iter().zip(&live.per_flow_mbps) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
