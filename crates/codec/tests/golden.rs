//! Version-compat suite: checked-in v1 recordings must decode, byte
//! for byte, forever.
//!
//! The `testdata/` files were produced by `regenerate_golden_files`
//! (run it with `--ignored` after an intentional engine change; it
//! prints the new pin constants). The pinned tests below decode the
//! checked-in bytes and assert exact header fields, frame tallies and
//! replayed float bit patterns — if a future codec change breaks any
//! of them, it broke compatibility with every recording in the wild.

mod common;

use common::record_sweep;
use nplus_codec::{replay_run, Recording};

/// Golden recording A: the paper's Fig. 3 scenario, indoor, n+.
const GOLDEN_A: &str = "three_pairs-nplus-v1.rec";
/// Golden recording B: generated pairs under Poisson traffic, outdoor,
/// greedy join.
const GOLDEN_B: &str = "poisson-pairs2-greedy_join-v1.rec";

fn testdata(name: &str) -> String {
    format!("{}/tests/testdata/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn load(name: &str) -> (Vec<u8>, Recording) {
    let bytes = std::fs::read(testdata(name)).expect("golden file checked in");
    let rec = Recording::decode(&bytes).expect("golden v1 bytes decode");
    (bytes, rec)
}

fn tally(rec: &Recording) -> (usize, usize, usize) {
    let mut c = (0, 0, 0);
    for ev in &rec.events {
        match ev {
            nplus_codec::Event::Contention(_) => c.0 += 1,
            nplus_codec::Event::Join(_) => c.1 += 1,
            nplus_codec::Event::Round(_) => c.2 += 1,
        }
    }
    c
}

/// Regenerates the golden files and prints the pin constants. Run
/// explicitly after an intentional format or engine change:
///
/// ```text
/// cargo test -p nplus-codec --test golden -- --ignored --nocapture
/// ```
#[test]
#[ignore = "rewrites testdata; run explicitly after intentional changes"]
fn regenerate_golden_files() {
    std::fs::create_dir_all(testdata("")).expect("testdata dir");
    for (name, spec, env, policy) in [
        (GOLDEN_A, "three_pairs", "sigcomm11", "nplus"),
        (
            GOLDEN_B,
            "load:poisson:0.5/pairs:2",
            "outdoor",
            "greedy_join",
        ),
    ] {
        let r = record_sweep(spec, env, &[policy], 1, 4);
        let bytes = &r.bytes[0];
        std::fs::write(testdata(name), bytes).expect("write golden");
        let rec = Recording::decode(bytes).expect("fresh recording decodes");
        let (contentions, joins, rounds) = tally(&rec);
        let first_bits = rec
            .round_events()
            .next()
            .map(|ev| ev.flow_bits[0].to_bits())
            .expect("at least one round");
        let replayed = replay_run(&rec);
        println!("{name}: len={}", bytes.len());
        println!(
            "  seed={} key={:?}",
            rec.header.seed, rec.header.canonical_key
        );
        println!("  contentions={contentions} joins={joins} rounds={rounds}");
        println!("  first flow_bits[0] bits=0x{first_bits:016x}");
        println!(
            "  bandwidth_hz bits=0x{:016x}",
            rec.header.bandwidth_hz.to_bits()
        );
        println!(
            "  replayed total_mbps bits=0x{:016x}",
            replayed.total_mbps.to_bits()
        );
        println!(
            "  replayed mean_dof bits=0x{:016x}",
            replayed.mean_dof.to_bits()
        );
    }
}

/// Golden A decodes bitwise-stable: exact header, exact tallies, exact
/// float bit patterns, and re-encoding reproduces the file bytes.
#[test]
fn golden_three_pairs_nplus_decodes_forever() {
    let (bytes, rec) = load(GOLDEN_A);
    assert_eq!(bytes.len(), PIN_A.len);
    let h = &rec.header;
    assert_eq!(h.policy, "nplus");
    assert_eq!(h.environment, "sigcomm11");
    assert_eq!(h.scenario, "three_pairs");
    assert_eq!(h.traffic, "saturated");
    assert_eq!(h.mobility, "static");
    assert_eq!(h.canonical_key, Some(PIN_A.key));
    assert_eq!(h.seed, 0);
    assert_eq!((h.seed_index, h.n_seeds), (0, 1));
    assert_eq!((h.policy_index, h.n_policies), (0, 1));
    assert_eq!(h.rounds, 4);
    assert_eq!(h.n_flows, 3);
    assert_eq!(h.bandwidth_hz.to_bits(), PIN_A.bandwidth_bits);
    assert_eq!(tally(&rec), PIN_A.tally);
    assert_eq!(
        rec.round_events().next().expect("rounds present").flow_bits[0].to_bits(),
        PIN_A.first_flow_bits
    );
    let replayed = replay_run(&rec);
    assert_eq!(replayed.total_mbps.to_bits(), PIN_A.total_bits);
    assert_eq!(replayed.mean_dof.to_bits(), PIN_A.dof_bits);
    assert_eq!(rec.encode().expect("golden re-encodes"), bytes);
}

/// Golden B: a generated family under non-saturated traffic in a
/// second environment pins the traffic/mobility spec strings too.
#[test]
fn golden_poisson_pairs_greedy_join_decodes_forever() {
    let (bytes, rec) = load(GOLDEN_B);
    assert_eq!(bytes.len(), PIN_B.len);
    let h = &rec.header;
    assert_eq!(h.policy, "greedy_join");
    assert_eq!(h.environment, "outdoor");
    assert_eq!(h.scenario, "load:poisson:0.5/pairs:2");
    assert_eq!(h.traffic, "poisson:0.5");
    assert_eq!(h.mobility, "static");
    assert_eq!(h.canonical_key, Some(PIN_B.key));
    assert_eq!(h.rounds, 4);
    assert_eq!(h.n_flows, 2);
    assert_eq!(h.bandwidth_hz.to_bits(), PIN_B.bandwidth_bits);
    assert_eq!(tally(&rec), PIN_B.tally);
    assert_eq!(
        rec.round_events().next().expect("rounds present").flow_bits[0].to_bits(),
        PIN_B.first_flow_bits
    );
    let replayed = replay_run(&rec);
    assert_eq!(replayed.total_mbps.to_bits(), PIN_B.total_bits);
    assert_eq!(replayed.mean_dof.to_bits(), PIN_B.dof_bits);
    assert_eq!(rec.encode().expect("golden re-encodes"), bytes);
}

/// The exact values `regenerate_golden_files` printed when the files
/// were committed — the compatibility contract.
struct Pin {
    len: usize,
    key: u128,
    tally: (usize, usize, usize),
    first_flow_bits: u64,
    bandwidth_bits: u64,
    total_bits: u64,
    dof_bits: u64,
}

const PIN_A: Pin = Pin {
    len: 254,
    key: 303207695431258923014817671699035725350,
    tally: (5, 1, 4),
    first_flow_bits: 0x0000000000000000,
    bandwidth_bits: 0x416312d000000000,
    total_bits: 0x402a2e8ba2e8ba2e,
    dof_bits: 0x4000000000000000,
};

const PIN_B: Pin = Pin {
    len: 291,
    key: 72734148893089274575782315734519982835,
    tally: (7, 3, 4),
    first_flow_bits: 0x40a2c99cde41bbf3,
    bandwidth_bits: 0x416312d000000000,
    total_bits: 0x4023b0bdce187156,
    dof_bits: 0x4000208208208208,
};
