//! Exporters over decoded recordings: the shared sweep JSON report,
//! Prometheus-style text metrics, and per-run time-series JSON.
//!
//! [`sweep_report_json`] is *the* report layout — the `sweep` bin and
//! the `replay` bin both call it, which is what makes "replayed stats
//! are byte-identical to the live `--json` output" checkable with a
//! plain `diff`. The metrics and time-series forms are derived views
//! for dashboards: replayed per-run results and per-round series,
//! labeled with the header's run identity.

use crate::json::{fmt_f64, json_f64, Json};
use crate::recording::Recording;
use crate::replay::replay_run;
use nplus::SweepStats;

/// Renders sweep statistics as the fixed-layout JSON report
/// (handwritten — the workspace carries no serialization dependency).
/// Field order and float precision are fixed so serial/parallel and
/// live/replayed runs can be compared with a plain `diff`; every float
/// goes through [`fmt_f64`], so no `NaN`/`inf` token can reach the
/// output. `traffic` and `mobility` take the models' canonical spec
/// strings (what recordings store verbatim).
pub fn sweep_report_json(
    scenario: &str,
    environment: &str,
    traffic: &str,
    mobility: &str,
    n_seeds: u64,
    rounds: usize,
    stats: &[SweepStats],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scenario\": \"{scenario}\",\n"));
    out.push_str(&format!("  \"environment\": \"{environment}\",\n"));
    out.push_str(&format!("  \"traffic\": \"{traffic}\",\n"));
    out.push_str(&format!("  \"mobility\": \"{mobility}\",\n"));
    out.push_str(&format!("  \"seeds\": {n_seeds},\n"));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str("  \"protocols\": [\n");
    for (i, s) in stats.iter().enumerate() {
        let flows: Vec<String> = s.mean_per_flow_mbps.iter().map(|&v| fmt_f64(v)).collect();
        out.push_str(&format!(
            "    {{\"protocol\": \"{}\", \"runs\": {}, \"mean_total_mbps\": {}, \"ci95_total_mbps\": {}, \"mean_dof\": {}, \"mean_fairness\": {}, \"mean_per_flow_mbps\": [{}]}}{}\n",
            s.policy,
            s.n_runs,
            fmt_f64(s.mean_total_mbps),
            fmt_f64(s.ci95_total_mbps),
            fmt_f64(s.mean_dof),
            fmt_f64(s.mean_fairness),
            flows.join(", "),
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The per-run numbers one recording exports: the replayed result plus
/// frame tallies.
struct RunExport {
    total_mbps: f64,
    mean_dof: f64,
    airtime_s: f64,
    rounds: u64,
    contentions: u64,
    joins: u64,
    joins_accepted: u64,
}

fn run_export(rec: &Recording) -> RunExport {
    let result = replay_run(rec);
    let mut rounds = 0u64;
    let mut contentions = 0u64;
    let mut joins = 0u64;
    let mut joins_accepted = 0u64;
    let mut total_samples = 0u64;
    for event in &rec.events {
        match event {
            crate::recording::Event::Contention(_) => contentions += 1,
            crate::recording::Event::Join(ev) => {
                joins += 1;
                joins_accepted += u64::from(ev.accepted);
            }
            crate::recording::Event::Round(ev) => {
                rounds += 1;
                total_samples += ev.duration_samples;
            }
        }
    }
    RunExport {
        total_mbps: result.total_mbps,
        mean_dof: result.mean_dof,
        airtime_s: total_samples as f64 / rec.header.bandwidth_hz,
        rounds,
        contentions,
        joins,
        joins_accepted,
    }
}

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders one recording's label set, shared by every metric family.
fn labels(rec: &Recording) -> String {
    let h = &rec.header;
    format!(
        "{{policy=\"{}\",environment=\"{}\",scenario=\"{}\",seed=\"{}\"}}",
        escape_label(&h.policy),
        escape_label(&h.environment),
        escape_label(&h.scenario),
        h.seed,
    )
}

/// Renders Prometheus-style text metrics over the recordings: one
/// sample per run per family, labeled with the run's identity
/// (policy, environment, scenario, seed). Values come from replay —
/// bit-for-bit the live run's results — plus frame tallies. Output
/// order follows the input order, so sorted inputs give reproducible,
/// diff-able exports.
pub fn prometheus_metrics(recordings: &[Recording]) -> String {
    /// One metric family: name, Prometheus type, help text, and the
    /// per-run value renderer.
    type Family = (
        &'static str,
        &'static str,
        &'static str,
        Box<dyn Fn(&RunExport) -> String>,
    );
    let exports: Vec<(String, RunExport)> = recordings
        .iter()
        .map(|rec| (labels(rec), run_export(rec)))
        .collect();
    let families: [Family; 7] = [
        (
            "nplus_run_total_mbps",
            "gauge",
            "Total goodput of one recorded run, Mb/s (replayed, bit-exact).",
            Box::new(|e| format!("{}", e.total_mbps)),
        ),
        (
            "nplus_run_mean_dof",
            "gauge",
            "Mean degrees of freedom in use during data transfer.",
            Box::new(|e| format!("{}", e.mean_dof)),
        ),
        (
            "nplus_run_airtime_seconds",
            "gauge",
            "Total airtime the run consumed, seconds.",
            Box::new(|e| format!("{}", e.airtime_s)),
        ),
        (
            "nplus_run_rounds_total",
            "counter",
            "Rounds the run simulated.",
            Box::new(|e| format!("{}", e.rounds)),
        ),
        (
            "nplus_run_contentions_total",
            "counter",
            "Medium acquisitions (primary, join and scheduled).",
            Box::new(|e| format!("{}", e.contentions)),
        ),
        (
            "nplus_run_joins_total",
            "counter",
            "Secondary-contention join attempts.",
            Box::new(|e| format!("{}", e.joins)),
        ),
        (
            "nplus_run_joins_accepted_total",
            "counter",
            "Join attempts that went through.",
            Box::new(|e| format!("{}", e.joins_accepted)),
        ),
    ];
    let mut out = String::new();
    for (name, kind, help, value) in &families {
        out.push_str(&format!("# HELP {name} {help}\n"));
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for (labels, export) in &exports {
            out.push_str(&format!("{name}{labels} {}\n", value(export)));
        }
    }
    out
}

/// A `u64` as JSON, exact through [`Json::Int`] where it fits (every
/// realistic count does); values beyond `i64` fall back to the closest
/// float rather than failing the whole export.
fn json_u64(v: u64) -> Json {
    match i64::try_from(v) {
        Ok(i) => Json::Int(i),
        Err(_) => json_f64(v as f64),
    }
}

/// Renders per-run time series as JSON: one series per recording —
/// labeled with policy, environment, scenario, traffic, mobility and
/// seed — carrying parallel per-round arrays (round index, delivered
/// bits summed over flows, airtime samples, active stream count).
/// Derived views for dashboards; the recording itself stays the source
/// of truth.
pub fn time_series_json(recordings: &[Recording]) -> Json {
    let series: Vec<Json> = recordings
        .iter()
        .map(|rec| {
            let h = &rec.header;
            let mut rounds = Vec::new();
            let mut total_bits = Vec::new();
            let mut duration_samples = Vec::new();
            let mut active_streams = Vec::new();
            for ev in rec.round_events() {
                rounds.push(json_u64(ev.round as u64));
                total_bits.push(json_f64(ev.flow_bits.iter().sum()));
                duration_samples.push(json_u64(ev.duration_samples));
                active_streams.push(json_u64(ev.streams.len() as u64));
            }
            Json::Obj(vec![
                ("policy".to_string(), Json::Str(h.policy.clone())),
                ("environment".to_string(), Json::Str(h.environment.clone())),
                ("scenario".to_string(), Json::Str(h.scenario.clone())),
                ("traffic".to_string(), Json::Str(h.traffic.clone())),
                ("mobility".to_string(), Json::Str(h.mobility.clone())),
                ("seed".to_string(), json_u64(h.seed)),
                ("seed_index".to_string(), json_u64(h.seed_index as u64)),
                ("round".to_string(), Json::Arr(rounds)),
                ("total_bits".to_string(), Json::Arr(total_bits)),
                ("duration_samples".to_string(), Json::Arr(duration_samples)),
                ("active_streams".to_string(), Json::Arr(active_streams)),
            ])
        })
        .collect();
    Json::Obj(vec![("series".to_string(), Json::Arr(series))])
}
