//! # nplus-codec — the round-event recording layer
//!
//! The `observer_contract` suite proves a run is exactly
//! reconstructible from its [`RoundObserver`](nplus::RoundObserver)
//! event stream; this crate makes that stream a first-class artifact.
//! A recording is a compact, versioned binary file (DESIGN.md §12):
//! a header carrying the run's identity — policy, environment,
//! scenario spec, seeds, rounds, bandwidth, and the `CanonicalSpec` v3
//! key — followed by delta-encoded, varint-packed event frames whose
//! only floats (`flow_bits`) travel as raw IEEE-754 bits, so decode is
//! **bitwise-exact**.
//!
//! On top of the codec:
//!
//! * [`RecordingObserver`] implements `RoundObserver` and streams
//!   frames to any `io::Write` — wire it into a sweep with
//!   `SweepSpec::try_run_seed_observed` (the `sweep` bin's
//!   `--record <dir>` does exactly that, one file per (policy, seed)).
//! * [`replay_run`] / [`replay_sweep`] fold recordings back through
//!   `GoodputAccumulator` and `aggregate_results`, reproducing
//!   `RunResult` / `SweepStats` **bit-for-bit** without re-simulating
//!   (the `replay` bin).
//! * [`diff_recordings`] reports the first frame, round and field
//!   where two recordings diverge — the determinism-debugging view the
//!   bit-identity suites lack (`replay diff a.rec b.rec`).
//! * [`export`] renders Prometheus-style metrics and per-run
//!   time-series JSON, and owns the fixed-layout sweep report the
//!   `sweep` and `replay` bins share.
//!
//! Recordings are untrusted input: every decode path returns a typed
//! [`DecodeError`] — truncation, corruption, bad magic, a future
//! version — and never panics (the analyzer enforces the same
//! deterministic, panic-free profile on this crate as on the core and
//! the serving surface). The [`json`] module is the workspace's one
//! dependency-free JSON implementation, re-exported by `nplus-server`
//! for its wire protocol.

#![forbid(unsafe_code)]

pub mod diff;
pub mod error;
pub mod export;
pub mod json;
pub mod observer;
pub mod recording;
pub mod replay;
mod wire;

pub use diff::{diff_recordings, Divergence};
pub use error::{DecodeError, EncodeError};
pub use observer::{RecordingContext, RecordingObserver};
pub use recording::{Event, Recording, RoundEvent, RunHeader, MAGIC, VERSION};
pub use replay::{replay_run, replay_sweep, ReplayError, ReplayedSweep};
