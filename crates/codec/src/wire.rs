//! Wire primitives: LEB128 varints, length-prefixed strings, and raw
//! `f64` bit transport, plus the bounds-checked [`Reader`] every decode
//! path goes through.
//!
//! Integers travel as unsigned LEB128 (7 payload bits per byte, high
//! bit continues) — round indices, counts and node ids are small, so
//! most fit one byte. Floats travel as their raw IEEE-754 bits, little
//! endian: the recording contract is *bitwise* exactness, and a decimal
//! round-trip would be both slower and lossy at the edges. Strings are
//! varint length + UTF-8 bytes.

use crate::error::DecodeError;

/// Appends `v` as an unsigned LEB128 varint (1–10 bytes).
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a varint-length-prefixed UTF-8 string.
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends the raw little-endian IEEE-754 bits of `v`.
pub(crate) fn put_f64_bits(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A bounds-checked cursor over untrusted recording bytes. Every read
/// is `get`-based — out-of-range access is a typed
/// [`DecodeError::Truncated`], never a slice panic.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset (what decode errors report).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Whether the input is exhausted.
    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Reads one byte.
    pub(crate) fn byte(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(DecodeError::Truncated {
                offset: self.pos,
                what,
            }),
        }
    }

    /// Reads exactly `n` bytes.
    pub(crate) fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Corrupt {
            offset: self.pos,
            what,
        })?;
        match self.buf.get(self.pos..end) {
            Some(s) => {
                self.pos = end;
                Ok(s)
            }
            None => Err(DecodeError::Truncated {
                offset: self.pos,
                what,
            }),
        }
    }

    /// Reads an unsigned LEB128 varint. Rejects encodings longer than
    /// 10 bytes and values overflowing `u64`.
    pub(crate) fn varint(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte(what)?;
            let payload = u64::from(byte & 0x7f);
            if shift >= 63 && (shift > 63 || payload > 1) {
                return Err(DecodeError::Corrupt {
                    offset: start,
                    what,
                });
            }
            v |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// [`varint`](Reader::varint) narrowed to `usize`.
    pub(crate) fn varint_usize(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        let start = self.pos;
        let v = self.varint(what)?;
        usize::try_from(v).map_err(|_| DecodeError::Corrupt {
            offset: start,
            what,
        })
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub(crate) fn string(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let len = self.varint_usize(what)?;
        let start = self.pos;
        let bytes = self.bytes(len, what)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(DecodeError::Corrupt {
                offset: start,
                what,
            }),
        }
    }

    /// Reads raw little-endian IEEE-754 `f64` bits. Every bit pattern
    /// is a valid `f64`, so this cannot reject — only truncate.
    pub(crate) fn f64_bits(&mut self, what: &'static str) -> Result<f64, DecodeError> {
        let bytes = self.bytes(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// Reads a little-endian `u128` (the canonical-key width).
    pub(crate) fn u128_le(&mut self, what: &'static str) -> Result<u128, DecodeError> {
        let bytes = self.bytes(16, what)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(bytes);
        Ok(u128::from_le_bytes(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_roundtrip_across_the_range() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint("v").unwrap(), v, "roundtrip {v}");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn overlong_and_overflowing_varints_are_corrupt() {
        // 11 continuation bytes: too long for u64.
        let overlong = [0x80u8; 10]
            .iter()
            .chain(&[0x01])
            .copied()
            .collect::<Vec<_>>();
        let mut r = Reader::new(&overlong);
        assert!(matches!(
            r.varint("v"),
            Err(DecodeError::Corrupt { offset: 0, .. })
        ));
        // 10 bytes whose top payload overflows 64 bits.
        let overflow = [0xffu8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut r = Reader::new(&overflow);
        assert!(matches!(r.varint("v"), Err(DecodeError::Corrupt { .. })));
        // u64::MAX itself still decodes (top byte payload = 1).
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert_eq!(Reader::new(&buf).varint("v").unwrap(), u64::MAX);
    }

    #[test]
    fn truncated_reads_report_offset_and_field() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut r = Reader::new(&buf[..3]);
        let err = r.string("policy").unwrap_err();
        assert_eq!(
            err,
            DecodeError::Truncated {
                offset: 1,
                what: "policy"
            }
        );
        let mut r = Reader::new(&[]);
        assert!(matches!(r.varint("x"), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn f64_bits_are_exact_for_every_pattern() {
        for bits in [0u64, 1, f64::NAN.to_bits(), (-0.0f64).to_bits(), u64::MAX] {
            let mut buf = Vec::new();
            put_f64_bits(&mut buf, f64::from_bits(bits));
            let v = Reader::new(&buf).f64_bits("b").unwrap();
            assert_eq!(v.to_bits(), bits);
        }
    }

    #[test]
    fn invalid_utf8_strings_are_corrupt() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.string("s"),
            Err(DecodeError::Corrupt { offset: 1, .. })
        ));
    }
}
