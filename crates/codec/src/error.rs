//! Typed error surface of the recording codec.
//!
//! Recordings are untrusted input the moment they touch a disk: the
//! decoder must map every malformed byte sequence — truncation,
//! bit rot, a future format version, plain garbage — to a typed error,
//! never a panic (the analyzer holds `nplus-codec` to the same
//! panic-free profile as the serving surface). Offsets are byte
//! positions into the input, so a corrupt recording can be inspected
//! with nothing fancier than a hex dump.

use std::fmt;

/// Why a byte sequence is not a decodable recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input does not start with the recording magic — not a
    /// recording at all (or an empty/too-short file).
    BadMagic,
    /// The header names a format version this decoder does not speak.
    /// Recordings are forward-opaque: a v2 writer may change frame
    /// layouts, so a v1 reader must refuse rather than misread.
    UnsupportedVersion(u16),
    /// The input ended in the middle of the named field.
    Truncated {
        /// Byte offset where the read began.
        offset: usize,
        /// The field being read.
        what: &'static str,
    },
    /// The named field decoded to an impossible value (bad tag, bad
    /// UTF-8, an overlong varint, an out-of-range enum byte…).
    Corrupt {
        /// Byte offset where the read began.
        offset: usize,
        /// The field being read.
        what: &'static str,
    },
    /// The input ended cleanly on a frame boundary but without the end
    /// frame — a recording cut short by a crash or a partial copy.
    MissingEnd,
    /// The end frame's declared event counts disagree with the frames
    /// actually present.
    CountMismatch {
        /// Which counter disagreed (`"contention"`, `"join"`,
        /// `"round"`).
        what: &'static str,
        /// Count the end frame declared.
        declared: u64,
        /// Frames actually decoded.
        actual: u64,
    },
    /// Bytes follow the end frame.
    TrailingBytes {
        /// Offset of the first trailing byte.
        offset: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a recording (bad magic)"),
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported recording version {v}")
            }
            DecodeError::Truncated { offset, what } => {
                write!(f, "truncated while reading {what} at byte {offset}")
            }
            DecodeError::Corrupt { offset, what } => {
                write!(f, "corrupt {what} at byte {offset}")
            }
            DecodeError::MissingEnd => write!(f, "recording has no end frame (cut short?)"),
            DecodeError::CountMismatch {
                what,
                declared,
                actual,
            } => write!(
                f,
                "end frame declares {declared} {what} frames but {actual} are present"
            ),
            DecodeError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after the end frame at byte {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why an in-memory [`Recording`](crate::Recording) cannot be encoded.
///
/// The engine can never produce these (its round indices are monotone
/// and its `flow_bits` slices are sized by the scenario), but
/// `Recording` is a plain public struct, so hand-built values must fail
/// typed rather than panic or write undecodable bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An event's round index is smaller than its predecessor's — the
    /// delta encoding requires monotone rounds.
    NonMonotoneRound {
        /// Index of the offending event.
        index: usize,
        /// Its round.
        round: usize,
        /// The preceding event's (larger) round.
        prev: usize,
    },
    /// A round event carries a `flow_bits` vector whose length differs
    /// from the header's flow count.
    FlowCountMismatch {
        /// Index of the offending event.
        index: usize,
        /// The header's flow count.
        expected: usize,
        /// The event's `flow_bits` length.
        found: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::NonMonotoneRound { index, round, prev } => write!(
                f,
                "event {index} has round {round} after round {prev}: rounds must be monotone"
            ),
            EncodeError::FlowCountMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "event {index} carries {found} flow_bits but the header declares {expected} flows"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}
