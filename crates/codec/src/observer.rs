//! [`RecordingObserver`]: the `RoundObserver` that streams frames to
//! any `io::Write` as the engine narrates them.
//!
//! The observer is passive by contract — it only listens — so wiring
//! it into a sweep cannot change results; what it writes is exactly
//! the stream [`Recording::decode`](crate::Recording::decode) reads
//! back. Frames are serialized into a reused scratch buffer and handed
//! to the sink in one `write_all` per event, so a pre-sized `Vec<u8>`
//! sink stays allocation-quiet after the first few rounds (perf_sweep
//! §7 measures the overhead).

use crate::recording::{
    encode_contention, encode_end, encode_header, encode_join, encode_round_parts, FrameCounts,
    RunHeader,
};
use nplus::{ContentionRecord, JoinRecord, RoundObserver, RoundRecord, RunMeta};
use std::io;

/// The sweep-level context a recording needs but `RunMeta` cannot
/// know: the spec labels and where in the (policy × seed) grid this
/// run sits. The per-run fields (policy name, seed, environment,
/// canonical key, dimensions) arrive with `on_run_start` instead.
#[derive(Debug, Clone, Default)]
pub struct RecordingContext {
    /// The scenario spec label (e.g. `"random:7"`, `"city:256"`).
    pub scenario: String,
    /// The traffic model's canonical spec string.
    pub traffic: String,
    /// The mobility model's canonical spec string.
    pub mobility: String,
    /// Position of this run's seed in the sweep's seed list.
    pub seed_index: usize,
    /// How many seeds the sweep runs.
    pub n_seeds: usize,
    /// Position of this run's policy in the sweep's policy list.
    pub policy_index: usize,
    /// How many policies the sweep compares.
    pub n_policies: usize,
}

/// A `RoundObserver` that encodes the event stream to `sink` as v1
/// recording bytes: header at `on_run_start`, one frame per event,
/// end frame at [`finish`](RecordingObserver::finish).
///
/// One observer records one run. I/O errors (and misuse, like a second
/// `on_run_start`) are stashed rather than panicked — the observer
/// goes quiet and `finish` surfaces the first error, keeping the
/// engine's hot loop free of fallible paths.
#[derive(Debug)]
pub struct RecordingObserver<W: io::Write> {
    sink: W,
    context: RecordingContext,
    scratch: Vec<u8>,
    counts: FrameCounts,
    last_round: u64,
    started: bool,
    error: Option<io::Error>,
}

impl<W: io::Write> RecordingObserver<W> {
    /// A recorder writing to `sink`, labeled with `context`.
    pub fn new(sink: W, context: RecordingContext) -> Self {
        RecordingObserver {
            sink,
            context,
            scratch: Vec::new(),
            counts: FrameCounts::default(),
            last_round: 0,
            started: false,
            error: None,
        }
    }

    /// Writes the end frame and returns the sink.
    ///
    /// # Errors
    /// The first I/O error the sink raised (frames after it were
    /// dropped), or `InvalidData` when the observer was misused
    /// (reused across runs, or fed a regressing round index).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.error {
            return Err(err);
        }
        self.scratch.clear();
        encode_end(&mut self.scratch, &self.counts);
        self.sink.write_all(&self.scratch)?;
        Ok(self.sink)
    }

    /// Computes the round delta, enforcing monotonicity.
    fn delta(&mut self, round: usize) -> Option<u64> {
        let round = round as u64;
        if round < self.last_round {
            self.error = Some(io::Error::new(
                io::ErrorKind::InvalidData,
                "round index regressed: recordings require monotone rounds",
            ));
            return None;
        }
        let delta = round - self.last_round;
        self.last_round = round;
        Some(delta)
    }

    /// Hands the scratch buffer to the sink, stashing the first error.
    fn flush_scratch(&mut self) {
        if let Err(err) = self.sink.write_all(&self.scratch) {
            self.error = Some(err);
        }
    }
}

impl<W: io::Write> RoundObserver for RecordingObserver<W> {
    fn on_run_start(&mut self, meta: &RunMeta) {
        if self.error.is_some() {
            return;
        }
        if self.started {
            self.error = Some(io::Error::new(
                io::ErrorKind::InvalidData,
                "RecordingObserver records one run; use a fresh observer per run",
            ));
            return;
        }
        self.started = true;
        let (seed, environment, canonical_key) = match &meta.identity {
            Some(id) => (id.seed, id.environment.clone(), id.canonical_key),
            None => (0, String::new(), None),
        };
        let header = RunHeader {
            policy: meta.policy.to_string(),
            environment,
            scenario: self.context.scenario.clone(),
            traffic: self.context.traffic.clone(),
            mobility: self.context.mobility.clone(),
            canonical_key,
            seed,
            seed_index: self.context.seed_index,
            n_seeds: self.context.n_seeds,
            policy_index: self.context.policy_index,
            n_policies: self.context.n_policies,
            rounds: meta.rounds,
            n_flows: meta.n_flows,
            bandwidth_hz: meta.bandwidth_hz,
        };
        self.scratch.clear();
        encode_header(&mut self.scratch, &header);
        self.flush_scratch();
    }

    fn on_contention(&mut self, ev: &ContentionRecord) {
        if self.error.is_some() {
            return;
        }
        let Some(delta) = self.delta(ev.round) else {
            return;
        };
        self.scratch.clear();
        encode_contention(&mut self.scratch, delta, ev, &mut self.counts);
        self.flush_scratch();
    }

    fn on_join(&mut self, ev: &JoinRecord) {
        if self.error.is_some() {
            return;
        }
        let Some(delta) = self.delta(ev.round) else {
            return;
        };
        self.scratch.clear();
        encode_join(&mut self.scratch, delta, ev, &mut self.counts);
        self.flush_scratch();
    }

    fn on_round_end(&mut self, ev: &RoundRecord) {
        if self.error.is_some() {
            return;
        }
        let Some(delta) = self.delta(ev.round) else {
            return;
        };
        self.scratch.clear();
        encode_round_parts(
            &mut self.scratch,
            delta,
            ev.body_symbols,
            ev.duration_samples,
            ev.flow_bits,
            ev.streams,
            &mut self.counts,
        );
        self.flush_scratch();
    }
}
