//! Offline replay: recordings back through `GoodputAccumulator`.
//!
//! The observer contract already proves a `RunResult` is exactly
//! reconstructible from the event stream; replay is that proof applied
//! to *decoded* streams. [`replay_run`] folds one recording's round
//! frames through the same accumulator the live engine uses — same
//! operations, same order, on bitwise-identical inputs — so the result
//! is bit-for-bit the live run's. [`replay_sweep`] reassembles a full
//! (policy × seed) grid of recordings into seed-ordered results and
//! hands them to `nplus::aggregate_results`, reproducing the live
//! `SweepStats` without a single simulated round.

use crate::recording::Recording;
use nplus::{
    aggregate_results, GoodputAccumulator, RoundObserver, RoundRecord, RunIdentity, RunMeta,
    RunResult, SeedResults, SweepStats,
};
use std::fmt;

/// Reproduces the recorded run's [`RunResult`] from its round frames
/// alone — bit-for-bit the live result, by the observer contract.
pub fn replay_run(rec: &Recording) -> RunResult {
    let mut acc = GoodputAccumulator::new();
    let meta = RunMeta {
        policy: &rec.header.policy,
        n_flows: rec.header.n_flows,
        rounds: rec.header.rounds,
        bandwidth_hz: rec.header.bandwidth_hz,
        identity: Some(RunIdentity {
            seed: rec.header.seed,
            environment: rec.header.environment.clone(),
            canonical_key: rec.header.canonical_key,
        }),
    };
    acc.on_run_start(&meta);
    for ev in rec.round_events() {
        acc.on_round_end(&RoundRecord {
            round: ev.round,
            body_symbols: ev.body_symbols,
            duration_samples: ev.duration_samples,
            flow_bits: &ev.flow_bits,
            streams: &ev.streams,
        });
    }
    acc.finish()
}

/// A sweep reassembled from recordings: the shared identity fields and
/// the aggregated per-policy statistics.
#[derive(Debug, Clone)]
pub struct ReplayedSweep {
    /// The scenario spec label every recording agreed on.
    pub scenario: String,
    /// The environment registry name.
    pub environment: String,
    /// The traffic model's spec string.
    pub traffic: String,
    /// The mobility model's spec string.
    pub mobility: String,
    /// The policy names, in sweep policy order.
    pub policies: Vec<String>,
    /// Seeds the sweep covered, in seed-index order.
    pub seeds: Vec<u64>,
    /// Rounds per run.
    pub rounds: usize,
    /// Aggregated statistics, bit-for-bit those of the live sweep.
    pub stats: Vec<SweepStats>,
}

/// Why a set of recordings does not assemble into one sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// No recordings were given.
    Empty,
    /// Two recordings disagree on a sweep-level header field.
    Inconsistent {
        /// The disagreeing header field.
        field: &'static str,
        /// The first recording's value.
        first: String,
        /// The offending recording's value.
        other: String,
    },
    /// A recording's grid position exceeds its declared dimensions.
    IndexOutOfRange {
        /// `"seed_index"` or `"policy_index"`.
        what: &'static str,
        /// The out-of-range index.
        index: usize,
        /// The declared dimension.
        limit: usize,
    },
    /// Two recordings claim the same (policy, seed) cell.
    Duplicate {
        /// The cell's policy index.
        policy_index: usize,
        /// The cell's seed index.
        seed_index: usize,
    },
    /// A (policy, seed) cell has no recording.
    Missing {
        /// The cell's policy index.
        policy_index: usize,
        /// The cell's seed index.
        seed_index: usize,
    },
    /// The declared (policy × seed) grid size disagrees with the
    /// number of recordings given — checked before anything is
    /// allocated, so a corrupt header cannot request an absurd grid.
    GridSize {
        /// Policies the headers declare.
        n_policies: usize,
        /// Seeds the headers declare.
        n_seeds: usize,
        /// Recordings actually given.
        recordings: usize,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Empty => write!(f, "no recordings to replay"),
            ReplayError::Inconsistent {
                field,
                first,
                other,
            } => write!(f, "recordings disagree on {field}: {first:?} vs {other:?}"),
            ReplayError::IndexOutOfRange { what, index, limit } => {
                write!(f, "{what} {index} out of range (sweep declares {limit})")
            }
            ReplayError::Duplicate {
                policy_index,
                seed_index,
            } => write!(
                f,
                "two recordings for policy {policy_index}, seed index {seed_index}"
            ),
            ReplayError::Missing {
                policy_index,
                seed_index,
            } => write!(
                f,
                "no recording for policy {policy_index}, seed index {seed_index}"
            ),
            ReplayError::GridSize {
                n_policies,
                n_seeds,
                recordings,
            } => write!(
                f,
                "sweep declares a {n_policies} x {n_seeds} grid but {recordings} \
                 recordings were given"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Reassembles one sweep from its per-(policy, seed) recordings and
/// aggregates statistics **bit-for-bit identical** to the live
/// `SweepSpec::try_run` output: runs are replayed with [`replay_run`],
/// ordered seed-major / policy-within-seed by their recorded grid
/// positions, and folded through the same `aggregate_results` the live
/// path uses. Input order does not matter.
///
/// # Errors
/// [`ReplayError`] when the recordings are not exactly one complete,
/// mutually consistent (policy × seed) grid.
pub fn replay_sweep(recordings: &[Recording]) -> Result<ReplayedSweep, ReplayError> {
    let Some(first) = recordings.first() else {
        return Err(ReplayError::Empty);
    };
    let fh = &first.header;
    let n_policies = fh.n_policies;
    let n_seeds = fh.n_seeds;
    if n_policies.checked_mul(n_seeds) != Some(recordings.len()) {
        return Err(ReplayError::GridSize {
            n_policies,
            n_seeds,
            recordings: recordings.len(),
        });
    }

    let mut policy_names: Vec<Option<String>> = vec![None; n_policies];
    let mut seeds: Vec<Option<u64>> = vec![None; n_seeds];
    let mut grid: Vec<Option<RunResult>> = vec![None; n_policies * n_seeds];

    for rec in recordings {
        let h = &rec.header;
        check("scenario", &fh.scenario, &h.scenario)?;
        check("environment", &fh.environment, &h.environment)?;
        check("traffic", &fh.traffic, &h.traffic)?;
        check("mobility", &fh.mobility, &h.mobility)?;
        check_num("n_seeds", fh.n_seeds as u64, h.n_seeds as u64)?;
        check_num("n_policies", fh.n_policies as u64, h.n_policies as u64)?;
        check_num("rounds", fh.rounds as u64, h.rounds as u64)?;
        check_num("n_flows", fh.n_flows as u64, h.n_flows as u64)?;
        check_num(
            "bandwidth_hz",
            fh.bandwidth_hz.to_bits(),
            h.bandwidth_hz.to_bits(),
        )?;
        if h.policy_index >= n_policies {
            return Err(ReplayError::IndexOutOfRange {
                what: "policy_index",
                index: h.policy_index,
                limit: n_policies,
            });
        }
        if h.seed_index >= n_seeds {
            return Err(ReplayError::IndexOutOfRange {
                what: "seed_index",
                index: h.seed_index,
                limit: n_seeds,
            });
        }
        match &policy_names[h.policy_index] {
            None => policy_names[h.policy_index] = Some(h.policy.clone()),
            Some(name) if *name != h.policy => {
                return Err(ReplayError::Inconsistent {
                    field: "policy name",
                    first: name.clone(),
                    other: h.policy.clone(),
                })
            }
            Some(_) => {}
        }
        match seeds[h.seed_index] {
            None => seeds[h.seed_index] = Some(h.seed),
            Some(seed) if seed != h.seed => {
                return Err(ReplayError::Inconsistent {
                    field: "seed",
                    first: seed.to_string(),
                    other: h.seed.to_string(),
                })
            }
            Some(_) => {}
        }
        let cell = &mut grid[h.seed_index * n_policies + h.policy_index];
        if cell.is_some() {
            return Err(ReplayError::Duplicate {
                policy_index: h.policy_index,
                seed_index: h.seed_index,
            });
        }
        *cell = Some(replay_run(rec));
    }

    let mut results: Vec<SeedResults> = Vec::with_capacity(n_seeds);
    for seed_index in 0..n_seeds {
        let mut per_policy = Vec::with_capacity(n_policies);
        for policy_index in 0..n_policies {
            match grid[seed_index * n_policies + policy_index].take() {
                Some(r) => per_policy.push(r),
                None => {
                    return Err(ReplayError::Missing {
                        policy_index,
                        seed_index,
                    })
                }
            }
        }
        let Some(seed) = seeds[seed_index] else {
            // Unreachable: a filled row implies a recorded seed; typed
            // anyway to keep the crate panic-free.
            return Err(ReplayError::Missing {
                policy_index: 0,
                seed_index,
            });
        };
        results.push(SeedResults { seed, per_policy });
    }
    let names: Vec<String> = policy_names
        .into_iter()
        .enumerate()
        .map(|(policy_index, name)| {
            name.ok_or(ReplayError::Missing {
                policy_index,
                seed_index: 0,
            })
        })
        .collect::<Result<_, _>>()?;
    let stats = aggregate_results(fh.n_flows, &names, &results);
    Ok(ReplayedSweep {
        scenario: fh.scenario.clone(),
        environment: fh.environment.clone(),
        traffic: fh.traffic.clone(),
        mobility: fh.mobility.clone(),
        policies: names,
        seeds: seeds.into_iter().flatten().collect(),
        rounds: fh.rounds,
        stats,
    })
}

fn check(field: &'static str, first: &str, other: &str) -> Result<(), ReplayError> {
    if first == other {
        Ok(())
    } else {
        Err(ReplayError::Inconsistent {
            field,
            first: first.to_string(),
            other: other.to_string(),
        })
    }
}

fn check_num<T: PartialEq + fmt::Display>(
    field: &'static str,
    first: T,
    other: T,
) -> Result<(), ReplayError> {
    if first == other {
        Ok(())
    } else {
        Err(ReplayError::Inconsistent {
            field,
            first: first.to_string(),
            other: other.to_string(),
        })
    }
}
