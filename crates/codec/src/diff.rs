//! First-divergence diff between two recordings.
//!
//! The bit-identity suites can say *that* two runs diverged; this
//! module says *where*: the first event (by stream position) and the
//! first field within it where the recordings disagree. Floats are
//! compared by raw bits — the recording's own equality — and rendered
//! with their bit patterns so a one-ulp drift is visible even when the
//! decimal forms print identically.

use crate::recording::{Event, Recording, RoundEvent};
use nplus::{ContentionKind, ContentionRecord, JoinRecord};

/// The first point where two recordings disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Where the disagreement sits: `"header"` or `"event N"` (stream
    /// position, 0-based).
    pub location: String,
    /// The round the diverging event belongs to (`None` for header
    /// fields).
    pub round: Option<usize>,
    /// The disagreeing field (e.g. `"flow_bits[2]"`, `"winner"`).
    pub field: String,
    /// The first recording's value, rendered.
    pub a: String,
    /// The second recording's value, rendered.
    pub b: String,
}

/// Finds the first divergence between two recordings: header fields
/// first (in wire order), then events in stream order, each compared
/// field by field. `None` means the recordings are bitwise-equivalent
/// (same header, same events, floats equal by bits).
pub fn diff_recordings(a: &Recording, b: &Recording) -> Option<Divergence> {
    if let Some(d) = diff_headers(a, b) {
        return Some(d);
    }
    for (index, (ea, eb)) in a.events.iter().zip(b.events.iter()).enumerate() {
        if let Some(d) = diff_events(index, ea, eb) {
            return Some(d);
        }
    }
    if a.events.len() != b.events.len() {
        let index = a.events.len().min(b.events.len());
        let longer = if a.events.len() > b.events.len() {
            &a.events
        } else {
            &b.events
        };
        return Some(Divergence {
            location: format!("event {index}"),
            round: longer.get(index).map(Event::round),
            field: "event count".to_string(),
            a: a.events.len().to_string(),
            b: b.events.len().to_string(),
        });
    }
    None
}

fn diff_headers(a: &Recording, b: &Recording) -> Option<Divergence> {
    let ha = &a.header;
    let hb = &b.header;
    let fields: [(&str, String, String); 14] = [
        ("policy", ha.policy.clone(), hb.policy.clone()),
        (
            "environment",
            ha.environment.clone(),
            hb.environment.clone(),
        ),
        ("scenario", ha.scenario.clone(), hb.scenario.clone()),
        ("traffic", ha.traffic.clone(), hb.traffic.clone()),
        ("mobility", ha.mobility.clone(), hb.mobility.clone()),
        (
            "canonical_key",
            render_key(ha.canonical_key),
            render_key(hb.canonical_key),
        ),
        ("seed", ha.seed.to_string(), hb.seed.to_string()),
        (
            "seed_index",
            ha.seed_index.to_string(),
            hb.seed_index.to_string(),
        ),
        ("n_seeds", ha.n_seeds.to_string(), hb.n_seeds.to_string()),
        (
            "policy_index",
            ha.policy_index.to_string(),
            hb.policy_index.to_string(),
        ),
        (
            "n_policies",
            ha.n_policies.to_string(),
            hb.n_policies.to_string(),
        ),
        ("rounds", ha.rounds.to_string(), hb.rounds.to_string()),
        ("n_flows", ha.n_flows.to_string(), hb.n_flows.to_string()),
        (
            "bandwidth_hz",
            render_f64(ha.bandwidth_hz),
            render_f64(hb.bandwidth_hz),
        ),
    ];
    for (field, va, vb) in fields {
        if va != vb {
            return Some(Divergence {
                location: "header".to_string(),
                round: None,
                field: field.to_string(),
                a: va,
                b: vb,
            });
        }
    }
    None
}

fn diff_events(index: usize, a: &Event, b: &Event) -> Option<Divergence> {
    let at = |round: usize, field: String, va: String, vb: String| {
        Some(Divergence {
            location: format!("event {index}"),
            round: Some(round),
            field,
            a: va,
            b: vb,
        })
    };
    match (a, b) {
        (Event::Contention(ca), Event::Contention(cb)) => diff_contention(index, ca, cb),
        (Event::Join(ja), Event::Join(jb)) => diff_join(index, ja, jb),
        (Event::Round(ra), Event::Round(rb)) => diff_round(index, ra, rb),
        _ => at(
            a.round(),
            "frame kind".to_string(),
            kind_name(a).to_string(),
            kind_name(b).to_string(),
        ),
    }
}

fn kind_name(e: &Event) -> &'static str {
    match e {
        Event::Contention(_) => "contention",
        Event::Join(_) => "join",
        Event::Round(_) => "round",
    }
}

fn contention_kind_name(k: ContentionKind) -> &'static str {
    match k {
        ContentionKind::Primary => "primary",
        ContentionKind::Join => "join",
        ContentionKind::Scheduled => "scheduled",
    }
}

fn diff_contention(index: usize, a: &ContentionRecord, b: &ContentionRecord) -> Option<Divergence> {
    let fields: [(&str, String, String); 5] = [
        ("round", a.round.to_string(), b.round.to_string()),
        (
            "kind",
            contention_kind_name(a.kind).to_string(),
            contention_kind_name(b.kind).to_string(),
        ),
        (
            "n_contenders",
            a.n_contenders.to_string(),
            b.n_contenders.to_string(),
        ),
        ("winner", a.winner.to_string(), b.winner.to_string()),
        ("slots", a.slots.to_string(), b.slots.to_string()),
    ];
    emit(index, a.round, fields.into_iter())
}

fn diff_join(index: usize, a: &JoinRecord, b: &JoinRecord) -> Option<Divergence> {
    let fields: [(&str, String, String); 4] = [
        ("round", a.round.to_string(), b.round.to_string()),
        ("tx", a.tx.to_string(), b.tx.to_string()),
        (
            "n_streams",
            a.n_streams.to_string(),
            b.n_streams.to_string(),
        ),
        ("accepted", a.accepted.to_string(), b.accepted.to_string()),
    ];
    emit(index, a.round, fields.into_iter())
}

fn diff_round(index: usize, a: &RoundEvent, b: &RoundEvent) -> Option<Divergence> {
    let scalar: [(&str, String, String); 3] = [
        ("round", a.round.to_string(), b.round.to_string()),
        (
            "body_symbols",
            a.body_symbols.to_string(),
            b.body_symbols.to_string(),
        ),
        (
            "duration_samples",
            a.duration_samples.to_string(),
            b.duration_samples.to_string(),
        ),
    ];
    if let Some(d) = emit(index, a.round, scalar.into_iter()) {
        return Some(d);
    }
    for (f, (va, vb)) in a.flow_bits.iter().zip(b.flow_bits.iter()).enumerate() {
        if va.to_bits() != vb.to_bits() {
            return divergence(
                index,
                a.round,
                format!("flow_bits[{f}]"),
                render_f64(*va),
                render_f64(*vb),
            );
        }
    }
    if a.flow_bits.len() != b.flow_bits.len() {
        return divergence(
            index,
            a.round,
            "flow_bits length".to_string(),
            a.flow_bits.len().to_string(),
            b.flow_bits.len().to_string(),
        );
    }
    for (s, (sa, sb)) in a.streams.iter().zip(b.streams.iter()).enumerate() {
        let fields: [(String, String, String); 4] = [
            (
                format!("streams[{s}].flow"),
                sa.flow.to_string(),
                sb.flow.to_string(),
            ),
            (
                format!("streams[{s}].tx"),
                sa.tx.to_string(),
                sb.tx.to_string(),
            ),
            (
                format!("streams[{s}].rate"),
                sa.rate.to_string(),
                sb.rate.to_string(),
            ),
            (
                format!("streams[{s}].active_symbols"),
                sa.active_symbols.to_string(),
                sb.active_symbols.to_string(),
            ),
        ];
        for (field, va, vb) in fields {
            if va != vb {
                return divergence(index, a.round, field, va, vb);
            }
        }
    }
    if a.streams.len() != b.streams.len() {
        return divergence(
            index,
            a.round,
            "stream count".to_string(),
            a.streams.len().to_string(),
            b.streams.len().to_string(),
        );
    }
    None
}

fn emit<'a>(
    index: usize,
    round: usize,
    fields: impl Iterator<Item = (&'a str, String, String)>,
) -> Option<Divergence> {
    for (field, va, vb) in fields {
        if va != vb {
            return divergence(index, round, field.to_string(), va, vb);
        }
    }
    None
}

fn divergence(
    index: usize,
    round: usize,
    field: String,
    a: String,
    b: String,
) -> Option<Divergence> {
    Some(Divergence {
        location: format!("event {index}"),
        round: Some(round),
        field,
        a,
        b,
    })
}

fn render_key(key: Option<u128>) -> String {
    match key {
        Some(k) => format!("{k:032x}"),
        None => "none".to_string(),
    }
}

/// Renders a float with its exact bit pattern alongside the decimal
/// form, so bit-level drift survives the print.
fn render_f64(v: f64) -> String {
    format!("{v} (bits 0x{:016x})", v.to_bits())
}
