//! A minimal, dependency-free JSON value: parser and writer.
//!
//! The workspace deliberately carries no serialization dependency, so
//! this ~300-line implementation is the one JSON emitter everything
//! shares: the sweep server's wire protocol (`nplus-server` re-exports
//! this module), the sweep/replay report writers, and the recording
//! exporter. Two properties matter here more than features:
//!
//! * **No panics on untrusted input.** The parser is the first thing a
//!   served request hits; every malformed byte sequence is an `Err`
//!   with an offset, and nesting depth is capped so a hostile payload
//!   cannot blow the stack.
//! * **No `NaN`/`Infinity` ever reaches the output.** JSON has no
//!   literal for them; sweep statistics legitimately produce `NaN`
//!   (undefined fairness, zero-airtime runs), and the writer emits
//!   `null` for every non-finite float — the honest encoding of "this
//!   statistic is undefined".
//!
//! Integers are kept exact through an [`Json::Int`] variant (i64 range
//! — covers every seed/count the protocol carries) rather than routed
//! through `f64`, so large seeds cannot silently alias cache keys.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved (a `Vec`, not
/// a map): writers produce deterministic output and `diff`-able files.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` — also what every non-finite float serializes to.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer token without fractional part, kept exact.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source/insertion order.
    Obj(Vec<(String, Json)>),
}

/// Maximum container nesting the parser accepts.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Looks up a member of an object; `None` for absent keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (exact integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer; `None` for
    /// negative, fractional or non-numeric values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// [`as_u64`](Json::as_u64) narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON (no whitespace). Non-finite floats
    /// become `null`; integers print exactly; `f64` uses the shortest
    /// round-trippable decimal form.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructor for a float member: finite values stay
/// numbers, `NaN`/`Inf` become [`Json::Null`] *as a value* (not just at
/// write time), so comparisons on parsed responses behave.
pub fn json_f64(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

/// One float in the fixed `{:.9}` report layout the sweep/replay JSON
/// reports use; undefined values (`NaN`/`Inf` — e.g. fairness when no
/// run had it defined) become `null`, JSON's only honest spelling of
/// them. The fixed precision is what makes serial/parallel (and
/// live/replayed) reports comparable with a plain `diff`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document from `input` (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
/// A one-line message with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            self.err(&format!("expected {token:?}"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected a string key");
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return self.err("expected ':'");
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect the \uXXXX low
                                // half immediately after.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return self.err("missing low surrogate");
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return self.err("invalid low surrogate");
                                }
                                let cp = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                }
                Some(c) if c < 0x20 => return self.err("control character in string"),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so this is
                    // always a char boundary walk).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    // `rest` is non-empty (peek saw a byte), so a scalar
                    // exists; a typed error keeps the parser panic-free
                    // even if that invariant ever breaks.
                    let Some(c) = s.chars().next() else {
                        return self.err("truncated string");
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly 4 hex digits at the current position, advancing
    /// past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos;
        let end = start + 4;
        if end > self.bytes.len() {
            return self.err("truncated unicode escape");
        }
        let digits = &self.bytes[start..end];
        // Fold the nibbles directly — no str round-trip, no panic path.
        let mut v: u32 = 0;
        for &d in digits {
            let nibble = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return self.err("invalid unicode escape"),
            };
            v = (v << 4) | nibble;
        }
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // The scanned range is ASCII sign/digit/exponent bytes only.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(format!("invalid number {text:?} at byte {start}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "1.5",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"x\"}}",
        ];
        for case in cases {
            let v = parse(case).unwrap_or_else(|e| panic!("{case}: {e}"));
            assert_eq!(v.to_string_compact(), case, "roundtrip {case}");
        }
        // Whitespace tolerated on parse, normalized on write.
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.to_string_compact(), "{\"a\":[1,2]}");
    }

    #[test]
    fn integers_stay_exact_and_large_seeds_do_not_alias() {
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v, Json::Int(9007199254740993));
        assert_eq!(v.as_u64(), Some(9007199254740993));
        assert_eq!(v.to_string_compact(), "9007199254740993");
        // Fractional numbers refuse integer access.
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), Json::Null);
        assert_eq!(json_f64(2.5), Json::Num(2.5));
        let obj = Json::Obj(vec![
            ("ok".to_string(), Json::Num(1.25)),
            ("undefined".to_string(), json_f64(f64::NAN)),
        ]);
        assert_eq!(obj.to_string_compact(), "{\"ok\":1.25,\"undefined\":null}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""a\"b\\c\nd\te\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\teA\u{e9}"));
        // Surrogate pair.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Writer escapes controls and quotes; reparse agrees.
        let original = Json::Str("line\nquote\" back\\ tab\t".to_string());
        let text = original.to_string_compact();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn malformed_input_is_an_err_never_a_panic() {
        for bad in [
            "",
            "nul",
            "tru",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12",
            "\"\\ud800\"",
            "1.2.3",
            "--5",
            "[1]trailing",
            "nan",
            "Infinity",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        // Depth bomb: error, not stack overflow.
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn object_access_helpers() {
        let v = parse("{\"cmd\":\"sweep\",\"seeds\":[1,2],\"deep\":{\"x\":true}}").unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("sweep"));
        assert_eq!(
            v.get("seeds").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("x"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("anything").is_none());
    }
}
