//! The recording format: a versioned header plus delta-encoded,
//! varint-packed event frames (DESIGN.md §12).
//!
//! ```text
//! recording := magic version header frame* end
//! magic     := "NPLUSREC"                     (8 bytes)
//! version   := u16 LE                         (this crate speaks 1)
//! header    := policy environment scenario traffic mobility
//!              key? seed seed_index n_seeds policy_index n_policies
//!              rounds n_flows bandwidth_bits
//! frame     := 0x01 contention | 0x02 join | 0x03 round
//! end       := 0xFF n_contentions n_joins n_rounds
//! ```
//!
//! Round indices are monotone across the whole stream, so every frame
//! stores the *delta* from the previous frame's round; most frames pay
//! one varint byte for it. `flow_bits` are the only floats in the
//! stream and travel as raw little-endian IEEE-754 bits — decode is
//! bitwise-exact by construction, which is what lets replay reproduce
//! `RunResult`s bit-for-bit. The end frame carries the event counts so
//! a recording truncated on a frame boundary is still detected.

use crate::error::{DecodeError, EncodeError};
use crate::wire::{put_f64_bits, put_str, put_varint, Reader};
use nplus::{ContentionKind, ContentionRecord, JoinRecord, StreamRecord};

/// The 8-byte magic every recording starts with.
pub const MAGIC: [u8; 8] = *b"NPLUSREC";

/// The format version this crate writes (and the only one it reads).
pub const VERSION: u16 = 1;

const TAG_CONTENTION: u8 = 0x01;
const TAG_JOIN: u8 = 0x02;
const TAG_ROUND: u8 = 0x03;
const TAG_END: u8 = 0xFF;

/// Everything a recording knows about the run it captured — the
/// decoded header. String fields mirror the sweep spec labels
/// (`traffic`/`mobility` hold the models' canonical `spec_string`
/// forms); `canonical_key` is the sweep's `CanonicalSpec` v3 content
/// key when the spec canonicalizes, so recordings are addressable by
/// the same key as the server's result cache.
#[derive(Debug, Clone, PartialEq)]
pub struct RunHeader {
    /// Registry name of the policy this run simulated.
    pub policy: String,
    /// Registry name of the propagation environment (empty when the
    /// recording was taken outside a sweep and no identity was given).
    pub environment: String,
    /// The scenario spec label (e.g. `"random:7"`, `"city:256"`).
    pub scenario: String,
    /// The traffic model's canonical spec string (e.g. `"saturated"`).
    pub traffic: String,
    /// The mobility model's canonical spec string (e.g. `"static"`).
    pub mobility: String,
    /// The sweep's `CanonicalSpec` v3 key, when known.
    pub canonical_key: Option<u128>,
    /// The job's topology/run seed.
    pub seed: u64,
    /// Position of this seed in the sweep's seed list.
    pub seed_index: usize,
    /// How many seeds the sweep ran.
    pub n_seeds: usize,
    /// Position of this policy in the sweep's policy list.
    pub policy_index: usize,
    /// How many policies the sweep compared.
    pub n_policies: usize,
    /// Rounds the run simulated.
    pub rounds: usize,
    /// Flows in the scenario (the length of every round frame's
    /// `flow_bits`).
    pub n_flows: usize,
    /// Sample clock in Hz, bit-exact (stored as raw f64 bits).
    pub bandwidth_hz: f64,
}

/// One end-of-round settlement, owned (the decoded form of the
/// engine's borrowed `RoundRecord`).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundEvent {
    /// Round index.
    pub round: usize,
    /// Data-body length in OFDM symbols.
    pub body_symbols: usize,
    /// Total airtime the round consumed, in samples.
    pub duration_samples: u64,
    /// Delivered bits per flow, post-settlement (bitwise-exact).
    pub flow_bits: Vec<f64>,
    /// Final per-stream ledger, in planning order.
    pub streams: Vec<StreamRecord>,
}

/// One decoded event frame, in stream order.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A medium acquisition.
    Contention(ContentionRecord),
    /// A secondary-contention join attempt.
    Join(JoinRecord),
    /// An end-of-round settlement.
    Round(RoundEvent),
}

impl Event {
    /// The round index this event belongs to.
    pub fn round(&self) -> usize {
        match self {
            Event::Contention(ev) => ev.round,
            Event::Join(ev) => ev.round,
            Event::Round(ev) => ev.round,
        }
    }
}

/// A decoded recording: header plus the full event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// The run's identity and dimensions.
    pub header: RunHeader,
    /// Every event, in the order the engine narrated it.
    pub events: Vec<Event>,
}

impl Recording {
    /// Decodes one recording from `bytes`.
    ///
    /// # Errors
    /// A typed [`DecodeError`] for anything that is not a complete,
    /// well-formed v1 recording — wrong magic, a future version,
    /// truncation (including a missing end frame), or corrupt fields.
    /// Never panics, whatever the input.
    pub fn decode(bytes: &[u8]) -> Result<Recording, DecodeError> {
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        // The reader runs over the full input so every error offset is
        // an absolute byte position.
        let mut r = Reader::new(bytes);
        r.bytes(MAGIC.len(), "magic")?;
        let version_bytes = r.bytes(2, "version")?;
        let version = u16::from_le_bytes([version_bytes[0], version_bytes[1]]);
        if version != VERSION {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let header = decode_header(&mut r)?;
        let mut events = Vec::new();
        let mut counts = FrameCounts::default();
        let mut last_round: u64 = 0;
        loop {
            if r.is_empty() {
                return Err(DecodeError::MissingEnd);
            }
            let tag_offset = r.pos();
            let tag = r.byte("frame tag")?;
            match tag {
                TAG_CONTENTION => {
                    let round = read_round(&mut r, &mut last_round)?;
                    let kind_offset = r.pos();
                    let kind = match r.byte("contention kind")? {
                        0 => ContentionKind::Primary,
                        1 => ContentionKind::Join,
                        2 => ContentionKind::Scheduled,
                        _ => {
                            return Err(DecodeError::Corrupt {
                                offset: kind_offset,
                                what: "contention kind",
                            })
                        }
                    };
                    let n_contenders = r.varint_usize("n_contenders")?;
                    let winner = r.varint_usize("winner")?;
                    let slots = r.varint("slots")?;
                    counts.contentions += 1;
                    events.push(Event::Contention(ContentionRecord {
                        round,
                        kind,
                        n_contenders,
                        winner,
                        slots,
                    }));
                }
                TAG_JOIN => {
                    let round = read_round(&mut r, &mut last_round)?;
                    let tx = r.varint_usize("join tx")?;
                    let n_streams = r.varint_usize("join n_streams")?;
                    let accepted_offset = r.pos();
                    let accepted = match r.byte("join accepted")? {
                        0 => false,
                        1 => true,
                        _ => {
                            return Err(DecodeError::Corrupt {
                                offset: accepted_offset,
                                what: "join accepted",
                            })
                        }
                    };
                    counts.joins += 1;
                    events.push(Event::Join(JoinRecord {
                        round,
                        tx,
                        n_streams,
                        accepted,
                    }));
                }
                TAG_ROUND => {
                    let round = read_round(&mut r, &mut last_round)?;
                    let body_symbols = r.varint_usize("body_symbols")?;
                    let duration_samples = r.varint("duration_samples")?;
                    let mut flow_bits = Vec::new();
                    for _ in 0..header.n_flows {
                        flow_bits.push(r.f64_bits("flow_bits")?);
                    }
                    let n_streams = r.varint_usize("stream count")?;
                    let mut streams = Vec::new();
                    for _ in 0..n_streams {
                        streams.push(StreamRecord {
                            flow: r.varint_usize("stream flow")?,
                            tx: r.varint_usize("stream tx")?,
                            rate: r.varint_usize("stream rate")?,
                            active_symbols: r.varint_usize("stream active_symbols")?,
                        });
                    }
                    counts.rounds += 1;
                    events.push(Event::Round(RoundEvent {
                        round,
                        body_symbols,
                        duration_samples,
                        flow_bits,
                        streams,
                    }));
                }
                TAG_END => {
                    for (what, declared, actual) in [
                        (
                            "contention",
                            r.varint("end contention count")?,
                            counts.contentions,
                        ),
                        ("join", r.varint("end join count")?, counts.joins),
                        ("round", r.varint("end round count")?, counts.rounds),
                    ] {
                        if declared != actual {
                            return Err(DecodeError::CountMismatch {
                                what,
                                declared,
                                actual,
                            });
                        }
                    }
                    if !r.is_empty() {
                        return Err(DecodeError::TrailingBytes { offset: r.pos() });
                    }
                    return Ok(Recording { header, events });
                }
                _ => {
                    return Err(DecodeError::Corrupt {
                        offset: tag_offset,
                        what: "frame tag",
                    })
                }
            }
        }
    }

    /// Encodes the recording back to its exact v1 byte form.
    /// `decode` ∘ `encode` is the identity on well-formed recordings,
    /// and `encode` ∘ `decode` is the identity on well-formed bytes
    /// (the golden suite pins both).
    ///
    /// # Errors
    /// [`EncodeError`] when the events are not encodable: round
    /// indices must be monotone non-decreasing and every round event
    /// must carry exactly `header.n_flows` flow bits. (Streams
    /// produced by [`RecordingObserver`](crate::RecordingObserver)
    /// always are.)
    pub fn encode(&self) -> Result<Vec<u8>, EncodeError> {
        let mut out = Vec::new();
        encode_header(&mut out, &self.header);
        let mut last_round: u64 = 0;
        let mut counts = FrameCounts::default();
        for (index, event) in self.events.iter().enumerate() {
            let round = event.round() as u64;
            if round < last_round {
                return Err(EncodeError::NonMonotoneRound {
                    index,
                    round: event.round(),
                    prev: last_round as usize,
                });
            }
            if let Event::Round(ev) = event {
                if ev.flow_bits.len() != self.header.n_flows {
                    return Err(EncodeError::FlowCountMismatch {
                        index,
                        expected: self.header.n_flows,
                        found: ev.flow_bits.len(),
                    });
                }
            }
            let delta = round - last_round;
            last_round = round;
            match event {
                Event::Contention(ev) => encode_contention(&mut out, delta, ev, &mut counts),
                Event::Join(ev) => encode_join(&mut out, delta, ev, &mut counts),
                Event::Round(ev) => encode_round(&mut out, delta, ev, &mut counts),
            }
        }
        encode_end(&mut out, &counts);
        Ok(out)
    }

    /// The round settlements alone, in order — what replay folds.
    pub fn round_events(&self) -> impl Iterator<Item = &RoundEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::Round(ev) => Some(ev),
            _ => None,
        })
    }
}

/// Running frame tally — written into (and checked against) the end
/// frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FrameCounts {
    pub(crate) contentions: u64,
    pub(crate) joins: u64,
    pub(crate) rounds: u64,
}

fn read_round(r: &mut Reader<'_>, last_round: &mut u64) -> Result<usize, DecodeError> {
    let offset = r.pos();
    let delta = r.varint("round delta")?;
    let round = last_round.checked_add(delta).ok_or(DecodeError::Corrupt {
        offset,
        what: "round delta",
    })?;
    *last_round = round;
    usize::try_from(round).map_err(|_| DecodeError::Corrupt {
        offset,
        what: "round delta",
    })
}

fn decode_header(r: &mut Reader<'_>) -> Result<RunHeader, DecodeError> {
    let policy = r.string("policy")?;
    let environment = r.string("environment")?;
    let scenario = r.string("scenario")?;
    let traffic = r.string("traffic")?;
    let mobility = r.string("mobility")?;
    let key_flag_offset = r.pos();
    let canonical_key = match r.byte("canonical key flag")? {
        0 => None,
        1 => Some(r.u128_le("canonical key")?),
        _ => {
            return Err(DecodeError::Corrupt {
                offset: key_flag_offset,
                what: "canonical key flag",
            })
        }
    };
    let seed = r.varint("seed")?;
    let seed_index = r.varint_usize("seed_index")?;
    let n_seeds = r.varint_usize("n_seeds")?;
    let policy_index = r.varint_usize("policy_index")?;
    let n_policies = r.varint_usize("n_policies")?;
    let rounds = r.varint_usize("rounds")?;
    let n_flows = r.varint_usize("n_flows")?;
    let bandwidth_hz = r.f64_bits("bandwidth_hz")?;
    Ok(RunHeader {
        policy,
        environment,
        scenario,
        traffic,
        mobility,
        canonical_key,
        seed,
        seed_index,
        n_seeds,
        policy_index,
        n_policies,
        rounds,
        n_flows,
        bandwidth_hz,
    })
}

pub(crate) fn encode_header(out: &mut Vec<u8>, h: &RunHeader) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    put_str(out, &h.policy);
    put_str(out, &h.environment);
    put_str(out, &h.scenario);
    put_str(out, &h.traffic);
    put_str(out, &h.mobility);
    match h.canonical_key {
        None => out.push(0),
        Some(key) => {
            out.push(1);
            out.extend_from_slice(&key.to_le_bytes());
        }
    }
    put_varint(out, h.seed);
    put_varint(out, h.seed_index as u64);
    put_varint(out, h.n_seeds as u64);
    put_varint(out, h.policy_index as u64);
    put_varint(out, h.n_policies as u64);
    put_varint(out, h.rounds as u64);
    put_varint(out, h.n_flows as u64);
    put_f64_bits(out, h.bandwidth_hz);
}

pub(crate) fn encode_contention(
    out: &mut Vec<u8>,
    delta: u64,
    ev: &ContentionRecord,
    counts: &mut FrameCounts,
) {
    out.push(TAG_CONTENTION);
    put_varint(out, delta);
    out.push(match ev.kind {
        ContentionKind::Primary => 0,
        ContentionKind::Join => 1,
        ContentionKind::Scheduled => 2,
    });
    put_varint(out, ev.n_contenders as u64);
    put_varint(out, ev.winner as u64);
    put_varint(out, ev.slots);
    counts.contentions += 1;
}

pub(crate) fn encode_join(
    out: &mut Vec<u8>,
    delta: u64,
    ev: &JoinRecord,
    counts: &mut FrameCounts,
) {
    out.push(TAG_JOIN);
    put_varint(out, delta);
    put_varint(out, ev.tx as u64);
    put_varint(out, ev.n_streams as u64);
    out.push(u8::from(ev.accepted));
    counts.joins += 1;
}

/// Encodes a round frame from the borrowed pieces the observer sees
/// (so the hot path never materializes an owned [`RoundEvent`]).
pub(crate) fn encode_round_parts(
    out: &mut Vec<u8>,
    delta: u64,
    body_symbols: usize,
    duration_samples: u64,
    flow_bits: &[f64],
    streams: &[StreamRecord],
    counts: &mut FrameCounts,
) {
    out.push(TAG_ROUND);
    put_varint(out, delta);
    put_varint(out, body_symbols as u64);
    put_varint(out, duration_samples);
    for &b in flow_bits {
        put_f64_bits(out, b);
    }
    put_varint(out, streams.len() as u64);
    for s in streams {
        put_varint(out, s.flow as u64);
        put_varint(out, s.tx as u64);
        put_varint(out, s.rate as u64);
        put_varint(out, s.active_symbols as u64);
    }
    counts.rounds += 1;
}

fn encode_round(out: &mut Vec<u8>, delta: u64, ev: &RoundEvent, counts: &mut FrameCounts) {
    encode_round_parts(
        out,
        delta,
        ev.body_symbols,
        ev.duration_samples,
        &ev.flow_bits,
        &ev.streams,
        counts,
    );
}

pub(crate) fn encode_end(out: &mut Vec<u8>, counts: &FrameCounts) {
    out.push(TAG_END);
    put_varint(out, counts.contentions);
    put_varint(out, counts.joins);
    put_varint(out, counts.rounds);
}
