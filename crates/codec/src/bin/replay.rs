//! Offline replay and determinism diff over event recordings.
//!
//! `replay` folds recorded event streams back through the same
//! accumulator and aggregation the live sweep used, reproducing
//! `SweepStats` **bit-for-bit** without re-simulating — its `--json`
//! output is byte-identical to the recording sweep's `--json` (CI
//! diffs the two). `replay diff` finds the first frame where two
//! recordings disagree: the determinism-debugging view the
//! bit-identity suites lack.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p nplus-codec --bin replay -- <dir|file.rec ...> [--json [path]]
//! cargo run --release -p nplus-codec --bin replay -- diff a.rec b.rec
//! ```
//!
//! `replay <inputs>` takes any mix of `.rec` files and directories
//! (a directory contributes its `*.rec` entries, sorted by name); the
//! set must form a complete (policy × seed) grid from one sweep.
//! Prints the sweep table, or the fixed-layout JSON report with
//! `--json [path]`.
//!
//! `replay diff a b` exits 0 when the recordings are
//! bitwise-equivalent, 1 with a one-line first-divergence report
//! (event position, round, field, both values) when they are not.
//!
//! Unreadable, corrupt, truncated or future-version inputs report the
//! file, the byte offset and the typed decode error, and exit 2 —
//! recordings are untrusted input and never panic the tool.

use nplus_codec::export::sweep_report_json;
use nplus_codec::{diff_recordings, replay_sweep, Recording};

/// One line on stderr, exit 2 — the operator-error convention.
fn input_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Expands the operands into a sorted list of `.rec` files: explicit
/// files pass through, directories contribute their `*.rec` entries.
fn collect_paths(inputs: &[String]) -> Vec<String> {
    let mut paths = Vec::new();
    for input in inputs {
        let meta = std::fs::metadata(input)
            .unwrap_or_else(|e| input_error(&format!("cannot read {input}: {e}")));
        if meta.is_dir() {
            let entries = std::fs::read_dir(input)
                .unwrap_or_else(|e| input_error(&format!("cannot read {input}: {e}")));
            let mut found = Vec::new();
            for entry in entries {
                let entry =
                    entry.unwrap_or_else(|e| input_error(&format!("cannot read {input}: {e}")));
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "rec") {
                    found.push(path.to_string_lossy().into_owned());
                }
            }
            if found.is_empty() {
                input_error(&format!("no .rec files in {input}"));
            }
            found.sort();
            paths.extend(found);
        } else {
            paths.push(input.clone());
        }
    }
    paths
}

/// Reads and decodes one recording, exiting 2 with the file name and
/// the typed decode error on any failure.
fn load(path: &str) -> Recording {
    let bytes =
        std::fs::read(path).unwrap_or_else(|e| input_error(&format!("cannot read {path}: {e}")));
    Recording::decode(&bytes).unwrap_or_else(|e| input_error(&format!("{path}: {e}")))
}

fn run_diff(a_path: &str, b_path: &str) -> ! {
    let a = load(a_path);
    let b = load(b_path);
    match diff_recordings(&a, &b) {
        None => {
            println!("identical: {a_path} and {b_path} are bitwise-equivalent");
            std::process::exit(0);
        }
        Some(d) => {
            let round = match d.round {
                Some(r) => format!(" (round {r})"),
                None => String::new(),
            };
            println!(
                "diverged at {}{round}: {}\n  a: {}\n  b: {}",
                d.location, d.field, d.a, d.b
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("diff") {
        match &args[1..] {
            [a, b] => run_diff(a, b),
            _ => input_error("diff needs exactly two recordings: replay diff a.rec b.rec"),
        }
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut json_to: Option<Option<String>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                if args.get(i + 1).is_some_and(|s| !s.starts_with('-')) {
                    i += 1;
                    json_to = Some(Some(args[i].clone()));
                } else {
                    json_to = Some(None);
                }
            }
            other if other.starts_with('-') => {
                input_error(&format!("unknown flag {other:?}"));
            }
            other => inputs.push(other.to_string()),
        }
        i += 1;
    }
    if inputs.is_empty() {
        input_error("usage: replay <dir|file.rec ...> [--json [path]] | replay diff a.rec b.rec");
    }

    let recordings: Vec<Recording> = collect_paths(&inputs).iter().map(|p| load(p)).collect();
    let sweep = replay_sweep(&recordings).unwrap_or_else(|e| input_error(&e.to_string()));

    if let Some(path) = &json_to {
        let json = sweep_report_json(
            &sweep.scenario,
            &sweep.environment,
            &sweep.traffic,
            &sweep.mobility,
            sweep.seeds.len() as u64,
            sweep.rounds,
            &sweep.stats,
        );
        match path {
            Some(p) => {
                if let Err(e) = std::fs::write(p, &json) {
                    eprintln!("error: cannot write {p}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote {p}");
            }
            None => print!("{json}"),
        }
        return;
    }

    eprintln!(
        "== replay: {} in {} ({} recordings), {} seeds x {} rounds ==",
        sweep.scenario,
        sweep.environment,
        recordings.len(),
        sweep.seeds.len(),
        sweep.rounds,
    );
    println!(
        "\n{:>12} {:>10} {:>8} {:>9} {:>9} {:>9}",
        "policy", "total Mb/s", "±95% CI", "mean DoF", "fairness", "runs"
    );
    for s in &sweep.stats {
        println!(
            "{:>12} {:>10.2} {:>8.2} {:>9.2} {:>9.2} {:>9}",
            s.policy, s.mean_total_mbps, s.ci95_total_mbps, s.mean_dof, s.mean_fairness, s.n_runs
        );
    }
}
