//! Metrics exporter over event recordings.
//!
//! Renders decoded recordings as Prometheus-style text metrics (one
//! sample per run per family, labeled with the run's identity) and as
//! per-run time-series JSON (parallel per-round arrays for dashboards).
//! Values come from replay, so they are bit-for-bit the live run's
//! results.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p nplus-codec --bin export -- <dir|file.rec ...> \
//!     [--metrics [path]] [--series [path]]
//! ```
//!
//! Inputs are any mix of `.rec` files and directories (a directory
//! contributes its `*.rec` entries, sorted by name — recordings here
//! need not form a complete sweep grid). With no flags, metrics go to
//! stdout. `--metrics` and `--series` each take an optional path
//! operand (default stdout). Undecodable inputs report the file and
//! the typed error and exit 2 — never a panic.

use nplus_codec::export::{prometheus_metrics, time_series_json};
use nplus_codec::Recording;

/// One line on stderr, exit 2 — the operator-error convention.
fn input_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Expands the operands into a sorted list of `.rec` files: explicit
/// files pass through, directories contribute their `*.rec` entries.
fn collect_paths(inputs: &[String]) -> Vec<String> {
    let mut paths = Vec::new();
    for input in inputs {
        let meta = std::fs::metadata(input)
            .unwrap_or_else(|e| input_error(&format!("cannot read {input}: {e}")));
        if meta.is_dir() {
            let entries = std::fs::read_dir(input)
                .unwrap_or_else(|e| input_error(&format!("cannot read {input}: {e}")));
            let mut found = Vec::new();
            for entry in entries {
                let entry =
                    entry.unwrap_or_else(|e| input_error(&format!("cannot read {input}: {e}")));
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "rec") {
                    found.push(path.to_string_lossy().into_owned());
                }
            }
            if found.is_empty() {
                input_error(&format!("no .rec files in {input}"));
            }
            found.sort();
            paths.extend(found);
        } else {
            paths.push(input.clone());
        }
    }
    paths
}

/// Writes to the optional path, or stdout when there is none.
fn emit(what: &str, path: &Option<String>, text: &str) {
    match path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, text) {
                eprintln!("error: cannot write {p}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {what} to {p}");
        }
        None => print!("{text}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut inputs: Vec<String> = Vec::new();
    let mut metrics_to: Option<Option<String>> = None;
    let mut series_to: Option<Option<String>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => {
                if args.get(i + 1).is_some_and(|s| !s.starts_with('-')) {
                    i += 1;
                    metrics_to = Some(Some(args[i].clone()));
                } else {
                    metrics_to = Some(None);
                }
            }
            "--series" => {
                if args.get(i + 1).is_some_and(|s| !s.starts_with('-')) {
                    i += 1;
                    series_to = Some(Some(args[i].clone()));
                } else {
                    series_to = Some(None);
                }
            }
            other if other.starts_with('-') => {
                input_error(&format!("unknown flag {other:?}"));
            }
            other => inputs.push(other.to_string()),
        }
        i += 1;
    }
    if inputs.is_empty() {
        input_error("usage: export <dir|file.rec ...> [--metrics [path]] [--series [path]]");
    }

    let recordings: Vec<Recording> = collect_paths(&inputs)
        .iter()
        .map(|path| {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| input_error(&format!("cannot read {path}: {e}")));
            Recording::decode(&bytes).unwrap_or_else(|e| input_error(&format!("{path}: {e}")))
        })
        .collect();

    // No flags at all: metrics to stdout.
    if metrics_to.is_none() && series_to.is_none() {
        metrics_to = Some(None);
    }
    if let Some(path) = &metrics_to {
        emit("metrics", path, &prometheus_metrics(&recordings));
    }
    if let Some(path) = &series_to {
        let mut text = time_series_json(&recordings).to_string_compact();
        text.push('\n');
        emit("series", path, &text);
    }
}
