//! The decimated SINR tier's error budget, property-tested: at the
//! benchmarked stride (`decimated:4`), the Monte-Carlo mean goodput of a
//! generated scenario stays within a bounded relative delta of the
//! full-grid run.
//!
//! The bound is **measured, not aspirational**: with 64-seed batches the
//! tier shows a consistent +2–5% optimism on the generator families
//! (planning *and* settlement only observe every 4th bin, so
//! frequency-selective notches in the unobserved bins never reduce
//! delivered bits — log-domain interpolation halves the effect but
//! cannot see a notch it never sampled). The proptest batches are
//! smaller (24 seeds, to keep the suite fast), which adds Monte-Carlo
//! noise on top of the bias; 10% bounds the sum with margin while still
//! catching any regression that decouples the tier from the full grid
//! (a broken interpolation or a mis-keyed cache shows up as 30%+).
//! DESIGN.md §10 records the measured bias alongside this bound.

use nplus::sim::{SinrGrid, SweepSpec};
use nplus_testkit::generator::ScenarioGenerator;
use nplus_testkit::spec::city_scenario;
use proptest::prelude::*;

const DECIMATION: usize = 4;
const SEEDS_PER_BATCH: u64 = 24;
const MAX_REL_DELTA: f64 = 0.10;

fn mean_goodput(kind: u8, gen_seed: u64, grid: SinrGrid) -> f64 {
    let mut generator = ScenarioGenerator::new(gen_seed);
    let (scenario, environment) = match kind {
        0 => (generator.n_pairs(2), None),
        1 => (generator.n_pairs(3), None),
        2 => (generator.hidden_terminal(3), None),
        3 => (generator.dense(8), None),
        _ => (city_scenario(16), Some("multi_cell")),
    };
    let mut spec = SweepSpec::new(scenario)
        .rounds(12)
        .seeds((0..SEEDS_PER_BATCH).map(|i| gen_seed.wrapping_mul(31).wrapping_add(i)))
        .policy_named("nplus")
        .expect("builtin policy")
        .sinr_grid(grid);
    if let Some(env) = environment {
        spec = spec.environment_named(env).expect("builtin environment");
    }
    spec.run()[0].mean_total_mbps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn decimated_mean_goodput_within_budget(
        kind in 0u8..5,
        gen_seed in 0u64..1_000,
    ) {
        let full = mean_goodput(kind, gen_seed, SinrGrid::Full);
        let dec = mean_goodput(kind, gen_seed, SinrGrid::Decimated(DECIMATION));
        prop_assert!(full.is_finite() && dec.is_finite());
        prop_assert!(full > 0.0, "degenerate batch: zero full-grid goodput");
        let rel = (dec - full).abs() / full;
        prop_assert!(
            rel < MAX_REL_DELTA,
            "decimated:{DECIMATION} diverged {:.2}% from the full grid \
             (kind {kind}, seed {gen_seed}: full {full:.4} Mb/s, decimated {dec:.4} Mb/s)",
            rel * 100.0
        );
    }
}
