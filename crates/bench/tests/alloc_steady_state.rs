//! The per-run arena contract: after the warm-up rounds have grown the
//! `Scratch` pools and the round buffers to their high-water marks, a
//! steady-state round performs **zero** heap allocations. Verified with
//! a counting global allocator and a round observer that snapshots the
//! allocation counter at every round boundary.
//!
//! This file holds exactly one `#[test]` so no concurrent test can
//! pollute the global counter.
//!
//! This is the **only** file in the workspace allowed to use `unsafe`
//! (a `GlobalAlloc` impl cannot be written without it): the workspace
//! deny-set and the `nplus-analyzer` unsafe whitelist both name it.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nplus::observer::{RoundObserver, RoundRecord};
use nplus::sim::{Protocol, SimConfig, SimEngine};
use nplus_channel::placement::Testbed;
use nplus_medium::topology::{build_topology, TopologyConfig};
use nplus_testkit::generator::ScenarioGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts every `alloc`/`realloc` call (deallocations are free to
/// remain — the arena claim is about *acquiring* memory per round).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Snapshots the global allocation counter at every round end, into
/// storage preallocated before the run (so the ledger itself never
/// allocates mid-run).
struct AllocLedger {
    counts: Vec<u64>,
}

impl RoundObserver for AllocLedger {
    fn on_round_end(&mut self, _ev: &RoundRecord) {
        self.counts.push(ALLOC_CALLS.load(Ordering::Relaxed));
    }
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    const ROUNDS: usize = 400;
    const WARMUP: usize = 300;

    // A 32-node dense scenario: 16 contending pairs keep every pool in
    // the engine (streams, receiver states, believed-channel arrays,
    // join bookkeeping) exercised each round. Warm-up must outlast the
    // opening-plan memo's fill — every transmitter has to win primary
    // contention at least once (coupon collector over 16 contenders)
    // before the last first-win stops populating it.
    let scenario = ScenarioGenerator::new(7).dense(32);
    let testbed = Testbed::fitting(scenario.antennas.len());
    let cfg = SimConfig {
        rounds: ROUNDS,
        ..SimConfig::default()
    };
    let mut placement_rng = StdRng::seed_from_u64(3);
    let topo = build_topology(
        &testbed,
        &TopologyConfig::new(scenario.antennas.clone()),
        cfg.ofdm.bandwidth_hz,
        3,
        &mut placement_rng,
    );
    let engine = SimEngine::new(&topo, &scenario, &cfg);

    let mut ledger = AllocLedger {
        counts: Vec::with_capacity(ROUNDS + 1),
    };
    let mut rng = StdRng::seed_from_u64(11);
    let result = engine.run_observed(Protocol::NPlus.policy(), &mut rng, &mut ledger);
    assert!(result.total_mbps.is_finite());
    assert_eq!(ledger.counts.len(), ROUNDS);

    // Every round after warm-up must leave the counter untouched.
    let steady = ledger.counts[WARMUP - 1];
    for (round, &count) in ledger.counts.iter().enumerate().skip(WARMUP) {
        assert_eq!(
            count,
            steady,
            "round {round} allocated {} time(s) after warm-up (round {} -> {})",
            count - steady,
            WARMUP - 1,
            round,
        );
    }
}
