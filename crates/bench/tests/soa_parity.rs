//! SoA ≡ AoS bitwise parity, property-tested across the whole policy
//! registry: sweeping with the channel cache on (the engine consumes
//! precomputed split-complex SoA tables) must equal sweeping with the
//! cache off (every matrix converted from its AoS `MimoLink` evaluation
//! on the fly) bit for bit, and the answer must not depend on the
//! worker-thread count. Scenarios are drawn from the generator family,
//! including the sparse procedural `city:` world.

use nplus::policy::BUILTIN_POLICY_NAMES;
use nplus::sim::{SimConfig, SweepSpec, SweepStats};
use nplus_testkit::generator::ScenarioGenerator;
use nplus_testkit::spec::city_scenario;
use proptest::prelude::*;

/// Bitwise equality of two sweep-stat lists (same shape as the
/// perf_sweep determinism assert: every float must match exactly).
fn stats_bitwise_eq(a: &[SweepStats], b: &[SweepStats]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.policy == y.policy
                && x.n_runs == y.n_runs
                && x.mean_total_mbps.to_bits() == y.mean_total_mbps.to_bits()
                && x.ci95_total_mbps.to_bits() == y.ci95_total_mbps.to_bits()
                && x.mean_per_flow_mbps.len() == y.mean_per_flow_mbps.len()
                && x.mean_per_flow_mbps
                    .iter()
                    .zip(&y.mean_per_flow_mbps)
                    .all(|(p, q)| p.to_bits() == q.to_bits())
                && x.mean_dof.to_bits() == y.mean_dof.to_bits()
                && x.mean_fairness.to_bits() == y.mean_fairness.to_bits()
        })
}

/// Builds the all-policy spec for one generated scenario.
fn spec_for(kind: u8, gen_seed: u64, rounds: usize, cfg: SimConfig) -> SweepSpec {
    let mut generator = ScenarioGenerator::new(gen_seed);
    let (scenario, environment) = match kind {
        0 => (generator.n_pairs(2), None),
        1 => (generator.n_pairs(3), None),
        2 => (generator.hidden_terminal(3), None),
        3 => (generator.dense(8), None),
        // The sparse city world: links below the power floor are absent,
        // exercising the typed no-such-link path of the SoA cache.
        _ => (city_scenario(16), Some("multi_cell")),
    };
    let mut spec = SweepSpec::new(scenario)
        .rounds(rounds)
        .seeds([gen_seed, gen_seed ^ 0xBEEF])
        .config(cfg);
    if let Some(env) = environment {
        spec = spec.environment_named(env).expect("builtin environment");
    }
    for name in BUILTIN_POLICY_NAMES {
        spec = spec.policy_named(name).expect("builtin policy");
    }
    spec
}

proptest! {
    // Each case runs 5 policies x 2 seeds x 4 sweep variants; a small
    // case count already covers every scenario family thanks to the
    // explicit `kind` strategy.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cached_soa_equals_aos_conversion_across_threads(
        kind in 0u8..5,
        gen_seed in 0u64..1_000,
        rounds in 3usize..7,
    ) {
        let cached_cfg = SimConfig::default();
        let uncached_cfg = SimConfig { cache_channels: false, ..SimConfig::default() };

        let cached_1t = spec_for(kind, gen_seed, rounds, cached_cfg.clone()).threads(1).run();
        let cached_2t = spec_for(kind, gen_seed, rounds, cached_cfg).threads(2).run();
        let uncached_1t = spec_for(kind, gen_seed, rounds, uncached_cfg.clone()).threads(1).run();
        let uncached_2t = spec_for(kind, gen_seed, rounds, uncached_cfg).threads(2).run();

        prop_assert!(cached_1t.iter().all(|s| s.mean_total_mbps.is_finite()));
        prop_assert!(
            stats_bitwise_eq(&cached_1t, &uncached_1t),
            "SoA tables diverged from the AoS conversion path (kind {kind}, seed {gen_seed})"
        );
        prop_assert!(
            stats_bitwise_eq(&cached_1t, &cached_2t),
            "cached sweep depends on thread count (kind {kind}, seed {gen_seed})"
        );
        prop_assert!(
            stats_bitwise_eq(&uncached_1t, &uncached_2t),
            "uncached sweep depends on thread count (kind {kind}, seed {gen_seed})"
        );
    }
}
