//! Criterion micro-benchmarks for the computational kernels on n+'s
//! critical path: the per-subcarrier precoder, the null-space solver, the
//! FFT, Viterbi decoding, carrier-sense projection, and one full protocol
//! round. These bound the per-packet processing cost argued in §4
//! ("Complexity") to be comparable to stock 802.11n beamforming.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nplus::carrier_sense::MultiDimCarrierSense;
use nplus::precoder::{compute_precoders, OwnReceiver, ProtectedReceiver};
use nplus::sim::{Protocol, SimConfig, SinrGrid};
use nplus_linalg::{null_space, CMatrix, CMatrixSoA, CVector, Complex64, Subspace};
use nplus_phy::convolutional::{encode, viterbi_decode};
use nplus_phy::fft::{fft_in_place, ifft};
use nplus_phy::params::OfdmConfig;
use nplus_testkit::fixtures::{random_bits, random_complex, random_matrix};
use nplus_testkit::scenario::three_pairs;

fn bench_fft(c: &mut Criterion) {
    let mut rng = nplus_testkit::rng(1);
    let data: Vec<Complex64> = (0..64).map(|_| random_complex(&mut rng)).collect();
    c.bench_function("fft_64", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| fft_in_place(&mut d),
            BatchSize::SmallInput,
        )
    });
}

fn bench_null_space(c: &mut Criterion) {
    let mut rng = nplus_testkit::rng(2);
    let a = random_matrix(2, 4, &mut rng);
    c.bench_function("null_space_2x4", |b| b.iter(|| null_space(&a)));
}

fn bench_precoder(c: &mut Criterion) {
    // The Fig. 3 join: null at 1-antenna rx, align at 2-antenna rx —
    // the exact computation a 3-antenna joiner performs per subcarrier.
    let mut rng = nplus_testkit::rng(3);
    let h1 = random_matrix(1, 3, &mut rng);
    let h2 = random_matrix(2, 3, &mut rng);
    let h3 = random_matrix(3, 3, &mut rng);
    let u2 = Subspace::span(2, &[random_matrix(2, 1, &mut rng).col(0)]);
    c.bench_function("precoder_fig3_join", |b| {
        b.iter(|| {
            compute_precoders(
                3,
                &[
                    ProtectedReceiver::nulling(h1.clone()),
                    ProtectedReceiver::aligning(h2.clone(), u2.clone()),
                ],
                &[OwnReceiver {
                    channel: h3.clone(),
                    n_streams: 1,
                    unwanted: Subspace::zero(3),
                }],
            )
            .unwrap()
        })
    });
}

fn bench_viterbi(c: &mut Criterion) {
    let mut rng = nplus_testkit::rng(4);
    let bits = random_bits(1000, &mut rng);
    let coded = encode(&bits);
    c.bench_function("viterbi_1000_bits", |b| b.iter(|| viterbi_decode(&coded)));
}

fn bench_projection(c: &mut Criterion) {
    let cfg = OfdmConfig::usrp2();
    let mut rng = nplus_testkit::rng(5);
    let h: Vec<CMatrix> = (0..cfg.fft_len)
        .map(|_| random_matrix(3, 1, &mut rng))
        .collect();
    let sensor = MultiDimCarrierSense::from_ongoing(3, cfg, &[h]);
    let capture: Vec<Vec<Complex64>> = (0..3)
        .map(|_| (0..256).map(|_| random_complex(&mut rng)).collect())
        .collect();
    c.bench_function("carrier_sense_project_256", |b| {
        b.iter(|| sensor.sense_power(&capture))
    });
    // For scale: the raw ifft of the same volume of samples.
    let block: Vec<Complex64> = capture[0][..64].to_vec();
    c.bench_function("ifft_64_reference", |b| b.iter(|| ifft(&block)));
}

/// The SoA vs scalar head-to-head on the engine's innermost kernel: the
/// per-subcarrier matrix-vector multiply (channel x precoder). The AoS
/// variant is the scalar loop over interleaved `Complex64` entries the
/// engine ran before the split-storage overhaul; the SoA variant is the
/// split re/im `mul_vec_into` the hot path consumes today.
fn bench_matvec_soa_vs_aos(c: &mut Criterion) {
    let mut rng = nplus_testkit::rng(8);
    let aos = random_matrix(4, 4, &mut rng);
    let soa = CMatrixSoA::from_aos(&aos);
    let x: CVector = random_matrix(4, 1, &mut rng).col(0);

    c.bench_function("matvec_4x4_aos_scalar", |b| {
        b.iter(|| {
            let mut out = CVector::zeros(4);
            for i in 0..4 {
                let mut acc = Complex64::ZERO;
                for (j, e) in x.iter().enumerate() {
                    acc += aos[(i, j)] * *e;
                }
                out[i] = acc;
            }
            out
        })
    });
    let mut out = CVector::zeros(4);
    c.bench_function("matvec_4x4_soa_split", |b| {
        b.iter(|| {
            soa.mul_vec_into(&x, &mut out);
            out[0]
        })
    });
}

fn bench_sim_round(c: &mut Criterion) {
    let built = three_pairs(6);
    let cfg = SimConfig {
        rounds: 1,
        ..SimConfig::default()
    };
    c.bench_function("nplus_round_three_pairs", |b| {
        b.iter(|| built.run_with(Protocol::NPlus, &cfg, 7))
    });
    // The decimated SINR tier on the same round (the opt-in fast path).
    let dec_cfg = SimConfig {
        rounds: 1,
        sinr_grid: SinrGrid::Decimated(4),
        ..SimConfig::default()
    };
    c.bench_function("nplus_round_three_pairs_decimated4", |b| {
        b.iter(|| built.run_with(Protocol::NPlus, &dec_cfg, 7))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_null_space,
    bench_precoder,
    bench_viterbi,
    bench_projection,
    bench_matvec_soa_vs_aos,
    bench_sim_round
);
criterion_main!(benches);
