//! Shared helpers for the figure-regeneration binaries.
#![forbid(unsafe_code)]
#![allow(missing_docs)]
pub mod legacy;
pub mod support;
