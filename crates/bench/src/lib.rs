//! Shared helpers for the figure-regeneration binaries.
#![allow(missing_docs)]
pub mod legacy;
pub mod support;
