//! CDF/percentile helpers shared by the figure binaries.

/// Empirical CDF points (value at each of the given percentiles).
/// Empty input yields no points.
pub fn percentiles(samples: &mut [f64], points: &[f64]) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    points
        .iter()
        .map(|&p| {
            let idx = ((p * (samples.len() - 1) as f64).round() as usize).min(samples.len() - 1);
            (p, samples[idx])
        })
        .collect()
}

/// Prints one CDF as "p value" rows under a header.
pub fn print_cdf(label: &str, samples: &mut [f64]) {
    // nplus:allow(HYG003): stdout IS the product — the figure binaries' shared report printer.
    println!("\n# CDF: {label}  (n={})", samples.len());
    // nplus:allow(HYG003): figure-binary report printer (see above).
    println!("{:>6} {:>12}", "p", "value");
    for (p, v) in percentiles(samples, &[0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95]) {
        // nplus:allow(HYG003): figure-binary report printer (see above).
        println!("{p:>6.2} {v:>12.3}");
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}
