//! The **frozen pre-PR round simulator**, kept verbatim as the perf
//! baseline for `perf_sweep`.
//!
//! This is the simulator exactly as it stood before the cached
//! channel-response engine landed: per-tap DFT frequency responses
//! recomputed inside the round × stream × subcarrier × interferer loop
//! nest, per-subcarrier `CMatrix`/`Subspace` clones feeding the owned
//! precoder/ZF APIs, per-stream pseudo-inverses during rate selection,
//! and `scenario.transmitters()` re-allocated twice per round. It also
//! preserves the two MAC-accounting bugs the PR fixed (deterministic
//! contention fallback, summed ACK rounding), so its absolute numbers
//! are *not* comparable to the new engine's — only its wall-clock cost
//! is, which is exactly what the perf trajectory needs.
//!
//! Do not "improve" this module; its value is staying identical to the
//! historical implementation.
#![allow(missing_docs)]

use nplus::link::{select_stream_rate, SubcarrierObservation};
use nplus::power_control::{join_power_decision, JoinPowerDecision};
use nplus::precoder::{compute_precoders, OwnReceiver, PrecoderError, ProtectedReceiver};
use nplus::sim::{Protocol, RunResult, Scenario, SimConfig};
use nplus_linalg::pinv;
use nplus_linalg::{CMatrix, CVector, Subspace};
use nplus_mac::backoff::{resolve_contention, ContentionOutcome};
use nplus_mac::frames::{DataHeader, ReceiverEntry};
use nplus_mac::timing::SampleTiming;
use nplus_medium::topology::Topology;
use nplus_phy::params::occupied_subcarrier_indices;
use nplus_phy::rates::{RateIndex, BASE_RATE, RATE_TABLE};
use nplus_phy::RATE_ESNR_THRESHOLDS_DB;
use rand::rngs::StdRng;

/// The pre-PR `zf_sinr`, frozen with its column clones intact (the
/// current `nplus::link::zf_sinr` assembles the ZF matrix without the
/// intermediate clones).
fn zf_sinr(obs: &SubcarrierObservation) -> Vec<f64> {
    let n_wanted = obs.wanted.len();
    if n_wanted == 0 {
        return Vec::new();
    }
    let n_ant = obs.wanted[0].len();
    let mut cols: Vec<CVector> = obs.wanted.clone();
    cols.extend(obs.known_interference.iter().cloned());
    if cols.len() > n_ant {
        // Over-subscribed receive space: undecodable.
        return vec![0.0; n_wanted];
    }
    let a = CMatrix::from_cols(&cols);
    let w = match pinv(&a) {
        Ok(w) => w,
        Err(_) => return vec![0.0; n_wanted],
    };
    (0..n_wanted)
        .map(|i| {
            let row = w.row(i);
            let noise = row.norm_sqr() * obs.noise_power;
            let resid: f64 = obs
                .residual_interference
                .iter()
                .map(|r| row.dot(&r.conj()).norm_sqr())
                .sum();
            1.0 / (noise + resid).max(1e-300)
        })
        .collect()
}

/// One planned concurrent stream.
struct PlannedStream {
    flow: usize,
    /// Per occupied-subcarrier pre-coding vector (len 52), scaled by the
    /// transmitter's per-stream power and join-power factor.
    precoders: Vec<CVector>,
    /// Chosen rate.
    rate: RateIndex,
    /// Transmitting node (scenario index).
    tx_node: usize,
    /// Symbols of body time this stream participates in.
    active_symbols: usize,
}

/// Per-receiver protection state (per occupied subcarrier).
struct ReceiverState {
    node: usize,
    /// Advertised unwanted space per occupied subcarrier.
    unwanted: Vec<Subspace>,
    /// Wanted effective channels per subcarrier (columns appended as this
    /// receiver's streams are planned).
    wanted: Vec<Vec<CVector>>,
}

/// The context shared by the per-protocol round functions.
struct RoundCtx<'a> {
    topo: &'a Topology,
    scenario: &'a Scenario,
    cfg: &'a SimConfig,
    occ: Vec<usize>,
}

impl<'a> RoundCtx<'a> {
    /// True per-subcarrier channel matrix between two scenario nodes.
    fn true_channel(&self, from: usize, to: usize, k_occ: usize) -> CMatrix {
        let link = self
            .topo
            .medium
            .link(self.topo.nodes[from], self.topo.nodes[to])
            .expect("missing link");
        link.channel_matrix(self.occ[k_occ], self.cfg.ofdm.fft_len)
    }

    /// What a transmitter believes the channel is (reciprocity +
    /// hardware error), per subcarrier.
    fn believed_channel(&self, from: usize, to: usize, k_occ: usize, rng: &mut StdRng) -> CMatrix {
        let h = self.true_channel(from, to, k_occ);
        self.cfg.hardware.reciprocal_channel_knowledge(&h, rng)
    }

    fn n_ant(&self, node: usize) -> usize {
        self.scenario.antennas[node]
    }
}

/// Extends the span of `existing` with directions orthogonal to both
/// `existing` and `wanted`, up to `target_dim` dimensions.
fn extend_unwanted(
    ambient: usize,
    existing: &[CVector],
    wanted: &[CVector],
    target_dim: usize,
) -> Subspace {
    let base = Subspace::span(ambient, existing);
    if base.dim() >= target_dim {
        return base;
    }
    let mut all = existing.to_vec();
    all.extend(wanted.to_vec());
    let occupied = Subspace::span(ambient, &all);
    let free = occupied.complement();
    let mut basis = base.basis().to_vec();
    for b in free.basis() {
        if basis.len() >= target_dim {
            break;
        }
        basis.push(b.clone());
    }
    Subspace::span(ambient, &basis)
}

/// Success probability of a stream: 1 dB linear ramp below the rate's
/// ESNR threshold (the thresholds are ~90% delivery points; the ramp
/// keeps Monte-Carlo noise down versus a hard cliff).
fn success_prob(esnr_db: f64, rate: RateIndex) -> f64 {
    let thr = RATE_ESNR_THRESHOLDS_DB[rate];
    ((esnr_db - (thr - 1.0)) / 1.0).clamp(0.0, 1.0)
}

/// Resolves contention among `contenders` (scenario node indices),
/// doubling windows on collisions. Returns `(winner, slots_elapsed)`.
fn contend(contenders: &[usize], timing: &SampleTiming, rng: &mut StdRng) -> (usize, u64) {
    let mut cw: Vec<u32> = vec![timing.cw_min; contenders.len()];
    let mut slots_total: u64 = 0;
    for _ in 0..32 {
        match resolve_contention(&cw, rng) {
            ContentionOutcome::Winner { index, slots } => {
                return (contenders[index], slots_total + slots as u64);
            }
            ContentionOutcome::Collision { indices, slots } => {
                slots_total += slots as u64 + 20; // collided headers waste air
                for i in indices {
                    cw[i] = (cw[i] * 2 + 1).min(timing.cw_max);
                }
            }
            ContentionOutcome::Idle => unreachable!("contenders nonempty"),
        }
    }
    (contenders[0], slots_total)
}

/// Typical alignment-blob size in bytes (CP¹ codec over 52 subcarriers:
/// header + first angles + escape mask + ~1 byte/subcarrier).
const LEGACY_BLOB_BYTES: usize = 62;

/// Header exchange cost in OFDM symbols: data header + SIFS + ACK header
/// (with alignment blob of `blob_bytes`) + SIFS, all at base rate.
fn handshake_symbols(cfg: &SimConfig, n_receivers: usize, blob_bytes: usize) -> usize {
    let hdr = DataHeader {
        src: 0,
        receivers: vec![
            ReceiverEntry {
                dst: 0,
                n_streams: 1
            };
            n_receivers.max(1)
        ],
        n_antennas: 3,
        duration_symbols: 0,
        seq: 0,
    };
    let hdr_bits = hdr.to_bytes().len() * 8;
    let ack_bits = (12 + blob_bytes) * 8 * n_receivers.max(1);
    let base = BASE_RATE.data_bits_per_symbol();
    let sifs_syms = (cfg.timing.sifs as usize).div_ceil(cfg.timing.symbol as usize);
    hdr_bits.div_ceil(base) + ack_bits.div_ceil(base) + 2 * sifs_syms
}

/// Allocates the winner's streams across its flows, respecting receiver
/// capacity (`N_rx − K` spare dimensions each) and rotating the split
/// across rounds for fairness.
fn allocate_streams(
    ctx: &RoundCtx,
    tx: usize,
    k_ongoing: usize,
    round: usize,
) -> Vec<(usize, usize)> {
    let flows = ctx.scenario.flows_of(tx);
    let m = ctx.n_ant(tx).saturating_sub(k_ongoing);
    if m == 0 || flows.is_empty() {
        return Vec::new();
    }
    let caps: Vec<usize> = flows
        .iter()
        .map(|&f| {
            let rx = ctx.scenario.flows[f].rx;
            ctx.n_ant(rx).saturating_sub(k_ongoing.min(ctx.n_ant(rx)))
        })
        .collect();
    let mut alloc = vec![0usize; flows.len()];
    let mut remaining = m;
    let mut i = round % flows.len();
    let mut stalled = 0;
    while remaining > 0 && stalled < flows.len() {
        if alloc[i] < caps[i] {
            alloc[i] += 1;
            remaining -= 1;
            stalled = 0;
        } else {
            stalled += 1;
        }
        i = (i + 1) % flows.len();
    }
    flows
        .iter()
        .zip(alloc)
        .filter(|(_, a)| *a > 0)
        .map(|(&f, a)| (f, a))
        .collect()
}

/// Plans the transmission of one winner: computes precoders against the
/// currently protected receivers, registers the new receiver state, and
/// returns the planned streams. Returns `None` if the winner cannot join
/// (no DoF, rate selection failure, or precoder degeneracy).
#[allow(clippy::too_many_arguments)]
fn plan_winner(
    ctx: &RoundCtx,
    tx: usize,
    allocation: &[(usize, usize)],
    protected: &mut Vec<ReceiverState>,
    ongoing_streams: &mut Vec<PlannedStream>,
    k_ongoing: usize,
    body_symbols_left: usize,
    rng: &mut StdRng,
) -> Option<Vec<usize>> {
    let n_sc = ctx.occ.len();
    let m_tx = ctx.n_ant(tx);
    let total_new: usize = allocation.iter().map(|(_, n)| n).sum();
    if total_new == 0 {
        return None;
    }

    // Believed channels to protected receivers and own receivers.
    let believed_protected: Vec<Vec<CMatrix>> = protected
        .iter()
        .map(|r| {
            (0..n_sc)
                .map(|k| ctx.believed_channel(tx, r.node, k, rng))
                .collect()
        })
        .collect();
    let believed_own: Vec<Vec<CMatrix>> = allocation
        .iter()
        .map(|&(f, _)| {
            let rx = ctx.scenario.flows[f].rx;
            (0..n_sc)
                .map(|k| ctx.believed_channel(tx, rx, k, rng))
                .collect()
        })
        .collect();

    // Join power control against protected receivers (worst subcarrier
    // median is approximated by the middle subcarrier's matrix). The
    // historical `SimConfig::power_control` flag is gone (the ablation
    // moved to the `GreedyJoin` policy); every legacy benchmark ran
    // with it on, so the enabled branch is hard-wired here.
    let decision = if !protected.is_empty() {
        let mid = n_sc / 2;
        let mats: Vec<&CMatrix> = believed_protected.iter().map(|v| &v[mid]).collect();
        join_power_decision(&mats, ctx.cfg.l_db)
    } else {
        JoinPowerDecision::FullPower
    };
    let amp = decision.amplitude();

    // Unwanted space each own receiver will advertise: span of the true
    // arrivals it already sees, extended to its spare dimension count.
    // (The receiver estimates these from overheard headers; estimation is
    // near-exact and the codec round-trip is tested separately.)
    let own_unwanted: Vec<Vec<Subspace>> = allocation
        .iter()
        .map(|&(f, n_streams)| {
            let rx = ctx.scenario.flows[f].rx;
            let n_rx = ctx.n_ant(rx);
            (0..n_sc)
                .map(|k| {
                    let mut arrivals: Vec<CVector> = Vec::new();
                    for s in ongoing_streams.iter() {
                        let h = ctx.true_channel(s.tx_node, rx, k);
                        arrivals.push(h.mul_vec(&s.precoders[k]));
                    }
                    let target = n_rx.saturating_sub(n_streams);
                    extend_unwanted(n_rx, &arrivals, &[], target)
                })
                .collect()
        })
        .collect();

    // Per-subcarrier precoding.
    let mut per_stream_precoders: Vec<Vec<CVector>> = vec![Vec::with_capacity(n_sc); total_new];
    for k in 0..n_sc {
        let prot: Vec<ProtectedReceiver> = protected
            .iter()
            .enumerate()
            .map(|(i, r)| ProtectedReceiver {
                channel: believed_protected[i][k].clone(),
                unwanted: r.unwanted[k].clone(),
            })
            .collect();
        let own: Vec<OwnReceiver> = allocation
            .iter()
            .enumerate()
            .map(|(i, &(_, n_streams))| OwnReceiver {
                channel: believed_own[i][k].clone(),
                n_streams,
                unwanted: own_unwanted[i][k].clone(),
            })
            .collect();
        match compute_precoders(m_tx, &prot, &own) {
            Ok(p) => {
                for (i, v) in p.vectors.into_iter().enumerate() {
                    per_stream_precoders[i].push(v.scale_re(amp));
                }
            }
            Err(PrecoderError::NoDegreesOfFreedom | PrecoderError::TooManyStreams { .. }) => {
                return None;
            }
        }
    }

    // Rate selection per stream: SINR at the owning receiver with current
    // ongoing interference (known to the receiver) — §3.4: the joiner
    // need not worry about future winners.
    //
    // The receive space is exactly budgeted: n wanted streams plus the
    // (N − n)-dimensional unwanted space. The ZF columns are therefore
    // structural — sibling streams destined to the *same* receiver are
    // jointly decoded (columns); streams destined to *other* receivers
    // were aligned into the unwanted space (covered by its basis) or
    // nulled, and whatever leaks outside is residual interference the
    // receiver cannot cancel.
    let mut stream_rates: Vec<RateIndex> = Vec::with_capacity(total_new);
    {
        // Stream index ranges per own-receiver.
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(allocation.len());
        let mut acc = 0usize;
        for &(_, n_streams) in allocation {
            ranges.push((acc, acc + n_streams));
            acc += n_streams;
        }
        let mut stream_idx = 0usize;
        for (i, &(f, n_streams)) in allocation.iter().enumerate() {
            let rx = ctx.scenario.flows[f].rx;
            let (lo, hi) = ranges[i];
            for s in 0..n_streams {
                let sinrs: Vec<f64> = (0..n_sc)
                    .map(|k| {
                        let h_true = ctx.true_channel(tx, rx, k);
                        let wanted = vec![h_true.mul_vec(&per_stream_precoders[stream_idx][k])];
                        let mut known: Vec<CVector> = own_unwanted[i][k].basis().to_vec();
                        let mut residual: Vec<CVector> = Vec::new();
                        for (other, pc) in per_stream_precoders.iter().enumerate() {
                            if other == stream_idx || pc.is_empty() {
                                continue;
                            }
                            let arrival = h_true.mul_vec(&pc[k]);
                            if other >= lo && other < hi {
                                // Sibling destined to this receiver:
                                // jointly zero-forced.
                                known.push(arrival);
                            } else {
                                // Destined elsewhere: aligned part lives
                                // inside the unwanted space (already a
                                // column); only the hardware-error leak
                                // outside it degrades this stream.
                                let leak = own_unwanted[i][k].reject(&arrival);
                                if leak.norm_sqr() > 1e-9 {
                                    residual.push(leak);
                                }
                            }
                        }
                        let obs = SubcarrierObservation {
                            wanted,
                            known_interference: known,
                            residual_interference: residual,
                            noise_power: 1.0,
                        };
                        zf_sinr(&obs)[0]
                    })
                    .collect();
                match select_stream_rate(&sinrs) {
                    Some(r) => stream_rates.push(r),
                    None => return None,
                }
                let _ = s;
                stream_idx += 1;
            }
        }
    }

    // Register everything.
    let mut new_stream_ids = Vec::with_capacity(total_new);
    let mut stream_idx = 0usize;
    for (i, &(f, n_streams)) in allocation.iter().enumerate() {
        let rx = ctx.scenario.flows[f].rx;
        // New protected receiver.
        let mut wanted_per_sc: Vec<Vec<CVector>> = vec![Vec::new(); n_sc];
        for s in 0..n_streams {
            let id = ongoing_streams.len();
            new_stream_ids.push(id);
            for k in 0..n_sc {
                let h_true = ctx.true_channel(tx, rx, k);
                wanted_per_sc[k].push(h_true.mul_vec(&per_stream_precoders[stream_idx][k]));
            }
            ongoing_streams.push(PlannedStream {
                flow: f,
                precoders: per_stream_precoders[stream_idx].clone(),
                rate: stream_rates[stream_idx],
                tx_node: tx,
                active_symbols: body_symbols_left,
            });
            let _ = s;
            stream_idx += 1;
        }
        protected.push(ReceiverState {
            node: rx,
            unwanted: own_unwanted[i].clone(),
            wanted: wanted_per_sc,
        });
    }
    let _ = k_ongoing;
    Some(new_stream_ids)
}

/// Evaluates the realized per-stream ESNRs at every receiver, including
/// the residual interference the precoding failed to cancel, and returns
/// delivered bits per flow.
fn settle_round(
    ctx: &RoundCtx,
    protected: &[ReceiverState],
    streams: &[PlannedStream],
) -> Vec<f64> {
    let n_sc = ctx.occ.len();
    let mut bits = vec![0.0; ctx.scenario.flows.len()];
    for rx_state in protected {
        // Streams wanted by this receiver.
        let my_streams: Vec<usize> = streams
            .iter()
            .enumerate()
            .filter(|(_, s)| ctx.scenario.flows[s.flow].rx == rx_state.node)
            .map(|(i, _)| i)
            .collect();
        if my_streams.is_empty() {
            continue;
        }
        // Per-stream SINR across subcarriers.
        let mut per_stream_sinrs: Vec<Vec<f64>> = vec![Vec::with_capacity(n_sc); my_streams.len()];
        for k in 0..n_sc {
            let wanted: Vec<CVector> = rx_state.wanted[k].clone();
            let known = rx_state.unwanted[k].basis().to_vec();
            // Residual interference: arrivals of *other* transmitters'
            // streams outside the advertised unwanted space.
            let mut residual: Vec<CVector> = Vec::new();
            for (i, s) in streams.iter().enumerate() {
                if my_streams.contains(&i) {
                    continue;
                }
                if s.tx_node == rx_state.node {
                    continue; // half duplex: own transmissions not heard
                }
                let h = ctx.true_channel(s.tx_node, rx_state.node, k);
                let arrival = h.mul_vec(&s.precoders[k]);
                let leak = rx_state.unwanted[k].reject(&arrival);
                if leak.norm_sqr() > 1e-12 {
                    residual.push(leak);
                }
            }
            let obs = SubcarrierObservation {
                wanted,
                known_interference: known,
                residual_interference: residual,
                noise_power: 1.0,
            };
            let sinrs = zf_sinr(&obs);
            for (si, &v) in sinrs.iter().enumerate() {
                per_stream_sinrs[si].push(v);
            }
        }
        for (si, &stream_id) in my_streams.iter().enumerate() {
            let s = &streams[stream_id];
            let mcs = RATE_TABLE[s.rate];
            let esnr = nplus_phy::esnr::effective_snr(mcs.modulation, &per_stream_sinrs[si]);
            let esnr_db = 10.0 * esnr.max(1e-300).log10();
            let p = success_prob(esnr_db, s.rate);
            bits[s.flow] += (s.active_symbols * mcs.data_bits_per_symbol()) as f64 * p;
        }
    }
    bits
}

/// Simulates `cfg.rounds` rounds of the given protocol and returns the
/// per-flow goodput.
pub fn simulate_legacy(
    topo: &Topology,
    scenario: &Scenario,
    protocol: Protocol,
    cfg: &SimConfig,
    rng: &mut StdRng,
) -> RunResult {
    let ctx = RoundCtx {
        topo,
        scenario,
        cfg,
        occ: occupied_subcarrier_indices(),
    };
    let mut bits = vec![0.0f64; scenario.flows.len()];
    let mut total_samples: u64 = 0;
    let mut dof_weighted: f64 = 0.0;
    let mut dof_time: f64 = 0.0;

    for round in 0..cfg.rounds {
        let mut protected: Vec<ReceiverState> = Vec::new();
        let mut streams: Vec<PlannedStream> = Vec::new();

        // Primary contention among all transmitters with traffic.
        let contenders = scenario.transmitters();
        let (first, slots) = contend(&contenders, &cfg.timing, rng);
        let mut overhead = cfg.timing.difs + slots * cfg.timing.slot;

        // First winner's allocation.
        let first_alloc = match protocol {
            Protocol::NPlus | Protocol::Beamforming => allocate_streams(&ctx, first, 0, round),
            Protocol::Dot11n => {
                // Stock 802.11n: one receiver per transmission opportunity.
                let flows = scenario.flows_of(first);
                let f = flows[round % flows.len()];
                let rx = scenario.flows[f].rx;
                let n = ctx.n_ant(first).min(ctx.n_ant(rx));
                vec![(f, n)]
            }
        };

        // Plan the first winner with a provisional body length; patched
        // below once its rates are known.
        let planned = plan_winner(
            &ctx,
            first,
            &first_alloc,
            &mut protected,
            &mut streams,
            0,
            usize::MAX,
            rng,
        );
        let Some(first_ids) = planned else {
            // Even the first winner could not transmit (degenerate
            // channels): charge the overhead and move on.
            total_samples += overhead + cfg.timing.difs;
            continue;
        };
        overhead +=
            cfg.timing.symbol * handshake_symbols(cfg, first_alloc.len(), LEGACY_BLOB_BYTES) as u64;

        // Body duration: one packet per serviced flow at the winner's
        // aggregate rate.
        let first_rate_sum: usize = first_ids
            .iter()
            .map(|&i| RATE_TABLE[streams[i].rate].data_bits_per_symbol())
            .sum();
        let packet_bits = cfg.packet_bytes * 8 * first_alloc.len();
        let body_symbols = packet_bits.div_ceil(first_rate_sum.max(1));
        for &i in &first_ids {
            streams[i].active_symbols = body_symbols;
        }

        // Secondary contention (n+ only): remaining transmitters join.
        if protocol == Protocol::NPlus {
            let mut k_used: usize = streams.len();
            let mut elapsed_body: usize = 0;
            loop {
                let eligible: Vec<usize> = scenario
                    .transmitters()
                    .into_iter()
                    .filter(|&t| {
                        t != first
                            && streams.iter().all(|s| s.tx_node != t)
                            && ctx.n_ant(t) > k_used
                    })
                    .collect();
                if eligible.is_empty() {
                    break;
                }
                let (joiner, join_slots) = contend(&eligible, &cfg.timing, rng);
                // The join consumes body time: contention + its handshake.
                let hs = handshake_symbols(cfg, scenario.flows_of(joiner).len(), LEGACY_BLOB_BYTES);
                let join_delay = ((join_slots * cfg.timing.slot) as usize)
                    .div_ceil(cfg.timing.symbol as usize)
                    + hs;
                elapsed_body += join_delay;
                if elapsed_body >= body_symbols {
                    break; // no air time left this round
                }
                let alloc = allocate_streams(&ctx, joiner, k_used, round);
                if alloc.is_empty() {
                    break;
                }
                let remaining = body_symbols - elapsed_body;
                let planned = plan_winner(
                    &ctx,
                    joiner,
                    &alloc,
                    &mut protected,
                    &mut streams,
                    k_used,
                    remaining,
                    rng,
                );
                match planned {
                    Some(ids) => {
                        k_used += ids.len();
                    }
                    None => {
                        // Joiner declined (power control / degenerate):
                        // others may still try.
                        continue;
                    }
                }
            }
        }

        // Settle: realized SINRs including residuals.
        let round_bits = settle_round(&ctx, &protected, &streams);
        for (f, b) in round_bits.iter().enumerate() {
            bits[f] += b;
        }

        // Time accounting.
        let ack_syms = 2 + (cfg.timing.sifs as usize).div_ceil(cfg.timing.symbol as usize);
        let round_samples =
            overhead + cfg.timing.symbol * (body_symbols + ack_syms) as u64 + cfg.timing.difs;
        total_samples += round_samples;
        let mean_streams: f64 = streams.iter().map(|s| s.active_symbols as f64).sum::<f64>()
            / body_symbols.max(1) as f64;
        dof_weighted += mean_streams * body_symbols as f64;
        dof_time += body_symbols as f64;
    }

    let elapsed_s = total_samples as f64 / cfg.ofdm.bandwidth_hz;
    let per_flow_mbps: Vec<f64> = bits.iter().map(|b| b / elapsed_s / 1e6).collect();
    RunResult {
        total_mbps: per_flow_mbps.iter().sum(),
        per_flow_mbps,
        mean_dof: if dof_time > 0.0 {
            dof_weighted / dof_time
        } else {
            0.0
        },
    }
}
