//! Fig. 12 — Throughput Comparison (n+ versus 802.11n).
//!
//! Reproduces the paper's §6.3 experiment: the Fig. 3 scenario (pairs
//! with 1, 2 and 3 antennas) over random testbed placements; CDFs of the
//! total network throughput and each pair's throughput under both
//! protocols, plus the headline gains:
//!   * total network throughput ≈ 2× 802.11n;
//!   * 2-antenna pair gains ≈ 1.5×, 3-antenna pair ≈ 3.5×;
//!   * single-antenna pair loses ≤ 3%.
//!
//! Run with: `cargo run --release --bin fig12_throughput`

use nplus::sim::{Protocol, SimConfig};
use nplus_bench::support::{mean, print_cdf};
use nplus_testkit::scenario::three_pairs;

fn main() {
    let n_placements: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let cfg = SimConfig {
        rounds: 25,
        ..SimConfig::default()
    };

    println!("== Fig. 12: three pairs (1/2/3 antennas), {n_placements} random placements ==");
    let mut totals = [Vec::new(), Vec::new()]; // [dot11n, nplus]
    let mut flows = [
        [Vec::new(), Vec::new(), Vec::new()],
        [Vec::new(), Vec::new(), Vec::new()],
    ];

    for seed in 0..n_placements {
        let built = three_pairs(seed);
        for (p, protocol) in [Protocol::Dot11n, Protocol::NPlus].into_iter().enumerate() {
            let r = built.run_with(protocol, &cfg, seed ^ 0xC0FFEE);
            totals[p].push(r.total_mbps);
            for f in 0..3 {
                flows[p][f].push(r.per_flow_mbps[f]);
            }
        }
    }

    print_cdf(
        "(a) total network throughput, 802.11n [Mb/s]",
        &mut totals[0].clone(),
    );
    print_cdf(
        "(a) total network throughput, n+ [Mb/s]",
        &mut totals[1].clone(),
    );
    let names = [
        "(b) tx1-rx1 (1 ant)",
        "(c) tx2-rx2 (2 ant)",
        "(d) tx3-rx3 (3 ant)",
    ];
    for f in 0..3 {
        print_cdf(
            &format!("{} 802.11n [Mb/s]", names[f]),
            &mut flows[0][f].clone(),
        );
        print_cdf(&format!("{} n+ [Mb/s]", names[f]), &mut flows[1][f].clone());
    }

    println!("\n== headline comparison (means over placements) ==");
    let tot_gain = mean(&totals[1]) / mean(&totals[0]);
    println!(
        "total:  802.11n {:>6.2} Mb/s | n+ {:>6.2} Mb/s | gain {:.2}x   (paper: ~2x)",
        mean(&totals[0]),
        mean(&totals[1]),
        tot_gain
    );
    let paper = ["(paper: ~0.97x)", "(paper: ~1.5x)", "(paper: ~3.5x)"];
    for f in 0..3 {
        let g = mean(&flows[1][f]) / mean(&flows[0][f]).max(1e-9);
        println!(
            "{}: 802.11n {:>6.2} | n+ {:>6.2} | gain {:.2}x   {}",
            names[f],
            mean(&flows[0][f]),
            mean(&flows[1][f]),
            g,
            paper[f]
        );
    }
}
