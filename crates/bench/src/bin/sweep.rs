//! Batch Monte-Carlo sweeps over canonical or generated scenarios.
//!
//! Runs `nplus::sim::SweepSpec` — one freshly drawn topology per seed,
//! one shared channel-cached `SimEngine` per topology, seeds executed
//! as independent jobs on a scoped-thread pool — and prints mean ±95%
//! CI total goodput per policy, plus per-flow means and mean Jain
//! fairness. Results are bit-for-bit identical for every `--threads`
//! value (including 1); CI diffs the two to prove it.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin sweep -- [scenario] [n_seeds] [rounds] \
//!     [--threads N] [--policies a,b,..] [--env name] [--json [path]]
//!
//! where `scenario` is one of:
//!   three_pairs          the Fig. 3 scenario (default)
//!   ap_downlink          the Fig. 4 scenario
//!   pairs:<n>            n generated tx→rx pairs, random 1–4 antennas
//!   multi_ap:<a>x<c>     a generated cells of one AP + c clients
//!   hidden:<n>           n generated transmitters sharing one receiver
//!   asym:<n>             n generated maximally antenna-asymmetric pairs
//!   dense:<n>            n-node generated mesh (even, ≤32; extended map)
//!   random:<seed>        a random family draw from the generator
//!
//! Flags (positionals must precede flags):
//!   --threads N          worker threads (default 0 = all cores; 1 = serial)
//!   --policies a,b,..    comma-separated policy names (default
//!                        dot11n,beamforming,nplus; also oracle,
//!                        greedy_join — anything policy_from_name knows)
//!   --env name           propagation environment (default sigcomm11 —
//!                        the paper's indoor world; also outdoor,
//!                        rich_scatter, degraded_hardware — anything
//!                        environment_from_name knows)
//!   --json [path]        machine-readable stats to `path` (default stdout)
//! ```
//!
//! Generated scenarios are seeded (generator seed 42 unless `random:`
//! gives one), so every invocation is reproducible. A bad
//! `--env`/`--policies` name or a scenario too large for the chosen
//! environment's maps reports cleanly and exits 2.

use nplus::prelude::*;
use nplus_testkit::generator::{ScenarioGenerator, MAX_DENSE_NODES, MAX_NODES};

/// Reports an invalid scenario operand the way every other operator
/// error is reported (one line, exit 2) — the generator's own spec
/// guards are asserts and would dump a backtrace instead.
fn spec_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// `env_capacity` sizes the `random:` family draw to the chosen
/// environment's map ([`ScenarioGenerator::random_for_capacity`]); at
/// the stock 40-slot maps the draw is bit-identical to the classic
/// `random()` stream.
fn parse_scenario(spec: &str, env_capacity: usize) -> Scenario {
    if let Some(n) = spec.strip_prefix("pairs:") {
        let n: usize = n.parse().expect("pairs:<n> needs a number");
        if !(1..=MAX_NODES / 2).contains(&n) {
            spec_error(&format!("pairs:<n> needs 1..={}", MAX_NODES / 2));
        }
        return ScenarioGenerator::new(42).n_pairs(n);
    }
    if let Some(shape) = spec.strip_prefix("multi_ap:") {
        let (a, c) = shape
            .split_once('x')
            .expect("multi_ap:<aps>x<clients> needs AxC");
        let (a, c): (usize, usize) = (
            a.parse().expect("AP count"),
            c.parse().expect("client count"),
        );
        if a < 1 || c < 1 || a * (1 + c) > MAX_NODES {
            spec_error(&format!(
                "multi_ap:<aps>x<clients> needs aps*(1+clients) in 2..={MAX_NODES}"
            ));
        }
        return ScenarioGenerator::new(42).multi_ap(a, c);
    }
    if let Some(n) = spec.strip_prefix("hidden:") {
        let n: usize = n.parse().expect("hidden:<n> needs a number");
        if !(2..MAX_NODES).contains(&n) {
            spec_error(&format!("hidden:<n> needs 2..={}", MAX_NODES - 1));
        }
        return ScenarioGenerator::new(42).hidden_terminal(n);
    }
    if let Some(n) = spec.strip_prefix("asym:") {
        let n: usize = n.parse().expect("asym:<n> needs a number");
        if !(1..=MAX_NODES / 2).contains(&n) {
            spec_error(&format!("asym:<n> needs 1..={}", MAX_NODES / 2));
        }
        return ScenarioGenerator::new(42).asymmetric_antenna(n);
    }
    if let Some(n) = spec.strip_prefix("dense:") {
        let n: usize = n.parse().expect("dense:<n> needs a number");
        if !(4..=MAX_DENSE_NODES).contains(&n) || !n.is_multiple_of(2) {
            spec_error(&format!(
                "dense:<n> needs an even node count in 4..={MAX_DENSE_NODES}"
            ));
        }
        return ScenarioGenerator::new(42).dense(n);
    }
    if let Some(seed) = spec.strip_prefix("random:") {
        let seed: u64 = seed.parse().expect("random:<seed> needs a number");
        return ScenarioGenerator::new(seed).random_for_capacity(env_capacity);
    }
    match spec {
        "three_pairs" => Scenario::three_pairs(),
        "ap_downlink" => Scenario::ap_downlink(),
        other => spec_error(&format!("unknown scenario spec {other:?}")),
    }
}

/// Renders the stats as JSON (handwritten — the workspace carries no
/// serialization dependency). Field order is fixed so serial/parallel
/// runs can be compared with a plain `diff`. `mean_fairness` may be
/// `NaN` (no run with defined fairness); JSON has no NaN literal, so it
/// is emitted as `null`.
fn stats_json(
    spec: &str,
    env_name: &str,
    n_seeds: u64,
    rounds: usize,
    stats: &[SweepStats],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scenario\": \"{spec}\",\n"));
    out.push_str(&format!("  \"environment\": \"{env_name}\",\n"));
    out.push_str(&format!("  \"seeds\": {n_seeds},\n"));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str("  \"protocols\": [\n");
    for (i, s) in stats.iter().enumerate() {
        let flows: Vec<String> = s
            .mean_per_flow_mbps
            .iter()
            .map(|v| format!("{v:.9}"))
            .collect();
        let fairness = if s.mean_fairness.is_finite() {
            format!("{:.9}", s.mean_fairness)
        } else {
            "null".to_string()
        };
        out.push_str(&format!(
            "    {{\"protocol\": \"{}\", \"runs\": {}, \"mean_total_mbps\": {:.9}, \"ci95_total_mbps\": {:.9}, \"mean_dof\": {:.9}, \"mean_fairness\": {}, \"mean_per_flow_mbps\": [{}]}}{}\n",
            s.policy,
            s.n_runs,
            s.mean_total_mbps,
            s.ci95_total_mbps,
            s.mean_dof,
            fairness,
            flows.join(", "),
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    // Split flags from positionals.
    let mut positional: Vec<&str> = Vec::new();
    let mut threads: usize = 0;
    // Empty = the library default (`SweepSpec` applies the paper's
    // dot11n/beamforming/nplus trio); only `--policies` overrides it.
    let mut policy_names: Vec<String> = Vec::new();
    let mut env_name: String = "sigcomm11".to_string();
    let mut json_to: Option<Option<String>> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads needs a number");
            }
            "--policies" => {
                i += 1;
                let list = args.get(i).expect("--policies needs a,b,..");
                policy_names = list.split(',').map(str::to_string).collect();
            }
            "--env" => {
                i += 1;
                env_name = args.get(i).expect("--env needs a name").clone();
            }
            "--json" => {
                // Optional path operand: the next arg, unless it is
                // another flag (or there is none) — then JSON goes to
                // stdout. Positionals must precede flags, so nothing
                // else can follow `--json`.
                if args.get(i + 1).is_some_and(|s| !s.starts_with('-')) {
                    i += 1;
                    json_to = Some(Some(args[i].clone()));
                } else {
                    json_to = Some(None);
                }
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let spec = positional.first().copied().unwrap_or("three_pairs");
    let n_seeds: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let rounds: usize = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(25);

    // Resolve the environment first: `random:` sizes its draw to the
    // chosen map's capacity.
    let environment = environment_from_name(&env_name).unwrap_or_else(|| {
        spec_error(&format!(
            "unknown environment {env_name:?} (try {BUILTIN_ENVIRONMENT_NAMES:?})"
        ))
    });
    let scenario = parse_scenario(spec, environment.capacity());
    let mut sweep_spec = SweepSpec::new(scenario.clone())
        .rounds(rounds)
        .seed_count(n_seeds)
        .threads(threads);
    sweep_spec = sweep_spec
        .environment_named(&env_name)
        .expect("environment name validated above");
    for name in &policy_names {
        sweep_spec = sweep_spec.policy_named(name).unwrap_or_else(|unknown| {
            spec_error(&format!(
                "unknown policy {unknown:?} (try {BUILTIN_POLICY_NAMES:?})"
            ))
        });
    }

    eprintln!(
        "== sweep: {spec} in {env_name} ({} nodes, {} flows), {n_seeds} placements x {rounds} rounds, {} ==",
        scenario.antennas.len(),
        scenario.flows.len(),
        if threads == 1 {
            "serial".to_string()
        } else {
            format!("{threads} threads (0 = all cores)")
        }
    );
    eprintln!("antennas: {:?}", scenario.antennas);

    // A scenario/environment mismatch (too many nodes for the map) is
    // an expected operator error, not a crash.
    let stats = sweep_spec.try_run().unwrap_or_else(|e| {
        eprintln!("error: {e} (scenario {spec:?} does not fit environment {env_name:?})");
        std::process::exit(2);
    });

    if let Some(path) = &json_to {
        let json = stats_json(spec, &env_name, n_seeds, rounds, &stats);
        match path {
            Some(p) => {
                std::fs::write(p, &json).expect("write sweep JSON");
                eprintln!("wrote {p}");
            }
            None => print!("{json}"),
        }
        return;
    }

    println!(
        "\n{:>12} {:>10} {:>8} {:>9} {:>9} {:>9}",
        "policy", "total Mb/s", "±95% CI", "mean DoF", "fairness", "runs"
    );
    for s in &stats {
        println!(
            "{:>12} {:>10.2} {:>8.2} {:>9.2} {:>9.2} {:>9}",
            s.policy, s.mean_total_mbps, s.ci95_total_mbps, s.mean_dof, s.mean_fairness, s.n_runs
        );
    }

    println!("\nper-flow means [Mb/s]:");
    for s in &stats {
        let flows: Vec<String> = s
            .mean_per_flow_mbps
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect();
        println!("{:>12}: {}", s.policy, flows.join("  "));
    }
}
