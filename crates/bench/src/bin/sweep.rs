//! Batch Monte-Carlo sweeps over canonical or generated scenarios.
//!
//! Runs `nplus::sim::sweep` — one freshly drawn topology per seed, one
//! shared channel-cached `SimEngine` per topology — and prints mean ±95%
//! CI total goodput per protocol, plus per-flow means.
//!
//! Usage:
//!   cargo run --release --bin sweep -- [scenario] [n_seeds] [rounds]
//!
//! where `scenario` is one of:
//!   three_pairs          the Fig. 3 scenario (default)
//!   ap_downlink          the Fig. 4 scenario
//!   pairs:<n>            n generated tx→rx pairs, random 1–4 antennas
//!   multi_ap:<a>x<c>     a generated cells of one AP + c clients
//!   random:<seed>        a random family draw from the generator
//!
//! Generated scenarios are seeded (generator seed 42 unless `random:`
//! gives one), so every invocation is reproducible.

use nplus::sim::{sweep, Protocol, Scenario, SimConfig};
use nplus_channel::placement::Testbed;
use nplus_testkit::generator::ScenarioGenerator;

fn parse_scenario(spec: &str) -> Scenario {
    if let Some(n) = spec.strip_prefix("pairs:") {
        let n: usize = n.parse().expect("pairs:<n> needs a number");
        return ScenarioGenerator::new(42).n_pairs(n);
    }
    if let Some(shape) = spec.strip_prefix("multi_ap:") {
        let (a, c) = shape
            .split_once('x')
            .expect("multi_ap:<aps>x<clients> needs AxC");
        return ScenarioGenerator::new(42).multi_ap(
            a.parse().expect("AP count"),
            c.parse().expect("client count"),
        );
    }
    if let Some(seed) = spec.strip_prefix("random:") {
        let seed: u64 = seed.parse().expect("random:<seed> needs a number");
        return ScenarioGenerator::new(seed).random();
    }
    match spec {
        "three_pairs" => Scenario::three_pairs(),
        "ap_downlink" => Scenario::ap_downlink(),
        other => panic!("unknown scenario spec {other:?}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let spec = args.get(1).map(String::as_str).unwrap_or("three_pairs");
    let n_seeds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let rounds: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(25);

    let scenario = parse_scenario(spec);
    let cfg = SimConfig {
        rounds,
        ..SimConfig::default()
    };
    let seeds: Vec<u64> = (0..n_seeds).collect();
    let protocols = [Protocol::Dot11n, Protocol::Beamforming, Protocol::NPlus];

    println!(
        "== sweep: {spec} ({} nodes, {} flows), {n_seeds} placements x {rounds} rounds ==",
        scenario.antennas.len(),
        scenario.flows.len()
    );
    println!("antennas: {:?}", scenario.antennas);

    let stats = sweep(&Testbed::sigcomm11(), &scenario, &cfg, &protocols, &seeds);
    println!(
        "\n{:>12} {:>10} {:>8} {:>9} {:>9}",
        "protocol", "total Mb/s", "±95% CI", "mean DoF", "runs"
    );
    for s in &stats {
        println!(
            "{:>12} {:>10.2} {:>8.2} {:>9.2} {:>9}",
            format!("{:?}", s.protocol),
            s.mean_total_mbps,
            s.ci95_total_mbps,
            s.mean_dof,
            s.n_runs
        );
    }

    println!("\nper-flow means [Mb/s]:");
    for s in &stats {
        let flows: Vec<String> = s
            .mean_per_flow_mbps
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect();
        println!("{:>12}: {}", format!("{:?}", s.protocol), flows.join("  "));
    }
}
