//! Batch Monte-Carlo sweeps over canonical or generated scenarios.
//!
//! Runs `nplus::sim::SweepSpec` — one freshly drawn topology per seed,
//! one shared channel-cached `SimEngine` per topology, seeds executed
//! as independent jobs on a scoped-thread pool — and prints mean ±95%
//! CI total goodput per policy, plus per-flow means and mean Jain
//! fairness. Results are bit-for-bit identical for every `--threads`
//! value (including 1); CI diffs the two to prove it.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin sweep -- [scenario] [n_seeds] [rounds] \
//!     [--threads N] [--policies a,b,..] [--env name] \
//!     [--mobility spec] [--json [path]] [--record dir]
//!
//! where `scenario` is one of:
//!   three_pairs          the Fig. 3 scenario (default)
//!   ap_downlink          the Fig. 4 scenario
//!   pairs:<n>            n generated tx→rx pairs, random 1–4 antennas
//!   multi_ap:<a>x<c>     a generated cells of one AP + c clients
//!   hidden:<n>           n generated transmitters sharing one receiver
//!   asym:<n>             n generated maximally antenna-asymmetric pairs
//!   dense:<n>            n-node generated mesh (even, ≤32; extended map)
//!   random:<seed>        a random family draw from the generator
//!   city:<n>             n-node procedural city (multiple of 8; needs
//!                        `--env multi_cell` beyond 40 nodes)
//!   load:<model>/<spec>  any form above under a traffic model
//!                        (saturated | poisson:<mean> | bursty:<on>x<off>)
//!
//! Flags (positionals must precede flags):
//!   --threads N          worker threads (default 0 = all cores; 1 = serial)
//!   --policies a,b,..    comma-separated policy names (default
//!                        dot11n,beamforming,nplus; also oracle,
//!                        greedy_join — anything policy_from_name knows)
//!   --env name           propagation environment (default sigcomm11 —
//!                        the paper's indoor world; also outdoor,
//!                        rich_scatter, degraded_hardware, multi_cell —
//!                        anything environment_from_name knows)
//!   --mobility spec      node mobility (default static; also
//!                        waypoint:<step_m>x<epoch_rounds>)
//!   --json [path]        machine-readable stats to `path` (default stdout)
//!   --record dir         write one event recording per (policy, seed)
//!                        into `dir` as `<policy>-s<seed>.rec`; stats are
//!                        aggregated from the same runs, bit-identical to
//!                        an unrecorded sweep at any `--threads` value
//! ```
//!
//! Generated scenarios are seeded (generator seed 42 unless `random:`
//! gives one), so every invocation is reproducible. A bad
//! `--env`/`--policies`/`--mobility` name or a scenario too large for
//! the chosen environment's maps reports cleanly and exits 2.

use nplus::prelude::*;
use nplus::run_indexed;
use nplus_codec::export::sweep_report_json;
use nplus_codec::{RecordingContext, RecordingObserver};
use nplus_testkit::{parse_spec, SCENARIO_SPEC_HELP};

/// Reports an invalid operand the way every operator error is reported:
/// one line on stderr, exit 2 — never a panic backtrace.
fn spec_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// One seed's worth of recorded runs: the per-policy results plus the
/// encoded recording bytes, keyed by output file name.
type RecordedSeed = (SeedResults, Vec<(String, Vec<u8>)>);

/// Runs every seed as an indexed job on the scoped-thread pool — same
/// executor, same merge order as `SweepSpec::try_run`, so the stats it
/// yields are bit-identical to an unrecorded sweep at any thread count —
/// while a [`RecordingObserver`] per (policy, seed) captures the event
/// stream. Recordings are encoded to memory inside the job and written
/// in deterministic (seed-major, policy-within-seed) order afterwards.
fn run_recorded(
    sweep_spec: &SweepSpec,
    spec: &str,
    n_flows: usize,
    traffic: TrafficModel,
    mobility: MobilityModel,
    threads: usize,
    dir: &str,
) -> Result<Vec<SweepStats>, String> {
    let names = sweep_spec.policy_names();
    let seeds = sweep_spec.seed_list().to_vec();
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let jobs: Vec<Result<RecordedSeed, String>> = run_indexed(seeds.len(), threads, |i| {
        let seed = seeds[i];
        let mut recorders: Vec<RecordingObserver<Vec<u8>>> = (0..names.len())
            .map(|p| {
                RecordingObserver::new(
                    Vec::new(),
                    RecordingContext {
                        scenario: spec.to_string(),
                        traffic: traffic.spec_string(),
                        mobility: mobility.spec_string(),
                        seed_index: i,
                        n_seeds: seeds.len(),
                        policy_index: p,
                        n_policies: names.len(),
                    },
                )
            })
            .collect();
        let mut taps: Vec<&mut dyn RoundObserver> = recorders
            .iter_mut()
            .map(|r| r as &mut dyn RoundObserver)
            .collect();
        let results = sweep_spec
            .try_run_seed_observed(seed, &mut taps)
            .map_err(|e| e.to_string())?;
        drop(taps);
        let mut files = Vec::with_capacity(names.len());
        for (name, rec) in names.iter().zip(recorders) {
            let bytes = rec
                .finish()
                .map_err(|e| format!("encoding {name}-s{seed}: {e}"))?;
            files.push((format!("{name}-s{seed}.rec"), bytes));
        }
        Ok((results, files))
    });
    let mut results = Vec::with_capacity(seeds.len());
    for job in jobs {
        let (seed_results, files) = job?;
        for (file, bytes) in files {
            let path = format!("{dir}/{file}");
            std::fs::write(&path, bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        results.push(seed_results);
    }
    Ok(aggregate_results(n_flows, &names, &results))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    // Split flags from positionals.
    let mut positional: Vec<&str> = Vec::new();
    let mut threads: usize = 0;
    // Empty = the library default (`SweepSpec` applies the paper's
    // dot11n/beamforming/nplus trio); only `--policies` overrides it.
    let mut policy_names: Vec<String> = Vec::new();
    let mut env_name: String = "sigcomm11".to_string();
    let mut mobility = MobilityModel::Static;
    let mut json_to: Option<Option<String>> = None;
    let mut record_to: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| spec_error("--threads needs a number"));
            }
            "--policies" => {
                i += 1;
                let list = args
                    .get(i)
                    .unwrap_or_else(|| spec_error("--policies needs a,b,.."));
                policy_names = list.split(',').map(str::to_string).collect();
            }
            "--env" => {
                i += 1;
                env_name = args
                    .get(i)
                    .unwrap_or_else(|| spec_error("--env needs a name"))
                    .clone();
            }
            "--mobility" => {
                i += 1;
                let s = args
                    .get(i)
                    .unwrap_or_else(|| spec_error("--mobility needs a spec"));
                mobility = s.parse().unwrap_or_else(|e: String| spec_error(&e));
            }
            "--record" => {
                i += 1;
                record_to = Some(
                    args.get(i)
                        .unwrap_or_else(|| spec_error("--record needs a directory"))
                        .clone(),
                );
            }
            "--json" => {
                // Optional path operand: the next arg, unless it is
                // another flag (or there is none) — then JSON goes to
                // stdout. Positionals must precede flags, so nothing
                // else can follow `--json`.
                if args.get(i + 1).is_some_and(|s| !s.starts_with('-')) {
                    i += 1;
                    json_to = Some(Some(args[i].clone()));
                } else {
                    json_to = Some(None);
                }
            }
            other => positional.push(other),
        }
        i += 1;
    }
    let spec = positional.first().copied().unwrap_or("three_pairs");
    let n_seeds: u64 = match positional.get(1) {
        None => 20,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| spec_error(&format!("n_seeds needs a number, got {s:?}"))),
    };
    let rounds: usize = match positional.get(2) {
        None => 25,
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| spec_error(&format!("rounds needs a number, got {s:?}"))),
    };

    // Resolve the environment first: `random:` sizes its draw to the
    // chosen map's capacity.
    let environment = environment_from_name(&env_name).unwrap_or_else(|| {
        spec_error(&format!(
            "unknown environment {env_name:?} (try {BUILTIN_ENVIRONMENT_NAMES:?})"
        ))
    });
    let parsed = parse_spec(spec, environment.capacity())
        .unwrap_or_else(|e| spec_error(&format!("{e}\nscenario forms:\n{SCENARIO_SPEC_HELP}")));
    let scenario = parsed.scenario;
    let traffic = parsed.traffic.unwrap_or_default();
    let mut sweep_spec = SweepSpec::new(scenario.clone())
        .rounds(rounds)
        .seed_count(n_seeds)
        .threads(threads)
        .traffic(traffic)
        .mobility(mobility);
    sweep_spec = sweep_spec
        .environment_named(&env_name)
        .expect("environment name validated above");
    for name in &policy_names {
        sweep_spec = sweep_spec.policy_named(name).unwrap_or_else(|unknown| {
            spec_error(&format!(
                "unknown policy {unknown:?} (try {BUILTIN_POLICY_NAMES:?})"
            ))
        });
    }

    eprintln!(
        "== sweep: {spec} in {env_name} ({} nodes, {} flows), {n_seeds} placements x {rounds} rounds, {} ==",
        scenario.antennas.len(),
        scenario.flows.len(),
        if threads == 1 {
            "serial".to_string()
        } else {
            format!("{threads} threads (0 = all cores)")
        }
    );
    eprintln!("antennas: {:?}", scenario.antennas);

    // A scenario/environment mismatch (too many nodes for the map) is
    // an expected operator error, not a crash.
    let stats = match &record_to {
        Some(dir) => {
            let n_flows = scenario.flows.len();
            let stats = run_recorded(&sweep_spec, spec, n_flows, traffic, mobility, threads, dir)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
            eprintln!("recordings in {dir}/");
            stats
        }
        None => sweep_spec.try_run().unwrap_or_else(|e| {
            eprintln!("error: {e} (scenario {spec:?} does not fit environment {env_name:?})");
            std::process::exit(2);
        }),
    };

    if let Some(path) = &json_to {
        let json = sweep_report_json(
            spec,
            &env_name,
            &traffic.spec_string(),
            &mobility.spec_string(),
            n_seeds,
            rounds,
            &stats,
        );
        match path {
            Some(p) => {
                if let Err(e) = std::fs::write(p, &json) {
                    eprintln!("error: cannot write {p}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote {p}");
            }
            None => print!("{json}"),
        }
        return;
    }

    println!(
        "\n{:>12} {:>10} {:>8} {:>9} {:>9} {:>9}",
        "policy", "total Mb/s", "±95% CI", "mean DoF", "fairness", "runs"
    );
    for s in &stats {
        println!(
            "{:>12} {:>10.2} {:>8.2} {:>9.2} {:>9.2} {:>9}",
            s.policy, s.mean_total_mbps, s.ci95_total_mbps, s.mean_dof, s.mean_fairness, s.n_runs
        );
    }

    println!("\nper-flow means [Mb/s]:");
    for s in &stats {
        let flows: Vec<String> = s
            .mean_per_flow_mbps
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect();
        println!("{:>12}: {}", s.policy, flows.join("  "));
    }
}
