//! §3.5 overhead numbers — the light-weight handshake.
//!
//! Reproduces the paper's accounting:
//!   * the alignment space, differentially encoded, compresses to about
//!     **3 OFDM symbols** on average over LOS + NLOS channels;
//!   * CRC and bitrate fit in one symbol, so the ACK header grows by ~4
//!     symbols and the data header by ~1;
//!   * the total handshake overhead is **2 SIFS + 4 OFDM symbols ≈ 4%**
//!     of a 1500-byte packet at 18 Mb/s.
//!
//! Also prints the differential-versus-raw encoding ablation.
//!
//! Run with: `cargo run --release --bin tab_overhead`

use nplus::handshake::{decode_alignment_space, encode_alignment_space, max_space_error};
use nplus_bench::support::mean;
use nplus_channel::fading::{DelayProfile, FadingChannel};
use nplus_linalg::{CVector, Subspace};
use nplus_phy::params::{occupied_subcarrier_indices, OfdmConfig};
use nplus_phy::rates::{Mcs, RATE_TABLE};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws the per-subcarrier unwanted space a 2-antenna receiver would
/// advertise: the direction a single interferer's channel arrives from.
fn sample_spaces(profile: &DelayProfile, rng: &mut StdRng) -> Vec<Subspace> {
    let cfg = OfdmConfig::usrp2();
    let ch: Vec<FadingChannel> = (0..2)
        .map(|_| FadingChannel::sample(profile, rng))
        .collect();
    occupied_subcarrier_indices()
        .iter()
        .map(|&k| {
            let dir: CVector = ch
                .iter()
                .map(|c| c.freq_response_at(k, cfg.fft_len))
                .collect();
            Subspace::span(2, &[dir])
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(35);
    let trials = 200;
    // Header rate context: the paper quotes 18 Mb/s on its 10 MHz channel
    // — that is the 64-QAM 2/3 geometry (216 data bits/symbol at 20 MHz
    // halves to 18 Mb/s at 10 MHz). We report against several rates.
    let report_rates: [(usize, &str); 3] = [
        (3, "QPSK 3/4"),
        (6, "64QAM 2/3 (18 Mb/s @10MHz)"),
        (7, "64QAM 3/4"),
    ];

    println!("== §3.5: alignment-space compression ==\n");
    for (profile, name) in [(DelayProfile::los(), "LOS"), (DelayProfile::nlos(), "NLOS")] {
        let mut bytes = Vec::with_capacity(trials);
        let mut errors = Vec::with_capacity(trials);
        for _ in 0..trials {
            let spaces = sample_spaces(&profile, &mut rng);
            let blob = encode_alignment_space(&spaces);
            let decoded = decode_alignment_space(&blob).expect("own blob must decode");
            errors.push(max_space_error(&spaces, &decoded));
            bytes.push(blob.len() as f64);
        }
        let raw_bytes = 2.0 + 52.0 * 4.0 * 2.0; // header + full 16-bit everywhere
        println!("{name} channels ({trials} draws):");
        println!(
            "  blob size:         {:6.1} bytes avg (raw encoding: {raw_bytes:.0} bytes, {:.1}x larger)",
            mean(&bytes),
            raw_bytes / mean(&bytes)
        );
        for (idx, label) in report_rates {
            let mcs: Mcs = RATE_TABLE[idx];
            let syms = (mean(&bytes) * 8.0 / mcs.data_bits_per_symbol() as f64).ceil();
            println!("  at {label:<28} {syms:>4.0} OFDM symbols (paper: ~3)");
        }
        println!(
            "  worst subspace reconstruction error: {:.4} (projector Frobenius distance)\n",
            errors.iter().fold(0.0f64, |m, &e| m.max(e))
        );
    }

    // Total handshake overhead for a 1500-byte packet. The paper quotes
    // "18 Mb/s", its rate label for the QPSK 3/4 geometry (the label
    // follows the 20 MHz menu; on the 10 MHz USRP2 channel the realized
    // rate is half).
    println!("== §3.5: total handshake overhead ==\n");
    let cfg = OfdmConfig::usrp2();
    let mcs = RATE_TABLE[3]; // QPSK 3/4 — the "18 Mb/s" geometry
    let packet_symbols = (1500.0 * 8.0 / mcs.data_bits_per_symbol() as f64).ceil();
    // Per the paper's accounting: 2 SIFS + 4 extra OFDM symbols (3 for
    // the alignment space + 1 for CRC/bitrate).
    let sifs_symbols = (16e-6 * cfg.bandwidth_hz / cfg.symbol_len() as f64).ceil();
    for extra_syms in [4.0, 6.0] {
        let overhead = 2.0 * sifs_symbols + extra_syms;
        println!(
            "with {extra_syms:.0} extra header symbols: overhead {:.1}% of a 1500 B packet at the 18 Mb/s geometry (paper: ~4%)",
            100.0 * overhead / (overhead + packet_symbols),
        );
    }
    println!(
        "\n(1500 B at QPSK 3/4 = {packet_symbols:.0} OFDM symbols of 8 us; SIFS = {sifs_symbols:.0} symbols)"
    );
}
