//! Ablations of n+'s design choices (DESIGN.md §5).
//!
//! 1. **Nulling-only versus nulling + alignment** for the third joiner —
//!    §2's analytical argument quantified: with nulling alone, the
//!    3-antenna pair can never join two ongoing transmissions.
//! 2. **Join-power threshold L sweep** — how the cancellation-depth
//!    budget trades the protected (single-antenna) flow's throughput
//!    against total network throughput.
//! 3. **Join power control on/off** — what the protected flow loses when
//!    joiners ignore the L rule entirely.
//!
//! Run with: `cargo run --release --bin ablate`

use nplus::policy::{GreedyJoin, MacPolicy, NPlus};
use nplus::precoder::{compute_precoders, OwnReceiver, PrecoderError, ProtectedReceiver};
use nplus::sim::SimConfig;
use nplus_bench::support::mean;
use nplus_channel::fading::DelayProfile;
use nplus_channel::mimo::MimoLink;
use nplus_linalg::Subspace;
use nplus_phy::params::OfdmConfig;
use nplus_testkit::scenario::three_pairs;
use rand::rngs::StdRng;

/// Ablation 1: how often can a 3-antenna node join two ongoing
/// transmissions (one 1-antenna, one 2-antenna receiver) with
/// nulling-only versus nulling+alignment?
fn ablate_alignment(rng: &mut StdRng) {
    println!("== ablation 1: nulling-only vs nulling+alignment for the third joiner ==\n");
    let cfg = OfdmConfig::usrp2();
    let trials = 300;
    let mut null_only_ok = 0usize;
    let mut with_align_ok = 0usize;
    for _ in 0..trials {
        let h_r1 =
            MimoLink::sample(3, 1, 8.0, &DelayProfile::los(), rng).channel_matrix(7, cfg.fft_len);
        let h_r2 =
            MimoLink::sample(3, 2, 8.0, &DelayProfile::los(), rng).channel_matrix(7, cfg.fft_len);
        let h_r3 =
            MimoLink::sample(3, 3, 12.0, &DelayProfile::nlos(), rng).channel_matrix(7, cfg.fft_len);
        let interference_dir = MimoLink::sample(1, 2, 5.0, &DelayProfile::los(), rng)
            .channel_matrix(7, cfg.fft_len)
            .col(0);
        let own = [OwnReceiver {
            channel: h_r3.clone(),
            n_streams: 1,
            unwanted: Subspace::zero(3),
        }];
        // Nulling-only: zero out at all three receive antennas.
        let r = compute_precoders(
            3,
            &[
                ProtectedReceiver::nulling(h_r1.clone()),
                ProtectedReceiver::nulling(h_r2.clone()),
            ],
            &own,
        );
        if r.is_ok() {
            null_only_ok += 1;
        } else {
            assert!(matches!(r, Err(PrecoderError::NoDegreesOfFreedom)));
        }
        // Nulling at rx1 + alignment at rx2.
        let u2 = Subspace::span(2, &[interference_dir]);
        if compute_precoders(
            3,
            &[
                ProtectedReceiver::nulling(h_r1),
                ProtectedReceiver::aligning(h_r2, u2),
            ],
            &own,
        )
        .is_ok()
        {
            with_align_ok += 1;
        }
    }
    println!("joins possible over {trials} random channel draws:");
    println!(
        "  nulling-only:        {:>4}   ({:.0}%) — §2: zero by construction",
        null_only_ok,
        100.0 * null_only_ok as f64 / trials as f64
    );
    println!(
        "  nulling + alignment: {:>4}   ({:.0}%)\n",
        with_align_ok,
        100.0 * with_align_ok as f64 / trials as f64
    );
}

/// Ablations 2 & 3: L sweep and power control on/off, on the Fig. 3
/// scenario.
fn ablate_threshold() {
    println!("== ablation 2/3: join-power threshold L ==\n");
    let placements = 12u64;
    println!(
        "{:>18} {:>14} {:>16} {:>14}",
        "L [dB]", "total [Mb/s]", "1-ant flow [Mb/s]", "mean DoF"
    );
    // Turning power control off is a *policy* ablation now: `GreedyJoin`
    // is n+ with the §4 decision bypassed at the policy layer (the old
    // `SimConfig::power_control = false` knob, bit-for-bit).
    let rows: [(&str, f64, &dyn MacPolicy); 5] = [
        ("15", 15.0, &NPlus),
        ("21", 21.0, &NPlus),
        ("27 (paper)", 27.0, &NPlus),
        ("33", 33.0, &NPlus),
        ("off (greedy_join)", 27.0, &GreedyJoin),
    ];
    for (label, l_db, policy) in rows {
        let mut totals = Vec::new();
        let mut flow0 = Vec::new();
        let mut dof = Vec::new();
        for seed in 0..placements {
            let built = three_pairs(seed);
            let cfg = SimConfig {
                rounds: 20,
                l_db,
                ..SimConfig::default()
            };
            let r = built.run_policy(policy, &cfg, seed ^ 0xA11);
            totals.push(r.total_mbps);
            flow0.push(r.per_flow_mbps[0]);
            dof.push(r.mean_dof);
        }
        println!(
            "{label:>18} {:>14.2} {:>16.2} {:>14.2}",
            mean(&totals),
            mean(&flow0),
            mean(&dof)
        );
    }
    println!("\n(lower L throttles joiners harder; 'off' lets joiners interfere at full power)");
}

fn main() {
    let mut rng = nplus_testkit::rng(77);
    ablate_alignment(&mut rng);
    ablate_threshold();
}
