//! Fig. 13 — Throughput gain with different numbers of transmit and
//! receive antennas (the AP scenario of Fig. 4).
//!
//! Reproduces the paper's §6.4 experiment: c1 (1 ant) → AP1 (2 ant)
//! uplink while AP2 (3 ant) → c2, c3 (2 ant each) downlink; CDFs of the
//! ratio of n+'s throughput to 802.11n's (panel a) and to multi-user
//! beamforming's (panel b), total and per link. Paper headlines:
//!   * total gain 2.4× over 802.11n, 1.8× over beamforming;
//!   * AP2's clients gain 3.5–3.6× / 2.5–2.6×;
//!   * c1 loses ~3.2%.
//!
//! Run with: `cargo run --release --bin fig13_hetero`

use nplus::sim::{Protocol, SimConfig};
use nplus_bench::support::{mean, print_cdf};
use nplus_testkit::scenario::ap_downlink;

fn main() {
    let n_placements: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let cfg = SimConfig {
        rounds: 25,
        ..SimConfig::default()
    };
    let protocols = [Protocol::Dot11n, Protocol::Beamforming, Protocol::NPlus];

    println!("== Fig. 13: AP scenario, {n_placements} random placements ==");
    // results[protocol][flow or 3=total] -> per-placement Mb/s.
    let mut results = vec![vec![Vec::new(); 4]; 3];
    for seed in 0..n_placements {
        let built = ap_downlink(seed);
        for (p, &protocol) in protocols.iter().enumerate() {
            let r = built.run_with(protocol, &cfg, seed ^ 0xBEEF);
            for f in 0..3 {
                results[p][f].push(r.per_flow_mbps[f]);
            }
            results[p][3].push(r.total_mbps);
        }
    }

    let labels = ["c1-AP1", "AP2-c2", "AP2-c3", "total"];
    for (panel, baseline) in [("a", 0usize), ("b", 1usize)] {
        let base_name = if baseline == 0 {
            "802.11n"
        } else {
            "beamforming"
        };
        println!("\n---- panel ({panel}): n+ / {base_name} gain CDFs ----");
        for item in [3usize, 0, 1, 2] {
            let mut gains: Vec<f64> = results[2][item]
                .iter()
                .zip(&results[baseline][item])
                .map(|(np, b)| np / b.max(1e-9))
                .collect();
            print_cdf(&format!("gain of {}", labels[item]), &mut gains);
        }
    }

    println!("\n== headline comparison (ratios of means) ==");
    let g = |item: usize, b: usize| mean(&results[2][item]) / mean(&results[b][item]).max(1e-9);
    println!("total  vs 802.11n:     {:.2}x   (paper: 2.4x)", g(3, 0));
    println!("total  vs beamforming: {:.2}x   (paper: 1.8x)", g(3, 1));
    println!("AP2-c2 vs 802.11n:     {:.2}x   (paper: 3.5x)", g(1, 0));
    println!("AP2-c3 vs 802.11n:     {:.2}x   (paper: 3.6x)", g(2, 0));
    println!("AP2-c2 vs beamforming: {:.2}x   (paper: 2.5x)", g(1, 1));
    println!(
        "c1-AP1 vs 802.11n:     {:.2}x   (paper: 0.97x — ~3.2% loss)",
        g(0, 0)
    );
}
