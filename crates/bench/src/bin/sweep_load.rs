//! `sweep-load` — load generator and correctness checker for the
//! `sweep-server`.
//!
//! Cycles a configurable number of requests over a small mix of
//! distinct sweep specs (different scenario families, environments,
//! policy sets and seed lists), all against one running server, and
//! verifies the service contract on every response:
//!
//! * every request answers `"status": "ok"` — no errors, no panics;
//! * the **first** request for each distinct spec is a cache miss;
//! * every **repeat** of a spec reports `"cache_hit": true` and carries
//!   statistics **byte-identical** to the first response's.
//!
//! Any violation prints one line and exits 1 — this is the binary CI
//! drives against a background server. On success it records a
//! `sweep_server` section (throughput, cache-hit rate, bit-identity)
//! into `BENCH_sim.json`, merging with whatever `perf_sweep` wrote.
//!
//! ```text
//! sweep-load [--addr HOST:PORT] [--requests N] [--out PATH] [--shutdown]
//! ```
//!
//! `--requests` defaults to 15 (3 passes over the 5-spec mix);
//! `--shutdown` sends `{"cmd":"shutdown"}` at the end so a CI step can
//! tear the background server down deterministically.

use nplus_server::client;
use nplus_server::json::{self, Json};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: sweep-load [--addr HOST:PORT] [--requests N] [--out PATH] [--shutdown]";

/// The request mix: small, fast specs spanning scenario families,
/// environments, policy sets, seed-list spellings and the sparse
/// multi-cell world with a non-default traffic model.
const SPEC_MIX: [&str; 5] = [
    r#"{"cmd":"sweep","scenario":"pairs:2","rounds":3,"seeds":[0,1],"policies":["dot11n","nplus"],"threads":1}"#,
    r#"{"cmd":"sweep","scenario":"three_pairs","rounds":2,"seeds":[0],"policies":["nplus"],"environment":"outdoor"}"#,
    r#"{"cmd":"sweep","scenario":"hidden:3","rounds":2,"seed_count":2,"policies":["dot11n"]}"#,
    r#"{"cmd":"sweep","scenario":"asym:2","rounds":2,"seeds":[5],"policies":["beamforming"],"environment":"rich_scatter"}"#,
    r#"{"cmd":"sweep","scenario":"load:poisson:0.5/city:16","rounds":2,"seeds":[0],"policies":["nplus"],"environment":"multi_cell"}"#,
];

fn fail(msg: &str) -> ExitCode {
    eprintln!("sweep-load: {msg}");
    ExitCode::FAILURE
}

fn arg_error(msg: &str) -> ExitCode {
    eprintln!("sweep-load: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:4011".to_string();
    let mut requests: usize = 15;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return arg_error("--addr needs a HOST:PORT value"),
            },
            "--requests" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => requests = n,
                None => return arg_error("--requests needs a number"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => return arg_error("--out needs a path"),
            },
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return arg_error(&format!("unknown argument {other:?}")),
        }
    }
    if requests == 0 {
        return arg_error("--requests must be at least 1");
    }

    let mut stream = match client::connect_retry(&addr, Duration::from_secs(10)) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot connect to {addr}: {e}")),
    };
    println!(
        "sweep-load: {requests} requests over {} distinct specs against {addr}",
        SPEC_MIX.len()
    );

    // First response per spec index: (key, serialized stats).
    let mut first_seen: Vec<Option<(String, String)>> = vec![None; SPEC_MIX.len()];
    let mut cache_hits: u64 = 0;
    let started = Instant::now();
    for i in 0..requests {
        let which = i % SPEC_MIX.len();
        let resp = match client::roundtrip(&mut stream, SPEC_MIX[which]) {
            Ok(r) => r,
            Err(e) => return fail(&format!("request {i} failed: {e}")),
        };
        if resp.get("status").and_then(Json::as_str) != Some("ok") {
            return fail(&format!(
                "request {i} (spec {which}) was rejected: {}",
                resp.to_string_compact()
            ));
        }
        let Some(hit) = resp.get("cache_hit").and_then(Json::as_bool) else {
            return fail(&format!("request {i} response carries no cache_hit marker"));
        };
        let Some(key) = resp.get("key").and_then(Json::as_str) else {
            return fail(&format!("request {i} response carries no key"));
        };
        let Some(stats) = resp.get("stats") else {
            return fail(&format!("request {i} response carries no stats"));
        };
        let stats_text = stats.to_string_compact();
        match &first_seen[which] {
            None => {
                if hit {
                    return fail(&format!(
                        "request {i}: first sight of spec {which} reported cache_hit=true"
                    ));
                }
                first_seen[which] = Some((key.to_string(), stats_text));
            }
            Some((first_key, first_stats)) => {
                if !hit {
                    return fail(&format!(
                        "request {i}: repeat of spec {which} was not served from cache"
                    ));
                }
                if key != first_key {
                    return fail(&format!(
                        "request {i}: repeat of spec {which} changed key {first_key} -> {key}"
                    ));
                }
                if &stats_text != first_stats {
                    return fail(&format!(
                        "request {i}: cached stats for spec {which} are not bit-identical"
                    ));
                }
                cache_hits += 1;
            }
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    let distinct = first_seen.iter().filter(|s| s.is_some()).count();
    let hit_rate = cache_hits as f64 / requests as f64;
    let rps = requests as f64 / seconds.max(1e-9);
    println!(
        "sweep-load: {requests} requests in {seconds:.3} s ({rps:.1} req/s), \
         {cache_hits} cache hits ({:.0}%), {distinct} distinct specs, all repeats bit-identical",
        hit_rate * 100.0
    );

    if shutdown {
        if let Err(e) = client::roundtrip(&mut stream, r#"{"cmd":"shutdown"}"#) {
            return fail(&format!("shutdown request failed: {e}"));
        }
        println!("sweep-load: server shutdown requested");
    }

    let section = Json::Obj(vec![
        ("requests".to_string(), Json::Int(requests as i64)),
        ("distinct_specs".to_string(), Json::Int(distinct as i64)),
        ("cache_hits".to_string(), Json::Int(cache_hits as i64)),
        ("cache_hit_rate".to_string(), json::json_f64(hit_rate)),
        ("seconds".to_string(), json::json_f64(seconds)),
        ("requests_per_sec".to_string(), json::json_f64(rps)),
        ("repeat_bit_identical".to_string(), Json::Bool(true)),
    ]);
    match merge_section(&out_path, section) {
        Ok(()) => {
            println!("sweep-load: recorded sweep_server section in {out_path}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("cannot record results in {out_path}: {e}")),
    }
}

/// Replaces (or appends) the top-level `"sweep_server"` member of the
/// bench JSON file, preserving every other member. A missing file
/// starts a fresh document; an unparseable one is an error, not a
/// silent overwrite.
fn merge_section(path: &str, section: Json) -> Result<(), String> {
    let mut members = match std::fs::read_to_string(path) {
        Ok(text) => match json::parse(&text)? {
            Json::Obj(members) => members,
            _ => return Err("existing file is not a JSON object".to_string()),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.to_string()),
    };
    members.retain(|(k, _)| k != "sweep_server");
    members.push(("sweep_server".to_string(), section));
    // One top-level member per line (compact values) — the same
    // diff-friendly shape perf_sweep writes.
    let mut out = String::from("{\n");
    for (i, (k, v)) in members.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&Json::Str(k.clone()).to_string_compact());
        out.push_str(": ");
        out.push_str(&v.to_string_compact());
        if i + 1 < members.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");
    std::fs::write(path, out).map_err(|e| e.to_string())
}
