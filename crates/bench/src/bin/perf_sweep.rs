//! Perf tracking for the round simulator and the sweep engine, in two
//! sections, both emitted into `BENCH_sim.json`:
//!
//! **Section 1 — the round engine** (unchanged from PR 2): times
//! `simulate` on the Fig. 3 scenario (40 rounds, n+, default config)
//! across a batch of random placements in three variants:
//!
//! * **legacy** — the frozen pre-PR implementation
//!   (`nplus_bench::legacy`): per-call channel recomputation,
//!   per-subcarrier clones, per-stream pseudo-inverses, no opening-plan
//!   memo;
//! * **uncached** — the new `SimEngine` with the channel cache disabled
//!   (isolates the cache win from the engine restructuring);
//! * **cached** — the new engine as shipped.
//!
//! `speedup` in the JSON is aggregate cached-vs-legacy wall clock over
//! all placements; `cache_speedup` is aggregate cached-vs-uncached. The
//! cached and uncached runs must produce bit-for-bit identical
//! `RunResult`s on every placement — the binary asserts it.
//!
//! **Section 2 — the sweep engine**: times a generated-scenario
//! Monte-Carlo batch (all three protocols per seed) through
//!
//! * the **legacy** simulator driven by the same per-seed loop,
//! * the **serial** `sweep` path (1 thread), and
//! * `sweep_parallel` at **2 and 4 threads**.
//!
//! The parallel runs must produce `SweepStats` bit-for-bit identical to
//! the serial run — asserted, not eyeballed — and the JSON records the
//! speedup-vs-threads row. Speedup ratios are only reported when the
//! machine has enough cores to observe them (`sweep_speedup_2t` needs
//! 2, `sweep_speedup_4t` needs 4); below that they are `null` and
//! `multi_core_observable` is `false` — the raw seconds rows stay, and
//! the determinism assertion still bites.
//!
//! **Section 3 — environments**: times the same generated batch once
//! per registered propagation environment (`sigcomm11`, `outdoor`,
//! `rich_scatter`, `degraded_hardware`, `multi_cell`) through the
//! serial `SweepSpec` path, so the per-environment cost of scenario
//! construction and simulation shows up in the perf trajectory
//! (`sweep_environments` in the JSON).
//!
//! **Section 4 — the city-scale sparse world**: times a procedural
//! `city:256` sweep in the `multi_cell` environment (sparse link
//! storage — only links above the environment's received-power floor
//! are materialised) and records the `sweep_city` row: wall clock and
//! node-rounds/s, the throughput figure the sparse refactor is
//! accountable for.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin perf_sweep -- [iters] [out_path]
//! ```
//!
//! `iters` (default 3) is how many timed repetitions the best-of is
//! taken over; `out_path` defaults to `BENCH_sim.json`. CI runs this as
//! a smoke step with `iters = 1`; no thresholds are enforced — the JSON
//! is the perf trajectory record.

use nplus::sim::{
    simulate, sweep_parallel, Protocol, RunResult, Scenario, SimConfig, SweepSpec, SweepStats,
};
use nplus_bench::legacy::simulate_legacy;
use nplus_channel::environment::BUILTIN_ENVIRONMENT_NAMES;
use nplus_channel::placement::Testbed;
use nplus_medium::topology::{build_topology, TopologyConfig};
use nplus_testkit::generator::ScenarioGenerator;
use nplus_testkit::scenario::three_pairs;
use nplus_testkit::spec::city_scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const N_PLACEMENTS: u64 = 8;
const SIM_SEED: u64 = 0xC0FFEE;
const ROUNDS: usize = 40;

/// Sweep-engine batch shape: a generated 4-pair scenario, every seed
/// simulated under all three protocols.
const SWEEP_SEEDS: u64 = 12;
const SWEEP_ROUNDS: usize = 25;

/// City-scale batch shape: one placement of a procedural 256-node
/// (32-cell) city in the sparse `multi_cell` world, n+ only.
const CITY_NODES: usize = 256;
const CITY_ROUNDS: usize = 4;

/// One-shot `simulate` (or legacy) wall clock summed over all
/// placements; returns (seconds, per-placement results).
fn time_variant(cfg: &SimConfig, legacy: bool) -> (f64, Vec<RunResult>) {
    let mut total = 0.0;
    let mut results = Vec::new();
    for seed in 0..N_PLACEMENTS {
        let built = three_pairs(seed);
        let mut rng = StdRng::seed_from_u64(SIM_SEED);
        let t = Instant::now();
        let r = if legacy {
            simulate_legacy(
                &built.topology,
                &built.scenario,
                Protocol::NPlus,
                cfg,
                &mut rng,
            )
        } else {
            simulate(
                &built.topology,
                &built.scenario,
                Protocol::NPlus,
                cfg,
                &mut rng,
            )
        };
        total += t.elapsed().as_secs_f64();
        results.push(r);
    }
    (total, results)
}

/// Best-of-`iters` aggregate seconds for a variant.
fn best_of(cfg: &SimConfig, legacy: bool, iters: usize) -> (f64, Vec<RunResult>) {
    let mut best = f64::INFINITY;
    let mut kept = Vec::new();
    for _ in 0..iters {
        let (t, results) = time_variant(cfg, legacy);
        if t < best {
            best = t;
            kept = results;
        }
    }
    (best, kept)
}

/// Bitwise equality of two sweep-stat lists — the determinism contract
/// of `sweep_parallel` (no tolerance: merged in seed order, every float
/// must match exactly).
fn stats_identical(a: &[SweepStats], b: &[SweepStats]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.policy == y.policy
                && x.n_runs == y.n_runs
                && x.mean_total_mbps == y.mean_total_mbps
                && x.ci95_total_mbps == y.ci95_total_mbps
                && x.mean_per_flow_mbps == y.mean_per_flow_mbps
                && x.mean_dof == y.mean_dof
                && x.mean_fairness.to_bits() == y.mean_fairness.to_bits()
        })
}

/// Best-of-`iters` wall clock of the sweep batch at a thread count.
fn time_sweep(
    testbed: &Testbed,
    scenario: &Scenario,
    cfg: &SimConfig,
    protocols: &[Protocol],
    seeds: &[u64],
    threads: usize,
    iters: usize,
) -> (f64, Vec<SweepStats>) {
    let mut best = f64::INFINITY;
    let mut kept = Vec::new();
    for _ in 0..iters {
        let t = Instant::now();
        let stats = sweep_parallel(testbed, scenario, cfg, protocols, seeds, threads);
        let dt = t.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
            kept = stats;
        }
    }
    (best, kept)
}

/// Best-of-`iters` wall clock of the same batch through the frozen
/// legacy simulator (identical per-seed topology/RNG derivations, no
/// engine reuse across protocols — exactly how a pre-PR sweep looked).
fn time_legacy_sweep(
    testbed: &Testbed,
    scenario: &Scenario,
    cfg: &SimConfig,
    protocols: &[Protocol],
    seeds: &[u64],
    iters: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        for &seed in seeds {
            let mut placement_rng = StdRng::seed_from_u64(seed);
            let topo = build_topology(
                testbed,
                &TopologyConfig::new(scenario.antennas.clone()),
                cfg.ofdm.bandwidth_hz,
                seed,
                &mut placement_rng,
            );
            for &protocol in protocols {
                let mut run_rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
                let _ = simulate_legacy(&topo, scenario, protocol, cfg, &mut run_rng);
            }
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let out_path = args
        .get(2)
        .map(String::as_str)
        .unwrap_or("BENCH_sim.json")
        .to_string();

    let cached_cfg = SimConfig {
        rounds: ROUNDS,
        ..SimConfig::default()
    };
    let uncached_cfg = SimConfig {
        cache_channels: false,
        ..cached_cfg.clone()
    };

    println!(
        "== perf_sweep §1: Fig. 3 scenario, {N_PLACEMENTS} placements x {ROUNDS} rounds, n+, best of {iters} =="
    );
    let (legacy_s, _) = best_of(&cached_cfg, true, iters);
    let (uncached_s, uncached_r) = best_of(&uncached_cfg, false, iters);
    let (cached_s, cached_r) = best_of(&cached_cfg, false, iters);

    let bit_identical = cached_r.iter().zip(&uncached_r).all(|(c, u)| {
        c.per_flow_mbps == u.per_flow_mbps
            && c.total_mbps == u.total_mbps
            && c.mean_dof == u.mean_dof
    });
    assert!(
        bit_identical,
        "channel cache changed results across the placement batch"
    );

    let total_rounds = (N_PLACEMENTS as usize * ROUNDS) as f64;
    let legacy_rps = total_rounds / legacy_s;
    let cached_rps = total_rounds / cached_s;
    let uncached_rps = total_rounds / uncached_s;
    let speedup = legacy_s / cached_s;
    let cache_speedup = uncached_s / cached_s;
    println!("legacy (pre-PR):  {legacy_s:.4} s  ({legacy_rps:.1} rounds/s)");
    println!("uncached engine:  {uncached_s:.4} s  ({uncached_rps:.1} rounds/s)");
    println!("cached engine:    {cached_s:.4} s  ({cached_rps:.1} rounds/s)");
    println!("speedup vs legacy:   {speedup:.2}x");
    println!("speedup vs uncached: {cache_speedup:.2}x  (bit-identical results: {bit_identical})");

    // ---- §2: the sweep engine on a generated-scenario batch ----
    let sweep_scenario = ScenarioGenerator::new(42).n_pairs(4);
    let sweep_cfg = SimConfig {
        rounds: SWEEP_ROUNDS,
        ..SimConfig::default()
    };
    let protocols = [Protocol::Dot11n, Protocol::Beamforming, Protocol::NPlus];
    let seeds: Vec<u64> = (0..SWEEP_SEEDS).collect();
    let testbed = Testbed::fitting(sweep_scenario.antennas.len());
    let cores = nplus::executor::resolve_threads(0);

    println!(
        "\n== perf_sweep §2: generated pairs:4 batch, {SWEEP_SEEDS} seeds x {SWEEP_ROUNDS} rounds x 3 protocols, best of {iters} ({cores} cores available) =="
    );
    let sweep_legacy_s = time_legacy_sweep(
        &testbed,
        &sweep_scenario,
        &sweep_cfg,
        &protocols,
        &seeds,
        iters,
    );
    let (serial_s, serial_stats) = time_sweep(
        &testbed,
        &sweep_scenario,
        &sweep_cfg,
        &protocols,
        &seeds,
        1,
        iters,
    );
    let (t2_s, t2_stats) = time_sweep(
        &testbed,
        &sweep_scenario,
        &sweep_cfg,
        &protocols,
        &seeds,
        2,
        iters,
    );
    let (t4_s, t4_stats) = time_sweep(
        &testbed,
        &sweep_scenario,
        &sweep_cfg,
        &protocols,
        &seeds,
        4,
        iters,
    );

    let parallel_identical =
        stats_identical(&serial_stats, &t2_stats) && stats_identical(&serial_stats, &t4_stats);
    assert!(
        parallel_identical,
        "sweep_parallel changed results vs the serial sweep"
    );

    // Honest multi-core reporting: a speedup row is only a measurement
    // of parallel scaling when the machine can actually run that many
    // workers at once. On a box with fewer cores the raw seconds are
    // still real (and recorded below), but the ratio says nothing about
    // the executor — so the JSON carries `null` there instead of a
    // number that would be read as "no speedup".
    let speedup_2t = serial_s / t2_s;
    let speedup_4t = serial_s / t4_s;
    let multi_core_observable = cores >= 2;
    let speedup_2t_json = if cores >= 2 {
        format!("{speedup_2t:.3}")
    } else {
        "null".to_string()
    };
    let speedup_4t_json = if cores >= 4 {
        format!("{speedup_4t:.3}")
    } else {
        "null".to_string()
    };
    let sweep_vs_legacy = sweep_legacy_s / serial_s;
    println!("legacy sweep loop: {sweep_legacy_s:.4} s");
    println!("serial sweep:      {serial_s:.4} s  ({sweep_vs_legacy:.2}x vs legacy)");
    println!(
        "2 threads:         {t2_s:.4} s  ({})",
        if cores >= 2 {
            format!("{speedup_2t:.2}x vs serial")
        } else {
            format!("speedup unobservable on {cores} core(s)")
        }
    );
    println!(
        "4 threads:         {t4_s:.4} s  ({})",
        if cores >= 4 {
            format!("{speedup_4t:.2}x vs serial")
        } else {
            format!("speedup unobservable on {cores} core(s)")
        }
    );
    println!("parallel == serial bitwise: {parallel_identical}");

    // ---- §3: the same batch once per propagation environment ----
    println!(
        "\n== perf_sweep §3: pairs:4 batch per environment, {SWEEP_SEEDS} seeds x {SWEEP_ROUNDS} rounds x 3 protocols, best of {iters} =="
    );
    let mut env_rows: Vec<(String, f64)> = Vec::new();
    for name in BUILTIN_ENVIRONMENT_NAMES {
        let spec = SweepSpec::new(sweep_scenario.clone())
            .rounds(SWEEP_ROUNDS)
            .seeds(seeds.iter().copied())
            .protocols(&protocols)
            .environment_named(name)
            .expect("builtin environment");
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t = Instant::now();
            let stats = spec.run();
            best = best.min(t.elapsed().as_secs_f64());
            assert!(
                stats.iter().all(|s| s.mean_total_mbps.is_finite()),
                "{name}: non-finite sweep statistics"
            );
        }
        println!("{name:>18}: {best:.4} s");
        env_rows.push((name.to_string(), best));
    }
    let sweep_environments = env_rows
        .iter()
        .map(|(name, secs)| format!("\"{name}\": {secs:.6}"))
        .collect::<Vec<_>>()
        .join(", ");

    // ---- §4: the city-scale sparse world ----
    println!(
        "\n== perf_sweep §4: city:{CITY_NODES} in multi_cell, 1 placement x {CITY_ROUNDS} rounds, n+, best of {iters} =="
    );
    let city_spec = SweepSpec::new(city_scenario(CITY_NODES))
        .rounds(CITY_ROUNDS)
        .seed_count(1)
        .protocols(&[Protocol::NPlus])
        .environment_named("multi_cell")
        .expect("builtin environment")
        .threads(1);
    let mut city_s = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let stats = city_spec.run();
        city_s = city_s.min(t.elapsed().as_secs_f64());
        assert!(
            stats.iter().all(|s| s.mean_total_mbps.is_finite()),
            "city sweep: non-finite statistics"
        );
    }
    let city_node_rounds_per_sec = (CITY_NODES * CITY_ROUNDS) as f64 / city_s;
    println!("city sweep:        {city_s:.4} s  ({city_node_rounds_per_sec:.1} node-rounds/s)");

    let mean_total: f64 =
        cached_r.iter().map(|r| r.total_mbps).sum::<f64>() / cached_r.len().max(1) as f64;
    // Policy labels via `Display` — the same names `SweepStats::policy`
    // and the sweep binary's JSON report (no hand-rolled Debug strings).
    let policy_list: Vec<String> = protocols.iter().map(|p| format!("\"{p}\"")).collect();
    let sweep_policies = policy_list.join(", ");
    let json = format!(
        "{{\n  \"bench\": \"sim_three_pairs_nplus\",\n  \"placements\": {N_PLACEMENTS},\n  \"rounds\": {ROUNDS},\n  \"iters\": {iters},\n  \"legacy_seconds\": {legacy_s:.6},\n  \"uncached_seconds\": {uncached_s:.6},\n  \"cached_seconds\": {cached_s:.6},\n  \"legacy_rounds_per_sec\": {legacy_rps:.3},\n  \"uncached_rounds_per_sec\": {uncached_rps:.3},\n  \"cached_rounds_per_sec\": {cached_rps:.3},\n  \"speedup\": {speedup:.3},\n  \"cache_speedup\": {cache_speedup:.3},\n  \"bit_identical\": {bit_identical},\n  \"mean_total_mbps\": {mean_total:.6},\n  \"sweep_bench\": \"sweep_pairs4_all_protocols\",\n  \"sweep_policies\": [{sweep_policies}],\n  \"sweep_seeds\": {SWEEP_SEEDS},\n  \"sweep_rounds\": {SWEEP_ROUNDS},\n  \"sweep_cores_available\": {cores},\n  \"sweep_legacy_seconds\": {sweep_legacy_s:.6},\n  \"sweep_serial_seconds\": {serial_s:.6},\n  \"sweep_2t_seconds\": {t2_s:.6},\n  \"sweep_4t_seconds\": {t4_s:.6},\n  \"sweep_speedup_vs_legacy\": {sweep_vs_legacy:.3},\n  \"multi_core_observable\": {multi_core_observable},\n  \"sweep_speedup_2t\": {speedup_2t_json},\n  \"sweep_speedup_4t\": {speedup_4t_json},\n  \"sweep_parallel_bit_identical\": {parallel_identical},\n  \"sweep_environments\": {{{sweep_environments}}},\n  \"sweep_city\": {{\"nodes\": {CITY_NODES}, \"rounds\": {CITY_ROUNDS}, \"seconds\": {city_s:.6}, \"node_rounds_per_sec\": {city_node_rounds_per_sec:.3}}}\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write BENCH_sim.json");
    println!("wrote {out_path}");
}
