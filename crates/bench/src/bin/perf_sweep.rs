//! Perf tracking for the round simulator: times `simulate` on the
//! Fig. 3 scenario (40 rounds, n+, default config) across a batch of
//! random placements in three variants and emits `BENCH_sim.json`:
//!
//! * **legacy** — the frozen pre-PR implementation
//!   (`nplus_bench::legacy`): per-call channel recomputation,
//!   per-subcarrier clones, per-stream pseudo-inverses, no opening-plan
//!   memo;
//! * **uncached** — the new `SimEngine` with the channel cache disabled
//!   (isolates the cache win from the engine restructuring);
//! * **cached** — the new engine as shipped.
//!
//! `speedup` in the JSON is aggregate cached-vs-legacy wall clock over
//! all placements (the PR's headline number; engine construction
//! included, exactly what a `simulate` caller pays). `cache_speedup` is
//! aggregate cached-vs-uncached. The cached and uncached runs must
//! produce bit-for-bit identical `RunResult`s on every placement — the
//! binary asserts it. (Legacy numbers are *not* comparable result-wise:
//! the PR fixed two MAC accounting bugs.)
//!
//! Usage:
//!   cargo run --release --bin perf_sweep -- [iters] [out_path]
//!
//! `iters` (default 3) is how many timed repetitions the best-of is
//! taken over; `out_path` defaults to `BENCH_sim.json`. CI runs this as
//! a smoke step with `iters = 1`; no thresholds are enforced — the JSON
//! is the perf trajectory record.

use nplus::sim::{simulate, Protocol, RunResult, SimConfig};
use nplus_bench::legacy::simulate_legacy;
use nplus_testkit::scenario::three_pairs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const N_PLACEMENTS: u64 = 8;
const SIM_SEED: u64 = 0xC0FFEE;
const ROUNDS: usize = 40;

/// One-shot `simulate` (or legacy) wall clock summed over all
/// placements; returns (seconds, per-placement results).
fn time_variant(cfg: &SimConfig, legacy: bool) -> (f64, Vec<RunResult>) {
    let mut total = 0.0;
    let mut results = Vec::new();
    for seed in 0..N_PLACEMENTS {
        let built = three_pairs(seed);
        let mut rng = StdRng::seed_from_u64(SIM_SEED);
        let t = Instant::now();
        let r = if legacy {
            simulate_legacy(
                &built.topology,
                &built.scenario,
                Protocol::NPlus,
                cfg,
                &mut rng,
            )
        } else {
            simulate(
                &built.topology,
                &built.scenario,
                Protocol::NPlus,
                cfg,
                &mut rng,
            )
        };
        total += t.elapsed().as_secs_f64();
        results.push(r);
    }
    (total, results)
}

/// Best-of-`iters` aggregate seconds for a variant.
fn best_of(cfg: &SimConfig, legacy: bool, iters: usize) -> (f64, Vec<RunResult>) {
    let mut best = f64::INFINITY;
    let mut kept = Vec::new();
    for _ in 0..iters {
        let (t, results) = time_variant(cfg, legacy);
        if t < best {
            best = t;
            kept = results;
        }
    }
    (best, kept)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let out_path = args
        .get(2)
        .map(String::as_str)
        .unwrap_or("BENCH_sim.json")
        .to_string();

    let cached_cfg = SimConfig {
        rounds: ROUNDS,
        ..SimConfig::default()
    };
    let uncached_cfg = SimConfig {
        cache_channels: false,
        ..cached_cfg.clone()
    };

    println!(
        "== perf_sweep: Fig. 3 scenario, {N_PLACEMENTS} placements x {ROUNDS} rounds, n+, best of {iters} =="
    );
    let (legacy_s, _) = best_of(&cached_cfg, true, iters);
    let (uncached_s, uncached_r) = best_of(&uncached_cfg, false, iters);
    let (cached_s, cached_r) = best_of(&cached_cfg, false, iters);

    let bit_identical = cached_r.iter().zip(&uncached_r).all(|(c, u)| {
        c.per_flow_mbps == u.per_flow_mbps
            && c.total_mbps == u.total_mbps
            && c.mean_dof == u.mean_dof
    });
    assert!(
        bit_identical,
        "channel cache changed results across the placement batch"
    );

    let total_rounds = (N_PLACEMENTS as usize * ROUNDS) as f64;
    let legacy_rps = total_rounds / legacy_s;
    let cached_rps = total_rounds / cached_s;
    let uncached_rps = total_rounds / uncached_s;
    let speedup = legacy_s / cached_s;
    let cache_speedup = uncached_s / cached_s;
    println!("legacy (pre-PR):  {legacy_s:.4} s  ({legacy_rps:.1} rounds/s)");
    println!("uncached engine:  {uncached_s:.4} s  ({uncached_rps:.1} rounds/s)");
    println!("cached engine:    {cached_s:.4} s  ({cached_rps:.1} rounds/s)");
    println!("speedup vs legacy:   {speedup:.2}x");
    println!("speedup vs uncached: {cache_speedup:.2}x  (bit-identical results: {bit_identical})");

    let mean_total: f64 =
        cached_r.iter().map(|r| r.total_mbps).sum::<f64>() / cached_r.len().max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"sim_three_pairs_nplus\",\n  \"placements\": {N_PLACEMENTS},\n  \"rounds\": {ROUNDS},\n  \"iters\": {iters},\n  \"legacy_seconds\": {legacy_s:.6},\n  \"uncached_seconds\": {uncached_s:.6},\n  \"cached_seconds\": {cached_s:.6},\n  \"legacy_rounds_per_sec\": {legacy_rps:.3},\n  \"uncached_rounds_per_sec\": {uncached_rps:.3},\n  \"cached_rounds_per_sec\": {cached_rps:.3},\n  \"speedup\": {speedup:.3},\n  \"cache_speedup\": {cache_speedup:.3},\n  \"bit_identical\": {bit_identical},\n  \"mean_total_mbps\": {mean_total:.6}\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write BENCH_sim.json");
    println!("wrote {out_path}");
}
