//! Perf tracking for the round simulator and the sweep engine, emitted
//! into `BENCH_sim.json` as reproducible arithmetic: every section
//! records its raw iteration counts next to the wall-clock seconds, so
//! each `*_rounds_per_sec` / `speedup` row can be re-derived from the
//! numbers in the file, and any ratio whose denominator run was skipped
//! is `null` rather than a stale or misleading number.
//!
//! **Section 1 — the round engine** (unchanged shape since PR 2): times
//! `simulate` on the Fig. 3 scenario (40 rounds, n+, default config)
//! across a batch of random placements in three variants:
//!
//! * **legacy** — the frozen pre-PR implementation
//!   (`nplus_bench::legacy`): per-call channel recomputation,
//!   per-subcarrier clones, per-stream pseudo-inverses, no opening-plan
//!   memo;
//! * **uncached** — the current `SimEngine` with the channel cache
//!   disabled: every believed/true channel is converted from the AoS
//!   `MimoLink` evaluation on the fly;
//! * **cached** — the engine as shipped, consuming the precomputed SoA
//!   frequency tables.
//!
//! The cached and uncached runs must produce bit-for-bit identical
//! `RunResult`s on every placement — the binary asserts it. Because the
//! uncached path converts from AoS sources per call while the cached
//! path reads SoA tables, this assertion is the end-to-end SoA≡AoS
//! bitwise smoke check CI relies on.
//!
//! **Section 2 — the sweep engine**: times a generated-scenario
//! Monte-Carlo batch (all three protocols per seed) through the legacy
//! simulator loop, the serial `sweep` path, and `sweep_parallel` at 2
//! and 4 threads. Parallel must equal serial bitwise (asserted).
//! Speedup ratios are `null` when the machine cannot observe them.
//!
//! **Section 3 — environments**: the same batch once per registered
//! propagation environment through the serial `SweepSpec` path.
//!
//! **Section 4 — the city-scale sparse world**: a procedural `city:256`
//! sweep in the `multi_cell` environment.
//!
//! **Section 5 — kernels**: nanoseconds per matrix-vector multiply for
//! the scalar AoS kernel vs the split-complex SoA kernel, with the raw
//! iteration counts.
//!
//! **Section 6 — the decimated SINR tier**: the Section-1 workload with
//! `SinrGrid::Decimated(4)`, recorded against both the full-grid run and
//! the frozen pre-SoA baseline rows, plus an assertion that the
//! decimated tier keys differently in the canonical spec (the server
//! cache must never conflate tiers).
//!
//! **Section 7 — the recording layer**: the Fig. 3 batch once with a
//! `NullObserver` and once with a `RecordingObserver` writing v1
//! frames into a pre-sized buffer — the observer-tap overhead — plus
//! the wire density: bytes per round of the delta/varint layout
//! against a naive fixed-width encoding of the same events.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin perf_sweep -- [--quick] [iters] [out_path]
//! ```
//!
//! `iters` (default 3) is how many timed repetitions the best-of is
//! taken over; `out_path` defaults to `BENCH_sim.json`. `--quick` is
//! the CI smoke mode: one iteration, the slow legacy/sweep sections are
//! skipped (their rows become `null`), while the SoA≡AoS bitwise
//! assertion, the kernels section and the decimated-tier key assertion
//! still run. No thresholds are enforced — the JSON is the perf
//! trajectory record.

use nplus::sim::{
    simulate, sweep_parallel, Protocol, RunResult, Scenario, SimConfig, SinrGrid, SweepSpec,
    SweepStats,
};
use nplus::{NullObserver, RoundObserver};
use nplus_bench::legacy::simulate_legacy;
use nplus_channel::environment::BUILTIN_ENVIRONMENT_NAMES;
use nplus_channel::placement::Testbed;
use nplus_codec::{Event, Recording, RecordingContext, RecordingObserver};
use nplus_linalg::{CMatrix, CMatrixSoA, CVector};
use nplus_medium::topology::{build_topology, TopologyConfig};
use nplus_testkit::generator::ScenarioGenerator;
use nplus_testkit::scenario::three_pairs;
use nplus_testkit::spec::city_scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

const N_PLACEMENTS: u64 = 8;
const SIM_SEED: u64 = 0xC0FFEE;
const ROUNDS: usize = 40;

/// Sweep-engine batch shape: a generated 4-pair scenario, every seed
/// simulated under all three protocols.
const SWEEP_SEEDS: u64 = 12;
const SWEEP_ROUNDS: usize = 25;

/// City-scale batch shape: one placement of a procedural 256-node
/// (32-cell) city in the sparse `multi_cell` world, n+ only.
const CITY_NODES: usize = 256;
const CITY_ROUNDS: usize = 4;

/// Kernel micro-bench shape: one 4x4 matrix-vector multiply per
/// iteration (the largest shape the testbed's antenna counts produce).
const KERNEL_ITERS: usize = 2_000_000;
const KERNEL_DIM: usize = 4;

/// Decimation stride of the benchmarked SINR tier (the error-budget
/// proptest pins the same k).
const DECIMATION: usize = 4;

/// Frozen pre-SoA baseline rows from the committed BENCH_sim.json of
/// PR 6/7 — the denominators the tentpole's speedup target is measured
/// against. Frozen as constants so the ratio survives regeneration.
const FROZEN_CACHED_RPS: f64 = 2638.22;
const FROZEN_LEGACY_RPS: f64 = 534.771;

/// One-shot `simulate` (or legacy) wall clock summed over all
/// placements; returns (seconds, per-placement results).
fn time_variant(cfg: &SimConfig, legacy: bool) -> (f64, Vec<RunResult>) {
    let mut total = 0.0;
    let mut results = Vec::new();
    for seed in 0..N_PLACEMENTS {
        let built = three_pairs(seed);
        let mut rng = StdRng::seed_from_u64(SIM_SEED);
        let t = Instant::now();
        let r = if legacy {
            simulate_legacy(
                &built.topology,
                &built.scenario,
                Protocol::NPlus,
                cfg,
                &mut rng,
            )
        } else {
            simulate(
                &built.topology,
                &built.scenario,
                Protocol::NPlus,
                cfg,
                &mut rng,
            )
        };
        total += t.elapsed().as_secs_f64();
        results.push(r);
    }
    (total, results)
}

/// Best-of-`iters` aggregate seconds for a variant.
fn best_of(cfg: &SimConfig, legacy: bool, iters: usize) -> (f64, Vec<RunResult>) {
    let mut best = f64::INFINITY;
    let mut kept = Vec::new();
    for _ in 0..iters {
        let (t, results) = time_variant(cfg, legacy);
        if t < best {
            best = t;
            kept = results;
        }
    }
    (best, kept)
}

/// Bitwise equality of two sweep-stat lists — the determinism contract
/// of `sweep_parallel` (no tolerance: merged in seed order, every float
/// must match exactly).
fn stats_identical(a: &[SweepStats], b: &[SweepStats]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.policy == y.policy
                && x.n_runs == y.n_runs
                && x.mean_total_mbps == y.mean_total_mbps
                && x.ci95_total_mbps == y.ci95_total_mbps
                && x.mean_per_flow_mbps == y.mean_per_flow_mbps
                && x.mean_dof == y.mean_dof
                && x.mean_fairness.to_bits() == y.mean_fairness.to_bits()
        })
}

/// Best-of-`iters` wall clock of the sweep batch at a thread count.
fn time_sweep(
    testbed: &Testbed,
    scenario: &Scenario,
    cfg: &SimConfig,
    protocols: &[Protocol],
    seeds: &[u64],
    threads: usize,
    iters: usize,
) -> (f64, Vec<SweepStats>) {
    let mut best = f64::INFINITY;
    let mut kept = Vec::new();
    for _ in 0..iters {
        let t = Instant::now();
        let stats = sweep_parallel(testbed, scenario, cfg, protocols, seeds, threads);
        let dt = t.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
            kept = stats;
        }
    }
    (best, kept)
}

/// Best-of-`iters` wall clock of the same batch through the frozen
/// legacy simulator (identical per-seed topology/RNG derivations, no
/// engine reuse across protocols — exactly how a pre-PR sweep looked).
fn time_legacy_sweep(
    testbed: &Testbed,
    scenario: &Scenario,
    cfg: &SimConfig,
    protocols: &[Protocol],
    seeds: &[u64],
    iters: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        for &seed in seeds {
            let mut placement_rng = StdRng::seed_from_u64(seed);
            let topo = build_topology(
                testbed,
                &TopologyConfig::new(scenario.antennas.clone()),
                cfg.ofdm.bandwidth_hz,
                seed,
                &mut placement_rng,
            );
            for &protocol in protocols {
                let mut run_rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
                let _ = simulate_legacy(&topo, scenario, protocol, cfg, &mut run_rng);
            }
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Nanoseconds per op for the scalar-AoS vs split-SoA matrix-vector
/// kernels, measured over [`KERNEL_ITERS`] iterations each. Both loops
/// accumulate into a live sink so the optimizer cannot elide the work.
fn time_kernels() -> (f64, f64) {
    let mut rng = nplus_testkit::rng(0xD00D);
    let aos = nplus_testkit::fixtures::random_matrix(KERNEL_DIM, KERNEL_DIM, &mut rng);
    let soa = CMatrixSoA::from_aos(&aos);
    let x: CVector = nplus_testkit::fixtures::random_matrix(KERNEL_DIM, 1, &mut rng).col(0);

    let aos_mul = |m: &CMatrix, v: &CVector| -> CVector {
        let mut out = CVector::zeros(m.rows());
        for i in 0..m.rows() {
            let mut acc = nplus_linalg::Complex64::ZERO;
            for (j, e) in v.iter().enumerate() {
                acc += m[(i, j)] * *e;
            }
            out[i] = acc;
        }
        out
    };

    let t = Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..KERNEL_ITERS {
        let y = aos_mul(black_box(&aos), black_box(&x));
        sink += y[0].re;
    }
    let aos_ns = t.elapsed().as_secs_f64() * 1e9 / KERNEL_ITERS as f64;
    black_box(sink);

    let t = Instant::now();
    let mut out = CVector::zeros(KERNEL_DIM);
    let mut sink = 0.0f64;
    for _ in 0..KERNEL_ITERS {
        black_box(&soa).mul_vec_into(black_box(&x), &mut out);
        sink += out[0].re;
    }
    let soa_ns = t.elapsed().as_secs_f64() * 1e9 / KERNEL_ITERS as f64;
    black_box(sink);

    (aos_ns, soa_ns)
}

/// What the same recording would occupy under a naive fixed-width
/// layout — every integer and float 8 bytes, tags/bools/flags one
/// byte, strings behind an 8-byte length — the strawman the
/// delta/varint wire format is measured against.
fn naive_fixed_width_len(rec: &Recording) -> usize {
    let h = &rec.header;
    let mut n = 8 + 2; // magic + version
    n += [
        &h.policy,
        &h.environment,
        &h.scenario,
        &h.traffic,
        &h.mobility,
    ]
    .iter()
    .map(|s| 8 + s.len())
    .sum::<usize>();
    n += 1 + 16; // canonical-key flag + key
    n += 8 * 7; // seed and the six grid/shape fields
    n += 8; // bandwidth
    for ev in &rec.events {
        n += match ev {
            Event::Contention(_) => 1 + 8 + 1 + 8 + 8 + 8,
            Event::Join(_) => 1 + 8 + 8 + 8 + 1,
            Event::Round(r) => 1 + 8 + 8 + 8 + 8 * r.flow_bits.len() + 8 + 32 * r.streams.len(),
        };
    }
    n + 1 + 24 // end frame
}

/// `{v:.prec$}` or the literal `null` for a skipped measurement.
fn json_opt(v: Option<f64>, prec: usize) -> String {
    match v {
        Some(x) => format!("{x:.prec$}"),
        None => "null".to_string(),
    }
}

fn main() {
    let mut iters: usize = 3;
    let mut out_path = "BENCH_sim.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if let Ok(n) = arg.parse::<usize>() {
            iters = n;
        } else {
            out_path = arg;
        }
    }
    if quick {
        iters = 1;
    }

    let cached_cfg = SimConfig {
        rounds: ROUNDS,
        ..SimConfig::default()
    };
    let uncached_cfg = SimConfig {
        cache_channels: false,
        ..cached_cfg.clone()
    };

    println!(
        "== perf_sweep §1: Fig. 3 scenario, {N_PLACEMENTS} placements x {ROUNDS} rounds, n+, best of {iters}{} ==",
        if quick { " (quick: legacy skipped)" } else { "" }
    );
    let legacy_s: Option<f64> = if quick {
        None
    } else {
        Some(best_of(&cached_cfg, true, iters).0)
    };
    let (uncached_s, uncached_r) = best_of(&uncached_cfg, false, iters);
    let (cached_s, cached_r) = best_of(&cached_cfg, false, iters);

    // The SoA≡AoS bitwise smoke check: the cached run consumes the
    // precomputed SoA tables, the uncached run converts every matrix
    // from its AoS source on the fly — identical results or abort.
    let bit_identical = cached_r.iter().zip(&uncached_r).all(|(c, u)| {
        c.per_flow_mbps == u.per_flow_mbps
            && c.total_mbps == u.total_mbps
            && c.mean_dof == u.mean_dof
    });
    assert!(
        bit_identical,
        "SoA channel tables changed results vs the AoS source path"
    );

    let total_rounds = (N_PLACEMENTS as usize * ROUNDS) as f64;
    let legacy_rps = legacy_s.map(|s| total_rounds / s);
    let cached_rps = total_rounds / cached_s;
    let uncached_rps = total_rounds / uncached_s;
    let speedup = legacy_s.map(|s| s / cached_s);
    let cache_speedup = uncached_s / cached_s;
    match (legacy_s, legacy_rps) {
        (Some(s), Some(rps)) => println!("legacy (pre-PR):  {s:.4} s  ({rps:.1} rounds/s)"),
        _ => println!("legacy (pre-PR):  skipped (--quick)"),
    }
    println!("uncached engine:  {uncached_s:.4} s  ({uncached_rps:.1} rounds/s)");
    println!("cached engine:    {cached_s:.4} s  ({cached_rps:.1} rounds/s)");
    if let Some(sp) = speedup {
        println!("speedup vs legacy:   {sp:.2}x");
    }
    println!("speedup vs uncached: {cache_speedup:.2}x  (bit-identical results: {bit_identical})");
    println!(
        "speedup vs frozen cached baseline ({FROZEN_CACHED_RPS} rounds/s): {:.2}x",
        cached_rps / FROZEN_CACHED_RPS
    );

    // ---- §2: the sweep engine on a generated-scenario batch ----
    let sweep_scenario = ScenarioGenerator::new(42).n_pairs(4);
    let sweep_cfg = SimConfig {
        rounds: SWEEP_ROUNDS,
        ..SimConfig::default()
    };
    let protocols = [Protocol::Dot11n, Protocol::Beamforming, Protocol::NPlus];
    let seeds: Vec<u64> = (0..SWEEP_SEEDS).collect();
    let testbed = Testbed::fitting(sweep_scenario.antennas.len());
    let cores = nplus::executor::resolve_threads(0);

    struct SweepSection {
        legacy_s: Option<f64>,
        serial_s: f64,
        t2_s: f64,
        t4_s: f64,
        parallel_identical: bool,
    }
    let sweep_section: Option<SweepSection> = if quick {
        println!("\n== perf_sweep §2: skipped (--quick) ==");
        None
    } else {
        println!(
            "\n== perf_sweep §2: generated pairs:4 batch, {SWEEP_SEEDS} seeds x {SWEEP_ROUNDS} rounds x 3 protocols, best of {iters} ({cores} cores available) =="
        );
        let sweep_legacy_s = time_legacy_sweep(
            &testbed,
            &sweep_scenario,
            &sweep_cfg,
            &protocols,
            &seeds,
            iters,
        );
        let (serial_s, serial_stats) = time_sweep(
            &testbed,
            &sweep_scenario,
            &sweep_cfg,
            &protocols,
            &seeds,
            1,
            iters,
        );
        let (t2_s, t2_stats) = time_sweep(
            &testbed,
            &sweep_scenario,
            &sweep_cfg,
            &protocols,
            &seeds,
            2,
            iters,
        );
        let (t4_s, t4_stats) = time_sweep(
            &testbed,
            &sweep_scenario,
            &sweep_cfg,
            &protocols,
            &seeds,
            4,
            iters,
        );
        let parallel_identical =
            stats_identical(&serial_stats, &t2_stats) && stats_identical(&serial_stats, &t4_stats);
        assert!(
            parallel_identical,
            "sweep_parallel changed results vs the serial sweep"
        );
        let sweep_vs_legacy = sweep_legacy_s / serial_s;
        println!("legacy sweep loop: {sweep_legacy_s:.4} s");
        println!("serial sweep:      {serial_s:.4} s  ({sweep_vs_legacy:.2}x vs legacy)");
        println!(
            "2 threads:         {t2_s:.4} s  ({})",
            if cores >= 2 {
                format!("{:.2}x vs serial", serial_s / t2_s)
            } else {
                format!("speedup unobservable on {cores} core(s)")
            }
        );
        println!(
            "4 threads:         {t4_s:.4} s  ({})",
            if cores >= 4 {
                format!("{:.2}x vs serial", serial_s / t4_s)
            } else {
                format!("speedup unobservable on {cores} core(s)")
            }
        );
        println!("parallel == serial bitwise: {parallel_identical}");
        Some(SweepSection {
            legacy_s: Some(sweep_legacy_s),
            serial_s,
            t2_s,
            t4_s,
            parallel_identical,
        })
    };

    // Honest ratio reporting: a ratio is only emitted when both its
    // numerator and denominator runs actually happened (and, for the
    // thread-scaling rows, when the machine can observe the scaling).
    let multi_core_observable = cores >= 2;
    let sweep_legacy_seconds = sweep_section.as_ref().and_then(|s| s.legacy_s);
    let sweep_serial_seconds = sweep_section.as_ref().map(|s| s.serial_s);
    let sweep_2t_seconds = sweep_section.as_ref().map(|s| s.t2_s);
    let sweep_4t_seconds = sweep_section.as_ref().map(|s| s.t4_s);
    let sweep_vs_legacy = match (sweep_legacy_seconds, sweep_serial_seconds) {
        (Some(l), Some(s)) => Some(l / s),
        _ => None,
    };
    let speedup_2t = match (sweep_serial_seconds, sweep_2t_seconds) {
        (Some(s), Some(t)) if cores >= 2 => Some(s / t),
        _ => None,
    };
    let speedup_4t = match (sweep_serial_seconds, sweep_4t_seconds) {
        (Some(s), Some(t)) if cores >= 4 => Some(s / t),
        _ => None,
    };
    let parallel_identical_json = match &sweep_section {
        Some(s) => s.parallel_identical.to_string(),
        None => "null".to_string(),
    };

    // ---- §3: the same batch once per propagation environment ----
    let sweep_environments = if quick {
        println!("\n== perf_sweep §3: skipped (--quick) ==");
        String::new()
    } else {
        println!(
            "\n== perf_sweep §3: pairs:4 batch per environment, {SWEEP_SEEDS} seeds x {SWEEP_ROUNDS} rounds x 3 protocols, best of {iters} =="
        );
        let mut env_rows: Vec<(String, f64)> = Vec::new();
        for name in BUILTIN_ENVIRONMENT_NAMES {
            let spec = SweepSpec::new(sweep_scenario.clone())
                .rounds(SWEEP_ROUNDS)
                .seeds(seeds.iter().copied())
                .protocols(&protocols)
                .environment_named(name)
                .expect("builtin environment");
            let mut best = f64::INFINITY;
            for _ in 0..iters {
                let t = Instant::now();
                let stats = spec.run();
                best = best.min(t.elapsed().as_secs_f64());
                assert!(
                    stats.iter().all(|s| s.mean_total_mbps.is_finite()),
                    "{name}: non-finite sweep statistics"
                );
            }
            println!("{name:>18}: {best:.4} s");
            env_rows.push((name.to_string(), best));
        }
        env_rows
            .iter()
            .map(|(name, secs)| format!("\"{name}\": {secs:.6}"))
            .collect::<Vec<_>>()
            .join(", ")
    };

    // ---- §4: the city-scale sparse world ----
    let city_s: Option<f64> = if quick {
        println!("\n== perf_sweep §4: skipped (--quick) ==");
        None
    } else {
        println!(
            "\n== perf_sweep §4: city:{CITY_NODES} in multi_cell, 1 placement x {CITY_ROUNDS} rounds, n+, best of {iters} =="
        );
        let city_spec = SweepSpec::new(city_scenario(CITY_NODES))
            .rounds(CITY_ROUNDS)
            .seed_count(1)
            .protocols(&[Protocol::NPlus])
            .environment_named("multi_cell")
            .expect("builtin environment")
            .threads(1);
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t = Instant::now();
            let stats = city_spec.run();
            best = best.min(t.elapsed().as_secs_f64());
            assert!(
                stats.iter().all(|s| s.mean_total_mbps.is_finite()),
                "city sweep: non-finite statistics"
            );
        }
        let nrps = (CITY_NODES * CITY_ROUNDS) as f64 / best;
        println!("city sweep:        {best:.4} s  ({nrps:.1} node-rounds/s)");
        Some(best)
    };
    let city_node_rounds_per_sec = city_s.map(|s| (CITY_NODES * CITY_ROUNDS) as f64 / s);

    // ---- §5: kernels, AoS vs SoA ----
    println!("\n== perf_sweep §5: {KERNEL_DIM}x{KERNEL_DIM} matrix-vector kernel, {KERNEL_ITERS} iters each ==");
    let (kernel_aos_ns, kernel_soa_ns) = time_kernels();
    let kernel_speedup = kernel_aos_ns / kernel_soa_ns;
    println!("scalar AoS: {kernel_aos_ns:.2} ns/op");
    println!("split SoA:  {kernel_soa_ns:.2} ns/op  ({kernel_speedup:.2}x)");

    // ---- §6: the decimated SINR tier on the §1 workload ----
    println!(
        "\n== perf_sweep §6: Fig. 3 scenario, SinrGrid::Decimated({DECIMATION}), {N_PLACEMENTS} placements x {ROUNDS} rounds, best of {iters} =="
    );
    let decimated_cfg = SimConfig {
        sinr_grid: SinrGrid::Decimated(DECIMATION),
        ..cached_cfg.clone()
    };
    let (dec_s, dec_r) = best_of(&decimated_cfg, false, iters);
    let dec_rps = total_rounds / dec_s;
    assert!(
        dec_r.iter().all(|r| r.total_mbps.is_finite()),
        "decimated tier produced non-finite goodput"
    );
    // The server cache must never conflate the tiers: the decimated
    // spec keys differently from the full-grid spec.
    let full_key = SweepSpec::new(Scenario::three_pairs())
        .rounds(ROUNDS)
        .seed_count(1)
        .canonical()
        .expect("canonicalizable")
        .key();
    let dec_key = SweepSpec::new(Scenario::three_pairs())
        .rounds(ROUNDS)
        .seed_count(1)
        .sinr_grid(SinrGrid::Decimated(DECIMATION))
        .canonical()
        .expect("canonicalizable")
        .key();
    let keys_distinct = full_key != dec_key;
    assert!(
        keys_distinct,
        "decimated tier aliased the full-grid canonical cache key"
    );
    let dec_vs_full = cached_s / dec_s;
    println!(
        "decimated engine: {dec_s:.4} s  ({dec_rps:.1} rounds/s, {dec_vs_full:.2}x vs full grid)"
    );
    println!(
        "vs frozen cached baseline ({FROZEN_CACHED_RPS} rounds/s): {:.2}x; vs frozen legacy ({FROZEN_LEGACY_RPS} rounds/s): {:.2}x",
        dec_rps / FROZEN_CACHED_RPS,
        dec_rps / FROZEN_LEGACY_RPS
    );
    println!("canonical keys distinct from full grid: {keys_distinct}");

    // ---- §7: the recording layer ----
    println!(
        "\n== perf_sweep §7: RecordingObserver on the Fig. 3 batch, {N_PLACEMENTS} placements x {ROUNDS} rounds, n+, best of {iters} =="
    );
    let rec_spec = SweepSpec::new(Scenario::three_pairs())
        .rounds(ROUNDS)
        .seed_count(N_PLACEMENTS)
        .protocols(&[Protocol::NPlus]);
    let rec_seeds: Vec<u64> = rec_spec.seed_list().to_vec();
    let run_null = |seeds: &[u64]| {
        for &seed in seeds {
            let mut null = NullObserver;
            let mut taps: [&mut dyn RoundObserver; 1] = [&mut null];
            let _ = rec_spec
                .try_run_seed_observed(seed, &mut taps)
                .expect("three_pairs sweeps");
        }
    };
    let run_recording = |seeds: &[u64], cap: usize| -> Vec<Vec<u8>> {
        seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let mut rec = RecordingObserver::new(
                    Vec::with_capacity(cap),
                    RecordingContext {
                        scenario: "three_pairs".to_string(),
                        traffic: "saturated".to_string(),
                        mobility: "static".to_string(),
                        seed_index: i,
                        n_seeds: seeds.len(),
                        policy_index: 0,
                        n_policies: 1,
                    },
                );
                {
                    let mut taps: [&mut dyn RoundObserver; 1] = [&mut rec];
                    let _ = rec_spec
                        .try_run_seed_observed(seed, &mut taps)
                        .expect("three_pairs sweeps");
                }
                rec.finish().expect("in-memory sink never fails")
            })
            .collect()
    };
    // Learn the per-recording size once so every timed run writes into
    // a pre-sized buffer (no growth inside the measured loop).
    let mut recordings = run_recording(&rec_seeds, 0);
    let rec_cap = recordings.iter().map(Vec::len).max().unwrap_or(0) + 64;
    let mut null_s = f64::INFINITY;
    let mut recording_s = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        run_null(&rec_seeds);
        null_s = null_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let recs = run_recording(&rec_seeds, rec_cap);
        let dt = t.elapsed().as_secs_f64();
        if dt < recording_s {
            recording_s = dt;
            recordings = recs;
        }
    }
    let rec_total_rounds = (N_PLACEMENTS as usize * ROUNDS) as f64;
    let null_rps = rec_total_rounds / null_s;
    let recording_rps = rec_total_rounds / recording_s;
    let recording_overhead_pct = (recording_s / null_s - 1.0) * 100.0;
    let rec_bytes_total: usize = recordings.iter().map(Vec::len).sum();
    let rec_bytes_per_round = rec_bytes_total as f64 / rec_total_rounds;
    let rec_naive_total: usize = recordings
        .iter()
        .map(|b| naive_fixed_width_len(&Recording::decode(b).expect("own recording decodes")))
        .sum();
    let rec_compression = rec_naive_total as f64 / rec_bytes_total.max(1) as f64;
    println!("null observer:     {null_s:.4} s  ({null_rps:.1} rounds/s)");
    println!(
        "recording:         {recording_s:.4} s  ({recording_rps:.1} rounds/s, {recording_overhead_pct:+.2}% overhead)"
    );
    println!(
        "wire density:      {rec_bytes_total} bytes total, {rec_bytes_per_round:.1} bytes/round, {rec_compression:.2}x vs naive fixed-width ({rec_naive_total} bytes)"
    );

    let mean_total: f64 =
        cached_r.iter().map(|r| r.total_mbps).sum::<f64>() / cached_r.len().max(1) as f64;
    // Policy labels via `Display` — the same names `SweepStats::policy`
    // and the sweep binary's JSON report (no hand-rolled Debug strings).
    let policy_list: Vec<String> = protocols.iter().map(|p| format!("\"{p}\"")).collect();
    let sweep_policies = policy_list.join(", ");
    let sweep_total_runs = SWEEP_SEEDS as usize * protocols.len();
    let city_json = match (city_s, city_node_rounds_per_sec) {
        (Some(s), Some(nrps)) => format!(
            "{{\"nodes\": {CITY_NODES}, \"rounds\": {CITY_ROUNDS}, \"seconds\": {s:.6}, \"node_rounds_per_sec\": {nrps:.3}}}"
        ),
        _ => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"sim_three_pairs_nplus\",\n  \"placements\": {N_PLACEMENTS},\n  \"rounds\": {ROUNDS},\n  \"total_rounds\": {total_rounds},\n  \"iters\": {iters},\n  \"quick\": {quick},\n  \"legacy_seconds\": {legacy_seconds},\n  \"uncached_seconds\": {uncached_s:.6},\n  \"cached_seconds\": {cached_s:.6},\n  \"legacy_rounds_per_sec\": {legacy_rps_json},\n  \"uncached_rounds_per_sec\": {uncached_rps:.3},\n  \"cached_rounds_per_sec\": {cached_rps:.3},\n  \"speedup\": {speedup_json},\n  \"cache_speedup\": {cache_speedup:.3},\n  \"bit_identical\": {bit_identical},\n  \"mean_total_mbps\": {mean_total:.6},\n  \"frozen_baseline\": {{\"cached_rounds_per_sec\": {FROZEN_CACHED_RPS}, \"legacy_rounds_per_sec\": {FROZEN_LEGACY_RPS}}},\n  \"speedup_vs_frozen_cached\": {vs_frozen:.3},\n  \"sweep_bench\": \"sweep_pairs4_all_protocols\",\n  \"sweep_policies\": [{sweep_policies}],\n  \"sweep_seeds\": {SWEEP_SEEDS},\n  \"sweep_rounds\": {SWEEP_ROUNDS},\n  \"sweep_total_runs\": {sweep_total_runs},\n  \"sweep_cores_available\": {cores},\n  \"sweep_legacy_seconds\": {sweep_legacy_json},\n  \"sweep_serial_seconds\": {sweep_serial_json},\n  \"sweep_2t_seconds\": {sweep_2t_json},\n  \"sweep_4t_seconds\": {sweep_4t_json},\n  \"sweep_speedup_vs_legacy\": {sweep_vs_legacy_json},\n  \"multi_core_observable\": {multi_core_observable},\n  \"sweep_speedup_2t\": {speedup_2t_json},\n  \"sweep_speedup_4t\": {speedup_4t_json},\n  \"sweep_parallel_bit_identical\": {parallel_identical_json},\n  \"sweep_environments\": {{{sweep_environments}}},\n  \"sweep_city\": {city_json},\n  \"kernels\": {{\"bench\": \"matvec_{KERNEL_DIM}x{KERNEL_DIM}\", \"iters\": {KERNEL_ITERS}, \"aos_ns_per_op\": {kernel_aos_ns:.3}, \"soa_ns_per_op\": {kernel_soa_ns:.3}, \"soa_speedup\": {kernel_speedup:.3}}},\n  \"sinr_grid\": {{\"tier\": \"decimated:{DECIMATION}\", \"placements\": {N_PLACEMENTS}, \"rounds\": {ROUNDS}, \"total_rounds\": {total_rounds}, \"seconds\": {dec_s:.6}, \"rounds_per_sec\": {dec_rps:.3}, \"speedup_vs_full_grid\": {dec_vs_full:.3}, \"speedup_vs_frozen_cached\": {dec_vs_frozen_cached:.3}, \"speedup_vs_frozen_legacy\": {dec_vs_frozen_legacy:.3}, \"canonical_keys_distinct\": {keys_distinct}}},\n  \"recording\": {{\"bench\": \"recording_three_pairs_nplus\", \"placements\": {N_PLACEMENTS}, \"rounds\": {ROUNDS}, \"null_seconds\": {null_s:.6}, \"recording_seconds\": {recording_s:.6}, \"null_rounds_per_sec\": {null_rps:.3}, \"recording_rounds_per_sec\": {recording_rps:.3}, \"overhead_pct\": {recording_overhead_pct:.3}, \"bytes_total\": {rec_bytes_total}, \"bytes_per_round\": {rec_bytes_per_round:.3}, \"naive_fixed_width_bytes\": {rec_naive_total}, \"compression_vs_naive\": {rec_compression:.3}}}\n}}\n",
        legacy_seconds = json_opt(legacy_s, 6),
        legacy_rps_json = json_opt(legacy_rps, 3),
        speedup_json = json_opt(speedup, 3),
        vs_frozen = cached_rps / FROZEN_CACHED_RPS,
        sweep_legacy_json = json_opt(sweep_legacy_seconds, 6),
        sweep_serial_json = json_opt(sweep_serial_seconds, 6),
        sweep_2t_json = json_opt(sweep_2t_seconds, 6),
        sweep_4t_json = json_opt(sweep_4t_seconds, 6),
        sweep_vs_legacy_json = json_opt(sweep_vs_legacy, 3),
        speedup_2t_json = json_opt(speedup_2t, 3),
        speedup_4t_json = json_opt(speedup_4t, 3),
        dec_vs_frozen_cached = dec_rps / FROZEN_CACHED_RPS,
        dec_vs_frozen_legacy = dec_rps / FROZEN_LEGACY_RPS,
    );

    std::fs::write(&out_path, json).expect("write BENCH_sim.json");
    println!("wrote {out_path}");
}
