//! Fig. 11 — Performance of Nulling and Alignment.
//!
//! Reproduces both panels of the paper's Fig. 11: the SNR reduction of the
//! wanted stream caused by a concurrent (nulled or aligned) unwanted
//! stream, as a function of the unwanted stream's original SNR
//! (7.5–32.5 dB bins), grouped by the wanted stream's SNR (5–25 dB bins).
//!
//! Paper's findings to compare against:
//!   * reductions of 0.5–3 dB across the sweep;
//!   * below the L = 27 dB join threshold the average reduction is
//!     **0.8 dB for nulling** and **1.3 dB for alignment**;
//!   * alignment is worse than nulling because it composes two estimated
//!     quantities.
//!
//! Run with: `cargo run --release --bin fig11_nulling_alignment`

use nplus::precoder::{compute_precoders, residual_interference, OwnReceiver, ProtectedReceiver};
use nplus_bench::support::mean;
use nplus_channel::fading::DelayProfile;
use nplus_channel::impairments::HardwareProfile;
use nplus_channel::mimo::MimoLink;
use nplus_linalg::Subspace;
use nplus_phy::params::{occupied_subcarrier_indices, OfdmConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const UNWANTED_BINS: [(f64, f64); 5] = [
    (7.5, 12.5),
    (12.5, 17.5),
    (17.5, 22.5),
    (22.5, 27.5),
    (27.5, 32.5),
];
const WANTED_BINS: [(f64, f64); 4] = [(5.0, 10.0), (10.0, 15.0), (15.0, 20.0), (20.0, 25.0)];
const L_DB: f64 = 27.0;
const TRIALS_PER_CELL: usize = 60;

fn amplitude_for(snr_db: f64) -> f64 {
    10f64.powf(snr_db / 20.0)
}

/// One nulling trial (the paper's Fig. 2 measurement): returns the SNR
/// reduction (dB) of the wanted stream at rx1.
fn nulling_trial(wanted_snr_db: f64, unwanted_snr_db: f64, rng: &mut StdRng) -> f64 {
    let cfg = OfdmConfig::usrp2();
    let hw = HardwareProfile::default();
    let occ = occupied_subcarrier_indices();
    // Links: tx1 -> rx1 (wanted), tx2 -> rx1 (unwanted, to be nulled),
    // tx2 -> rx2 (tx2's own receiver).
    let l11 = MimoLink::sample(
        1,
        1,
        amplitude_for(wanted_snr_db),
        &DelayProfile::los(),
        rng,
    );
    let l21 = MimoLink::sample(
        2,
        1,
        amplitude_for(unwanted_snr_db),
        &DelayProfile::los(),
        rng,
    );
    let l22 = MimoLink::sample(2, 2, amplitude_for(25.0), &DelayProfile::nlos(), rng);

    let mut reductions = Vec::with_capacity(occ.len());
    for &k in &occ {
        let h21_true = l21.channel_matrix(k, cfg.fft_len);
        let h21_believed = hw.reciprocal_channel_knowledge(&h21_true, rng);
        let h22_believed =
            hw.reciprocal_channel_knowledge(&l22.channel_matrix(k, cfg.fft_len), rng);
        let Ok(p) = compute_precoders(
            2,
            &[ProtectedReceiver::nulling(h21_believed)],
            &[OwnReceiver {
                channel: h22_believed,
                n_streams: 1,
                unwanted: Subspace::zero(2),
            }],
        ) else {
            continue;
        };
        // Residual interference at rx1 against the true channel, plus the
        // transmit-EVM floor which no precoding can cancel.
        let mut resid = residual_interference(&h21_true, &Subspace::zero(1), &p.vectors[0]);
        let evm = hw.tx_evm_amplitude().powi(2);
        resid += h21_true.frobenius_norm().powi(2) / 2.0 * evm;
        let wanted_pow = l11.channel_matrix(k, cfg.fft_len)[(0, 0)].norm_sqr();
        // SNR before: wanted/1; after: wanted/(1+resid).
        let reduction_db = 10.0 * (1.0 + resid).log10();
        let _ = wanted_pow;
        reductions.push(reduction_db);
    }
    mean(&reductions)
}

/// One alignment trial (the paper's Fig. 3 measurement at rx2): tx3
/// aligns with tx1's interference at the 2-antenna rx2.
fn alignment_trial(wanted_snr_db: f64, unwanted_snr_db: f64, rng: &mut StdRng) -> f64 {
    let cfg = OfdmConfig::usrp2();
    let hw = HardwareProfile::default();
    let occ = occupied_subcarrier_indices();
    // tx2 -> rx2 wanted; tx1 -> rx2 existing interference; tx3 (3 ant)
    // aligns at rx2 and nulls at rx1 (1 ant).
    let l_t2_r2 = MimoLink::sample(
        2,
        2,
        amplitude_for(wanted_snr_db),
        &DelayProfile::los(),
        rng,
    );
    let l_t1_r2 = MimoLink::sample(1, 2, amplitude_for(15.0), &DelayProfile::los(), rng);
    let l_t3_r2 = MimoLink::sample(
        3,
        2,
        amplitude_for(unwanted_snr_db),
        &DelayProfile::los(),
        rng,
    );
    let l_t3_r1 = MimoLink::sample(3, 1, amplitude_for(15.0), &DelayProfile::los(), rng);
    let l_t3_r3 = MimoLink::sample(3, 3, amplitude_for(25.0), &DelayProfile::nlos(), rng);

    let mut reductions = Vec::with_capacity(occ.len());
    for &k in &occ {
        // rx2's unwanted space: the direction tx1's interference arrives
        // from (estimated essentially exactly from tx1's preamble).
        let h_t1_r2 = l_t1_r2.channel_matrix(k, cfg.fft_len);
        let unwanted_rx2 = Subspace::span(2, &[h_t1_r2.col(0)]);

        let h_t3_r2_true = l_t3_r2.channel_matrix(k, cfg.fft_len);
        let h_t3_r2_believed = hw.reciprocal_channel_knowledge(&h_t3_r2_true, rng);
        let h_t3_r1_believed =
            hw.reciprocal_channel_knowledge(&l_t3_r1.channel_matrix(k, cfg.fft_len), rng);
        let h_t3_r3_believed =
            hw.reciprocal_channel_knowledge(&l_t3_r3.channel_matrix(k, cfg.fft_len), rng);

        let Ok(p) = compute_precoders(
            3,
            &[
                ProtectedReceiver::nulling(h_t3_r1_believed),
                ProtectedReceiver::aligning(h_t3_r2_believed, unwanted_rx2.clone()),
            ],
            &[OwnReceiver {
                channel: h_t3_r3_believed,
                n_streams: 1,
                unwanted: Subspace::zero(3),
            }],
        ) else {
            continue;
        };
        // The wanted stream at rx2 is decoded by projecting orthogonal to
        // the unwanted space; only tx3's leakage outside it hurts.
        let mut resid = residual_interference(&h_t3_r2_true, &unwanted_rx2, &p.vectors[0]);
        let evm = hw.tx_evm_amplitude().powi(2);
        resid += h_t3_r2_true.frobenius_norm().powi(2) / 3.0 * evm;
        let _ = &l_t2_r2;
        let reduction_db = 10.0 * (1.0 + resid).log10();
        reductions.push(reduction_db);
    }
    mean(&reductions)
}

fn run_panel(
    name: &str,
    trial: impl Fn(f64, f64, &mut StdRng) -> f64,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    println!("\n== Fig. 11({name}) SNR reduction of the wanted stream [dB] ==");
    print!("{:>22}", "unwanted SNR bin:");
    for (lo, hi) in UNWANTED_BINS {
        print!("{:>12}", format!("{lo}-{hi}"));
    }
    println!("{:>12}", "(> L: avoided)");
    let mut table = Vec::new();
    for (wlo, whi) in WANTED_BINS {
        let mut row = Vec::new();
        print!("{:>22}", format!("wanted {wlo}-{whi} dB"));
        for (ulo, uhi) in UNWANTED_BINS {
            let mut vals = Vec::with_capacity(TRIALS_PER_CELL);
            for _ in 0..TRIALS_PER_CELL {
                let w = wlo + rng.gen::<f64>() * (whi - wlo);
                let u = ulo + rng.gen::<f64>() * (uhi - ulo);
                vals.push(trial(w, u, rng));
            }
            let m = mean(&vals);
            row.push(m);
            let marker = if ulo >= L_DB { "*" } else { " " };
            print!("{:>11.2}{marker}", m);
        }
        println!();
        table.push(row);
    }
    println!("(*) bins above the L = {L_DB} dB join threshold are avoided by n+'s power control");
    table
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1101);
    let nulling = run_panel("a: nulling", nulling_trial, &mut rng);
    let alignment = run_panel("b: alignment", alignment_trial, &mut rng);

    // Paper headline numbers: average reduction below threshold.
    let below = |table: &Vec<Vec<f64>>| {
        let mut vals = Vec::new();
        for row in table {
            for (j, &v) in row.iter().enumerate() {
                if UNWANTED_BINS[j].0 < L_DB {
                    vals.push(v);
                }
            }
        }
        mean(&vals)
    };
    println!("\n== headline comparison ==");
    println!(
        "avg reduction below L: nulling   {:.2} dB   (paper: 0.8 dB)",
        below(&nulling)
    );
    println!(
        "avg reduction below L: alignment {:.2} dB   (paper: 1.3 dB)",
        below(&alignment)
    );
    let n = below(&nulling);
    let a = below(&alignment);
    println!(
        "alignment worse than nulling: {} (paper: yes — extra subspace estimate)",
        if a > n { "yes" } else { "NO (mismatch)" }
    );
}
