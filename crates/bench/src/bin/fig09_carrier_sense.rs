//! Fig. 9 — Performance of Carrier Sense in the Presence of Ongoing
//! Transmissions.
//!
//! Panel (a): the power profile a 3-antenna sensing node (tx3) observes
//! without and with projection, when a weak tx2 starts while a strong tx1
//! occupies the medium. The paper reports a 0.4 dB raw jump versus an
//! 8.5 dB jump after projection for its illustrative run.
//!
//! Panel (b): CDFs of the normalized preamble cross-correlation, without
//! and with projection, with tx2 silent versus transmitting at low SNR
//! (< 3 dB). The paper reports ~18% of "transmitting" correlations are
//! indistinguishable from "silent" without projection, and full
//! distinguishability with it.
//!
//! Run with: `cargo run --release --bin fig09_carrier_sense`

use nplus::carrier_sense::MultiDimCarrierSense;
use nplus_bench::support::print_cdf;
use nplus_phy::params::OfdmConfig;
use nplus_phy::preamble::stf_time;
use nplus_testkit::scenario::{sensing_trio, SensingTrio, JOINER_START};
use rand::Rng;

fn main() {
    let cfg = OfdmConfig::usrp2();
    println!("== Fig. 9(a): sensing power, without and with projection ==");
    println!(
        "tx1 strong (~21 dB at tx3), tx2 weak (~8 dB at tx3); tx2 starts at sample {JOINER_START}\n"
    );

    let SensingTrio {
        medium,
        sensor,
        tx3,
        ..
    } = sensing_trio(42, 12.0, 2.5, true);
    println!(
        "{:>10} {:>14} {:>14}",
        "window", "raw power", "projected power"
    );
    for (label, start) in [("before", 1024u64), ("after", 3400u64)] {
        let cap = medium.capture(tx3, start, 512);
        println!(
            "{label:>10} {:>14.2} {:>14.2}",
            MultiDimCarrierSense::raw_power(&cap),
            sensor.sense_power(&cap)
        );
    }
    let raw_jump = {
        let b = MultiDimCarrierSense::raw_power(&medium.capture(tx3, 1024, 512));
        let a = MultiDimCarrierSense::raw_power(&medium.capture(tx3, 3400, 512));
        10.0 * (a / b).log10()
    };
    let proj_jump = {
        let b = sensor.sense_power(&medium.capture(tx3, 1024, 512));
        let a = sensor.sense_power(&medium.capture(tx3, 3400, 512));
        10.0 * (a / b).log10()
    };
    println!("\npower jump when tx2 starts: raw {raw_jump:.1} dB   projected {proj_jump:.1} dB");
    println!("(paper's illustrative run: 0.4 dB raw vs 8.5 dB projected)\n");

    // Panel (b): correlation CDFs at low SNR.
    println!("== Fig. 9(b): preamble cross-correlation CDFs (tx2 SNR < 3 dB) ==");
    let stf = stf_time(&cfg);
    // 802.11 cross-correlates all ten short symbols of the STF.
    let template = &stf[..160];
    let trials = 200;
    let mut raw_silent = Vec::with_capacity(trials);
    let mut raw_tx = Vec::with_capacity(trials);
    let mut proj_silent = Vec::with_capacity(trials);
    let mut proj_tx = Vec::with_capacity(trials);
    let mut rng = nplus_testkit::rng(9);
    for t in 0..trials as u64 {
        // tx2 amplitude: SNR uniform in [0, 3] dB.
        let snr_db = rng.gen::<f64>() * 3.0;
        let amp2 = 10f64.powf(snr_db / 20.0);
        let with_tx2 = sensing_trio(1000 + t, 8.0, amp2, true);
        let silent = sensing_trio(1000 + t, 8.0, amp2, false);
        // Window covering tx2's (potential) STF.
        let cap_tx = with_tx2.medium.capture(tx3, JOINER_START, 320);
        let cap_si = silent.medium.capture(tx3, JOINER_START, 320);
        raw_tx.push(MultiDimCarrierSense::detect_preamble_raw(&cap_tx, template));
        raw_silent.push(MultiDimCarrierSense::detect_preamble_raw(&cap_si, template));
        proj_tx.push(with_tx2.sensor.detect_preamble(&cap_tx, template));
        proj_silent.push(silent.sensor.detect_preamble(&cap_si, template));
    }

    print_cdf("raw correlation, tx2 silent", &mut raw_silent.clone());
    print_cdf("raw correlation, tx2 transmitting", &mut raw_tx.clone());
    print_cdf(
        "projected correlation, tx2 silent",
        &mut proj_silent.clone(),
    );
    print_cdf(
        "projected correlation, tx2 transmitting",
        &mut proj_tx.clone(),
    );

    // Distinguishability: fraction of "transmitting" samples below the
    // 95th percentile of the matching "silent" distribution.
    let p95 = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[(0.95 * (v.len() - 1) as f64) as usize]
    };
    let raw_thresh = p95(&mut raw_silent);
    let proj_thresh = p95(&mut proj_silent);
    let raw_missed =
        raw_tx.iter().filter(|&&c| c < raw_thresh).count() as f64 / raw_tx.len() as f64;
    let proj_missed =
        proj_tx.iter().filter(|&&c| c < proj_thresh).count() as f64 / proj_tx.len() as f64;
    println!("\n== distinguishability ==");
    println!(
        "non-distinguishable without projection: {:.0}%   (paper: ~18%)",
        100.0 * raw_missed
    );
    println!(
        "non-distinguishable with projection:    {:.0}%   (paper: ~0%)",
        100.0 * proj_missed
    );
}
