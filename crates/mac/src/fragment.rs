//! Packet fragmentation and aggregation.
//!
//! n+ requires every joiner to end its transmission together with the
//! first contention winner (§3.1), which means a joiner must fit whatever
//! it sends into a fixed number of OFDM symbols: fragmenting a packet
//! that is too long, or aggregating several small packets (as 802.11n
//! A-MPDU does) when the budget allows.

use nplus_phy::rates::Mcs;

/// One MPDU waiting in a transmit queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mpdu {
    /// Sequence number.
    pub seq: u16,
    /// Fragment number (0 for unfragmented packets).
    pub frag: u8,
    /// Whether more fragments of this sequence follow.
    pub more_frags: bool,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Per-MPDU overhead when packed into a body: a 4-byte delimiter
/// (seq/frag/flags/len-check) plus a 4-byte CRC, as in A-MPDU framing.
pub const MPDU_OVERHEAD_BYTES: usize = 8;

/// Packs queued payload bytes into a body that fits `budget_symbols` OFDM
/// symbols at the given MCS.
///
/// Consumes packets from the front of `queue` (draining what it packs),
/// fragmenting the final packet if only part of it fits. Returns the
/// MPDUs to send. Packets whose next fragment cannot fit at all (budget
/// smaller than overhead + 1 byte) are left queued.
pub fn pack_for_budget(
    queue: &mut Vec<QueuedPacket>,
    budget_symbols: usize,
    mcs: Mcs,
) -> Vec<Mpdu> {
    let budget_bits = budget_symbols * mcs.data_bits_per_symbol();
    let mut budget_bytes = budget_bits / 8;
    let mut out = Vec::new();
    while let Some(pkt) = queue.first_mut() {
        if budget_bytes < MPDU_OVERHEAD_BYTES + 1 {
            break;
        }
        let available = budget_bytes - MPDU_OVERHEAD_BYTES;
        let remaining = pkt.payload.len() - pkt.offset;
        if remaining <= available {
            // Whole (rest of the) packet fits.
            out.push(Mpdu {
                seq: pkt.seq,
                frag: pkt.next_frag,
                more_frags: false,
                payload: pkt.payload[pkt.offset..].to_vec(),
            });
            budget_bytes -= remaining + MPDU_OVERHEAD_BYTES;
            queue.remove(0);
        } else {
            // Fragment: send what fits, keep the tail queued.
            out.push(Mpdu {
                seq: pkt.seq,
                frag: pkt.next_frag,
                more_frags: true,
                payload: pkt.payload[pkt.offset..pkt.offset + available].to_vec(),
            });
            pkt.offset += available;
            pkt.next_frag += 1;
            budget_bytes = 0;
        }
        if budget_bytes == 0 {
            break;
        }
    }
    out
}

/// A packet in a transmit queue, with fragmentation progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedPacket {
    /// Sequence number.
    pub seq: u16,
    /// Full payload.
    pub payload: Vec<u8>,
    /// How many payload bytes have already been sent in earlier fragments.
    pub offset: usize,
    /// Next fragment number.
    pub next_frag: u8,
}

impl QueuedPacket {
    /// Wraps a fresh payload.
    pub fn new(seq: u16, payload: Vec<u8>) -> Self {
        QueuedPacket {
            seq,
            payload,
            offset: 0,
            next_frag: 0,
        }
    }
}

/// Reassembles MPDUs back into complete packets. Returns completed
/// `(seq, payload)` pairs in completion order; out-of-order fragments of
/// the same sequence are rejected (the MAC retransmits in order).
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: Option<(u16, u8, Vec<u8>)>,
    completed: Vec<(u16, Vec<u8>)>,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one received MPDU.
    pub fn push(&mut self, mpdu: &Mpdu) {
        match &mut self.partial {
            Some((seq, next_frag, buf)) if *seq == mpdu.seq && *next_frag == mpdu.frag => {
                buf.extend_from_slice(&mpdu.payload);
                if mpdu.more_frags {
                    *next_frag += 1;
                } else {
                    let (seq, _, buf) = self.partial.take().unwrap();
                    self.completed.push((seq, buf));
                }
            }
            _ if mpdu.frag == 0 => {
                if mpdu.more_frags {
                    self.partial = Some((mpdu.seq, 1, mpdu.payload.clone()));
                } else {
                    self.partial = None;
                    self.completed.push((mpdu.seq, mpdu.payload.clone()));
                }
            }
            _ => {
                // Out-of-order fragment: drop any partial state.
                self.partial = None;
            }
        }
    }

    /// Drains completed packets.
    pub fn take_completed(&mut self) -> Vec<(u16, Vec<u8>)> {
        std::mem::take(&mut self.completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_phy::rates::RATE_TABLE;

    fn mcs() -> Mcs {
        RATE_TABLE[2] // QPSK 1/2: 48 data bits... 96 coded/2 = 48 bits = 6 bytes per symbol
    }

    #[test]
    fn whole_packet_fits() {
        let mut q = vec![QueuedPacket::new(1, vec![0xAB; 40])];
        // 40 bytes + 8 overhead = 48 bytes = 384 bits; QPSK 1/2 carries
        // 48 bits/symbol -> 8 symbols needed.
        let mpdus = pack_for_budget(&mut q, 10, mcs());
        assert_eq!(mpdus.len(), 1);
        assert_eq!(mpdus[0].payload.len(), 40);
        assert!(!mpdus[0].more_frags);
        assert!(q.is_empty());
    }

    #[test]
    fn oversized_packet_fragments() {
        let mut q = vec![QueuedPacket::new(2, vec![0xCD; 500])];
        let mpdus = pack_for_budget(&mut q, 20, mcs()); // 20*48/8 = 120 bytes
        assert_eq!(mpdus.len(), 1);
        assert_eq!(mpdus[0].payload.len(), 120 - MPDU_OVERHEAD_BYTES);
        assert!(mpdus[0].more_frags);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].offset, 112);
        // Next round continues the fragment chain.
        let mpdus2 = pack_for_budget(&mut q, 20, mcs());
        assert_eq!(mpdus2[0].frag, 1);
    }

    #[test]
    fn aggregation_packs_multiple_packets() {
        let mut q = vec![
            QueuedPacket::new(1, vec![1; 20]),
            QueuedPacket::new(2, vec![2; 20]),
            QueuedPacket::new(3, vec![3; 500]),
        ];
        // Budget: 80 bytes -> packets 1 and 2 (28 bytes each with
        // overhead) fit whole; packet 3 gets the remaining 24 - 8 bytes.
        let mpdus = pack_for_budget(&mut q, 14, mcs()); // 14 symbols ≈ 84 bytes
        assert!(mpdus.len() >= 2, "should aggregate at least 2 MPDUs");
        assert_eq!(mpdus[0].seq, 1);
        assert_eq!(mpdus[1].seq, 2);
        assert!(!mpdus[0].more_frags && !mpdus[1].more_frags);
    }

    #[test]
    fn zero_budget_packs_nothing() {
        let mut q = vec![QueuedPacket::new(1, vec![0; 10])];
        assert!(pack_for_budget(&mut q, 0, mcs()).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn reassembly_of_fragmented_packet() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        let mut q = vec![QueuedPacket::new(9, payload.clone())];
        let mut r = Reassembler::new();
        let mut guard = 0;
        while !q.is_empty() {
            for m in pack_for_budget(&mut q, 10, mcs()) {
                r.push(&m);
            }
            guard += 1;
            assert!(guard < 100);
        }
        let done = r.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 9);
        assert_eq!(done[0].1, payload);
    }

    #[test]
    fn reassembly_of_aggregate() {
        let mut r = Reassembler::new();
        for seq in 0..3u16 {
            r.push(&Mpdu {
                seq,
                frag: 0,
                more_frags: false,
                payload: vec![seq as u8; 10],
            });
        }
        let done = r.take_completed();
        assert_eq!(done.len(), 3);
        for (i, (seq, payload)) in done.iter().enumerate() {
            assert_eq!(*seq, i as u16);
            assert_eq!(payload.len(), 10);
        }
    }

    #[test]
    fn out_of_order_fragment_dropped() {
        let mut r = Reassembler::new();
        r.push(&Mpdu {
            seq: 5,
            frag: 0,
            more_frags: true,
            payload: vec![1; 10],
        });
        // Skip fragment 1, feed fragment 2: partial state must be dropped.
        r.push(&Mpdu {
            seq: 5,
            frag: 2,
            more_frags: false,
            payload: vec![2; 10],
        });
        assert!(r.take_completed().is_empty());
    }

    #[test]
    fn budget_math_matches_mcs() {
        // Confirm the bits-per-symbol accounting against the rate table.
        let m = mcs();
        assert_eq!(m.data_bits_per_symbol(), 48);
    }
}
