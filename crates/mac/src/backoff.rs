//! DCF random backoff and contention resolution.
//!
//! n+ reuses 802.11's contention machinery unchanged (§3.1): nodes draw a
//! uniform backoff from the contention window, count down idle slots, and
//! transmit when they reach zero; collisions double the window. The same
//! machinery runs for the *secondary* contentions for unused degrees of
//! freedom — the only difference is the carrier-sense input (projected
//! instead of raw), which lives in the core crate.

use rand::Rng;

/// Per-node backoff state.
#[derive(Debug, Clone)]
pub struct Backoff {
    cw_min: u32,
    cw_max: u32,
    cw: u32,
    counter: u32,
}

impl Backoff {
    /// Creates backoff state with the given window bounds and draws an
    /// initial counter.
    pub fn new<R: Rng>(cw_min: u32, cw_max: u32, rng: &mut R) -> Self {
        assert!(cw_min >= 1 && cw_max >= cw_min);
        let mut b = Backoff {
            cw_min,
            cw_max,
            cw: cw_min,
            counter: 0,
        };
        b.counter = b.draw(rng);
        b
    }

    fn draw<R: Rng>(&self, rng: &mut R) -> u32 {
        rng.gen_range(0..=self.cw)
    }

    /// Current countdown value (slots of idle medium remaining).
    pub fn counter(&self) -> u32 {
        self.counter
    }

    /// Current contention window.
    pub fn cw(&self) -> u32 {
        self.cw
    }

    /// One idle slot elapsed: decrement. Returns `true` when the counter
    /// hit zero, i.e. the node transmits in this slot.
    pub fn tick(&mut self) -> bool {
        if self.counter == 0 {
            return true;
        }
        self.counter -= 1;
        self.counter == 0
    }

    /// Successful transmission: reset the window and redraw.
    pub fn on_success<R: Rng>(&mut self, rng: &mut R) {
        self.cw = self.cw_min;
        self.counter = self.draw(rng);
    }

    /// Collision or loss: double the window (bounded) and redraw.
    pub fn on_collision<R: Rng>(&mut self, rng: &mut R) {
        self.cw = (self.cw * 2 + 1).min(self.cw_max);
        self.counter = self.draw(rng);
    }
}

/// Outcome of one slotted contention round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentionOutcome {
    /// Exactly one contender reached zero first; it wins the medium.
    Winner {
        /// Index (into the contenders slice) of the winner.
        index: usize,
        /// Number of idle slots that elapsed before the win.
        slots: u32,
    },
    /// Two or more contenders reached zero in the same slot.
    Collision {
        /// Indices of the colliding contenders.
        indices: Vec<usize>,
        /// Slot at which they collided.
        slots: u32,
    },
    /// No contenders.
    Idle,
}

/// Resolves one contention round among freshly drawn counters: every
/// contender draws uniform `0..=cw` and the minimum wins; ties collide.
///
/// This is the slot-accurate equivalent of running [`Backoff::tick`] in
/// lockstep; benches use it to avoid simulating every idle slot.
pub fn resolve_contention<R: Rng>(cws: &[u32], rng: &mut R) -> ContentionOutcome {
    if cws.is_empty() {
        return ContentionOutcome::Idle;
    }
    let draws: Vec<u32> = cws.iter().map(|&cw| rng.gen_range(0..=cw)).collect();
    let min = *draws.iter().min().unwrap();
    let indices: Vec<usize> = draws
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == min)
        .map(|(i, _)| i)
        .collect();
    if indices.len() == 1 {
        ContentionOutcome::Winner {
            index: indices[0],
            slots: min,
        }
    } else {
        ContentionOutcome::Collision {
            indices,
            slots: min,
        }
    }
}

/// Allocation-free outcome of one slotted contention round: like
/// [`ContentionOutcome`], but a collision reports only the winning slot —
/// callers that need the colliding set scan the `draws` buffer they
/// passed to [`resolve_contention_in`] for entries equal to `slots`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeanResolution {
    /// Exactly one contender reached zero first; it wins the medium.
    Winner {
        /// Index (into the contenders slice) of the winner.
        index: usize,
        /// Number of idle slots that elapsed before the win.
        slots: u32,
    },
    /// Two or more contenders reached zero in the same slot (the slot is
    /// the minimum draw; colliders are the `draws` entries equal to it).
    Collision {
        /// Slot at which they collided.
        slots: u32,
    },
    /// No contenders.
    Idle,
}

/// Pooled sibling of [`resolve_contention`]: identical RNG draw order
/// (one uniform `0..=cw` per contender, in slice order) and identical
/// winner/collision decision, with the draws written into a reusable
/// buffer instead of a fresh `Vec`. Seeded outcomes match
/// [`resolve_contention`] exactly.
pub fn resolve_contention_in<R: Rng>(
    cws: &[u32],
    rng: &mut R,
    draws: &mut Vec<u32>,
) -> LeanResolution {
    if cws.is_empty() {
        return LeanResolution::Idle;
    }
    draws.clear();
    draws.extend(cws.iter().map(|&cw| rng.gen_range(0..=cw)));
    let min = *draws.iter().min().unwrap();
    let mut winner = None;
    let mut ties = 0usize;
    for (i, &d) in draws.iter().enumerate() {
        if d == min {
            ties += 1;
            if ties == 1 {
                winner = Some(i);
            }
        }
    }
    if ties == 1 {
        LeanResolution::Winner {
            index: winner.unwrap(),
            slots: min,
        }
    } else {
        LeanResolution::Collision { slots: min }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lean_resolution_matches_allocating_resolution() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let mut draws = Vec::new();
        for round in 0..2000 {
            let n = 1 + (round % 5);
            let cws: Vec<u32> = (0..n).map(|i| 15 + (i as u32 % 3) * 16).collect();
            let full = resolve_contention(&cws, &mut r1);
            let lean = resolve_contention_in(&cws, &mut r2, &mut draws);
            match (&full, lean) {
                (
                    ContentionOutcome::Winner { index, slots },
                    LeanResolution::Winner {
                        index: li,
                        slots: ls,
                    },
                ) => {
                    assert_eq!((*index, *slots), (li, ls));
                }
                (
                    ContentionOutcome::Collision { indices, slots },
                    LeanResolution::Collision { slots: ls },
                ) => {
                    assert_eq!(*slots, ls);
                    // Colliders are recoverable from the draws buffer.
                    let scanned: Vec<usize> = draws
                        .iter()
                        .enumerate()
                        .filter(|(_, &d)| d == ls)
                        .map(|(i, _)| i)
                        .collect();
                    assert_eq!(&scanned, indices);
                }
                other => panic!("outcome mismatch: {other:?}"),
            }
        }
        assert_eq!(
            resolve_contention_in(&[], &mut r2, &mut draws),
            LeanResolution::Idle
        );
    }

    #[test]
    fn counter_counts_down_to_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = Backoff::new(15, 1023, &mut rng);
        let initial = b.counter();
        let mut ticks = 0;
        while !b.tick() {
            ticks += 1;
            assert!(ticks < 2000, "runaway countdown");
        }
        assert!(ticks <= initial.max(1));
        assert_eq!(b.counter(), 0);
        // Further ticks keep reporting "transmit".
        assert!(b.tick());
    }

    #[test]
    fn collision_doubles_window_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = Backoff::new(15, 63, &mut rng);
        assert_eq!(b.cw(), 15);
        b.on_collision(&mut rng);
        assert_eq!(b.cw(), 31);
        b.on_collision(&mut rng);
        assert_eq!(b.cw(), 63);
        b.on_collision(&mut rng);
        assert_eq!(b.cw(), 63, "window must cap at cw_max");
        b.on_success(&mut rng);
        assert_eq!(b.cw(), 15);
    }

    #[test]
    fn draws_stay_in_window() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let b = Backoff::new(15, 1023, &mut rng);
            assert!(b.counter() <= 15);
        }
    }

    #[test]
    fn contention_fairness() {
        // Over many rounds, three identical contenders win roughly
        // equally often.
        let mut rng = StdRng::seed_from_u64(4);
        let mut wins = [0usize; 3];
        let mut rounds = 0;
        while rounds < 30_000 {
            match resolve_contention(&[15, 15, 15], &mut rng) {
                ContentionOutcome::Winner { index, .. } => {
                    wins[index] += 1;
                    rounds += 1;
                }
                ContentionOutcome::Collision { .. } => {
                    rounds += 1;
                }
                ContentionOutcome::Idle => unreachable!(),
            }
        }
        let total: usize = wins.iter().sum();
        for w in wins {
            let share = w as f64 / total as f64;
            assert!(
                (share - 1.0 / 3.0).abs() < 0.02,
                "share {share} deviates from 1/3"
            );
        }
    }

    #[test]
    fn collision_probability_sane() {
        // With CW=15 and 3 nodes, collisions should happen but be the
        // minority outcome.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let collisions = (0..n)
            .filter(|_| {
                matches!(
                    resolve_contention(&[15, 15, 15], &mut rng),
                    ContentionOutcome::Collision { .. }
                )
            })
            .count();
        let rate = collisions as f64 / n as f64;
        assert!(rate > 0.05 && rate < 0.35, "collision rate {rate}");
    }

    #[test]
    fn idle_with_no_contenders() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(resolve_contention(&[], &mut rng), ContentionOutcome::Idle);
    }

    #[test]
    fn single_contender_always_wins() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            match resolve_contention(&[15], &mut rng) {
                ContentionOutcome::Winner { index: 0, .. } => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }
}
