//! MAC timing in sample units.
//!
//! The medium simulator runs a sample clock at the channel bandwidth, so
//! all MAC intervals (SIFS, DIFS, slots) are converted from microseconds
//! to sample counts once, here.

use nplus_phy::params::{MacTiming, OfdmConfig};

/// MAC timing converted to the medium's sample clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleTiming {
    /// Short inter-frame space, samples.
    pub sifs: u64,
    /// DCF inter-frame space, samples.
    pub difs: u64,
    /// Backoff slot, samples.
    pub slot: u64,
    /// Minimum contention window, slots.
    pub cw_min: u32,
    /// Maximum contention window, slots.
    pub cw_max: u32,
    /// Samples per OFDM symbol (with CP).
    pub symbol: u64,
}

impl SampleTiming {
    /// Converts 802.11 microsecond timing to samples at the PHY bandwidth.
    pub fn from_phy(mac: &MacTiming, cfg: &OfdmConfig) -> Self {
        let to_samples = |us: f64| (us * 1e-6 * cfg.bandwidth_hz).round() as u64;
        SampleTiming {
            sifs: to_samples(mac.sifs_us),
            difs: to_samples(mac.difs_us()),
            slot: to_samples(mac.slot_us),
            cw_min: mac.cw_min,
            cw_max: mac.cw_max,
            symbol: cfg.symbol_len() as u64,
        }
    }

    /// The paper's profile: 802.11a timing on the 10 MHz USRP2 channel.
    pub fn usrp2() -> Self {
        Self::from_phy(&MacTiming::dot11a(), &OfdmConfig::usrp2())
    }

    /// Duration of `n` OFDM symbols, in samples.
    pub fn symbols(&self, n: usize) -> u64 {
        self.symbol * n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usrp2_sample_counts() {
        let t = SampleTiming::usrp2();
        // 16 µs at 10 MHz = 160 samples; slot 9 µs = 90; DIFS 34 µs = 340.
        assert_eq!(t.sifs, 160);
        assert_eq!(t.slot, 90);
        assert_eq!(t.difs, 340);
        assert_eq!(t.symbol, 80);
    }

    #[test]
    fn wifi20_sample_counts() {
        let t = SampleTiming::from_phy(&MacTiming::dot11a(), &OfdmConfig::wifi20());
        assert_eq!(t.sifs, 320);
        assert_eq!(t.slot, 180);
    }

    #[test]
    fn symbols_helper() {
        let t = SampleTiming::usrp2();
        assert_eq!(t.symbols(0), 0);
        assert_eq!(t.symbols(10), 800);
    }
}
