//! MAC timing in sample units.
//!
//! The medium simulator runs a sample clock at the channel bandwidth, so
//! all MAC intervals (SIFS, DIFS, slots) are converted from microseconds
//! to sample counts once, here.

use nplus_phy::params::{MacTiming, OfdmConfig};

/// MAC timing converted to the medium's sample clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleTiming {
    /// Short inter-frame space, samples.
    pub sifs: u64,
    /// DCF inter-frame space, samples.
    pub difs: u64,
    /// Backoff slot, samples.
    pub slot: u64,
    /// Minimum contention window, slots.
    pub cw_min: u32,
    /// Maximum contention window, slots.
    pub cw_max: u32,
    /// Samples per OFDM symbol (with CP).
    pub symbol: u64,
}

impl SampleTiming {
    /// Converts 802.11 microsecond timing to samples at the PHY bandwidth.
    ///
    /// DIFS is derived from the already-rounded SIFS and slot so the
    /// 802.11 identity `DIFS = SIFS + 2·slot` holds *in sample units* at
    /// every bandwidth. Rounding the microsecond total independently
    /// could break it by a sample wherever the fractional parts interact
    /// (e.g. 2.5 MHz: SIFS → 40, slot → 22.5 → 23, but 34 µs → 85 ≠ 86),
    /// and the MAC accounting assumes the identity when it charges DIFS
    /// against slot-quantized backoff.
    pub fn from_phy(mac: &MacTiming, cfg: &OfdmConfig) -> Self {
        let to_samples = |us: f64| (us * 1e-6 * cfg.bandwidth_hz).round() as u64;
        let sifs = to_samples(mac.sifs_us);
        let slot = to_samples(mac.slot_us);
        SampleTiming {
            sifs,
            difs: sifs + 2 * slot,
            slot,
            cw_min: mac.cw_min,
            cw_max: mac.cw_max,
            symbol: cfg.symbol_len() as u64,
        }
    }

    /// The paper's profile: 802.11a timing on the 10 MHz USRP2 channel.
    pub fn usrp2() -> Self {
        Self::from_phy(&MacTiming::dot11a(), &OfdmConfig::usrp2())
    }

    /// Duration of `n` OFDM symbols, in samples.
    pub fn symbols(&self, n: usize) -> u64 {
        self.symbol * n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usrp2_sample_counts() {
        let t = SampleTiming::usrp2();
        // 16 µs at 10 MHz = 160 samples; slot 9 µs = 90; DIFS 34 µs = 340.
        assert_eq!(t.sifs, 160);
        assert_eq!(t.slot, 90);
        assert_eq!(t.difs, 340);
        assert_eq!(t.symbol, 80);
    }

    #[test]
    fn wifi20_sample_counts() {
        let t = SampleTiming::from_phy(&MacTiming::dot11a(), &OfdmConfig::wifi20());
        assert_eq!(t.sifs, 320);
        assert_eq!(t.slot, 180);
    }

    #[test]
    fn symbols_helper() {
        let t = SampleTiming::usrp2();
        assert_eq!(t.symbols(0), 0);
        assert_eq!(t.symbols(10), 800);
    }

    /// Regression: independent rounding broke `difs == sifs + 2*slot`
    /// in sample units at bandwidths where the fractional sample counts
    /// interact. 2.5 MHz is the concrete witness: SIFS 16 µs → 40
    /// samples, slot 9 µs → 22.5 → 23, so DIFS must be 86 — but
    /// rounding 34 µs directly gave 85.
    #[test]
    fn difs_identity_at_fractional_bandwidth() {
        let cfg = OfdmConfig {
            bandwidth_hz: 2.5e6,
            ..OfdmConfig::usrp2()
        };
        let t = SampleTiming::from_phy(&MacTiming::dot11a(), &cfg);
        assert_eq!(t.sifs, 40);
        assert_eq!(t.slot, 23);
        assert_eq!(t.difs, 86, "DIFS must equal SIFS + 2*slot in samples");
        assert_eq!(t.difs, t.sifs + 2 * t.slot);
    }

    proptest::proptest! {
        /// The 802.11 inter-frame-space identity holds in sample units
        /// at any bandwidth, not just the USRP2/20 MHz profiles.
        #[test]
        fn difs_is_sifs_plus_two_slots_at_any_bandwidth(bw_khz in 500u32..100_000) {
            let cfg = OfdmConfig {
                bandwidth_hz: bw_khz as f64 * 1e3,
                ..OfdmConfig::usrp2()
            };
            let t = SampleTiming::from_phy(&MacTiming::dot11a(), &cfg);
            proptest::prop_assert_eq!(t.difs, t.sifs + 2 * t.slot);
            // And the sample counts stay faithful to the microseconds.
            let expected_sifs = (16.0e-6 * cfg.bandwidth_hz).round() as u64;
            proptest::prop_assert_eq!(t.sifs, expected_sifs);
        }
    }
}
