//! Retransmission bookkeeping.
//!
//! §4 ("Retransmissions"): an n+ node keeps each packet queued until it is
//! acked; on the next contention win the packet is reconsidered, possibly
//! fragmented differently or aggregated with other packets for the same
//! receiver.

use crate::fragment::QueuedPacket;
use std::collections::BTreeMap;

/// Transmit queue with ack/retransmission tracking, per receiver.
///
/// Both maps are `BTreeMap`s: every iteration over them (traffic
/// checks, timeout scans) is then in key order by construction, so the
/// queue satisfies the determinism contract without sort-on-iterate.
/// The maps hold at most a few dozen destinations, far below where
/// hashing would win.
#[derive(Debug, Default)]
pub struct RetransmitQueue {
    /// Per-destination FIFO of unacked packets.
    queues: BTreeMap<u16, Vec<QueuedPacket>>,
    /// Packets sent and awaiting ack: (dst, seq) → payload snapshot.
    in_flight: BTreeMap<(u16, u16), Vec<u8>>,
    next_seq: u16,
    /// Counters for stats.
    pub delivered: usize,
    /// Number of retransmissions performed.
    pub retransmissions: usize,
}

impl RetransmitQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a fresh upper-layer packet for `dst`; returns its sequence
    /// number.
    pub fn enqueue(&mut self, dst: u16, payload: Vec<u8>) -> u16 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.queues
            .entry(dst)
            .or_default()
            .push(QueuedPacket::new(seq, payload));
        seq
    }

    /// True when there is pending traffic for any destination.
    pub fn has_traffic(&self) -> bool {
        self.queues.values().any(|q| !q.is_empty())
    }

    /// True when there is pending traffic for `dst`.
    pub fn has_traffic_for(&self, dst: u16) -> bool {
        self.queues.get(&dst).is_some_and(|q| !q.is_empty())
    }

    /// Mutable access to the per-destination queue, for the packer.
    pub fn queue_for(&mut self, dst: u16) -> &mut Vec<QueuedPacket> {
        self.queues.entry(dst).or_default()
    }

    /// Records that `seq` was fully sent to `dst` and awaits an ack.
    pub fn mark_sent(&mut self, dst: u16, seq: u16, payload: Vec<u8>) {
        self.in_flight.insert((dst, seq), payload);
    }

    /// Processes an ack for `(dst, seq)`. Returns true if it matched an
    /// in-flight packet.
    pub fn on_ack(&mut self, dst: u16, seq: u16) -> bool {
        if self.in_flight.remove(&(dst, seq)).is_some() {
            self.delivered += 1;
            true
        } else {
            false
        }
    }

    /// Ack timeout: requeue every in-flight packet for `dst` at the front
    /// of its queue (oldest first), to be reconsidered at the next win.
    pub fn on_timeout(&mut self, dst: u16) {
        // BTreeMap range: the dst's packets, already seq-ascending.
        let expired: Vec<(u16, Vec<u8>)> = self
            .in_flight
            .range((dst, 0)..=(dst, u16::MAX))
            .map(|((_, s), p)| (*s, p.clone()))
            .collect();
        for (seq, _) in &expired {
            self.in_flight.remove(&(dst, *seq));
        }
        let q = self.queues.entry(dst).or_default();
        for (seq, payload) in expired.into_iter().rev() {
            self.retransmissions += 1;
            q.insert(0, QueuedPacket::new(seq, payload));
        }
    }

    /// Number of packets currently awaiting acks.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_assigns_monotonic_seqs() {
        let mut q = RetransmitQueue::new();
        let s1 = q.enqueue(1, vec![1]);
        let s2 = q.enqueue(1, vec![2]);
        let s3 = q.enqueue(2, vec![3]);
        assert_eq!(s2, s1.wrapping_add(1));
        assert_eq!(s3, s2.wrapping_add(1));
        assert!(q.has_traffic());
        assert!(q.has_traffic_for(1));
        assert!(q.has_traffic_for(2));
        assert!(!q.has_traffic_for(3));
    }

    #[test]
    fn ack_clears_in_flight() {
        let mut q = RetransmitQueue::new();
        let seq = q.enqueue(1, vec![0; 10]);
        let pkt = q.queue_for(1).remove(0);
        q.mark_sent(1, pkt.seq, pkt.payload);
        assert_eq!(q.in_flight_count(), 1);
        assert!(q.on_ack(1, seq));
        assert_eq!(q.in_flight_count(), 0);
        assert_eq!(q.delivered, 1);
        // Duplicate ack is ignored.
        assert!(!q.on_ack(1, seq));
        assert_eq!(q.delivered, 1);
    }

    #[test]
    fn timeout_requeues_in_order() {
        let mut q = RetransmitQueue::new();
        let s1 = q.enqueue(1, vec![1; 4]);
        let s2 = q.enqueue(1, vec![2; 4]);
        q.queue_for(1).clear();
        q.mark_sent(1, s1, vec![1; 4]);
        q.mark_sent(1, s2, vec![2; 4]);
        q.on_timeout(1);
        assert_eq!(q.in_flight_count(), 0);
        assert_eq!(q.retransmissions, 2);
        let queue = q.queue_for(1);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue[0].seq, s1, "oldest packet must retransmit first");
        assert_eq!(queue[1].seq, s2);
    }

    #[test]
    fn timeout_only_affects_one_destination() {
        let mut q = RetransmitQueue::new();
        let s1 = q.enqueue(1, vec![1]);
        let s2 = q.enqueue(2, vec![2]);
        q.queue_for(1).clear();
        q.queue_for(2).clear();
        q.mark_sent(1, s1, vec![1]);
        q.mark_sent(2, s2, vec![2]);
        q.on_timeout(1);
        assert_eq!(q.in_flight_count(), 1);
        assert!(q.has_traffic_for(1));
        assert!(!q.has_traffic_for(2));
    }
}
