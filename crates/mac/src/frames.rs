//! Light-weight handshake frame formats (§3.5).
//!
//! n+ sends no standalone RTS/CTS frames. Instead it splits each packet's
//! header from its body: the **data header** doubles as a light-weight RTS
//! and the **ACK header** doubles as a light-weight CTS. Beyond standard
//! 802.11 fields, the ACK header carries the chosen bitrate and the
//! receiver's (differentially compressed) alignment space; the data header
//! may list multiple receivers with per-receiver stream counts (Fig. 4's
//! one-AP-to-two-clients case).
//!
//! Serialization is a simple explicit little-endian layout with a CRC-32
//! per header — every field is written and parsed by hand so the format is
//! self-documenting and fuzzable.

use nplus_phy::crc::{append_crc, check_crc};

/// A node address (the simulation uses small integers; 802.11 would use
/// 48-bit MACs — the field is 16 bits here which the sim never exhausts).
pub type Addr = u16;

/// One receiver entry in a data header: destination and how many spatial
/// streams it will be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiverEntry {
    /// Destination address.
    pub dst: Addr,
    /// Number of spatial streams destined to `dst`.
    pub n_streams: u8,
}

/// The data header — n+'s light-weight RTS.
///
/// Contains everything an overhearing contender needs: who is
/// transmitting (and, via the PHY preamble, the channels from every
/// transmit antenna), how many degrees of freedom the transmission uses,
/// and when it ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataHeader {
    /// Transmitter address.
    pub src: Addr,
    /// Receivers and their stream counts (usually one entry; several for
    /// the multi-receiver AP case of Fig. 4).
    pub receivers: Vec<ReceiverEntry>,
    /// Number of antennas the transmitter uses for this transmission.
    pub n_antennas: u8,
    /// Body duration in OFDM symbols (together with the bitrate this
    /// yields the end time all joiners must respect).
    pub duration_symbols: u16,
    /// Sequence number of the (first) MPDU in the body.
    pub seq: u16,
}

/// The ACK header — n+'s light-weight CTS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckHeader {
    /// Receiver (the node sending this CTS).
    pub src: Addr,
    /// The transmitter being answered.
    pub dst: Addr,
    /// Chosen rate index into the PHY rate table, one per spatial stream
    /// destined to this receiver (§3.4: receiver-side per-packet ESNR
    /// selection picks a rate per stream).
    pub rate_indices: Vec<u8>,
    /// Differentially compressed alignment space (opaque to the MAC;
    /// encoded/decoded by the core crate's handshake codec). Empty when
    /// the receiver has no spare dimensions to advertise.
    pub alignment_blob: Vec<u8>,
}

/// Frame parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// CRC check failed or the frame was truncated.
    Corrupt,
    /// The type tag did not match the expected frame kind.
    WrongType,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Corrupt => write!(f, "corrupt frame"),
            FrameError::WrongType => write!(f, "unexpected frame type"),
        }
    }
}

impl std::error::Error for FrameError {}

const TYPE_DATA_HEADER: u8 = 0xD1;
const TYPE_ACK_HEADER: u8 = 0xA1;

impl DataHeader {
    /// Total degrees of freedom this transmission occupies.
    pub fn total_streams(&self) -> usize {
        self.receivers.iter().map(|r| r.n_streams as usize).sum()
    }

    /// Serialized length in bytes of a data header with `n_receivers`
    /// entries, CRC included — pure arithmetic for air-time accounting,
    /// so hot paths never materialize the byte vector. Pinned against
    /// [`DataHeader::to_bytes`] by test.
    pub const fn encoded_len(n_receivers: usize) -> usize {
        // type(1) + src(2) + antennas(1) + duration(2) + seq(2)
        // + count(1) + 3 per receiver + CRC-32(4).
        13 + 3 * n_receivers
    }

    /// Serializes with a trailing CRC-32.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16 + 3 * self.receivers.len());
        b.push(TYPE_DATA_HEADER);
        b.extend_from_slice(&self.src.to_le_bytes());
        b.push(self.n_antennas);
        b.extend_from_slice(&self.duration_symbols.to_le_bytes());
        b.extend_from_slice(&self.seq.to_le_bytes());
        b.push(self.receivers.len() as u8);
        for r in &self.receivers {
            b.extend_from_slice(&r.dst.to_le_bytes());
            b.push(r.n_streams);
        }
        append_crc(&b)
    }

    /// Parses and CRC-checks a serialized header.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FrameError> {
        let payload = check_crc(bytes).ok_or(FrameError::Corrupt)?;
        if payload.len() < 9 {
            return Err(FrameError::Corrupt);
        }
        if payload[0] != TYPE_DATA_HEADER {
            return Err(FrameError::WrongType);
        }
        let src = u16::from_le_bytes([payload[1], payload[2]]);
        let n_antennas = payload[3];
        let duration_symbols = u16::from_le_bytes([payload[4], payload[5]]);
        let seq = u16::from_le_bytes([payload[6], payload[7]]);
        let n_rx = payload[8] as usize;
        if payload.len() != 9 + 3 * n_rx {
            return Err(FrameError::Corrupt);
        }
        let receivers = (0..n_rx)
            .map(|i| {
                let off = 9 + 3 * i;
                ReceiverEntry {
                    dst: u16::from_le_bytes([payload[off], payload[off + 1]]),
                    n_streams: payload[off + 2],
                }
            })
            .collect();
        Ok(DataHeader {
            src,
            receivers,
            n_antennas,
            duration_symbols,
            seq,
        })
    }
}

impl AckHeader {
    /// Serialized length in bytes of an ACK header carrying `n_rates`
    /// rate indices and an `blob_len`-byte alignment blob, CRC included —
    /// the allocation-free sibling of `to_bytes().len()`, pinned by test.
    pub const fn encoded_len(n_rates: usize, blob_len: usize) -> usize {
        // type(1) + src(2) + dst(2) + n_rates(1) + rates + blob_len(2)
        // + blob + CRC-32(4).
        12 + n_rates + blob_len
    }

    /// Serializes with a trailing CRC-32.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(11 + self.rate_indices.len() + self.alignment_blob.len());
        b.push(TYPE_ACK_HEADER);
        b.extend_from_slice(&self.src.to_le_bytes());
        b.extend_from_slice(&self.dst.to_le_bytes());
        b.push(self.rate_indices.len() as u8);
        b.extend_from_slice(&self.rate_indices);
        b.extend_from_slice(&(self.alignment_blob.len() as u16).to_le_bytes());
        b.extend_from_slice(&self.alignment_blob);
        append_crc(&b)
    }

    /// Parses and CRC-checks a serialized header.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FrameError> {
        let payload = check_crc(bytes).ok_or(FrameError::Corrupt)?;
        if payload.len() < 8 {
            return Err(FrameError::Corrupt);
        }
        if payload[0] != TYPE_ACK_HEADER {
            return Err(FrameError::WrongType);
        }
        let src = u16::from_le_bytes([payload[1], payload[2]]);
        let dst = u16::from_le_bytes([payload[3], payload[4]]);
        let n_rates = payload[5] as usize;
        if payload.len() < 8 + n_rates {
            return Err(FrameError::Corrupt);
        }
        let rate_indices = payload[6..6 + n_rates].to_vec();
        let blob_len = u16::from_le_bytes([payload[6 + n_rates], payload[7 + n_rates]]) as usize;
        if payload.len() != 8 + n_rates + blob_len {
            return Err(FrameError::Corrupt);
        }
        Ok(AckHeader {
            src,
            dst,
            rate_indices,
            alignment_blob: payload[8 + n_rates..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data_header() -> DataHeader {
        DataHeader {
            src: 7,
            receivers: vec![
                ReceiverEntry {
                    dst: 3,
                    n_streams: 2,
                },
                ReceiverEntry {
                    dst: 9,
                    n_streams: 1,
                },
            ],
            n_antennas: 3,
            duration_symbols: 250,
            seq: 4242,
        }
    }

    #[test]
    fn data_header_round_trip() {
        let h = sample_data_header();
        let parsed = DataHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.total_streams(), 3);
    }

    #[test]
    fn ack_header_round_trip() {
        let h = AckHeader {
            src: 3,
            dst: 7,
            rate_indices: vec![5, 3],
            alignment_blob: (0..100).collect(),
        };
        let parsed = AckHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn empty_alignment_blob() {
        let h = AckHeader {
            src: 1,
            dst: 2,
            rate_indices: vec![0],
            alignment_blob: Vec::new(),
        };
        assert_eq!(AckHeader::from_bytes(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample_data_header().to_bytes();
        bytes[4] ^= 0x40;
        assert_eq!(DataHeader::from_bytes(&bytes), Err(FrameError::Corrupt));
        assert_eq!(DataHeader::from_bytes(&[1, 2]), Err(FrameError::Corrupt));
    }

    #[test]
    fn type_confusion_detected() {
        let data = sample_data_header().to_bytes();
        assert_eq!(AckHeader::from_bytes(&data), Err(FrameError::WrongType));
        // Give the ack a blob so its payload is long enough to reach the
        // data header's type check (shorter frames fail as Corrupt).
        let ack = AckHeader {
            src: 0,
            dst: 0,
            rate_indices: vec![0],
            alignment_blob: vec![0; 4],
        }
        .to_bytes();
        assert_eq!(DataHeader::from_bytes(&ack), Err(FrameError::WrongType));
    }

    #[test]
    fn single_receiver_header_is_compact() {
        let h = DataHeader {
            src: 1,
            receivers: vec![ReceiverEntry {
                dst: 2,
                n_streams: 1,
            }],
            n_antennas: 1,
            duration_symbols: 100,
            seq: 0,
        };
        // 9 fixed + 3 receiver + 4 CRC = 16 bytes: fits well inside one
        // BPSK-1/2 OFDM symbol payload (24 bits... 3 bytes per symbol ->
        // header occupies a handful of symbols at base rate).
        assert_eq!(h.to_bytes().len(), 16);
    }

    #[test]
    fn encoded_len_matches_serialization() {
        for n_rx in 1..4usize {
            let h = DataHeader {
                src: 1,
                receivers: (0..n_rx)
                    .map(|i| ReceiverEntry {
                        dst: i as Addr,
                        n_streams: 1,
                    })
                    .collect(),
                n_antennas: 2,
                duration_symbols: 77,
                seq: 5,
            };
            assert_eq!(h.to_bytes().len(), DataHeader::encoded_len(n_rx));
        }
        for (n_rates, blob) in [(1usize, 0usize), (2, 62), (3, 100)] {
            let h = AckHeader {
                src: 3,
                dst: 7,
                rate_indices: vec![4; n_rates],
                alignment_blob: vec![0xAB; blob],
            };
            assert_eq!(h.to_bytes().len(), AckHeader::encoded_len(n_rates, blob));
        }
    }

    #[test]
    fn truncated_receiver_list_rejected() {
        let h = sample_data_header();
        let bytes = h.to_bytes();
        // Remove one receiver entry's bytes but fix the CRC over the
        // truncated payload to specifically exercise the length check.
        let payload = &bytes[..bytes.len() - 4];
        let shortened = &payload[..payload.len() - 3];
        let refrmed = nplus_phy::crc::append_crc(shortened);
        assert_eq!(DataHeader::from_bytes(&refrmed), Err(FrameError::Corrupt));
    }
}
