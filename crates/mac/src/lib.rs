//! # nplus-mac
//!
//! MAC substrate for the `nplus` workspace — the reproduction of *"Random
//! Access Heterogeneous MIMO Networks"* (SIGCOMM 2011).
//!
//! n+ deliberately reuses 802.11's medium-access machinery (§3.1) and
//! changes only what it senses (projected signals) and what headers carry
//! (bitrate + alignment space). This crate provides that shared machinery,
//! protocol-agnostically:
//!
//! * [`timing`] — SIFS/DIFS/slot intervals on the medium's sample clock;
//! * [`backoff`] — DCF contention windows, countdown, and slot-accurate
//!   contention resolution;
//! * [`frames`] — the light-weight handshake headers (§3.5): data header
//!   as RTS, ACK header as CTS with bitrate + alignment space;
//! * [`fragment`] — fragmentation/aggregation so joiners end exactly with
//!   the first contention winner;
//! * [`retransmit`] — unacked-packet bookkeeping (§4).
//!
//! The n+ node state machine itself, and the 802.11n / beamforming
//! baselines, live in the `nplus` core crate which composes this substrate
//! with the precoder and the medium.

#![forbid(unsafe_code)]

pub mod backoff;
pub mod fragment;
pub mod frames;
pub mod retransmit;
pub mod timing;

pub use backoff::{resolve_contention, Backoff, ContentionOutcome};
pub use fragment::{pack_for_budget, Mpdu, QueuedPacket, Reassembler, MPDU_OVERHEAD_BYTES};
pub use frames::{AckHeader, Addr, DataHeader, FrameError, ReceiverEntry};
pub use retransmit::RetransmitQueue;
pub use timing::SampleTiming;
