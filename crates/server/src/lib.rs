//! # nplus-server — sweep-as-a-service
//!
//! A long-running sweep server over the `nplus` Monte-Carlo engine:
//! clients submit serialized sweep requests (scenario spec, environment
//! and policy names, seeds, rounds), the server queues them onto the
//! deterministic parallel executor and returns aggregated
//! [`SweepStats`](nplus::sim::SweepStats) as JSON.
//!
//! The load-bearing feature is the **content-addressed result cache**:
//! every request is normalized into a
//! [`CanonicalSpec`](nplus::sim::CanonicalSpec) and keyed by the
//! 128-bit hash of its canonical bytes. Because the sweep engine is a
//! pure function of those fields — bit-for-bit identical across thread
//! counts and repeat runs — a repeated request is served from the cache
//! instantly, marked `"cache_hit": true`, and is bit-identical to the
//! cold computation.
//!
//! The wire format is deliberately dependency-free: u32 big-endian
//! length-prefixed JSON frames over TCP ([`protocol`]), parsed and
//! written by the workspace's own dependency-free JSON module
//! ([`json`], re-exported from `nplus-codec`, which the recording
//! exporter shares).
//! Every malformed request — unframeable bytes, invalid JSON, names the
//! registries reject, structurally invalid scenarios — maps to a typed
//! error response; no client input reaches a panic.
//!
//! ## Quick start
//!
//! ```bash
//! cargo run --release -p nplus-server --bin sweep-server -- --addr 127.0.0.1:4011
//! # then, from another shell:
//! cargo run --release -p nplus-bench --bin sweep-load -- --addr 127.0.0.1:4011
//! ```
//!
//! In-process use (what the integration tests do):
//!
//! ```
//! use nplus_server::{client, SweepServer};
//!
//! let server = SweepServer::bind("127.0.0.1:0").unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! let handle = std::thread::spawn(move || server.serve().unwrap());
//! let resp = client::request_once(
//!     &addr,
//!     r#"{"cmd":"sweep","scenario":"pairs:2","rounds":2,"seeds":[0],"policies":["nplus"]}"#,
//! )
//! .unwrap();
//! assert_eq!(resp.get("status").and_then(|s| s.as_str()), Some("ok"));
//! client::request_once(&addr, r#"{"cmd":"shutdown"}"#).unwrap();
//! handle.join().unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use nplus_codec::json;

pub use cache::ResultCache;
pub use json::{json_f64, Json};
pub use protocol::{Request, SweepRequest, MAX_FRAME};
pub use server::SweepServer;
