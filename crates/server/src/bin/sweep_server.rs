//! `sweep-server` — the long-running sweep service binary.
//!
//! ```text
//! sweep-server [--addr HOST:PORT]
//! ```
//!
//! Binds (default `127.0.0.1:4011`), prints the listening address, and
//! serves framed JSON sweep requests with a content-addressed result
//! cache until a `{"cmd":"shutdown"}` request arrives. Bad arguments
//! exit 2 with a one-line message; bind failures exit 1.

use nplus_server::SweepServer;
use std::process::ExitCode;

const USAGE: &str = "usage: sweep-server [--addr HOST:PORT]";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:4011".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return arg_error("--addr needs a HOST:PORT value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return arg_error(&format!("unknown argument {other:?}")),
        }
    }

    let server = match SweepServer::bind(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sweep-server: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => println!("sweep-server listening on {bound}"),
        Err(e) => {
            eprintln!("sweep-server: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.serve() {
        eprintln!("sweep-server: serve loop failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("sweep-server: shutdown requested, exiting");
    ExitCode::SUCCESS
}

fn arg_error(msg: &str) -> ExitCode {
    eprintln!("sweep-server: {msg}\n{USAGE}");
    ExitCode::from(2)
}
