//! A minimal blocking client for the sweep-server protocol — what the
//! `sweep-load` generator, the CI smoke step and the integration tests
//! all drive the server with.

use crate::json::{self, Json};
use crate::protocol::{read_frame, write_frame};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Connects to `addr`, retrying for up to `wait` (the server may still
/// be binding when a load generator starts).
///
/// # Errors
/// The last connection error once the deadline passes.
pub fn connect_retry(addr: &str, wait: Duration) -> io::Result<TcpStream> {
    // nplus:allow(DET001): real network retry deadline — nothing simulated depends on this clock.
    let deadline = std::time::Instant::now() + wait;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            // nplus:allow(DET001): same retry deadline (see above).
            Err(e) if std::time::Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Sends one raw JSON request text over an open connection and parses
/// the response frame. The connection stays usable for more requests.
///
/// # Errors
/// I/O errors, a connection closed before the response, or a response
/// that is not valid JSON (which would be a server bug).
pub fn roundtrip(stream: &mut TcpStream, request: &str) -> io::Result<Json> {
    write_frame(stream, request.as_bytes())?;
    let payload = read_frame(stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a response",
        )
    })?;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    json::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unparseable response: {e}"),
        )
    })
}

/// One-shot convenience: connect (with a short retry window), send one
/// request, return the parsed response.
///
/// # Errors
/// As [`connect_retry`] and [`roundtrip`].
pub fn request_once(addr: &str, request: &str) -> io::Result<Json> {
    let mut stream = connect_retry(addr, Duration::from_secs(5))?;
    roundtrip(&mut stream, request)
}
