//! The content-addressed result cache.
//!
//! Keys are [`CanonicalSpec::key`](nplus::sim::CanonicalSpec::key)
//! values: 128-bit hashes of the canonical spec encoding. The cache may
//! return a stored result for any request with the same key because the
//! sweep engine is a pure function of the canonical fields — results
//! are bit-for-bit identical across thread counts and repeat runs (the
//! determinism suites in `nplus` prove this), so "same key" means "same
//! answer", forever.
//!
//! The lock covers only map access, never compute: a sweep can take
//! seconds, and holding a mutex across it would serialize the whole
//! server. The cost is that two clients racing the same cold key may
//! both compute it; both results are bit-identical, and the first
//! insert wins.

use nplus::sim::SweepStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Shared map from canonical key to computed statistics, with hit/miss
/// counters. Cheap to clone behind an `Arc`; all methods take `&self`.
#[derive(Default)]
pub struct ResultCache {
    entries: Mutex<HashMap<u128, Arc<Vec<SweepStats>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entries map, recovering from a poisoned lock instead of
    /// panicking (SRV002): the map is only ever mutated by a single
    /// `insert`/`or_insert_with`, which cannot leave it in a torn
    /// state, so the data behind a poisoned mutex is still valid —
    /// a worker that panicked mid-request must not take the whole
    /// serving surface down with it.
    fn entries(&self) -> MutexGuard<'_, HashMap<u128, Arc<Vec<SweepStats>>>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key`; on a miss runs `compute` (outside the lock) and
    /// stores the result. Returns the served statistics and whether
    /// they came from the cache.
    ///
    /// # Errors
    /// `compute`'s error, verbatim; failed computations are never
    /// cached, so a transient failure does not poison the key.
    pub fn get_or_compute<E>(
        &self,
        key: u128,
        compute: impl FnOnce() -> Result<Vec<SweepStats>, E>,
    ) -> Result<(Arc<Vec<SweepStats>>, bool), E> {
        if let Some(found) = self.entries().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(found), true));
        }
        let computed = Arc::new(compute()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries();
        // First insert wins: a racing computation of the same key
        // produced bit-identical results, keep whichever landed.
        let stored = entries.entry(key).or_insert_with(|| Arc::clone(&computed));
        Ok((Arc::clone(stored), false))
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// The cached canonical keys in ascending order — the `stats`
    /// command reports these, and sorting makes the response
    /// byte-identical regardless of insertion order or hash layout.
    pub fn sorted_keys(&self) -> Vec<u128> {
        let mut keys: Vec<u128> = self.entries().keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to compute (successfully) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(label: &str, value: f64) -> Vec<SweepStats> {
        vec![SweepStats {
            policy: label.to_string(),
            n_runs: 1,
            mean_total_mbps: value,
            ci95_total_mbps: 0.0,
            mean_per_flow_mbps: vec![value],
            mean_dof: 1.0,
            mean_fairness: 1.0,
        }]
    }

    #[test]
    fn second_lookup_hits_without_recompute() {
        let cache = ResultCache::new();
        let mut computes = 0;
        let (first, hit) = cache
            .get_or_compute::<()>(7, || {
                computes += 1;
                Ok(stats("a", 1.5))
            })
            .unwrap();
        assert!(!hit);
        let (second, hit) = cache
            .get_or_compute::<()>(7, || {
                computes += 1;
                Ok(stats("a", 999.0))
            })
            .unwrap();
        assert!(hit);
        assert_eq!(computes, 1, "cache hit must not recompute");
        assert!(Arc::ptr_eq(&first, &second), "hit returns the stored value");
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // A different key computes independently.
        let (other, hit) = cache
            .get_or_compute::<()>(8, || Ok(stats("b", 2.0)))
            .unwrap();
        assert!(!hit);
        assert_eq!(other[0].policy, "b");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_computations_do_not_poison_the_key() {
        let cache = ResultCache::new();
        let err = cache.get_or_compute(1, || Err("boom")).unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 0);
        // The key still computes fine afterwards.
        let (_, hit) = cache
            .get_or_compute::<&str>(1, || Ok(stats("a", 1.0)))
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_cold_hits_converge_to_one_entry() {
        let cache = Arc::new(ResultCache::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let (served, _) = cache
                        .get_or_compute::<()>(42, || Ok(stats("x", 3.25)))
                        .unwrap();
                    assert_eq!(served[0].mean_total_mbps, 3.25);
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 8);
    }
}
