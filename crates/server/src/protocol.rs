//! The sweep-server wire protocol: length-prefixed JSON frames and the
//! request/response vocabulary.
//!
//! ## Framing
//!
//! Each message is one JSON document, UTF-8, prefixed by its byte
//! length as a big-endian `u32`. Frames above [`MAX_FRAME`] are
//! rejected before allocation, so a hostile length prefix cannot OOM
//! the server. A clean EOF *between* frames is a normal connection
//! close ([`read_frame`] returns `Ok(None)`); EOF *inside* a frame is
//! an error.
//!
//! ## Requests
//!
//! Every request is an object with a `"cmd"` member:
//!
//! ```json
//! {"cmd": "sweep", "scenario": "pairs:4", "environment": "sigcomm11",
//!  "policies": ["dot11n", "nplus"], "seeds": [0, 1, 2], "rounds": 5,
//!  "threads": 0}
//! {"cmd": "ping"}
//! {"cmd": "stats"}
//! {"cmd": "shutdown"}
//! ```
//!
//! For `"sweep"`, `scenario` (the testkit grammar — see
//! [`SCENARIO_SPEC_HELP`](nplus_testkit::SCENARIO_SPEC_HELP), including
//! `city:<n>` and the `load:<model>/` traffic prefix) and `rounds` are
//! required; `environment` defaults to `"sigcomm11"`, `policies` to
//! the default comparison trio, `threads` to `0` (all cores — an
//! execution detail, never part of the cache key), and the seed list
//! may be given as `"seeds": [..]` or `"seed_count": n` (meaning seeds
//! `0..n`), defaulting to `seed_count = 20`. Optional `"traffic"`
//! (`"saturated"`, `"poisson:<mean>"`, `"bursty:<on>x<off>"`) and
//! `"mobility"` (`"static"`, `"waypoint:<step>x<epoch>"`) members set
//! the traffic and mobility models, and an optional `"sinr_grid"`
//! (`"full"`, `"decimated:<k>"`) member selects the SINR evaluation
//! tier — all three are canonical cache-key fields, so a decimated run
//! is never served from a full-grid cache entry. Giving both a `load:`
//! scenario prefix and a `"traffic"` member is an error.
//!
//! ## Responses
//!
//! ```json
//! {"status": "ok", "key": "<32 hex>", "cache_hit": false,
//!  "elapsed_ms": 12, "stats": [{"policy": "dot11n", ...}, ...]}
//! {"status": "error", "error": "one-line description"}
//! ```
//!
//! Statistics floats that are undefined (`NaN`/`Inf` — e.g. mean
//! fairness when no run had defined fairness) serialize as `null`,
//! never as an invalid JSON token.

use crate::json::{self, json_f64, Json};
use nplus::sim::{CanonicalSpec, MobilityModel, SinrGrid, SweepStats, TrafficModel};
use nplus_channel::environment::environment_from_name;
use nplus_testkit::parse_spec;
use std::io::{self, Read, Write};

/// Largest frame either side accepts (1 MiB) — far above any real
/// request or response, far below anything that could hurt.
pub const MAX_FRAME: usize = 1 << 20;

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF before any
/// prefix byte; an error on EOF mid-frame or an oversized prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match r.read(&mut prefix)? {
        0 => return Ok(None),
        mut n => {
            while n < 4 {
                let got = r.read(&mut prefix[n..])?;
                if got == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside frame length prefix",
                    ));
                }
                n += got;
            }
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one length-prefixed frame.
///
/// # Errors
/// `InvalidData` for payloads above [`MAX_FRAME`]; otherwise I/O errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// [`write_frame`] for a JSON value.
pub fn write_json_frame(w: &mut impl Write, value: &Json) -> io::Result<()> {
    write_frame(w, value.to_string_compact().as_bytes())
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or serve from cache) a sweep.
    Sweep(SweepRequest),
    /// Report cache/serving counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// The body of a `"sweep"` request, field defaults already applied.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Scenario spec in the testkit grammar (`"pairs:4"`, …).
    pub scenario: String,
    /// Registry name of the propagation environment.
    pub environment: String,
    /// Registry names of the policies; empty = the default trio.
    pub policies: Vec<String>,
    /// Seed list, in job order.
    pub seeds: Vec<u64>,
    /// Rounds per run.
    pub rounds: usize,
    /// Traffic model from the `"traffic"` member; `None` = saturated
    /// (unless the scenario spec carries a `load:` prefix).
    pub traffic: Option<TrafficModel>,
    /// Mobility model from the `"mobility"` member; `None` = static.
    pub mobility: Option<MobilityModel>,
    /// SINR evaluation tier from the `"sinr_grid"` member; `None` =
    /// the exact full grid.
    pub sinr_grid: Option<SinrGrid>,
    /// Worker threads (`0` = all cores). Execution detail only: not
    /// part of the canonical key, does not change results.
    pub threads: usize,
}

impl SweepRequest {
    /// Resolves the textual request into the content-addressable
    /// [`CanonicalSpec`] the cache and executor run on.
    ///
    /// # Errors
    /// A one-line message for every malformed part: unknown
    /// environment, unparseable scenario spec, unknown policy, empty
    /// seeds, zero rounds.
    pub fn to_canonical(&self) -> Result<CanonicalSpec, String> {
        let env = environment_from_name(&self.environment)
            .ok_or_else(|| format!("unknown environment {:?}", self.environment))?;
        let parsed = parse_spec(&self.scenario, env.capacity())?;
        if parsed.traffic.is_some() && self.traffic.is_some() {
            return Err(
                "give the traffic model in the load: scenario prefix or the \"traffic\" \
                 member, not both"
                    .to_string(),
            );
        }
        let traffic = parsed.traffic.or(self.traffic).unwrap_or_default();
        let mobility = self.mobility.unwrap_or_default();
        CanonicalSpec::new(
            &parsed.scenario,
            &self.environment,
            &self.policies,
            self.seeds.clone(),
            self.rounds,
        )
        .and_then(|c| c.with_traffic(traffic))
        .and_then(|c| c.with_mobility(mobility))
        .and_then(|c| c.with_sinr_grid(self.sinr_grid.unwrap_or_default()))
        .map_err(|e| e.to_string())
    }
}

/// Parses one request frame.
///
/// # Errors
/// A one-line message naming the first malformed part — invalid UTF-8,
/// invalid JSON, a missing/mistyped member, an unknown command.
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let cmd = doc
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string \"cmd\" member".to_string())?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "sweep" => parse_sweep(&doc).map(Request::Sweep),
        other => Err(format!(
            "unknown cmd {other:?} (try \"sweep\", \"stats\", \"ping\", \"shutdown\")"
        )),
    }
}

fn parse_sweep(doc: &Json) -> Result<SweepRequest, String> {
    let scenario = doc
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or_else(|| "sweep needs a string \"scenario\" member".to_string())?
        .to_string();
    let rounds = doc
        .get("rounds")
        .ok_or_else(|| "sweep needs a \"rounds\" member".to_string())?
        .as_usize()
        .ok_or_else(|| "\"rounds\" must be a non-negative integer".to_string())?;
    let environment = match doc.get("environment") {
        None => "sigcomm11".to_string(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| "\"environment\" must be a string".to_string())?
            .to_string(),
    };
    let policies = match doc.get("policies") {
        None => Vec::new(),
        Some(v) => v
            .as_array()
            .ok_or_else(|| "\"policies\" must be an array of strings".to_string())?
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "\"policies\" must be an array of strings".to_string())
            })
            .collect::<Result<_, _>>()?,
    };
    let seeds = match (doc.get("seeds"), doc.get("seed_count")) {
        (Some(_), Some(_)) => {
            return Err("give \"seeds\" or \"seed_count\", not both".to_string());
        }
        (Some(v), None) => v
            .as_array()
            .ok_or_else(|| "\"seeds\" must be an array of integers".to_string())?
            .iter()
            .map(|s| {
                s.as_u64().ok_or_else(|| {
                    "\"seeds\" must be an array of non-negative integers".to_string()
                })
            })
            .collect::<Result<_, _>>()?,
        (None, Some(v)) => {
            let n = v
                .as_u64()
                .ok_or_else(|| "\"seed_count\" must be a non-negative integer".to_string())?;
            (0..n).collect()
        }
        (None, None) => (0..20).collect(),
    };
    let traffic = match doc.get("traffic") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| "\"traffic\" must be a string".to_string())?
                .parse::<TrafficModel>()?,
        ),
    };
    let mobility = match doc.get("mobility") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| "\"mobility\" must be a string".to_string())?
                .parse::<MobilityModel>()?,
        ),
    };
    let sinr_grid = match doc.get("sinr_grid") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| "\"sinr_grid\" must be a string".to_string())?
                .parse::<SinrGrid>()?,
        ),
    };
    let threads = match doc.get("threads") {
        None => 0,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| "\"threads\" must be a non-negative integer".to_string())?,
    };
    Ok(SweepRequest {
        scenario,
        environment,
        policies,
        seeds,
        rounds,
        traffic,
        mobility,
        sinr_grid,
        threads,
    })
}

/// Serializes sweep statistics; every undefined float becomes `null`.
pub fn stats_to_json(stats: &[SweepStats]) -> Json {
    Json::Arr(
        stats
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("policy".to_string(), Json::Str(s.policy.clone())),
                    ("n_runs".to_string(), Json::Int(s.n_runs as i64)),
                    ("mean_total_mbps".to_string(), json_f64(s.mean_total_mbps)),
                    ("ci95_total_mbps".to_string(), json_f64(s.ci95_total_mbps)),
                    (
                        "mean_per_flow_mbps".to_string(),
                        Json::Arr(s.mean_per_flow_mbps.iter().map(|&v| json_f64(v)).collect()),
                    ),
                    ("mean_dof".to_string(), json_f64(s.mean_dof)),
                    ("mean_fairness".to_string(), json_f64(s.mean_fairness)),
                ])
            })
            .collect(),
    )
}

/// The success response to a sweep request.
pub fn sweep_response(
    key_hex: &str,
    cache_hit: bool,
    elapsed_ms: u64,
    stats: &[SweepStats],
) -> Json {
    Json::Obj(vec![
        ("status".to_string(), Json::Str("ok".to_string())),
        ("key".to_string(), Json::Str(key_hex.to_string())),
        ("cache_hit".to_string(), Json::Bool(cache_hit)),
        ("elapsed_ms".to_string(), Json::Int(elapsed_ms as i64)),
        ("stats".to_string(), stats_to_json(stats)),
    ])
}

/// The error response: one line, no panics behind it.
pub fn error_response(message: &str) -> Json {
    Json::Obj(vec![
        ("status".to_string(), Json::Str("error".to_string())),
        ("error".to_string(), Json::Str(message.to_string())),
    ])
}

/// The `"ping"` response.
pub fn pong_response() -> Json {
    Json::Obj(vec![
        ("status".to_string(), Json::Str("ok".to_string())),
        ("pong".to_string(), Json::Bool(true)),
    ])
}

/// The `"stats"` (serving counters) response.
pub fn counters_response(entries: usize, hits: u64, misses: u64, keys: &[u128]) -> Json {
    Json::Obj(vec![
        ("status".to_string(), Json::Str("ok".to_string())),
        ("entries".to_string(), Json::Int(entries as i64)),
        ("hits".to_string(), Json::Int(hits as i64)),
        ("misses".to_string(), Json::Int(misses as i64)),
        // Cached canonical keys, pre-sorted by the cache: the whole
        // response is byte-identical for a given cache state, however
        // the entries were inserted.
        (
            "keys".to_string(),
            Json::Arr(
                keys.iter()
                    .map(|k| Json::Str(format!("{k:032x}")))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"cmd\":\"ping\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(&b"{\"cmd\":\"ping\"}"[..])
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF

        // A hostile length prefix errors before allocating.
        let mut huge = io::Cursor::new(u32::MAX.to_be_bytes().to_vec());
        assert!(read_frame(&mut huge).is_err());
        // EOF mid-frame is an error, not a silent truncation.
        let mut cut = io::Cursor::new(vec![0, 0, 0, 9, b'x']);
        assert!(read_frame(&mut cut).is_err());
        let mut cut_prefix = io::Cursor::new(vec![0, 0]);
        assert!(read_frame(&mut cut_prefix).is_err());
        // Oversized outgoing payloads are refused too.
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME + 1]).is_err());
    }

    #[test]
    fn requests_parse_with_documented_defaults() {
        assert_eq!(parse_request(b"{\"cmd\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            parse_request(b"{\"cmd\":\"stats\"}").unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(b"{\"cmd\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        let full = parse_request(
            br#"{"cmd":"sweep","scenario":"pairs:2","environment":"outdoor",
                "policies":["nplus"],"seeds":[3,1],"rounds":4,"threads":2}"#,
        )
        .unwrap();
        assert_eq!(
            full,
            Request::Sweep(SweepRequest {
                scenario: "pairs:2".to_string(),
                environment: "outdoor".to_string(),
                policies: vec!["nplus".to_string()],
                seeds: vec![3, 1],
                rounds: 4,
                traffic: None,
                mobility: None,
                sinr_grid: None,
                threads: 2,
            })
        );
        let minimal =
            parse_request(br#"{"cmd":"sweep","scenario":"three_pairs","rounds":3}"#).unwrap();
        match minimal {
            Request::Sweep(r) => {
                assert_eq!(r.environment, "sigcomm11");
                assert!(r.policies.is_empty());
                assert_eq!(r.seeds, (0..20).collect::<Vec<u64>>());
                assert_eq!(r.traffic, None);
                assert_eq!(r.mobility, None);
                assert_eq!(r.sinr_grid, None);
                assert_eq!(r.threads, 0);
            }
            other => panic!("{other:?}"),
        }
        let modeled = parse_request(
            br#"{"cmd":"sweep","scenario":"city:16","environment":"multi_cell","rounds":3,
                "traffic":"poisson:0.5","mobility":"waypoint:2x4","sinr_grid":"decimated:4"}"#,
        )
        .unwrap();
        match modeled {
            Request::Sweep(r) => {
                assert_eq!(r.sinr_grid, Some(SinrGrid::Decimated(4)));
                assert_eq!(
                    r.traffic,
                    Some(TrafficModel::Poisson {
                        mean_per_round: 0.5
                    })
                );
                assert_eq!(
                    r.mobility,
                    Some(MobilityModel::Waypoint {
                        step_m: 2.0,
                        epoch_rounds: 4
                    })
                );
            }
            other => panic!("{other:?}"),
        }
        let counted =
            parse_request(br#"{"cmd":"sweep","scenario":"three_pairs","rounds":3,"seed_count":5}"#)
                .unwrap();
        match counted {
            Request::Sweep(r) => assert_eq!(r.seeds, vec![0, 1, 2, 3, 4]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_one_line_errors() {
        for bad in [
            &b"not json"[..],
            b"[]",
            b"{}",
            b"{\"cmd\":7}",
            b"{\"cmd\":\"warp\"}",
            b"{\"cmd\":\"sweep\"}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\"}",
            b"{\"cmd\":\"sweep\",\"scenario\":7,\"rounds\":3}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":-1}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":3,\"seeds\":[1.5]}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":3,\"seeds\":[1],\"seed_count\":2}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":3,\"policies\":[7]}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":3,\"threads\":\"many\"}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":3,\"traffic\":7}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":3,\"traffic\":\"cbr:4\"}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":3,\"mobility\":\"brownian\"}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":3,\"sinr_grid\":7}",
            b"{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":3,\"sinr_grid\":\"decimated:1\"}",
            b"\xff\xfe",
        ] {
            let err = parse_request(bad).unwrap_err();
            assert!(!err.is_empty() && !err.contains('\n'), "{bad:?}: {err:?}");
        }
    }

    #[test]
    fn sweep_requests_resolve_to_canonical_specs() {
        let req = SweepRequest {
            scenario: "pairs:2".to_string(),
            environment: "sigcomm11".to_string(),
            policies: vec![],
            seeds: vec![0, 1],
            rounds: 3,
            traffic: None,
            mobility: None,
            sinr_grid: None,
            threads: 4,
        };
        let canon = req.to_canonical().unwrap();
        assert_eq!(canon.environment, "sigcomm11");
        assert_eq!(canon.policies, ["dot11n", "beamforming", "nplus"]);
        assert_eq!(canon.rounds, 3);
        // Threads never enter the canonical form.
        let serial = SweepRequest {
            threads: 1,
            ..req.clone()
        };
        assert_eq!(serial.to_canonical().unwrap().key(), canon.key());
        // Traffic and mobility ARE canonical: they move the key, and
        // the load: scenario prefix is the same key as the member form.
        let poisson = TrafficModel::Poisson {
            mean_per_round: 0.5,
        };
        let member = SweepRequest {
            traffic: Some(poisson),
            ..req.clone()
        };
        let member_key = member.to_canonical().unwrap().key();
        assert_ne!(member_key, canon.key());
        let prefixed = SweepRequest {
            scenario: "load:poisson:0.5/pairs:2".to_string(),
            ..req.clone()
        };
        assert_eq!(prefixed.to_canonical().unwrap().key(), member_key);
        let moving = SweepRequest {
            mobility: Some(MobilityModel::Waypoint {
                step_m: 2.0,
                epoch_rounds: 4,
            }),
            ..req.clone()
        };
        assert_ne!(moving.to_canonical().unwrap().key(), canon.key());
        // The SINR grid tier is canonical too: a decimated request must
        // never alias the full-grid cache entry, and k is part of it.
        let decimated = SweepRequest {
            sinr_grid: Some(SinrGrid::Decimated(4)),
            ..req.clone()
        };
        let dec_key = decimated.to_canonical().unwrap().key();
        assert_ne!(dec_key, canon.key());
        let decimated8 = SweepRequest {
            sinr_grid: Some(SinrGrid::Decimated(8)),
            ..req.clone()
        };
        assert_ne!(decimated8.to_canonical().unwrap().key(), dec_key);
        // Both spellings at once is ambiguous, hence an error.
        let both = SweepRequest {
            scenario: "load:saturated/pairs:2".to_string(),
            traffic: Some(poisson),
            ..req.clone()
        };
        assert!(both.to_canonical().is_err());
        // Every malformed part maps to an error string.
        for bad in [
            SweepRequest {
                environment: "vacuum".to_string(),
                ..req.clone()
            },
            SweepRequest {
                scenario: "pairs:999".to_string(),
                ..req.clone()
            },
            SweepRequest {
                policies: vec!["aloha".to_string()],
                ..req.clone()
            },
            SweepRequest {
                seeds: vec![],
                ..req.clone()
            },
            SweepRequest {
                rounds: 0,
                ..req.clone()
            },
        ] {
            assert!(bad.to_canonical().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn undefined_stats_serialize_as_null() {
        let stats = vec![SweepStats {
            policy: "nplus".to_string(),
            n_runs: 2,
            mean_total_mbps: 0.0,
            ci95_total_mbps: 0.0,
            mean_per_flow_mbps: vec![0.0, f64::NAN],
            mean_dof: f64::INFINITY,
            mean_fairness: f64::NAN,
        }];
        let text = stats_to_json(&stats).to_string_compact();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        assert!(text.contains("\"mean_fairness\":null"), "{text}");
        assert!(text.contains("\"mean_dof\":null"), "{text}");
        assert!(text.contains("[0,null]"), "{text}");
        // The whole response document stays parseable JSON.
        let resp = sweep_response("00ff", false, 12, &stats).to_string_compact();
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(doc.get("cache_hit").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("stats")
                .and_then(Json::as_array)
                .and_then(|a| a[0].get("mean_fairness"))
                .cloned(),
            Some(Json::Null)
        );
    }
}
