//! The serve loop: TCP accept, thread-per-connection request handling,
//! graceful shutdown.
//!
//! Every connection speaks the framed protocol of
//! [`protocol`](crate::protocol); a connection may pipeline any number
//! of requests. All error paths — malformed frames, malformed JSON,
//! specs the registries reject — produce an error *response* (or, for
//! unframeable garbage, a dropped connection); none of them panic the
//! server. As a last line of defense each request handler runs under
//! `catch_unwind`, so even a bug that does panic takes down one request,
//! not the process — the panic message still reaches stderr, where CI
//! greps for it.

use crate::cache::ResultCache;
use crate::protocol::{
    counters_response, error_response, parse_request, pong_response, read_frame, sweep_response,
    write_json_frame, Request, SweepRequest,
};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A bound sweep server: call [`serve`](SweepServer::serve) to run the
/// accept loop until a `shutdown` request arrives.
pub struct SweepServer {
    listener: TcpListener,
    cache: Arc<ResultCache>,
    stop: Arc<AtomicBool>,
}

impl SweepServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:4011"`, or port `0` to let the
    /// OS pick — read it back with [`local_addr`](SweepServer::local_addr)).
    ///
    /// # Errors
    /// The bind error, verbatim.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(SweepServer {
            listener: TcpListener::bind(addr)?,
            cache: Arc::new(ResultCache::new()),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    /// The socket error, verbatim.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop: one handler thread per connection, shared
    /// result cache, until some connection sends `{"cmd":"shutdown"}`.
    ///
    /// # Errors
    /// Only fatal listener errors; per-connection I/O problems are
    /// contained to their connection.
    pub fn serve(&self) -> io::Result<()> {
        let addr = self.local_addr()?;
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("sweep-server: accept failed: {e}");
                    continue;
                }
            };
            let cache = Arc::clone(&self.cache);
            let stop = Arc::clone(&self.stop);
            std::thread::spawn(move || {
                if let Err(e) = handle_connection(stream, &cache, &stop, addr) {
                    // Client went away mid-exchange: normal churn,
                    // worth a log line, never worth the process.
                    eprintln!("sweep-server: connection ended: {e}");
                }
            });
        }
        Ok(())
    }

    /// Requests the serve loop to stop and wakes the blocked accept
    /// with a throwaway self-connection.
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Ok(addr) = self.local_addr() {
            // Ignore failure: if nobody is accepting anymore, done.
            let _ = TcpStream::connect(addr);
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    cache: &ResultCache,
    stop: &Arc<AtomicBool>,
    server_addr: std::net::SocketAddr,
) -> io::Result<()> {
    while let Some(payload) = read_frame(&mut stream)? {
        let response = match parse_request(&payload) {
            Err(msg) => error_response(&msg),
            Ok(Request::Ping) => pong_response(),
            Ok(Request::Stats) => counters_response(
                cache.len(),
                cache.hits(),
                cache.misses(),
                &cache.sorted_keys(),
            ),
            Ok(Request::Shutdown) => {
                stop.store(true, Ordering::SeqCst);
                write_json_frame(&mut stream, &pong_response())?;
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(server_addr);
                return Ok(());
            }
            Ok(Request::Sweep(req)) => {
                match catch_unwind(AssertUnwindSafe(|| serve_sweep(&req, cache))) {
                    Ok(resp) => resp,
                    Err(_) => error_response("internal error while serving the sweep"),
                }
            }
        };
        write_json_frame(&mut stream, &response)?;
    }
    Ok(())
}

/// Resolves, caches and serves one sweep request. Every malformed part
/// becomes an error response; the compute path is the same
/// deterministic executor the CLI uses, so cached and cold responses
/// are bit-identical.
fn serve_sweep(req: &SweepRequest, cache: &ResultCache) -> crate::json::Json {
    let canon = match req.to_canonical() {
        Ok(c) => c,
        Err(msg) => return error_response(&msg),
    };
    // nplus:allow(DET001): elapsed_ms is honest serving latency — it never feeds the result.
    let started = Instant::now();
    let served = cache.get_or_compute(canon.key(), || {
        canon
            .to_spec(req.threads)
            .and_then(|spec| spec.try_run())
            .map_err(|e| e.to_string())
    });
    match served {
        Ok((stats, cache_hit)) => sweep_response(
            &canon.key_hex(),
            cache_hit,
            started.elapsed().as_millis() as u64,
            &stats,
        ),
        Err(msg) => error_response(&msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::json::Json;

    fn start_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = SweepServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.serve().expect("serve"));
        (addr, handle)
    }

    #[test]
    fn ping_stats_and_shutdown_roundtrip() {
        let (addr, handle) = start_server();
        let pong = client::request_once(&addr.to_string(), "{\"cmd\":\"ping\"}").unwrap();
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
        let stats = client::request_once(&addr.to_string(), "{\"cmd\":\"stats\"}").unwrap();
        assert_eq!(stats.get("entries").and_then(Json::as_u64), Some(0));
        client::request_once(&addr.to_string(), "{\"cmd\":\"shutdown\"}").unwrap();
        handle.join().expect("serve loop exits cleanly");
    }

    #[test]
    fn malformed_requests_get_error_responses_not_panics() {
        let (addr, handle) = start_server();
        for bad in [
            "{\"cmd\":\"warp\"}",
            "{\"cmd\":\"sweep\",\"scenario\":\"warehouse\",\"rounds\":2,\"seeds\":[0]}",
            "{\"cmd\":\"sweep\",\"scenario\":\"pairs:2\",\"rounds\":2,\"seeds\":[0],\"environment\":\"vacuum\"}",
            "{\"cmd\":\"sweep\",\"scenario\":\"pairs:2\",\"rounds\":2,\"seeds\":[0],\"policies\":[\"aloha\"]}",
            "{\"cmd\":\"sweep\",\"scenario\":\"pairs:2\",\"rounds\":0,\"seeds\":[0]}",
            "{\"cmd\":\"sweep\",\"scenario\":\"pairs:2\",\"rounds\":2,\"seeds\":[]}",
            "this is not json",
        ] {
            let resp = client::request_once(&addr.to_string(), bad).unwrap();
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("error"),
                "{bad}"
            );
            let msg = resp.get("error").and_then(Json::as_str).unwrap();
            assert!(!msg.is_empty(), "{bad}");
        }
        // The server is still healthy after all of that.
        let pong = client::request_once(&addr.to_string(), "{\"cmd\":\"ping\"}").unwrap();
        assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));
        client::request_once(&addr.to_string(), "{\"cmd\":\"shutdown\"}").unwrap();
        handle.join().unwrap();
    }
}
