//! End-to-end contract of the sweep service: a repeated identical
//! request is served from the cache, marked as a hit, and bit-identical
//! to the cold computation — across connections and thread counts.

use nplus_server::{client, Json, SweepServer};
use std::net::SocketAddr;
use std::thread::JoinHandle;

fn start_server() -> (SocketAddr, JoinHandle<()>) {
    let server = SweepServer::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || server.serve().expect("serve loop"));
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<()>) {
    client::request_once(&addr.to_string(), "{\"cmd\":\"shutdown\"}").expect("shutdown");
    handle.join().expect("serve loop exits");
}

#[test]
fn repeated_requests_hit_the_cache_bit_identically() {
    let (addr, handle) = start_server();
    let addr_s = addr.to_string();
    let request = "{\"cmd\":\"sweep\",\"scenario\":\"pairs:2\",\"rounds\":3,\
                   \"seeds\":[0,1],\"policies\":[\"dot11n\",\"nplus\"],\"threads\":1}";

    let cold = client::request_once(&addr_s, request).expect("cold request");
    assert_eq!(cold.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(cold.get("cache_hit").and_then(Json::as_bool), Some(false));
    let key = cold
        .get("key")
        .and_then(Json::as_str)
        .expect("key")
        .to_string();
    assert_eq!(key.len(), 32, "key is 32 hex chars: {key}");
    let cold_stats = cold.get("stats").expect("stats").clone();
    assert_eq!(cold_stats.as_array().map(<[Json]>::len), Some(2));

    // Same request again, on a new connection: a hit, same key,
    // bit-identical serialized statistics.
    let warm = client::request_once(&addr_s, request).expect("warm request");
    assert_eq!(warm.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(warm.get("key").and_then(Json::as_str), Some(key.as_str()));
    assert_eq!(
        warm.get("stats").expect("stats").to_string_compact(),
        cold_stats.to_string_compact(),
        "cached stats must be bit-identical to the cold computation"
    );

    // The same spec at a different thread count is the same key (threads
    // are an execution detail) and still bit-identical.
    let two_threads = request.replace("\"threads\":1", "\"threads\":2");
    let parallel = client::request_once(&addr_s, &two_threads).expect("parallel request");
    assert_eq!(
        parallel.get("cache_hit").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        parallel.get("key").and_then(Json::as_str),
        Some(key.as_str())
    );
    assert_eq!(
        parallel.get("stats").expect("stats").to_string_compact(),
        cold_stats.to_string_compact()
    );

    // A genuinely different spec is a different key and a fresh miss.
    let other = request.replace("\"rounds\":3", "\"rounds\":4");
    let resp = client::request_once(&addr_s, &other).expect("different spec");
    assert_eq!(resp.get("cache_hit").and_then(Json::as_bool), Some(false));
    assert_ne!(resp.get("key").and_then(Json::as_str), Some(key.as_str()));

    // Counters agree: 2 hits, 2 misses, 2 distinct entries.
    let counters = client::request_once(&addr_s, "{\"cmd\":\"stats\"}").expect("counters");
    assert_eq!(counters.get("entries").and_then(Json::as_u64), Some(2));
    assert_eq!(counters.get("hits").and_then(Json::as_u64), Some(2));
    assert_eq!(counters.get("misses").and_then(Json::as_u64), Some(2));

    // The stats response is deterministic: cached keys come back in
    // ascending order (not hash-map order), so the serialized response
    // is byte-identical between consecutive calls on the same state.
    let keys: Vec<&str> = counters
        .get("keys")
        .and_then(Json::as_array)
        .expect("keys")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(keys.len(), 2);
    assert!(keys.contains(&key.as_str()), "stats lists the cached key");
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "stats keys must be sorted");
    let again = client::request_once(&addr_s, "{\"cmd\":\"stats\"}").expect("counters again");
    assert_eq!(
        again.to_string_compact(),
        counters.to_string_compact(),
        "stats response must serialize byte-identically"
    );
    shutdown(addr, handle);
}

#[test]
fn cached_results_match_an_in_process_run_exactly() {
    use nplus::prelude::*;

    let (addr, handle) = start_server();
    let request = "{\"cmd\":\"sweep\",\"scenario\":\"three_pairs\",\"rounds\":2,\
                   \"seeds\":[0],\"policies\":[\"nplus\"],\"environment\":\"outdoor\"}";
    let served = client::request_once(&addr.to_string(), request).expect("request");
    assert_eq!(served.get("status").and_then(Json::as_str), Some("ok"));

    let local = SweepSpec::new(Scenario::three_pairs())
        .environment_named("outdoor")
        .expect("registry name")
        .rounds(2)
        .seeds([0u64])
        .policy_named("nplus")
        .expect("registry name")
        .try_run()
        .expect("local run");
    let stats = served.get("stats").and_then(Json::as_array).expect("stats");
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].get("policy").and_then(Json::as_str), Some("nplus"));
    assert_eq!(
        stats[0].get("mean_total_mbps").and_then(Json::as_f64),
        Some(local[0].mean_total_mbps),
        "served mean must equal the in-process engine exactly"
    );
    assert_eq!(
        stats[0].get("n_runs").and_then(Json::as_u64),
        Some(local[0].n_runs as u64)
    );
    shutdown(addr, handle);
}

#[test]
fn one_connection_can_pipeline_requests_and_errors() {
    let (addr, handle) = start_server();
    let mut stream = client::connect_retry(&addr.to_string(), std::time::Duration::from_secs(5))
        .expect("connect");

    let pong = client::roundtrip(&mut stream, "{\"cmd\":\"ping\"}").expect("ping");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

    // An error response leaves the same connection usable.
    let err = client::roundtrip(
        &mut stream,
        "{\"cmd\":\"sweep\",\"scenario\":\"nope\",\"rounds\":1}",
    )
    .expect("error roundtrip");
    assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
    assert!(err
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("nope"));

    let ok = client::roundtrip(
        &mut stream,
        "{\"cmd\":\"sweep\",\"scenario\":\"pairs:2\",\"rounds\":2,\"seeds\":[1],\"policies\":[\"dot11n\"]}",
    )
    .expect("sweep after error");
    assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
    drop(stream);
    shutdown(addr, handle);
}
