//! Property-based tests for the linear-algebra substrate.
//!
//! These exercise the invariants DESIGN.md §6 calls out, over randomly
//! generated complex matrices of the antenna-scale sizes the MIMO stack
//! uses (dimensions 1..=5).

use nplus_linalg::{
    c64, is_null_space_of, null_space, rank, solve, CMatrix, CVector, Complex64, Subspace,
};
use proptest::prelude::*;

const TOL: f64 = 1e-8;

/// Strategy: a bounded complex scalar.
fn complex() -> impl Strategy<Value = Complex64> {
    (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| c64(re, im))
}

/// Strategy: a complex matrix with the given shape.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec(complex(), rows * cols)
        .prop_map(move |data| CMatrix::from_vec(rows, cols, data))
}

/// Strategy: a complex vector with the given dimension.
fn vector(n: usize) -> impl Strategy<Value = CVector> {
    proptest::collection::vec(complex(), n).prop_map(CVector::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rank–nullity theorem: rank(A) + dim null(A) == cols(A), and every
    /// null-space basis vector is annihilated by A.
    #[test]
    fn rank_nullity_and_annihilation(
        (rows, cols) in (1usize..5, 1usize..5),
        seed in proptest::collection::vec(complex(), 25),
    ) {
        let data: Vec<Complex64> = seed.into_iter().take(rows * cols).collect();
        prop_assume!(data.len() == rows * cols);
        let a = CMatrix::from_vec(rows, cols, data);
        let ns = null_space(&a);
        prop_assert_eq!(rank(&a, None) + ns.len(), cols);
        prop_assert!(is_null_space_of(&a, &ns, TOL));
    }

    /// Solving a random well-conditioned system round-trips.
    #[test]
    fn solve_round_trips(a in matrix(3, 3), x in vector(3)) {
        // Skip (rare) near-singular draws.
        prop_assume!(rank(&a, Some(1e-6)) == 3);
        let b = a.mul_vec(&x);
        let solved = solve(&a, &b).unwrap();
        prop_assert!(solved.approx_eq(&x, 1e-6));
    }

    /// A subspace and its complement partition the ambient dimension, and
    /// projection onto the complement annihilates the subspace.
    #[test]
    fn complement_partitions_space(vs in proptest::collection::vec(vector(4), 1..4)) {
        let s = Subspace::span(4, &vs);
        let c = s.complement();
        prop_assert_eq!(s.dim() + c.dim(), 4);
        for b in s.basis() {
            let coords = c.coordinates(b);
            prop_assert!(coords.is_negligible(TOL));
        }
    }

    /// Projection is idempotent and never increases power.
    #[test]
    fn projection_idempotent_contractive(
        vs in proptest::collection::vec(vector(4), 1..4),
        x in vector(4),
    ) {
        let s = Subspace::span(4, &vs);
        let p1 = s.project(&x);
        let p2 = s.project(&p1);
        prop_assert!(p1.approx_eq(&p2, TOL));
        prop_assert!(p1.norm_sqr() <= x.norm_sqr() + TOL);
    }

    /// Pythagoras: |x|^2 = |project(x)|^2 + |reject(x)|^2.
    #[test]
    fn projection_preserves_total_power(
        vs in proptest::collection::vec(vector(3), 1..3),
        x in vector(3),
    ) {
        let s = Subspace::span(3, &vs);
        let p = s.project(&x).norm_sqr();
        let r = s.reject(&x).norm_sqr();
        prop_assert!((p + r - x.norm_sqr()).abs() < TOL);
    }

    /// The Hermitian transpose is an involution and reverses products.
    #[test]
    fn hermitian_involution(a in matrix(3, 4)) {
        prop_assert!(a.hermitian().hermitian().approx_eq(&a, 0.0));
    }

    /// Claim 3.2 analogue at the matrix level: stacking K generic
    /// constraint rows against an M-column transmitter leaves an
    /// (M - K)-dimensional null space (generic channels are full rank).
    #[test]
    fn constraints_consume_exactly_one_dof_each(
        k in 1usize..4,
        seed in proptest::collection::vec(complex(), 16),
    ) {
        let m = 4usize;
        prop_assume!(seed.len() >= k * m);
        let a = CMatrix::from_vec(k, m, seed.into_iter().take(k * m).collect());
        // Generic random rows are independent with probability 1; guard
        // against the measure-zero degenerate draws.
        prop_assume!(rank(&a, Some(1e-9)) == k);
        prop_assert_eq!(null_space(&a).len(), m - k);
    }
}
