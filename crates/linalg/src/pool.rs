//! Reusable-slot object pools — the allocation-free backbone of the
//! engine's per-run arena.
//!
//! `Vec<T>::clear()` keeps the outer buffer but *drops* each element, so
//! a `Vec<CVector>` cleared and refilled every round re-allocates every
//! inner heap buffer. [`VecPool`] fixes that with logical-length
//! semantics: clearing only resets a cursor, and [`VecPool::push_slot`]
//! hands back the retained element (buffers intact) for in-place reuse.
//! Once every slot has grown to its high-water capacity the pool performs
//! zero allocations at steady state — the property the counting-allocator
//! test in `nplus-bench` pins for the whole simulation round loop.

/// A growable pool of reusable `T` slots with a logical length.
///
/// Elements in `items[..len]` are live; elements past `len` are spare
/// slots retained from earlier use, ready to be re-issued by
/// [`VecPool::push_slot`] without reallocating their internals.
#[derive(Debug, Clone, Default)]
pub struct VecPool<T> {
    items: Vec<T>,
    len: usize,
}

impl<T: Default> VecPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        VecPool {
            items: Vec::new(),
            len: 0,
        }
    }

    /// Logical length (number of live elements).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resets the logical length to zero. Slots (and their heap buffers)
    /// are retained for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Truncates the logical length to `n` (no-op if already shorter).
    /// Used to roll back speculative work — e.g. a join plan that failed
    /// after partially filling the pool.
    #[inline]
    pub fn truncate(&mut self, n: usize) {
        self.len = self.len.min(n);
    }

    /// Extends the live region by one slot and returns it for filling.
    /// Reuses a spare slot when one exists; allocates a default `T` only
    /// when the pool grows past its high-water mark.
    #[inline]
    pub fn push_slot(&mut self) -> &mut T {
        if self.len == self.items.len() {
            self.items.push(T::default());
        }
        self.len += 1;
        &mut self.items[self.len - 1]
    }

    /// The live elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len]
    }

    /// The live elements, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.items[..self.len]
    }

    /// The last live element, mutably (if any).
    #[inline]
    pub fn last_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 {
            None
        } else {
            Some(&mut self.items[self.len - 1])
        }
    }

    /// Logically removes the last live element, retaining its slot.
    #[inline]
    pub fn pop_slot(&mut self) {
        debug_assert!(self.len > 0, "pop_slot on empty pool");
        self.len -= 1;
    }

    /// Iterator over the live elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Default> std::ops::Index<usize> for VecPool<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        debug_assert!(i < self.len, "pool index {i} past live length {}", self.len);
        &self.items[i]
    }
}

impl<T: Default> std::ops::IndexMut<usize> for VecPool<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "pool index {i} past live length {}", self.len);
        &mut self.items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::CVector;

    #[test]
    fn clear_retains_slot_buffers() {
        let mut pool: VecPool<CVector> = VecPool::new();
        pool.push_slot().assign_zeros(8);
        pool.push_slot().assign_zeros(4);
        assert_eq!(pool.len(), 2);
        pool.clear();
        assert!(pool.is_empty());
        // The retained slot still has its 8-entry buffer; re-assigning a
        // same-or-smaller size must not grow it.
        let slot = pool.push_slot();
        assert_eq!(slot.len(), 8, "slot buffer was dropped by clear()");
        slot.assign_zeros(3);
        assert_eq!(pool.as_slice()[0].len(), 3);
    }

    #[test]
    fn truncate_and_pop_are_logical() {
        let mut pool: VecPool<Vec<u32>> = VecPool::new();
        for i in 0..4 {
            pool.push_slot().push(i);
        }
        pool.truncate(2);
        assert_eq!(pool.len(), 2);
        pool.pop_slot();
        assert_eq!(pool.len(), 1);
        // Slots re-issued in order, contents from last use intact until
        // the caller overwrites them.
        let s = pool.push_slot();
        assert_eq!(s.as_slice(), &[1]);
    }

    #[test]
    fn index_and_iter_cover_live_region_only() {
        let mut pool: VecPool<u64> = VecPool::new();
        *pool.push_slot() = 7;
        *pool.push_slot() = 9;
        pool.truncate(1);
        assert_eq!(pool.iter().copied().collect::<Vec<_>>(), vec![7]);
        assert_eq!(pool[0], 7);
        assert_eq!(pool.as_slice(), &[7]);
    }
}
