//! Orthonormalization and QR decomposition.
//!
//! Subspace manipulation in n+ (projection for multi-dimensional carrier
//! sense, unwanted-space bases `U` and complements `U^⊥`) needs
//! numerically stable orthonormal bases. We provide modified Gram–Schmidt
//! with re-orthogonalization — for the 1–4 dimensional spaces this system
//! works with, MGS with one re-orthogonalization pass is as stable as
//! Householder and considerably simpler.

use crate::matrix::CMatrix;
use crate::vector::CVector;

/// Result of a (thin) QR decomposition: `A = Q R` with `Q` having
/// orthonormal columns and `R` upper triangular.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthonormal columns spanning the column space of `A`
    /// (`rows × rank`).
    pub q: CMatrix,
    /// Upper-triangular factor (`rank × cols`).
    pub r: CMatrix,
    /// Numerical rank detected during the decomposition.
    pub rank: usize,
}

/// Orthonormalizes the given vectors with modified Gram–Schmidt plus one
/// re-orthogonalization pass, dropping vectors that are linearly dependent
/// on earlier ones (relative tolerance `tol` against the input norm).
///
/// The output spans the same space as the input and is orthonormal to
/// machine precision.
pub fn orthonormalize(vectors: &[CVector], tol: f64) -> Vec<CVector> {
    let mut basis: Vec<CVector> = Vec::with_capacity(vectors.len());
    let mut w = CVector::default();
    let dim = orthonormalize_into(vectors, tol, &mut basis, &mut w);
    debug_assert_eq!(dim, basis.len());
    basis
}

/// Pooled sibling of [`orthonormalize`]: writes the basis into reusable
/// slots of `basis` (slots past the returned dimension are retained as
/// spare capacity, never shrunk) using `w` as the Gram–Schmidt work
/// vector. Performs the exact same floating-point operation sequence as
/// [`orthonormalize`], so results are bit-for-bit identical; the only
/// difference is that no allocation happens once the slots have grown to
/// their high-water capacity.
///
/// Returns the basis dimension; `basis[..dim]` is the orthonormal basis.
pub fn orthonormalize_into(
    vectors: &[CVector],
    tol: f64,
    basis: &mut Vec<CVector>,
    w: &mut CVector,
) -> usize {
    let mut dim = 0usize;
    for v in vectors {
        let original_norm = v.norm();
        if original_norm <= tol {
            continue;
        }
        w.copy_from(v);
        // Two passes of MGS ("twice is enough" — Kahan/Parlett).
        for _ in 0..2 {
            for b in &basis[..dim] {
                let k = w.dot(b);
                w.axpy(-k, b);
            }
        }
        // Drop if what remains is negligible relative to the input.
        if w.norm() <= tol.max(original_norm * 1e-12) {
            continue;
        }
        // `CVector::normalized` recomputes the norm and scales by its
        // reciprocal; replicate that exactly into the pooled slot.
        let n = w.norm();
        assert!(n > 1e-300, "cannot normalize a zero vector");
        if dim == basis.len() {
            basis.push(CVector::default());
        }
        basis[dim].assign_scale_re(w, 1.0 / n);
        dim += 1;
    }
    dim
}

/// Thin, rank-revealing QR of `a` via modified Gram–Schmidt on the columns.
pub fn qr(a: &CMatrix) -> Qr {
    let cols = a.columns();
    let scale = a.max_abs().max(1e-300);
    let tol = scale * (a.rows().max(a.cols()) as f64) * f64::EPSILON;
    let q_cols = orthonormalize(&cols, tol);
    let rank = q_cols.len();
    let q = if rank == 0 {
        CMatrix::zeros(a.rows(), 0)
    } else {
        CMatrix::from_cols(&q_cols)
    };
    // R = Q^H A.
    let r = &q.hermitian() * a;
    Qr { q, r, rank }
}

/// Orthonormal basis of the column space of `a`.
pub fn column_space(a: &CMatrix) -> Vec<CVector> {
    let scale = a.max_abs().max(1e-300);
    let tol = scale * (a.rows().max(a.cols()) as f64) * f64::EPSILON;
    orthonormalize(&a.columns(), tol)
}

/// Orthonormal basis of the row space of `a` (as column vectors of
/// dimension `a.cols()`), i.e. the column space of `A^H`.
pub fn row_space(a: &CMatrix) -> Vec<CVector> {
    column_space(&a.hermitian())
}

/// Verifies that the columns of `q` are orthonormal within `tol`.
/// Intended for tests and debug assertions.
pub fn is_orthonormal(vectors: &[CVector], tol: f64) -> bool {
    for (i, a) in vectors.iter().enumerate() {
        for (j, b) in vectors.iter().enumerate() {
            let d = a.dot(b);
            let expect = if i == j { 1.0 } else { 0.0 };
            if (d.re - expect).abs() > tol || d.im.abs() > tol {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    const TOL: f64 = 1e-10;

    #[test]
    fn orthonormalize_independent_set() {
        let vs = vec![
            CVector::from_vec(vec![c64(1.0, 0.0), c64(1.0, 0.0), c64(0.0, 0.0)]),
            CVector::from_vec(vec![c64(0.0, 1.0), c64(1.0, 0.0), c64(1.0, 0.0)]),
            CVector::from_vec(vec![c64(1.0, 0.0), c64(0.0, 0.0), c64(0.0, 2.0)]),
        ];
        let basis = orthonormalize(&vs, 1e-12);
        assert_eq!(basis.len(), 3);
        assert!(is_orthonormal(&basis, TOL));
    }

    #[test]
    fn orthonormalize_drops_dependent_vectors() {
        let a = CVector::from_vec(vec![c64(1.0, 0.0), c64(0.0, 1.0)]);
        let b = a.scale(c64(2.0, -1.0)); // same direction
        let c = CVector::from_vec(vec![c64(0.0, 0.0), c64(1.0, 0.0)]);
        let basis = orthonormalize(&[a, b, c], 1e-12);
        assert_eq!(basis.len(), 2);
        assert!(is_orthonormal(&basis, TOL));
    }

    #[test]
    fn orthonormalize_skips_zero_vectors() {
        let vs = vec![
            CVector::zeros(3),
            CVector::from_vec(vec![c64(0.0, 3.0), c64(0.0, 0.0), c64(4.0, 0.0)]),
        ];
        let basis = orthonormalize(&vs, 1e-12);
        assert_eq!(basis.len(), 1);
        assert!((basis[0].norm() - 1.0).abs() < TOL);
    }

    #[test]
    fn qr_reconstructs_matrix() {
        let a = CMatrix::from_vec(
            3,
            3,
            vec![
                c64(1.0, 1.0),
                c64(2.0, 0.0),
                c64(0.0, -1.0),
                c64(0.0, 1.0),
                c64(1.0, 0.0),
                c64(3.0, 0.0),
                c64(2.0, 0.0),
                c64(0.0, 0.0),
                c64(1.0, 1.0),
            ],
        );
        let d = qr(&a);
        assert_eq!(d.rank, 3);
        assert!((&d.q * &d.r).approx_eq(&a, TOL));
        // Q^H Q = I
        assert!((&d.q.hermitian() * &d.q).approx_eq(&CMatrix::identity(3), TOL));
    }

    #[test]
    fn qr_rank_deficient() {
        // Column 2 = 2 * column 0.
        let a = CMatrix::from_reals(3, 3, &[1.0, 0.0, 2.0, 2.0, 1.0, 4.0, 0.0, 1.0, 0.0]);
        let d = qr(&a);
        assert_eq!(d.rank, 2);
        assert!((&d.q * &d.r).approx_eq(&a, TOL));
    }

    #[test]
    fn column_space_dimension() {
        let a = CMatrix::from_reals(4, 2, &[1.0, 2.0, 0.0, 0.0, 1.0, 2.0, 1.0, 0.0]);
        let cs = column_space(&a);
        assert_eq!(cs.len(), 2);
        assert!(is_orthonormal(&cs, TOL));
    }

    #[test]
    fn row_space_dimension() {
        let a = CMatrix::from_reals(2, 4, &[1.0, 0.0, 1.0, 0.0, 2.0, 0.0, 2.0, 0.0]);
        // Rows are dependent -> row space has dimension 1, vectors live in C^4.
        let rs = row_space(&a);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].len(), 4);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = CMatrix::from_reals(3, 3, &[2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 4.0]);
        let d = qr(&a);
        for i in 0..d.r.rows() {
            for j in 0..i.min(d.r.cols()) {
                assert!(d.r[(i, j)].abs() < TOL, "R[{i},{j}] not zero");
            }
        }
    }
}
