//! Null-space computation.
//!
//! The heart of the n+ precoder (paper §3.3, Claim 3.5 / Eq. 7): the
//! pre-coding vectors of a joining transmitter are a basis of the null
//! space of the stacked nulling/alignment constraint matrix. An `M`-antenna
//! transmitter facing `K` independent constraints gets an `(M − K)`-
//! dimensional null space — exactly the `m = M − K` streams of Claim 3.2.

use crate::complex::Complex64;
use crate::matrix::CMatrix;
use crate::qr::orthonormalize;
use crate::solve::{default_tolerance, row_echelon};
use crate::vector::CVector;

/// Computes an orthonormal basis of the (right) null space of `a`, i.e.
/// all `v` with `A v = 0`.
///
/// Returns `a.cols() - rank(a)` vectors. For an empty constraint set
/// (zero rows), the whole space is returned (the standard basis,
/// trivially orthonormal).
pub fn null_space(a: &CMatrix) -> Vec<CVector> {
    let n = a.cols();
    if a.rows() == 0 || n == 0 {
        return (0..n).map(|i| CVector::unit(n, i)).collect();
    }
    let tol = default_tolerance(a);
    let (rank, ech) = row_echelon(a, tol);
    if rank == 0 {
        return (0..n).map(|i| CVector::unit(n, i)).collect();
    }

    // Identify pivot columns: in the reduced echelon form produced by
    // `row_echelon`, each pivot row has a leading 1 in its pivot column.
    let mut pivot_cols = Vec::with_capacity(rank);
    for i in 0..rank {
        let mut j = if let Some(&last) = pivot_cols.last() {
            last + 1
        } else {
            0
        };
        while j < n && ech[(i, j)].abs() <= tol {
            j += 1;
        }
        debug_assert!(j < n, "pivot row without pivot column");
        pivot_cols.push(j);
    }
    let is_pivot = {
        let mut mask = vec![false; n];
        for &j in &pivot_cols {
            mask[j] = true;
        }
        mask
    };

    // Each free column yields one basis vector: set that free variable to 1,
    // all other free variables to 0, and back-substitute the pivots.
    let mut basis = Vec::with_capacity(n - rank);
    for free in 0..n {
        if is_pivot[free] {
            continue;
        }
        let mut v = CVector::zeros(n);
        v[free] = Complex64::ONE;
        for (row, &pc) in pivot_cols.iter().enumerate() {
            // Pivot variable = -(coefficient of the free variable in this row).
            v[pc] = -ech[(row, free)];
        }
        basis.push(v);
    }

    // Orthonormalize for numerical hygiene; dimension is preserved because
    // the raw basis vectors are independent by construction.
    let out = orthonormalize(&basis, tol);
    debug_assert_eq!(out.len(), n - rank, "null space dimension mismatch");
    out
}

/// Dimension of the null space of `a` (`cols − rank`).
pub fn nullity(a: &CMatrix) -> usize {
    let tol = default_tolerance(a);
    let (rank, _) = row_echelon(a, tol);
    a.cols() - rank
}

/// Verifies `A v ≈ 0` for every vector, within `tol` relative to the
/// matrix scale. Used by tests and by debug assertions in the precoder.
pub fn is_null_space_of(a: &CMatrix, vectors: &[CVector], tol: f64) -> bool {
    vectors.iter().all(|v| a.mul_vec(v).is_negligible(tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::qr::is_orthonormal;

    const TOL: f64 = 1e-10;

    #[test]
    fn null_space_of_full_rank_square_is_empty() {
        let a = CMatrix::from_reals(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert!(null_space(&a).is_empty());
        assert_eq!(nullity(&a), 0);
    }

    #[test]
    fn null_space_of_wide_matrix() {
        // 1 equation, 3 unknowns -> 2-dimensional null space. This is the
        // tx2 nulling scenario from the paper's Fig. 2 generalized.
        let a = CMatrix::from_vec(1, 3, vec![c64(1.0, 1.0), c64(2.0, 0.0), c64(0.0, -1.0)]);
        let ns = null_space(&a);
        assert_eq!(ns.len(), 2);
        assert!(is_orthonormal(&ns, TOL));
        assert!(is_null_space_of(&a, &ns, TOL));
    }

    #[test]
    fn null_space_of_stacked_constraints() {
        // K=2 constraints on an M=3 antenna transmitter -> m = 1 stream
        // (Claim 3.2 with M=3, K=2).
        let a = CMatrix::from_vec(
            2,
            3,
            vec![
                c64(1.0, 0.5),
                c64(0.0, 1.0),
                c64(2.0, 0.0),
                c64(0.0, -1.0),
                c64(1.0, 1.0),
                c64(0.5, 0.0),
            ],
        );
        let ns = null_space(&a);
        assert_eq!(ns.len(), 1);
        assert!(is_null_space_of(&a, &ns, TOL));
    }

    #[test]
    fn null_space_of_zero_rows_is_identity_basis() {
        let a = CMatrix::zeros(0, 3);
        let ns = null_space(&a);
        assert_eq!(ns.len(), 3);
        assert!(is_orthonormal(&ns, TOL));
    }

    #[test]
    fn null_space_of_zero_matrix_is_full() {
        let a = CMatrix::zeros(2, 3);
        let ns = null_space(&a);
        assert_eq!(ns.len(), 3);
    }

    #[test]
    fn null_space_with_dependent_rows() {
        // Second row is a multiple of the first: rank 1, nullity 2.
        let r0 = [c64(1.0, 0.0), c64(0.0, 1.0), c64(1.0, 1.0)];
        let a = CMatrix::from_vec(
            2,
            3,
            vec![
                r0[0],
                r0[1],
                r0[2],
                r0[0] * c64(0.0, 2.0),
                r0[1] * c64(0.0, 2.0),
                r0[2] * c64(0.0, 2.0),
            ],
        );
        let ns = null_space(&a);
        assert_eq!(ns.len(), 2);
        assert!(is_null_space_of(&a, &ns, TOL));
    }

    #[test]
    fn nulling_three_antennas_at_three_receive_antennas_is_empty() {
        // The paper's §2 impossibility argument: tx3 with 3 antennas
        // nulling at 3 receive antennas (Eqs. 2a–2c) has only the zero
        // solution, i.e. an empty null space for a generic 3x3 channel.
        let h = CMatrix::from_vec(
            3,
            3,
            vec![
                c64(0.9, 0.1),
                c64(-0.3, 0.7),
                c64(0.2, -0.5),
                c64(0.1, -0.8),
                c64(0.6, 0.2),
                c64(-0.4, 0.3),
                c64(0.5, 0.5),
                c64(0.0, -0.2),
                c64(0.7, 0.1),
            ],
        );
        assert!(null_space(&h).is_empty());
    }

    #[test]
    fn rank_nullity_theorem() {
        use crate::solve::rank;
        // Random-ish fixed matrices of several shapes.
        let shapes = [(2usize, 4usize), (3, 3), (4, 2), (1, 5)];
        let mut seed = 1u64;
        let mut next = move || {
            // Tiny xorshift for deterministic pseudo-random entries.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 500.0 - 1.0
        };
        for &(r, c) in &shapes {
            let data: Vec<Complex64> = (0..r * c).map(|_| c64(next(), next())).collect();
            let a = CMatrix::from_vec(r, c, data);
            let rk = rank(&a, None);
            let ns = null_space(&a);
            assert_eq!(rk + ns.len(), c, "rank-nullity failed for {r}x{c}");
            assert!(is_null_space_of(&a, &ns, TOL));
        }
    }
}
