//! # nplus-linalg
//!
//! Complex linear algebra substrate for the `nplus` workspace — the
//! reproduction of *"Random Access Heterogeneous MIMO Networks"*
//! (SIGCOMM 2011).
//!
//! The paper's machinery is linear algebra over small complex matrices:
//!
//! * **Interference nulling** picks pre-coding vectors in the null space of
//!   a channel matrix ([`null_space`]).
//! * **Interference alignment** constrains signals through the orthogonal
//!   complement of a receiver's unwanted space ([`Subspace::complement`]).
//! * **Multi-dimensional carrier sense** projects received samples onto the
//!   complement of the occupied signal space ([`Subspace::coordinates`]).
//! * **Zero-forcing decoding** solves the effective channel equations
//!   ([`solve()`], [`lstsq`]).
//!
//! No external linear-algebra crate is available in this build environment,
//! so the substrate is implemented here from first principles, sized and
//! tested for the small (≤ 4×4 per subcarrier) matrices MIMO LANs use.

#![forbid(unsafe_code)]

pub mod complex;
pub mod matrix;
pub mod nullspace;
pub mod pool;
pub mod qr;
pub mod soa;
pub mod solve;
pub mod subspace;
pub mod vector;

pub use complex::{c64, Complex64};
pub use matrix::CMatrix;
pub use nullspace::{is_null_space_of, null_space, nullity};
pub use pool::VecPool;
pub use qr::{
    column_space, is_orthonormal, orthonormalize, orthonormalize_into, qr, row_space, Qr,
};
pub use soa::{
    hermitian_into, mul_into, null_space_into, pinv_into, qr_soa, row_echelon_into,
    soa_default_tolerance, CMatrixSoA, NullspaceWorkspace, PinvWorkspace,
};
pub use solve::{
    default_tolerance, determinant, inverse, lstsq, pinv, rank, row_echelon, solve, solve_many,
    LinalgError,
};
pub use subspace::{principal_angle, residual_power_db, sin_angle, Subspace, SubspaceWorkspace};
pub use vector::CVector;

/// Converts a linear power ratio to decibels.
#[inline]
pub fn db_from_ratio(ratio: f64) -> f64 {
    10.0 * ratio.max(1e-300).log10()
}

/// Converts decibels to a linear power ratio.
#[inline]
pub fn ratio_from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for &db in &[-30.0, -3.0, 0.0, 10.0, 27.0] {
            assert!((db_from_ratio(ratio_from_db(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn db_of_unity_is_zero() {
        assert!(db_from_ratio(1.0).abs() < 1e-12);
    }
}
