//! Subspaces, orthogonal complements and projections.
//!
//! Multi-dimensional carrier sense (paper §3.2) is literally "project the
//! received signal onto the orthogonal complement of the ongoing
//! transmissions and run 802.11 carrier sense there". The unwanted space
//! `U` and its complement `U^⊥` of §3.3 are the same machinery. This
//! module provides a [`Subspace`] type holding an orthonormal basis with
//! the operations both call sites need.

use crate::matrix::CMatrix;
use crate::nullspace::null_space;
use crate::qr::{is_orthonormal, orthonormalize, orthonormalize_into};
use crate::soa::{null_space_into, CMatrixSoA, NullspaceWorkspace};
use crate::vector::CVector;

/// A linear subspace of `C^n`, stored as an orthonormal basis.
///
/// The zero subspace is represented by an empty basis; the ambient
/// dimension is always tracked so complements remain well-defined.
///
/// Storage uses logical-length semantics so a `Subspace` slot can be
/// reused round after round without reallocating: `basis` may hold spare
/// vectors past `dim` retained from earlier, larger uses. All accessors
/// see only the live prefix `basis[..dim]`.
#[derive(Debug, Clone, Default)]
pub struct Subspace {
    ambient: usize,
    basis: Vec<CVector>,
    dim: usize,
}

impl Subspace {
    /// The zero subspace of `C^ambient`.
    pub fn zero(ambient: usize) -> Self {
        Subspace {
            ambient,
            basis: Vec::new(),
            dim: 0,
        }
    }

    /// The full space `C^ambient`.
    pub fn full(ambient: usize) -> Self {
        Subspace {
            ambient,
            basis: (0..ambient).map(|i| CVector::unit(ambient, i)).collect(),
            dim: ambient,
        }
    }

    /// Subspace spanned by the given vectors (they need not be independent
    /// or normalized; dependent and zero vectors are dropped).
    pub fn span(ambient: usize, vectors: &[CVector]) -> Self {
        for v in vectors {
            assert_eq!(v.len(), ambient, "span: vector dimension != ambient");
        }
        let tol = span_tolerance(ambient, vectors);
        let basis = orthonormalize(vectors, tol);
        let dim = basis.len();
        Subspace {
            ambient,
            basis,
            dim,
        }
    }

    /// Subspace spanned by the columns of `a`.
    pub fn from_columns(a: &CMatrix) -> Self {
        Self::span(a.rows(), &a.columns())
    }

    /// Constructs a subspace directly from an already-orthonormal basis.
    ///
    /// Panics in debug builds if the basis is not orthonormal.
    pub fn from_orthonormal(ambient: usize, basis: Vec<CVector>) -> Self {
        debug_assert!(
            is_orthonormal(&basis, 1e-8),
            "from_orthonormal: basis is not orthonormal"
        );
        for v in &basis {
            assert_eq!(v.len(), ambient);
        }
        let dim = basis.len();
        Subspace {
            ambient,
            basis,
            dim,
        }
    }

    /// Pooled sibling of [`Subspace::zero`]: reuses `self`'s slots.
    pub fn assign_zero(&mut self, ambient: usize) {
        self.ambient = ambient;
        self.dim = 0;
    }

    /// Pooled sibling of [`Subspace::full`]: reuses `self`'s slots.
    pub fn assign_full(&mut self, ambient: usize) {
        self.ambient = ambient;
        for i in 0..ambient {
            if i == self.basis.len() {
                self.basis.push(CVector::default());
            }
            self.basis[i].assign_zeros(ambient);
            self.basis[i][i] = crate::complex::Complex64::ONE;
        }
        self.dim = ambient;
    }

    /// Pooled sibling of `clone_from` that keeps spare slots: copies the
    /// live basis of `src` into reusable slots of `self`.
    pub fn assign_from(&mut self, src: &Subspace) {
        self.ambient = src.ambient;
        for (i, b) in src.basis().iter().enumerate() {
            if i == self.basis.len() {
                self.basis.push(CVector::default());
            }
            self.basis[i].copy_from(b);
        }
        self.dim = src.dim;
    }

    /// Pooled sibling of [`Subspace::span`]: same tolerance and the same
    /// Gram–Schmidt operation sequence (via `orthonormalize_into`), so the
    /// resulting basis is bit-identical; `w` is the reusable work vector.
    pub fn assign_span(&mut self, ambient: usize, vectors: &[CVector], w: &mut CVector) {
        for v in vectors {
            assert_eq!(v.len(), ambient, "span: vector dimension != ambient");
        }
        let tol = span_tolerance(ambient, vectors);
        self.ambient = ambient;
        self.dim = orthonormalize_into(vectors, tol, &mut self.basis, w);
    }

    /// Dimension of the ambient space.
    #[inline]
    pub fn ambient_dim(&self) -> usize {
        self.ambient
    }

    /// Dimension of the subspace itself.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True for the zero subspace.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.dim == 0
    }

    /// True when the subspace is all of `C^ambient`.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.dim == self.ambient
    }

    /// The orthonormal basis vectors.
    #[inline]
    pub fn basis(&self) -> &[CVector] {
        &self.basis[..self.dim]
    }

    /// Basis as a matrix whose *columns* are the basis vectors
    /// (`ambient × dim`).
    pub fn basis_matrix(&self) -> CMatrix {
        if self.dim == 0 {
            CMatrix::zeros(self.ambient, 0)
        } else {
            CMatrix::from_cols(self.basis())
        }
    }

    /// Basis as a matrix whose *rows* are the conjugated basis vectors
    /// (`dim × ambient`) — the `U^⊥` row operator of the paper's Eq. 6:
    /// applying it to a received vector extracts the coordinates along the
    /// subspace.
    pub fn row_operator(&self) -> CMatrix {
        self.basis_matrix().hermitian()
    }

    /// Pooled split-storage sibling of [`Subspace::row_operator`]: writes
    /// the `dim × ambient` conjugated-basis row operator into `out`.
    /// Entry values are identical (conjugation is an exact sign flip).
    pub fn row_operator_into(&self, out: &mut CMatrixSoA) {
        out.reset(self.dim, self.ambient);
        for (i, b) in self.basis().iter().enumerate() {
            for (j, z) in b.iter().enumerate() {
                out.set(i, j, z.conj());
            }
        }
    }

    /// Orthogonal complement within the ambient space.
    ///
    /// Computed as the null space of the row operator, so
    /// `dim + complement.dim == ambient` always holds.
    pub fn complement(&self) -> Subspace {
        if self.is_zero() {
            return Subspace::full(self.ambient);
        }
        let ns = null_space(&self.row_operator());
        let dim = ns.len();
        Subspace {
            ambient: self.ambient,
            basis: ns,
            dim,
        }
    }

    /// Pooled sibling of [`Subspace::complement`], writing into reusable
    /// slots of `out`. Runs the identical null-space operation sequence
    /// (via the split-storage kernels), so the complement basis is
    /// bit-for-bit the same as the allocating path's.
    pub fn complement_into(&self, out: &mut Subspace, ws: &mut SubspaceWorkspace) {
        if self.is_zero() {
            out.assign_full(self.ambient);
            return;
        }
        self.row_operator_into(&mut ws.rowop);
        out.ambient = self.ambient;
        out.dim = null_space_into(&ws.rowop, &mut ws.ns, &mut out.basis);
    }

    /// Projects `v` onto the subspace.
    pub fn project(&self, v: &CVector) -> CVector {
        assert_eq!(v.len(), self.ambient, "project: dimension mismatch");
        let mut out = CVector::zeros(self.ambient);
        for b in self.basis() {
            let k = v.dot(b);
            out.axpy(k, b);
        }
        out
    }

    /// Removes the component of `v` inside the subspace, i.e. projects `v`
    /// onto the orthogonal complement without materializing it.
    pub fn reject(&self, v: &CVector) -> CVector {
        assert_eq!(v.len(), self.ambient, "reject: dimension mismatch");
        let mut out = v.clone();
        for b in self.basis() {
            let k = out.dot(b);
            out.axpy(-k, b);
        }
        out
    }

    /// Pooled sibling of [`Subspace::reject`]: identical arithmetic, with
    /// the output written into a reusable buffer instead of a fresh clone.
    pub fn reject_into(&self, v: &CVector, out: &mut CVector) {
        assert_eq!(v.len(), self.ambient, "reject: dimension mismatch");
        out.copy_from(v);
        for b in self.basis() {
            let k = out.dot(b);
            out.axpy(-k, b);
        }
    }

    /// Coordinates of `v` in the subspace basis (a `dim`-vector). This is
    /// the "signal after projection" `y'` of §3.2: interference from the
    /// spanned directions is annihilated when applied to the complement.
    pub fn coordinates(&self, v: &CVector) -> CVector {
        assert_eq!(v.len(), self.ambient, "coordinates: dimension mismatch");
        self.basis().iter().map(|b| v.dot(b)).collect()
    }

    /// Projection matrix `P = B B^H` onto the subspace (`ambient × ambient`).
    pub fn projector(&self) -> CMatrix {
        let b = self.basis_matrix();
        &b * &b.hermitian()
    }

    /// True when `v` lies in the subspace within tolerance `tol`
    /// (relative to `|v|`).
    pub fn contains(&self, v: &CVector, tol: f64) -> bool {
        let resid = self.reject(v);
        resid.norm() <= tol * v.norm().max(1e-300)
    }

    /// The sum (union-span) of two subspaces of the same ambient space.
    pub fn sum(&self, other: &Subspace) -> Subspace {
        assert_eq!(self.ambient, other.ambient, "sum: ambient mismatch");
        let mut all = self.basis().to_vec();
        all.extend(other.basis().iter().cloned());
        Subspace::span(self.ambient, &all)
    }

    /// Fraction of the power of `v` that lies inside the subspace, in
    /// `[0, 1]`. Convenient for expressing residual-interference checks.
    pub fn power_fraction(&self, v: &CVector) -> f64 {
        let total = v.norm_sqr();
        if total <= 1e-300 {
            return 0.0;
        }
        self.project(v).norm_sqr() / total
    }
}

/// The span tolerance shared by [`Subspace::span`] and
/// [`Subspace::assign_span`]: `max|v| · ambient · eps`, floored at
/// `1e-300`. Kept in one place so the two paths cannot drift.
fn span_tolerance(ambient: usize, vectors: &[CVector]) -> f64 {
    let scale = vectors
        .iter()
        .map(|v| v.norm())
        .fold(0.0f64, f64::max)
        .max(1e-300);
    scale * ambient as f64 * f64::EPSILON
}

/// Reusable buffers for [`Subspace::complement_into`].
#[derive(Debug, Clone, Default)]
pub struct SubspaceWorkspace {
    rowop: CMatrixSoA,
    ns: NullspaceWorkspace,
}

/// Angle `θ` between two vectors (paper Fig. 7): the decode-SNR of
/// zero-forcing scales with `sin θ` between the wanted signal and the
/// interference subspace. Returns radians in `[0, π/2]`.
pub fn principal_angle(a: &CVector, b: &CVector) -> f64 {
    let na = a.norm();
    let nb = b.norm();
    if na <= 1e-300 || nb <= 1e-300 {
        return 0.0;
    }
    let c = (a.dot(b).abs() / (na * nb)).clamp(0.0, 1.0);
    c.acos()
}

/// Hermitian inner-product based "sin θ" factor: the fraction of `a`'s
/// amplitude that survives projection orthogonal to `b`.
pub fn sin_angle(a: &CVector, b: &CVector) -> f64 {
    principal_angle(a, b).sin()
}

/// Convenience: `Complex64`-valued zero check used by callers when
/// asserting nulling depth.
pub fn residual_power_db(residual: &CVector, reference: &CVector) -> f64 {
    let num = residual.norm_sqr().max(1e-300);
    let den = reference.norm_sqr().max(1e-300);
    10.0 * (num / den).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    const TOL: f64 = 1e-10;

    fn v3(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> CVector {
        CVector::from_vec(vec![c64(a.0, a.1), c64(b.0, b.1), c64(c.0, c.1)])
    }

    #[test]
    fn complement_dimensions_add_up() {
        let s = Subspace::span(3, &[v3((1.0, 0.0), (1.0, 1.0), (0.0, 0.0))]);
        assert_eq!(s.dim(), 1);
        let c = s.complement();
        assert_eq!(c.dim(), 2);
        assert_eq!(s.dim() + c.dim(), 3);
    }

    #[test]
    fn complement_annihilates_original() {
        // This is exactly multi-dimensional carrier sense: a signal in the
        // occupied space has zero coordinates in the complement.
        let h = v3((0.8, 0.1), (-0.2, 0.6), (0.4, -0.3)); // channel of tx1
        let occupied = Subspace::span(3, std::slice::from_ref(&h));
        let comp = occupied.complement();
        // Any scalar multiple of h (any transmitted symbol p) vanishes.
        for &p in &[c64(1.0, 0.0), c64(-0.3, 2.0), c64(0.0, -1.0)] {
            let y = h.scale(p);
            let coords = comp.coordinates(&y);
            assert!(coords.is_negligible(TOL), "residual {coords:?}");
        }
    }

    #[test]
    fn complement_preserves_new_signal() {
        let h1 = v3((0.8, 0.1), (-0.2, 0.6), (0.4, -0.3));
        let h2 = v3((0.1, -0.5), (0.7, 0.2), (-0.3, 0.3));
        let occupied = Subspace::span(3, std::slice::from_ref(&h1));
        let comp = occupied.complement();
        // A second transmission not colinear with h1 must survive.
        let coords = comp.coordinates(&h2);
        assert!(coords.norm() > 0.1, "tx2 signal lost in projection");
        // And the survived power equals the rejected component's power.
        let rejected = occupied.reject(&h2);
        assert!((coords.norm_sqr() - rejected.norm_sqr()).abs() < TOL);
    }

    #[test]
    fn project_plus_reject_is_identity() {
        let s = Subspace::span(
            3,
            &[
                v3((1.0, 0.0), (0.0, 1.0), (0.0, 0.0)),
                v3((0.0, 0.0), (1.0, 0.0), (1.0, 1.0)),
            ],
        );
        let v = v3((0.3, -0.4), (1.2, 0.0), (0.0, 0.9));
        let p = s.project(&v);
        let r = s.reject(&v);
        assert!((&p + &r).approx_eq(&v, TOL));
        assert!(p.dot(&r).abs() < TOL);
    }

    #[test]
    fn projector_matrix_matches_project() {
        let s = Subspace::span(3, &[v3((1.0, 1.0), (0.0, 0.0), (2.0, -1.0))]);
        let v = v3((0.5, 0.0), (0.0, 0.5), (1.0, 1.0));
        let via_matrix = s.projector().mul_vec(&v);
        assert!(via_matrix.approx_eq(&s.project(&v), TOL));
        // Projector is idempotent: P^2 = P.
        let p = s.projector();
        assert!((&p * &p).approx_eq(&p, TOL));
    }

    #[test]
    fn contains_detects_membership() {
        let b = v3((1.0, 0.0), (2.0, 0.0), (0.0, 1.0));
        let s = Subspace::span(3, std::slice::from_ref(&b));
        assert!(s.contains(&b.scale(c64(0.0, -3.0)), 1e-9));
        assert!(!s.contains(&v3((1.0, 0.0), (0.0, 0.0), (0.0, 0.0)), 1e-6));
    }

    #[test]
    fn zero_and_full_subspace() {
        let z = Subspace::zero(4);
        assert!(z.is_zero());
        assert!(z.complement().is_full());
        let f = Subspace::full(4);
        assert!(f.is_full());
        assert_eq!(f.complement().dim(), 0);
        let v = CVector::unit(4, 2);
        assert!(z.reject(&v).approx_eq(&v, TOL));
        assert!(f.project(&v).approx_eq(&v, TOL));
    }

    #[test]
    fn sum_of_subspaces() {
        let a = Subspace::span(3, &[CVector::unit(3, 0)]);
        let b = Subspace::span(3, &[CVector::unit(3, 1)]);
        let s = a.sum(&b);
        assert_eq!(s.dim(), 2);
        // Sum with overlap doesn't over-count.
        let s2 = a.sum(&a);
        assert_eq!(s2.dim(), 1);
    }

    #[test]
    fn principal_angle_extremes() {
        let e0 = CVector::unit(2, 0);
        let e1 = CVector::unit(2, 1);
        assert!((principal_angle(&e0, &e1) - std::f64::consts::FRAC_PI_2).abs() < TOL);
        assert!(principal_angle(&e0, &e0).abs() < TOL);
        // Phase rotation does not change the angle (complex colinearity).
        let rotated = e0.scale(c64(0.0, 1.0));
        assert!(principal_angle(&e0, &rotated).abs() < 1e-7);
    }

    #[test]
    fn power_fraction_bounds() {
        let s = Subspace::span(2, &[CVector::unit(2, 0)]);
        let inside = CVector::unit(2, 0);
        let outside = CVector::unit(2, 1);
        assert!((s.power_fraction(&inside) - 1.0).abs() < TOL);
        assert!(s.power_fraction(&outside) < TOL);
        let mixed = CVector::from_reals(&[1.0, 1.0]);
        assert!((s.power_fraction(&mixed) - 0.5).abs() < TOL);
    }

    #[test]
    fn pooled_ops_match_allocating_ops_bitwise() {
        let vs = [
            v3((0.8, 0.1), (-0.2, 0.6), (0.4, -0.3)),
            v3((0.1, -0.5), (0.7, 0.2), (-0.3, 0.3)),
        ];
        let expect = Subspace::span(3, &vs);
        let mut s = Subspace::default();
        let mut w = CVector::default();
        s.assign_span(3, &vs, &mut w);
        assert_eq!(s.dim(), expect.dim());
        for (a, b) in s.basis().iter().zip(expect.basis()) {
            for i in 0..a.len() {
                assert_eq!(a[i].re.to_bits(), b[i].re.to_bits());
                assert_eq!(a[i].im.to_bits(), b[i].im.to_bits());
            }
        }
        // Pooled complement vs allocating complement.
        let cexpect = expect.complement();
        let mut c = Subspace::default();
        let mut ws = SubspaceWorkspace::default();
        s.complement_into(&mut c, &mut ws);
        assert_eq!(c.dim(), cexpect.dim());
        for (a, b) in c.basis().iter().zip(cexpect.basis()) {
            for i in 0..a.len() {
                assert_eq!(a[i].re.to_bits(), b[i].re.to_bits());
                assert_eq!(a[i].im.to_bits(), b[i].im.to_bits());
            }
        }
        // Pooled reject vs allocating reject.
        let v = v3((0.3, -0.4), (1.2, 0.0), (0.0, 0.9));
        let rexpect = s.reject(&v);
        let mut r = CVector::default();
        s.reject_into(&v, &mut r);
        assert_eq!(r, rexpect);
        // Reuse after a larger assignment must not leak stale slots.
        let mut reused = Subspace::default();
        reused.assign_full(3);
        reused.assign_from(&expect);
        assert_eq!(reused.dim(), expect.dim());
        assert_eq!(reused.basis().len(), expect.dim());
        reused.assign_zero(3);
        assert!(reused.is_zero());
        assert!(reused.basis().is_empty());
    }

    #[test]
    fn row_operator_into_matches_row_operator() {
        let vs = [v3((1.0, 0.0), (1.0, 1.0), (0.0, 0.0))];
        let s = Subspace::span(3, &vs);
        let expect = s.row_operator();
        let mut out = CMatrixSoA::default();
        s.row_operator_into(&mut out);
        assert_eq!(out.shape(), (expect.rows(), expect.cols()));
        for i in 0..expect.rows() {
            for j in 0..expect.cols() {
                assert_eq!(out.get(i, j).re.to_bits(), expect[(i, j)].re.to_bits());
                assert_eq!(out.get(i, j).im.to_bits(), expect[(i, j)].im.to_bits());
            }
        }
    }

    #[test]
    fn residual_power_db_scale() {
        let r = CVector::from_reals(&[0.1, 0.0]);
        let s = CVector::from_reals(&[1.0, 0.0]);
        assert!((residual_power_db(&r, &s) + 20.0).abs() < 1e-9);
    }
}
