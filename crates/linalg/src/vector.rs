//! Complex column vectors.
//!
//! [`CVector`] is the workhorse for pre-coding vectors (`v_i` in the paper's
//! Eq. 7), per-antenna sample snapshots, and subspace bases. The inner
//! product is the Hermitian one (`<a, b> = sum a_k * conj(b_k)`), which is
//! the physically meaningful choice for signal spaces: projections computed
//! with it preserve power accounting.

use crate::complex::{c64, Complex64};
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex column vector.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CVector {
    data: Vec<Complex64>,
}

impl CVector {
    /// Creates a vector from a `Vec` of complex entries.
    pub fn from_vec(data: Vec<Complex64>) -> Self {
        CVector { data }
    }

    /// Creates a vector from real entries (imaginary parts zero).
    pub fn from_reals(re: &[f64]) -> Self {
        CVector {
            data: re.iter().map(|&r| c64(r, 0.0)).collect(),
        }
    }

    /// The zero vector of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        CVector {
            data: vec![Complex64::ZERO; n],
        }
    }

    /// The `i`-th standard basis vector of dimension `n`.
    pub fn unit(n: usize, i: usize) -> Self {
        assert!(i < n, "unit index {i} out of range for dimension {n}");
        let mut v = Self::zeros(n);
        v[i] = Complex64::ONE;
        v
    }

    /// Vector dimension.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the dimension is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the vector, returning its entries.
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Iterator over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, Complex64> {
        self.data.iter()
    }

    /// Hermitian inner product `<self, other> = sum self_k * conj(other_k)`.
    ///
    /// Note the conjugate is taken on the *second* argument, so
    /// `v.dot(&v)` is real and equals `v.norm_sqr()`.
    pub fn dot(&self, other: &CVector) -> Complex64 {
        assert_eq!(self.len(), other.len(), "dot: dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| *a * b.conj())
            .sum()
    }

    /// Squared Euclidean norm (total power of the vector).
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns `self` scaled to unit norm. Panics if the vector is
    /// numerically zero (norm below `1e-300`).
    pub fn normalized(&self) -> CVector {
        let n = self.norm();
        assert!(n > 1e-300, "cannot normalize a zero vector");
        self.scale_re(1.0 / n)
    }

    /// Scales every entry by a real factor.
    pub fn scale_re(&self, k: f64) -> CVector {
        CVector {
            data: self.data.iter().map(|z| z.scale(k)).collect(),
        }
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> CVector {
        CVector {
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> CVector {
        CVector {
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// In-place `self += k * other` (AXPY). The hot path of Gram–Schmidt.
    pub fn axpy(&mut self, k: Complex64, other: &CVector) {
        assert_eq!(self.len(), other.len(), "axpy: dimension mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * *b;
        }
    }

    /// Component of `self` along the (not necessarily unit) direction `dir`:
    /// `(<self, dir> / <dir, dir>) * dir`.
    pub fn projection_onto(&self, dir: &CVector) -> CVector {
        let d = dir.norm_sqr();
        assert!(d > 1e-300, "cannot project onto a zero direction");
        let k = self.dot(dir) / d;
        dir.scale(k)
    }

    /// Removes the component of `self` along `dir`, leaving the part
    /// orthogonal to it.
    pub fn reject_from(&self, dir: &CVector) -> CVector {
        let mut out = self.clone();
        let d = dir.norm_sqr();
        assert!(d > 1e-300, "cannot reject from a zero direction");
        let k = self.dot(dir) / d;
        out.axpy(-k, dir);
        out
    }

    /// Reuses `self`'s buffer to become a copy of `src` — the pooled
    /// sibling of `clone()`. Allocation-free once the buffer has grown
    /// to `src.len()` capacity.
    pub fn copy_from(&mut self, src: &CVector) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Reuses `self`'s buffer to become `src.scale_re(k)` without
    /// allocating at steady state. Entry arithmetic is identical to
    /// [`CVector::scale_re`] (each entry scaled by the same real factor).
    pub fn assign_scale_re(&mut self, src: &CVector, k: f64) {
        self.data.clear();
        self.data.extend(src.data.iter().map(|z| z.scale(k)));
    }

    /// Reuses `self`'s buffer to become the zero vector of dimension `n`.
    pub fn assign_zeros(&mut self, n: usize) {
        self.data.clear();
        self.data.resize(n, Complex64::ZERO);
    }

    /// Scales every entry by a real factor in place — the pooled sibling
    /// of [`CVector::scale_re`], with identical per-entry arithmetic.
    pub fn scale_re_in_place(&mut self, k: f64) {
        for z in &mut self.data {
            *z = z.scale(k);
        }
    }

    /// Appends an entry, growing the buffer if needed.
    #[inline]
    pub fn push(&mut self, z: Complex64) {
        self.data.push(z);
    }

    /// Approximate equality within absolute tolerance on every entry.
    pub fn approx_eq(&self, other: &CVector, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// True when every entry has magnitude below `tol`.
    pub fn is_negligible(&self, tol: f64) -> bool {
        self.data.iter().all(|z| z.abs() <= tol)
    }
}

impl Index<usize> for CVector {
    type Output = Complex64;
    #[inline]
    fn index(&self, i: usize) -> &Complex64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut Complex64 {
        &mut self.data[i]
    }
}

impl Add for &CVector {
    type Output = CVector;
    fn add(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len(), "add: dimension mismatch");
        CVector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CVector {
    type Output = CVector;
    fn sub(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len(), "sub: dimension mismatch");
        CVector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CVector {
    type Output = CVector;
    fn neg(self) -> CVector {
        CVector {
            data: self.data.iter().map(|&z| -z).collect(),
        }
    }
}

impl Mul<Complex64> for &CVector {
    type Output = CVector;
    fn mul(self, k: Complex64) -> CVector {
        self.scale(k)
    }
}

impl FromIterator<Complex64> for CVector {
    fn from_iter<T: IntoIterator<Item = Complex64>>(iter: T) -> Self {
        CVector {
            data: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn v(entries: &[(f64, f64)]) -> CVector {
        CVector::from_vec(entries.iter().map(|&(r, i)| c64(r, i)).collect())
    }

    #[test]
    fn dot_is_hermitian() {
        let a = v(&[(1.0, 2.0), (0.0, -1.0)]);
        let b = v(&[(3.0, 0.0), (1.0, 1.0)]);
        // <a,b> = conj(<b,a>)
        assert!(a.dot(&b).approx_eq(b.dot(&a).conj(), TOL));
    }

    #[test]
    fn dot_with_self_is_norm_sqr() {
        let a = v(&[(1.0, 2.0), (0.0, -1.0), (3.0, 0.5)]);
        let d = a.dot(&a);
        assert!(d.im.abs() < TOL);
        assert!((d.re - a.norm_sqr()).abs() < TOL);
    }

    #[test]
    fn unit_vectors_orthonormal() {
        for i in 0..4 {
            for j in 0..4 {
                let d = CVector::unit(4, i).dot(&CVector::unit(4, j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(d.approx_eq(c64(expect, 0.0), TOL));
            }
        }
    }

    #[test]
    fn normalized_has_unit_norm() {
        let a = v(&[(3.0, 4.0), (0.0, 0.0)]);
        assert!((a.normalized().norm() - 1.0).abs() < TOL);
    }

    #[test]
    fn rejection_is_orthogonal_to_direction() {
        let a = v(&[(1.0, 1.0), (2.0, -1.0), (0.5, 0.0)]);
        let d = v(&[(0.0, 1.0), (1.0, 0.0), (1.0, 1.0)]);
        let r = a.reject_from(&d);
        assert!(r.dot(&d).abs() < TOL);
        // projection + rejection reassemble the original vector
        let p = a.projection_onto(&d);
        assert!((&p + &r).approx_eq(&a, TOL));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = v(&[(1.0, 0.0), (0.0, 1.0)]);
        let b = v(&[(1.0, 1.0), (2.0, 0.0)]);
        a.axpy(c64(0.0, 1.0), &b); // a += i*b
        assert!(a.approx_eq(&v(&[(0.0, 1.0), (0.0, 3.0)]), TOL));
    }

    #[test]
    fn arithmetic_ops() {
        let a = v(&[(1.0, 0.0), (2.0, 2.0)]);
        let b = v(&[(0.5, 0.5), (1.0, -1.0)]);
        assert!((&a + &b).approx_eq(&v(&[(1.5, 0.5), (3.0, 1.0)]), TOL));
        assert!((&a - &b).approx_eq(&v(&[(0.5, -0.5), (1.0, 3.0)]), TOL));
        assert!((-&a).approx_eq(&v(&[(-1.0, 0.0), (-2.0, -2.0)]), TOL));
    }

    #[test]
    fn negligible_detection() {
        assert!(CVector::zeros(5).is_negligible(1e-15));
        assert!(!v(&[(1e-3, 0.0)]).is_negligible(1e-6));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_dimension_mismatch_panics() {
        let _ = CVector::zeros(2).dot(&CVector::zeros(3));
    }
}
