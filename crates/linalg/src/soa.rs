//! Structure-of-arrays complex matrices and the kernel set built on them.
//!
//! [`CMatrixSoA`] stores the real and imaginary parts of a row-major
//! complex matrix in two separate `f64` arrays. Split storage keeps each
//! part contiguous, so the hot kernels (matrix–vector products, matmul
//! row updates, Gaussian elimination row operations) compile to straight
//! slice loops over `f64` that the auto-vectorizer handles well, and the
//! layout is FMA-friendly: each partial product is a chain of independent
//! mul/adds on separate lanes rather than interleaved re/im pairs.
//!
//! **Bit-identity contract.** Every kernel in this module executes the
//! *exact same floating-point operation sequence* as its interleaved
//! (`CMatrix`) sibling: the same complex-multiply expansion
//! `(ar·br − ai·bi, ar·bi + ai·br)`, the same accumulation order, the
//! same `hypot`-based magnitudes, tolerances and pivot scans, and the
//! same zero-skip tests. No operations are fused or re-associated — the
//! speedup comes from layout and allocation discipline, not from changed
//! arithmetic — so results are bit-for-bit identical to the scalar path.
//! The tests at the bottom pin this with `to_bits` comparisons, and the
//! simulation-level golden suites pin it end to end.

use crate::complex::{c64, Complex64};
use crate::matrix::CMatrix;
use crate::qr::orthonormalize_into;
use crate::solve::LinalgError;
use crate::vector::CVector;

/// A dense complex matrix in split (structure-of-arrays) storage.
///
/// Entries are row-major, with real parts in one contiguous array and
/// imaginary parts in another. See the module docs for the bit-identity
/// contract with [`CMatrix`].
#[derive(Clone, Default, PartialEq)]
pub struct CMatrixSoA {
    rows: usize,
    cols: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl CMatrixSoA {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrixSoA {
            rows,
            cols,
            re: vec![0.0; rows * cols],
            im: vec![0.0; rows * cols],
        }
    }

    /// Converts from interleaved storage. The conversion is a pure value
    /// copy — every entry keeps its exact bit pattern.
    pub fn from_aos(a: &CMatrix) -> Self {
        let mut m = CMatrixSoA {
            rows: a.rows(),
            cols: a.cols(),
            re: Vec::with_capacity(a.rows() * a.cols()),
            im: Vec::with_capacity(a.rows() * a.cols()),
        };
        for z in a.as_slice() {
            m.re.push(z.re);
            m.im.push(z.im);
        }
        m
    }

    /// Converts to interleaved storage (exact value copy).
    pub fn to_aos(&self) -> CMatrix {
        CMatrix::from_vec(
            self.rows,
            self.cols,
            self.re
                .iter()
                .zip(&self.im)
                .map(|(&r, &i)| c64(r, i))
                .collect(),
        )
    }

    /// Creates a matrix whose columns are the given vectors.
    pub fn from_cols(cols: &[CVector]) -> Self {
        if cols.is_empty() {
            return Self::zeros(0, 0);
        }
        let rows = cols[0].len();
        let mut m = Self::zeros(rows, cols.len());
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), rows, "from_cols: ragged column lengths");
            for i in 0..rows {
                m.set(i, j, c[i]);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True for a matrix with no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Entry `(i, j)` as a complex value.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        let idx = i * self.cols + j;
        c64(self.re[idx], self.im[idx])
    }

    /// Sets entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, z: Complex64) {
        debug_assert!(i < self.rows && j < self.cols);
        let idx = i * self.cols + j;
        self.re[idx] = z.re;
        self.im[idx] = z.im;
    }

    /// Real parts of row `i` as a contiguous slice (borrowed view — no
    /// copy).
    #[inline]
    pub fn row_re(&self, i: usize) -> &[f64] {
        &self.re[i * self.cols..(i + 1) * self.cols]
    }

    /// Imaginary parts of row `i` as a contiguous slice (borrowed view —
    /// no copy).
    #[inline]
    pub fn row_im(&self, i: usize) -> &[f64] {
        &self.im[i * self.cols..(i + 1) * self.cols]
    }

    /// Extracts column `j` as an owned vector (cold-path helper).
    pub fn col(&self, j: usize) -> CVector {
        assert!(j < self.cols, "col {j} out of range ({} cols)", self.cols);
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Reshapes `self` to `rows × cols` filled with zeros, reusing the
    /// buffers. Allocation-free once grown to high-water capacity.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.re.clear();
        self.re.resize(rows * cols, 0.0);
        self.im.clear();
        self.im.resize(rows * cols, 0.0);
    }

    /// Reuses `self`'s buffers to become a copy of `src` — the pooled
    /// sibling of `clone()`.
    pub fn assign_from(&mut self, src: &CMatrixSoA) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.re.clear();
        self.re.extend_from_slice(&src.re);
        self.im.clear();
        self.im.extend_from_slice(&src.im);
    }

    /// Reuses `self`'s buffers to become a split-storage copy of the
    /// interleaved `src` (exact value copy).
    pub fn assign_from_aos(&mut self, src: &CMatrix) {
        self.rows = src.rows();
        self.cols = src.cols();
        self.re.clear();
        self.im.clear();
        for z in src.as_slice() {
            self.re.push(z.re);
            self.im.push(z.im);
        }
    }

    /// Appends the rows of `other` below `self` (in-place `vstack`).
    /// An empty `self` (zero rows) adopts `other`'s column count.
    pub fn append_rows(&mut self, other: &CMatrixSoA) {
        if other.rows == 0 {
            return;
        }
        if self.rows == 0 {
            self.cols = other.cols;
            self.re.clear();
            self.im.clear();
        }
        assert_eq!(self.cols, other.cols, "append_rows: column count mismatch");
        self.re.extend_from_slice(&other.re);
        self.im.extend_from_slice(&other.im);
        self.rows += other.rows;
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.re.swap(a * self.cols + j, b * self.cols + j);
            self.im.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Matrix–vector product `A x` into a pooled output vector.
    ///
    /// Same accumulation order as [`CMatrix::mul_vec`] (ascending `j`
    /// per row), decomposed onto split accumulators — bit-identical.
    pub fn mul_vec_into(&self, x: &CVector, out: &mut CVector) {
        assert_eq!(
            x.len(),
            self.cols,
            "mul_vec: {}x{} matrix times {}-vector",
            self.rows,
            self.cols,
            x.len()
        );
        out.assign_zeros(self.rows);
        let xs = x.as_slice();
        for i in 0..self.rows {
            let re_row = self.row_re(i);
            let im_row = self.row_im(i);
            let mut acc_re = 0.0f64;
            let mut acc_im = 0.0f64;
            for (j, xv) in xs.iter().enumerate() {
                let ar = re_row[j];
                let ai = im_row[j];
                // (ar + i·ai)(xr + i·xi), expanded exactly as Complex64's
                // Mul, then accumulated exactly as its AddAssign.
                acc_re += ar * xv.re - ai * xv.im;
                acc_im += ar * xv.im + ai * xv.re;
            }
            out[i] = c64(acc_re, acc_im);
        }
    }

    /// Allocating convenience wrapper over [`CMatrixSoA::mul_vec_into`].
    pub fn mul_vec(&self, x: &CVector) -> CVector {
        let mut out = CVector::default();
        self.mul_vec_into(x, &mut out);
        out
    }

    /// Scales every entry by a real factor (same per-entry arithmetic as
    /// [`CMatrix::scale_re`]).
    pub fn scale_re(&self, k: f64) -> CMatrixSoA {
        CMatrixSoA {
            rows: self.rows,
            cols: self.cols,
            re: self.re.iter().map(|&r| r * k).collect(),
            im: self.im.iter().map(|&i| i * k).collect(),
        }
    }

    /// Frobenius norm — row-major `norm_sqr` sum then square root,
    /// matching [`CMatrix::frobenius_norm`]'s fold order exactly.
    pub fn frobenius_norm(&self) -> f64 {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| r * r + i * i)
            .sum::<f64>()
            .sqrt()
    }

    /// Largest entry magnitude — row-major `hypot` fold from `0.0`,
    /// matching [`CMatrix::max_abs`] exactly.
    pub fn max_abs(&self) -> f64 {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| r.hypot(i))
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Debug for CMatrixSoA {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "CMatrixSoA {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?}  ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// `out = a * b` with the exact loop structure of `&CMatrix * &CMatrix`:
/// `i-k-j` order with the zero-skip on the left operand's `(i, k)` entry
/// (the test `re == 0.0 && im == 0.0` is the same comparison as
/// `a == Complex64::ZERO`). Bit-identical to the interleaved product.
pub fn mul_into(a: &CMatrixSoA, b: &CMatrixSoA, out: &mut CMatrixSoA) {
    assert_eq!(
        a.cols, b.rows,
        "matmul: {}x{} times {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    out.reset(a.rows, b.cols);
    let bc = b.cols;
    for i in 0..a.rows {
        for k in 0..a.cols {
            let ar = a.re[i * a.cols + k];
            let ai = a.im[i * a.cols + k];
            if ar == 0.0 && ai == 0.0 {
                continue;
            }
            let br = &b.re[k * bc..(k + 1) * bc];
            let bi = &b.im[k * bc..(k + 1) * bc];
            let or = &mut out.re[i * bc..(i + 1) * bc];
            let oi = &mut out.im[i * bc..(i + 1) * bc];
            for j in 0..bc {
                // out[(i,j)] += a[(i,k)] * b[(k,j)], expanded exactly.
                or[j] += ar * br[j] - ai * bi[j];
                oi[j] += ar * bi[j] + ai * br[j];
            }
        }
    }
}

/// `out = a^H` with the same traversal as [`CMatrix::hermitian`].
pub fn hermitian_into(a: &CMatrixSoA, out: &mut CMatrixSoA) {
    out.reset(a.cols, a.rows);
    for i in 0..a.rows {
        for j in 0..a.cols {
            let idx = i * a.cols + j;
            out.re[j * a.rows + i] = a.re[idx];
            out.im[j * a.rows + i] = -a.im[idx];
        }
    }
}

/// Rank tolerance `eps * max(rows, cols) * max|a|`, the same formula (and
/// the same `hypot`-based `max_abs`) as `solve::default_tolerance`.
pub fn soa_default_tolerance(a: &CMatrixSoA) -> f64 {
    let scale = a.max_abs();
    let dim = a.rows().max(a.cols()) as f64;
    (f64::EPSILON * dim * scale).max(1e-300)
}

/// Reduces `a` to row echelon form into the pooled `out`, returning the
/// rank. Replicates `solve::row_echelon` operation for operation: the
/// same pivot scans (strictly-greater `hypot` magnitudes), the same
/// `inv()` pivot reciprocal, the same elimination order and the same
/// below-tolerance zeroing.
pub fn row_echelon_into(a: &CMatrixSoA, tol: f64, out: &mut CMatrixSoA) -> usize {
    out.assign_from(a);
    let rows = out.rows();
    let cols = out.cols();
    let mut pivot_row = 0usize;
    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        let mut best = pivot_row;
        let mut best_mag = out.get(pivot_row, col).abs();
        for i in (pivot_row + 1)..rows {
            let mag = out.get(i, col).abs();
            if mag > best_mag {
                best_mag = mag;
                best = i;
            }
        }
        if best_mag <= tol {
            for i in pivot_row..rows {
                out.set(i, col, Complex64::ZERO);
            }
            continue;
        }
        out.swap_rows(pivot_row, best);
        let pinv = out.get(pivot_row, col).inv();
        for j in col..cols {
            let v = out.get(pivot_row, j) * pinv;
            out.set(pivot_row, j, v);
        }
        for i in 0..rows {
            if i == pivot_row {
                continue;
            }
            let factor = out.get(i, col);
            if factor.abs() <= tol {
                out.set(i, col, Complex64::ZERO);
                continue;
            }
            for j in col..cols {
                let sub = factor * out.get(pivot_row, j);
                out.set(i, j, out.get(i, j) - sub);
            }
            out.set(i, col, Complex64::ZERO);
        }
        pivot_row += 1;
    }
    pivot_row
}

/// Reusable buffers for [`pinv_into`]. One per thread/engine; every
/// call reuses the high-water allocations.
#[derive(Debug, Clone, Default)]
pub struct PinvWorkspace {
    ah: CMatrixSoA,
    gram: CMatrixSoA,
    aug: CMatrixSoA,
    inv: CMatrixSoA,
    /// The pseudo-inverse `(A^H A)^{-1} A^H` after a successful
    /// [`pinv_into`] call.
    pub out: CMatrixSoA,
}

/// Moore–Penrose style pseudo-inverse into `ws.out`, replicating
/// `solve::pinv` exactly: Gram matrix via the zero-skipping product,
/// inversion by augmented Gaussian elimination against the identity
/// (partial pivoting, `solve_many`'s loop), then the final product.
///
/// # Errors
/// [`LinalgError::Singular`] when a pivot magnitude falls below the
/// Gram matrix's default tolerance — the same rejection as the
/// interleaved path.
pub fn pinv_into(a: &CMatrixSoA, ws: &mut PinvWorkspace) -> Result<(), LinalgError> {
    hermitian_into(a, &mut ws.ah);
    mul_into(&ws.ah, a, &mut ws.gram);
    let n = ws.gram.rows();
    let tol = soa_default_tolerance(&ws.gram);
    // Augmented elimination [gram | I], as `solve_many(gram, identity)`.
    ws.aug.reset(n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            ws.aug.set(i, j, ws.gram.get(i, j));
        }
        ws.aug.set(i, n + i, Complex64::ONE);
    }
    let total_cols = ws.aug.cols();
    for k in 0..n {
        let mut pivot_row = k;
        let mut pivot_mag = ws.aug.get(k, k).abs();
        for i in (k + 1)..n {
            let mag = ws.aug.get(i, k).abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = i;
            }
        }
        if pivot_mag <= tol {
            return Err(LinalgError::Singular);
        }
        ws.aug.swap_rows(k, pivot_row);
        let pivot = ws.aug.get(k, k);
        let pinv = pivot.inv();
        for j in k..total_cols {
            let v = ws.aug.get(k, j) * pinv;
            ws.aug.set(k, j, v);
        }
        for i in 0..n {
            if i == k {
                continue;
            }
            let factor = ws.aug.get(i, k);
            if factor == Complex64::ZERO {
                continue;
            }
            for j in k..total_cols {
                let sub = factor * ws.aug.get(k, j);
                ws.aug.set(i, j, ws.aug.get(i, j) - sub);
            }
        }
    }
    ws.inv.reset(n, n);
    for i in 0..n {
        for j in 0..n {
            ws.inv.set(i, j, ws.aug.get(i, n + j));
        }
    }
    mul_into(&ws.inv, &ws.ah, &mut ws.out);
    Ok(())
}

/// Reusable buffers for [`null_space_into`].
#[derive(Debug, Clone, Default)]
pub struct NullspaceWorkspace {
    ech: CMatrixSoA,
    pivot_cols: Vec<usize>,
    is_pivot: Vec<bool>,
    cand: Vec<CVector>,
    w: CVector,
}

fn assign_units(n: usize, basis: &mut Vec<CVector>) -> usize {
    for i in 0..n {
        if i == basis.len() {
            basis.push(CVector::default());
        }
        basis[i].assign_zeros(n);
        basis[i][i] = Complex64::ONE;
    }
    n
}

/// Orthonormal null-space basis of `a` into reusable slots of `basis`
/// (same slot semantics as `qr::orthonormalize_into`); returns the
/// dimension. Replicates `nullspace::null_space` exactly: echelon
/// reduction, pivot-column scan, free-variable back-substitution and the
/// final Gram–Schmidt pass all run the same operation sequence, so the
/// basis vectors are bit-identical to the interleaved path's.
pub fn null_space_into(
    a: &CMatrixSoA,
    ws: &mut NullspaceWorkspace,
    basis: &mut Vec<CVector>,
) -> usize {
    let n = a.cols();
    if a.rows() == 0 || n == 0 {
        return assign_units(n, basis);
    }
    let tol = soa_default_tolerance(a);
    let rank = row_echelon_into(a, tol, &mut ws.ech);
    if rank == 0 {
        return assign_units(n, basis);
    }

    ws.pivot_cols.clear();
    for i in 0..rank {
        let mut j = if let Some(&last) = ws.pivot_cols.last() {
            last + 1
        } else {
            0
        };
        while j < n && ws.ech.get(i, j).abs() <= tol {
            j += 1;
        }
        debug_assert!(j < n, "pivot row without pivot column");
        ws.pivot_cols.push(j);
    }
    ws.is_pivot.clear();
    ws.is_pivot.resize(n, false);
    for &j in &ws.pivot_cols {
        ws.is_pivot[j] = true;
    }

    let mut n_cand = 0usize;
    for free in 0..n {
        if ws.is_pivot[free] {
            continue;
        }
        if n_cand == ws.cand.len() {
            ws.cand.push(CVector::default());
        }
        let v = &mut ws.cand[n_cand];
        v.assign_zeros(n);
        v[free] = Complex64::ONE;
        for (row, &pc) in ws.pivot_cols.iter().enumerate() {
            v[pc] = -ws.ech.get(row, free);
        }
        n_cand += 1;
    }

    let dim = orthonormalize_into(&ws.cand[..n_cand], tol, basis, &mut ws.w);
    debug_assert_eq!(dim, n - rank, "null space dimension mismatch");
    dim
}

/// Thin QR of a split-storage matrix: `(Q, R)` with the identical
/// Gram–Schmidt pass and `R = Q^H A` product as `qr::qr`, for the kernel
/// benchmarks. Allocates its outputs (cold-path API).
pub fn qr_soa(a: &CMatrixSoA) -> (CMatrixSoA, CMatrixSoA) {
    let cols: Vec<CVector> = (0..a.cols()).map(|j| a.col(j)).collect();
    let scale = a.max_abs().max(1e-300);
    let tol = scale * (a.rows().max(a.cols()) as f64) * f64::EPSILON;
    let q_cols = crate::qr::orthonormalize(&cols, tol);
    let q = if q_cols.is_empty() {
        CMatrixSoA::zeros(a.rows(), 0)
    } else {
        CMatrixSoA::from_cols(&q_cols)
    };
    let mut qh = CMatrixSoA::default();
    hermitian_into(&q, &mut qh);
    let mut r = CMatrixSoA::default();
    mul_into(&qh, a, &mut r);
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullspace::null_space;
    use crate::solve::{default_tolerance, pinv, row_echelon};

    /// Deterministic pseudo-random matrix with some exact zeros (to
    /// exercise the zero-skip branches).
    fn gen_matrix(rows: usize, cols: usize, seed: &mut u64) -> CMatrix {
        let mut next = || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        let data: Vec<Complex64> = (0..rows * cols)
            .map(|_| {
                let r = next();
                if r % 7 == 0 {
                    Complex64::ZERO
                } else {
                    c64(
                        (r % 1000) as f64 / 500.0 - 1.0,
                        (next() % 1000) as f64 / 500.0 - 1.0,
                    )
                }
            })
            .collect();
        CMatrix::from_vec(rows, cols, data)
    }

    fn assert_bitwise_eq(soa: &CMatrixSoA, aos: &CMatrix, what: &str) {
        assert_eq!(soa.shape(), aos.shape(), "{what}: shape");
        for i in 0..aos.rows() {
            for j in 0..aos.cols() {
                let a = soa.get(i, j);
                let b = aos[(i, j)];
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "{what}: entry ({i},{j}) differs: {a:?} vs {b:?}"
                );
            }
        }
    }

    fn assert_vec_bitwise_eq(a: &CVector, b: &CVector, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for i in 0..a.len() {
            assert!(
                a[i].re.to_bits() == b[i].re.to_bits() && a[i].im.to_bits() == b[i].im.to_bits(),
                "{what}: entry {i} differs"
            );
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let mut seed = 0x5EED_0001u64;
        let a = gen_matrix(3, 5, &mut seed);
        let s = CMatrixSoA::from_aos(&a);
        assert_bitwise_eq(&s, &a, "from_aos");
        let back = s.to_aos();
        for (x, y) in a.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn matmul_is_bit_identical() {
        let mut seed = 0x5EED_0002u64;
        for (r, k, c) in [(2usize, 3usize, 4usize), (4, 4, 4), (1, 5, 2), (3, 1, 3)] {
            let a = gen_matrix(r, k, &mut seed);
            let b = gen_matrix(k, c, &mut seed);
            let expect = &a * &b;
            let mut out = CMatrixSoA::default();
            mul_into(
                &CMatrixSoA::from_aos(&a),
                &CMatrixSoA::from_aos(&b),
                &mut out,
            );
            assert_bitwise_eq(&out, &expect, "matmul");
        }
    }

    #[test]
    fn mul_vec_is_bit_identical() {
        let mut seed = 0x5EED_0003u64;
        for (r, c) in [(2usize, 3usize), (4, 4), (1, 6), (5, 2)] {
            let a = gen_matrix(r, c, &mut seed);
            let x: CVector = gen_matrix(c, 1, &mut seed).col(0);
            let expect = a.mul_vec(&x);
            let mut out = CVector::default();
            CMatrixSoA::from_aos(&a).mul_vec_into(&x, &mut out);
            assert_vec_bitwise_eq(&out, &expect, "mul_vec");
        }
    }

    #[test]
    fn hermitian_and_norms_are_bit_identical() {
        let mut seed = 0x5EED_0004u64;
        let a = gen_matrix(3, 4, &mut seed);
        let s = CMatrixSoA::from_aos(&a);
        let mut h = CMatrixSoA::default();
        hermitian_into(&s, &mut h);
        assert_bitwise_eq(&h, &a.hermitian(), "hermitian");
        assert_eq!(s.max_abs().to_bits(), a.max_abs().to_bits(), "max_abs");
        assert_eq!(
            s.frobenius_norm().to_bits(),
            a.frobenius_norm().to_bits(),
            "frobenius"
        );
        assert_eq!(
            soa_default_tolerance(&s).to_bits(),
            default_tolerance(&a).to_bits(),
            "tolerance"
        );
    }

    #[test]
    fn row_echelon_is_bit_identical() {
        let mut seed = 0x5EED_0005u64;
        for (r, c) in [(2usize, 4usize), (3, 3), (4, 2), (1, 5), (4, 6)] {
            let a = gen_matrix(r, c, &mut seed);
            let tol = default_tolerance(&a);
            let (rank, ech) = row_echelon(&a, tol);
            let mut out = CMatrixSoA::default();
            let soa_rank = row_echelon_into(&CMatrixSoA::from_aos(&a), tol, &mut out);
            assert_eq!(rank, soa_rank, "rank");
            assert_bitwise_eq(&out, &ech, "row_echelon");
        }
    }

    #[test]
    fn pinv_is_bit_identical() {
        let mut seed = 0x5EED_0006u64;
        let mut ws = PinvWorkspace::default();
        for (r, c) in [(3usize, 2usize), (4, 3), (2, 2), (4, 4)] {
            let a = gen_matrix(r, c, &mut seed);
            match pinv(&a) {
                Ok(expect) => {
                    pinv_into(&CMatrixSoA::from_aos(&a), &mut ws).expect("soa pinv");
                    assert_bitwise_eq(&ws.out, &expect, "pinv");
                }
                Err(e) => {
                    assert_eq!(
                        pinv_into(&CMatrixSoA::from_aos(&a), &mut ws).unwrap_err(),
                        e,
                        "error parity"
                    );
                }
            }
        }
        // Rank-deficient: both paths must agree on Singular.
        let s = CMatrix::from_reals(3, 2, &[1.0, 2.0, 2.0, 4.0, 3.0, 6.0]);
        assert!(pinv(&s).is_err());
        assert!(pinv_into(&CMatrixSoA::from_aos(&s), &mut ws).is_err());
    }

    #[test]
    fn null_space_is_bit_identical() {
        let mut seed = 0x5EED_0007u64;
        let mut ws = NullspaceWorkspace::default();
        let mut basis = Vec::new();
        for (r, c) in [(1usize, 3usize), (2, 4), (3, 3), (0, 3), (2, 2)] {
            let a = if r == 0 {
                CMatrix::zeros(0, c)
            } else {
                gen_matrix(r, c, &mut seed)
            };
            let expect = null_space(&a);
            let dim = null_space_into(&CMatrixSoA::from_aos(&a), &mut ws, &mut basis);
            assert_eq!(dim, expect.len(), "nullity for {r}x{c}");
            for (got, want) in basis[..dim].iter().zip(&expect) {
                assert_vec_bitwise_eq(got, want, "null_space basis vector");
            }
        }
    }

    #[test]
    fn null_space_pool_reuse_is_stable() {
        // Re-running on the same matrix after the pools are warm must
        // give the same answer (stale slot contents must not leak in).
        let mut seed = 0x5EED_0008u64;
        let big = gen_matrix(3, 6, &mut seed);
        let small = gen_matrix(1, 3, &mut seed);
        let mut ws = NullspaceWorkspace::default();
        let mut basis = Vec::new();
        let dim_big = null_space_into(&CMatrixSoA::from_aos(&big), &mut ws, &mut basis);
        assert!(dim_big >= 3);
        let expect = null_space(&small);
        let dim = null_space_into(&CMatrixSoA::from_aos(&small), &mut ws, &mut basis);
        assert_eq!(dim, expect.len());
        for (got, want) in basis[..dim].iter().zip(&expect) {
            assert_vec_bitwise_eq(got, want, "reused-pool basis vector");
        }
    }

    #[test]
    fn qr_is_bit_identical() {
        let mut seed = 0x5EED_0009u64;
        for (r, c) in [(3usize, 3usize), (4, 2), (2, 4)] {
            let a = gen_matrix(r, c, &mut seed);
            let d = crate::qr::qr(&a);
            let (q, rr) = qr_soa(&CMatrixSoA::from_aos(&a));
            assert_bitwise_eq(&q, &d.q, "qr Q");
            assert_bitwise_eq(&rr, &d.r, "qr R");
        }
    }

    #[test]
    fn append_rows_matches_vstack() {
        let mut seed = 0x5EED_000Au64;
        let a = gen_matrix(2, 3, &mut seed);
        let b = gen_matrix(3, 3, &mut seed);
        let mut s = CMatrixSoA::default();
        s.reset(0, 3);
        s.append_rows(&CMatrixSoA::from_aos(&a));
        s.append_rows(&CMatrixSoA::from_aos(&b));
        assert_bitwise_eq(&s, &a.vstack(&b), "vstack");
        // Empty other is a no-op.
        s.append_rows(&CMatrixSoA::zeros(0, 3));
        assert_eq!(s.rows(), 5);
    }
}
