//! Linear system solving, inversion, determinants and rank.
//!
//! Everything is built on Gaussian elimination with partial pivoting, which
//! is numerically adequate for the small, generically well-conditioned
//! channel matrices this workspace manipulates. Rank decisions use an
//! explicit tolerance scaled by the matrix magnitude, mirroring the usual
//! `eps * max(m, n) * max|a_ij|` convention.

use crate::complex::Complex64;
use crate::matrix::CMatrix;
use crate::vector::CVector;

/// Error type for linear algebra operations that can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular (or numerically so) and the operation
    /// requires full rank.
    Singular,
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        what: &'static str,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Default rank tolerance for a matrix: `eps * max(rows, cols) * max|a|`.
pub fn default_tolerance(a: &CMatrix) -> f64 {
    let scale = a.max_abs();
    let dim = a.rows().max(a.cols()) as f64;
    (f64::EPSILON * dim * scale).max(1e-300)
}

/// Solves `A x = b` for square `A` by Gaussian elimination with partial
/// pivoting.
pub fn solve(a: &CMatrix, b: &CVector) -> Result<CVector, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::ShapeMismatch {
            what: "solve requires a square matrix",
        });
    }
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            what: "solve: rhs length must equal matrix dimension",
        });
    }
    let x = solve_many(a, &CMatrix::from_cols(std::slice::from_ref(b)))?;
    Ok(x.col(0))
}

/// Solves `A X = B` for square `A` with multiple right-hand sides.
pub fn solve_many(a: &CMatrix, b: &CMatrix) -> Result<CMatrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            what: "solve_many requires a square matrix",
        });
    }
    if b.rows() != n {
        return Err(LinalgError::ShapeMismatch {
            what: "solve_many: rhs rows must equal matrix dimension",
        });
    }
    let tol = default_tolerance(a);
    // Augmented elimination [A | B].
    let mut aug = a.hstack(b);
    let total_cols = aug.cols();
    for k in 0..n {
        // Partial pivot: pick the largest magnitude entry in column k.
        let mut pivot_row = k;
        let mut pivot_mag = aug[(k, k)].abs();
        for i in (k + 1)..n {
            let mag = aug[(i, k)].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = i;
            }
        }
        if pivot_mag <= tol {
            return Err(LinalgError::Singular);
        }
        aug.swap_rows(k, pivot_row);
        let pivot = aug[(k, k)];
        let pinv = pivot.inv();
        for j in k..total_cols {
            let v = aug[(k, j)] * pinv;
            aug[(k, j)] = v;
        }
        for i in 0..n {
            if i == k {
                continue;
            }
            let factor = aug[(i, k)];
            if factor == Complex64::ZERO {
                continue;
            }
            for j in k..total_cols {
                let sub = factor * aug[(k, j)];
                aug[(i, j)] -= sub;
            }
        }
    }
    Ok(aug.submatrix(0, n, n, total_cols))
}

/// Matrix inverse via [`solve_many`] against the identity.
pub fn inverse(a: &CMatrix) -> Result<CMatrix, LinalgError> {
    solve_many(a, &CMatrix::identity(a.rows()))
}

/// Determinant via LU-style elimination (partial pivoting).
pub fn determinant(a: &CMatrix) -> Result<Complex64, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            what: "determinant requires a square matrix",
        });
    }
    if n == 0 {
        return Ok(Complex64::ONE);
    }
    let mut m = a.clone();
    let mut det = Complex64::ONE;
    for k in 0..n {
        let mut pivot_row = k;
        let mut pivot_mag = m[(k, k)].abs();
        for i in (k + 1)..n {
            let mag = m[(i, k)].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = i;
            }
        }
        if pivot_mag == 0.0 {
            return Ok(Complex64::ZERO);
        }
        if pivot_row != k {
            m.swap_rows(k, pivot_row);
            det = -det;
        }
        let pivot = m[(k, k)];
        det *= pivot;
        let pinv = pivot.inv();
        for i in (k + 1)..n {
            let factor = m[(i, k)] * pinv;
            if factor == Complex64::ZERO {
                continue;
            }
            for j in k..n {
                let sub = factor * m[(k, j)];
                m[(i, j)] -= sub;
            }
        }
    }
    Ok(det)
}

/// Numerical rank via row echelon reduction with the given tolerance
/// (pass `None` for [`default_tolerance`]).
pub fn rank(a: &CMatrix, tol: Option<f64>) -> usize {
    let tol = tol.unwrap_or_else(|| default_tolerance(a));
    let (r, _) = row_echelon(a, tol);
    r
}

/// Reduces `a` to row echelon form.
///
/// Returns `(rank, echelon)` where `echelon` has its pivot rows first. The
/// pivot columns are normalized to a leading one; this is the backbone for
/// the null-space computation.
pub fn row_echelon(a: &CMatrix, tol: f64) -> (usize, CMatrix) {
    let mut m = a.clone();
    let rows = m.rows();
    let cols = m.cols();
    let mut pivot_row = 0usize;
    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        // Find the largest pivot candidate in this column.
        let mut best = pivot_row;
        let mut best_mag = m[(pivot_row, col)].abs();
        for i in (pivot_row + 1)..rows {
            let mag = m[(i, col)].abs();
            if mag > best_mag {
                best_mag = mag;
                best = i;
            }
        }
        if best_mag <= tol {
            // No pivot in this column; zero it out below to avoid noise.
            for i in pivot_row..rows {
                m[(i, col)] = Complex64::ZERO;
            }
            continue;
        }
        m.swap_rows(pivot_row, best);
        let pinv = m[(pivot_row, col)].inv();
        for j in col..cols {
            let v = m[(pivot_row, j)] * pinv;
            m[(pivot_row, j)] = v;
        }
        for i in 0..rows {
            if i == pivot_row {
                continue;
            }
            let factor = m[(i, col)];
            if factor.abs() <= tol {
                m[(i, col)] = Complex64::ZERO;
                continue;
            }
            for j in col..cols {
                let sub = factor * m[(pivot_row, j)];
                m[(i, j)] -= sub;
            }
            m[(i, col)] = Complex64::ZERO;
        }
        pivot_row += 1;
    }
    (pivot_row, m)
}

/// Least-squares solve of possibly non-square `A x = b` via the normal
/// equations `A^H A x = A^H b`.
///
/// This is the zero-forcing receiver's core operation: with more receive
/// antennas than streams, it projects out interference and inverts the
/// effective channel in one step.
pub fn lstsq(a: &CMatrix, b: &CVector) -> Result<CVector, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            what: "lstsq: rhs length must equal matrix rows",
        });
    }
    let ah = a.hermitian();
    let gram = &ah * a;
    let rhs = ah.mul_vec(b);
    solve(&gram, &rhs)
}

/// Moore–Penrose style pseudo-inverse for full-column-rank matrices:
/// `(A^H A)^{-1} A^H`.
pub fn pinv(a: &CMatrix) -> Result<CMatrix, LinalgError> {
    let ah = a.hermitian();
    let gram = &ah * a;
    let gram_inv = inverse(&gram)?;
    Ok(&gram_inv * &ah)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    const TOL: f64 = 1e-9;

    fn well_conditioned_3x3() -> CMatrix {
        CMatrix::from_vec(
            3,
            3,
            vec![
                c64(2.0, 1.0),
                c64(0.0, -1.0),
                c64(1.0, 0.0),
                c64(1.0, 0.0),
                c64(3.0, 0.5),
                c64(0.0, 2.0),
                c64(0.0, 1.0),
                c64(1.0, -1.0),
                c64(4.0, 0.0),
            ],
        )
    }

    #[test]
    fn solve_round_trip() {
        let a = well_conditioned_3x3();
        let x_true = CVector::from_vec(vec![c64(1.0, -1.0), c64(0.5, 2.0), c64(-3.0, 0.0)]);
        let b = a.mul_vec(&x_true);
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, TOL));
    }

    #[test]
    fn inverse_round_trip() {
        let a = well_conditioned_3x3();
        let inv = inverse(&a).unwrap();
        assert!((&a * &inv).approx_eq(&CMatrix::identity(3), TOL));
        assert!((&inv * &a).approx_eq(&CMatrix::identity(3), TOL));
    }

    #[test]
    fn singular_matrix_rejected() {
        // Row 2 = 2 * row 1.
        let a = CMatrix::from_reals(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(solve(&a, &CVector::zeros(2)), Err(LinalgError::Singular));
        assert_eq!(inverse(&a), Err(LinalgError::Singular));
    }

    #[test]
    fn determinant_known_values() {
        let a = CMatrix::from_reals(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert!(determinant(&a).unwrap().approx_eq(c64(-2.0, 0.0), TOL));
        let i = CMatrix::identity(4);
        assert!(determinant(&i).unwrap().approx_eq(c64(1.0, 0.0), TOL));
        let s = CMatrix::from_reals(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(determinant(&s).unwrap().approx_eq(c64(0.0, 0.0), TOL));
    }

    #[test]
    fn determinant_of_product() {
        let a = well_conditioned_3x3();
        let b = CMatrix::from_vec(
            3,
            3,
            vec![
                c64(1.0, 0.0),
                c64(0.5, 0.5),
                c64(0.0, 0.0),
                c64(0.0, 1.0),
                c64(2.0, 0.0),
                c64(1.0, 1.0),
                c64(1.0, -1.0),
                c64(0.0, 0.0),
                c64(3.0, 0.0),
            ],
        );
        let lhs = determinant(&(&a * &b)).unwrap();
        let rhs = determinant(&a).unwrap() * determinant(&b).unwrap();
        assert!(lhs.approx_eq(rhs, 1e-8));
    }

    #[test]
    fn rank_detects_deficiency() {
        let full = well_conditioned_3x3();
        assert_eq!(rank(&full, None), 3);
        // Rank-1 outer-product style matrix.
        let r1 = CMatrix::from_reals(3, 3, &[1.0, 2.0, 3.0, 2.0, 4.0, 6.0, -1.0, -2.0, -3.0]);
        assert_eq!(rank(&r1, None), 1);
        let zero = CMatrix::zeros(3, 4);
        assert_eq!(rank(&zero, None), 0);
    }

    #[test]
    fn rank_of_rectangular() {
        let a = CMatrix::from_reals(2, 4, &[1.0, 0.0, 2.0, 0.0, 0.0, 1.0, 0.0, 2.0]);
        assert_eq!(rank(&a, None), 2);
    }

    #[test]
    fn lstsq_exact_for_square() {
        let a = well_conditioned_3x3();
        let x_true = CVector::from_vec(vec![c64(1.0, 0.0), c64(0.0, 1.0), c64(2.0, -2.0)]);
        let b = a.mul_vec(&x_true);
        let x = lstsq(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, TOL));
    }

    #[test]
    fn lstsq_overdetermined_recovers_clean_solution() {
        // 4 equations, 2 unknowns, consistent system.
        let a = CMatrix::from_reals(4, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, -1.0]);
        let x_true = CVector::from_reals(&[2.0, -1.0]);
        let b = a.mul_vec(&x_true);
        let x = lstsq(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, TOL));
    }

    #[test]
    fn pinv_is_left_inverse_for_tall_full_rank() {
        let a = CMatrix::from_reals(3, 2, &[1.0, 2.0, 0.0, 1.0, 1.0, 0.0]);
        let p = pinv(&a).unwrap();
        assert!((&p * &a).approx_eq(&CMatrix::identity(2), TOL));
    }

    #[test]
    fn solve_shape_errors() {
        let a = CMatrix::zeros(2, 3);
        assert!(matches!(
            solve(&a, &CVector::zeros(2)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let sq = CMatrix::identity(3);
        assert!(matches!(
            solve(&sq, &CVector::zeros(2)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}
