//! Dense complex matrices.
//!
//! [`CMatrix`] stores entries in row-major order. Channel matrices in the
//! paper are small (at most a handful of antennas per node), so the
//! implementation favours clarity and robustness over blocking/SIMD — the
//! same trade-off smoltcp makes for its data path.

use crate::complex::{c64, Complex64};
use crate::vector::CVector;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex matrix (row-major).
#[derive(Clone, PartialEq, Default)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major entry vector.
    ///
    /// Panics unless `data.len() == rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: expected {} entries, got {}",
            rows * cols,
            data.len()
        );
        CMatrix { rows, cols, data }
    }

    /// Creates a matrix whose rows are the given vectors (all must share a
    /// dimension).
    pub fn from_rows(rows: &[CVector]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged row lengths");
            data.extend_from_slice(r.as_slice());
        }
        CMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix whose columns are the given vectors.
    pub fn from_cols(cols: &[CVector]) -> Self {
        if cols.is_empty() {
            return Self::zeros(0, 0);
        }
        let rows = cols[0].len();
        let mut m = Self::zeros(rows, cols.len());
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), rows, "from_cols: ragged column lengths");
            for i in 0..rows {
                m[(i, j)] = c[i];
            }
        }
        m
    }

    /// Borrow-based sibling of [`CMatrix::from_cols`]: builds the same
    /// matrix from column references, so hot paths can assemble from
    /// several slices without cloning each vector first.
    pub fn from_col_refs(cols: &[&CVector]) -> Self {
        if cols.is_empty() {
            return Self::zeros(0, 0);
        }
        let rows = cols[0].len();
        let mut m = Self::zeros(rows, cols.len());
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), rows, "from_col_refs: ragged column lengths");
            for i in 0..rows {
                m[(i, j)] = c[i];
            }
        }
        m
    }

    /// Creates a matrix from real entries in row-major order.
    pub fn from_reals(rows: usize, cols: usize, re: &[f64]) -> Self {
        Self::from_vec(rows, cols, re.iter().map(|&r| c64(r, 0.0)).collect())
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[Complex64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True for a 0×0 matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Immutable access to the raw row-major entries.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Extracts row `i` as a vector.
    pub fn row(&self, i: usize) -> CVector {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        CVector::from_vec(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// Extracts column `j` as a vector.
    pub fn col(&self, j: usize) -> CVector {
        assert!(j < self.cols, "col {j} out of range ({} cols)", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Borrowed view of row `i` — the zero-copy sibling of
    /// [`CMatrix::row`] for hot paths that only need to read the entries.
    #[inline]
    pub fn row_ref(&self, i: usize) -> &[Complex64] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over the entries of column `j` — the zero-copy sibling of
    /// [`CMatrix::col`].
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = &Complex64> + '_ {
        assert!(j < self.cols, "col {j} out of range ({} cols)", self.cols);
        self.data.iter().skip(j).step_by(self.cols.max(1))
    }

    /// Replaces row `i` with the given vector.
    pub fn set_row(&mut self, i: usize, v: &CVector) {
        assert_eq!(v.len(), self.cols, "set_row: dimension mismatch");
        self.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(v.as_slice());
    }

    /// Replaces column `j` with the given vector.
    pub fn set_col(&mut self, j: usize, v: &CVector) {
        assert_eq!(v.len(), self.rows, "set_col: dimension mismatch");
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        let mut t = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Hermitian (conjugate) transpose, written `A^H` in the paper.
    pub fn hermitian(&self) -> CMatrix {
        let mut t = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)].conj();
            }
        }
        t
    }

    /// Entry-wise conjugate (no transpose).
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Matrix–vector product `A x`.
    pub fn mul_vec(&self, x: &CVector) -> CVector {
        assert_eq!(
            x.len(),
            self.cols,
            "mul_vec: {}x{} matrix times {}-vector",
            self.rows,
            self.cols,
            x.len()
        );
        let mut out = CVector::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = Complex64::ZERO;
            let base = i * self.cols;
            for (j, xv) in x.as_slice().iter().enumerate() {
                acc += self.data[base + j] * *xv;
            }
            out[i] = acc;
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Scales every entry by a real factor.
    pub fn scale_re(&self, k: f64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(k)).collect(),
        }
    }

    /// Stacks `self` on top of `other` (row concatenation). Either side may
    /// be empty (zero rows), which is common when a constraint set is empty.
    pub fn vstack(&self, other: &CMatrix) -> CMatrix {
        if self.rows == 0 {
            return other.clone();
        }
        if other.rows == 0 {
            return self.clone();
        }
        assert_eq!(self.cols, other.cols, "vstack: column count mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        CMatrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Concatenates `self` and `other` side by side (column concatenation).
    pub fn hstack(&self, other: &CMatrix) -> CMatrix {
        if self.cols == 0 {
            return other.clone();
        }
        if other.cols == 0 {
            return self.clone();
        }
        assert_eq!(self.rows, other.rows, "hstack: row count mismatch");
        let mut m = CMatrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                m[(i, j)] = self[(i, j)];
            }
            for j in 0..other.cols {
                m[(i, self.cols + j)] = other[(i, j)];
            }
        }
        m
    }

    /// Extracts the submatrix of rows `r0..r1` and columns `c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> CMatrix {
        assert!(r0 <= r1 && r1 <= self.rows, "submatrix: bad row range");
        assert!(c0 <= c1 && c1 <= self.cols, "submatrix: bad col range");
        let mut m = CMatrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            for j in c0..c1 {
                m[(i - r0, j - c0)] = self[(i, j)];
            }
        }
        m
    }

    /// Frobenius norm (square root of total entry power).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Approximate equality within absolute tolerance on every entry.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns the columns as a list of vectors.
    pub fn columns(&self) -> Vec<CVector> {
        (0..self.cols).map(|j| self.col(j)).collect()
    }

    /// Returns the rows as a list of vectors.
    pub fn rows_vec(&self) -> Vec<CVector> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Trace (sum of diagonal entries); defined for square matrices.
    pub fn trace(&self) -> Complex64 {
        assert_eq!(self.rows, self.cols, "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;

    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} times {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| -z).collect(),
        }
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?}  ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn sample() -> CMatrix {
        CMatrix::from_vec(
            2,
            3,
            vec![
                c64(1.0, 0.0),
                c64(0.0, 1.0),
                c64(2.0, -1.0),
                c64(-1.0, 0.5),
                c64(3.0, 0.0),
                c64(0.0, 0.0),
            ],
        )
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = sample();
        let i2 = CMatrix::identity(2);
        let i3 = CMatrix::identity(3);
        assert!((&i2 * &a).approx_eq(&a, TOL));
        assert!((&a * &i3).approx_eq(&a, TOL));
    }

    #[test]
    fn matmul_known_product() {
        let a = CMatrix::from_reals(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = CMatrix::from_reals(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = &a * &b;
        assert!(c.approx_eq(&CMatrix::from_reals(2, 2, &[19.0, 22.0, 43.0, 50.0]), TOL));
    }

    #[test]
    fn hermitian_reverses_products() {
        let a = sample(); // 2x3
        let b = CMatrix::from_vec(
            3,
            2,
            vec![
                c64(1.0, 1.0),
                c64(0.0, 0.0),
                c64(2.0, 0.0),
                c64(0.0, -1.0),
                c64(1.0, 0.0),
                c64(1.0, 1.0),
            ],
        );
        // (AB)^H = B^H A^H
        let lhs = (&a * &b).hermitian();
        let rhs = &b.hermitian() * &a.hermitian();
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = sample();
        let x = CVector::from_vec(vec![c64(1.0, 0.0), c64(0.0, 1.0), c64(-1.0, 2.0)]);
        let as_mat = CMatrix::from_cols(std::slice::from_ref(&x));
        let prod = &a * &as_mat;
        let v = a.mul_vec(&x);
        for i in 0..2 {
            assert!(prod[(i, 0)].approx_eq(v[i], TOL));
        }
    }

    #[test]
    fn stack_shapes() {
        let a = sample(); // 2x3
        let v = a.vstack(&a);
        assert_eq!(v.shape(), (4, 3));
        let h = a.hstack(&a);
        assert_eq!(h.shape(), (2, 6));
        assert!(v.submatrix(2, 4, 0, 3).approx_eq(&a, TOL));
        assert!(h.submatrix(0, 2, 3, 6).approx_eq(&a, TOL));
    }

    #[test]
    fn vstack_with_empty() {
        let a = sample();
        let e = CMatrix::zeros(0, 3);
        assert!(a.vstack(&e).approx_eq(&a, TOL));
        assert!(e.vstack(&a).approx_eq(&a, TOL));
    }

    #[test]
    fn row_col_round_trip() {
        let a = sample();
        let mut b = CMatrix::zeros(2, 3);
        for i in 0..2 {
            b.set_row(i, &a.row(i));
        }
        assert!(b.approx_eq(&a, TOL));
        let mut c = CMatrix::zeros(2, 3);
        for j in 0..3 {
            c.set_col(j, &a.col(j));
        }
        assert!(c.approx_eq(&a, TOL));
    }

    #[test]
    fn from_cols_matches_from_rows_transposed() {
        let r0 = CVector::from_reals(&[1.0, 2.0]);
        let r1 = CVector::from_reals(&[3.0, 4.0]);
        let m = CMatrix::from_rows(&[r0.clone(), r1.clone()]);
        let t = CMatrix::from_cols(&[r0, r1]);
        assert!(m.transpose().approx_eq(&t, TOL));
    }

    #[test]
    fn from_col_refs_matches_from_cols() {
        let c0 = CVector::from_reals(&[1.0, -2.0, 0.5]);
        let c1 = CVector::from_reals(&[0.0, 3.0, 4.0]);
        let owned = CMatrix::from_cols(&[c0.clone(), c1.clone()]);
        let borrowed = CMatrix::from_col_refs(&[&c0, &c1]);
        assert!(owned.approx_eq(&borrowed, 0.0));
        assert_eq!(CMatrix::from_col_refs(&[]).shape(), (0, 0));
    }

    #[test]
    fn borrowed_views_match_copying_accessors() {
        let a = sample();
        for i in 0..2 {
            assert_eq!(a.row_ref(i), a.row(i).as_slice());
        }
        for j in 0..3 {
            let via_iter: Vec<Complex64> = a.col_iter(j).copied().collect();
            assert_eq!(via_iter, a.col(j).into_vec());
        }
        let empty = CMatrix::zeros(0, 3);
        assert_eq!(empty.col_iter(2).count(), 0);
    }

    #[test]
    fn diag_and_trace() {
        let d = CMatrix::diag(&[c64(1.0, 0.0), c64(2.0, 1.0), c64(0.0, -1.0)]);
        assert!(d.trace().approx_eq(c64(3.0, 0.0), TOL));
        assert_eq!(d[(0, 1)], Complex64::ZERO);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = CMatrix::from_reals(2, 2, &[3.0, 0.0, 0.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < TOL);
    }

    #[test]
    fn swap_rows_works() {
        let mut a = sample();
        let (r0, r1) = (a.row(0), a.row(1));
        a.swap_rows(0, 1);
        assert!(a.row(0).approx_eq(&r1, TOL));
        assert!(a.row(1).approx_eq(&r0, TOL));
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }
}
