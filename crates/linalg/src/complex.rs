//! Complex scalar arithmetic.
//!
//! The wireless PHY operates on complex baseband samples and the precoder
//! operates on complex channel matrices, so a complete complex scalar type
//! is the bedrock of the whole workspace. No external complex-number crate
//! is used; this module implements the full set of operations the rest of
//! the system needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// The type is `Copy` and all arithmetic is implemented for values and
/// references, so expressions read like scalar math:
///
/// ```
/// use nplus_linalg::Complex64;
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::new(3.0, -1.0);
/// assert_eq!(a * b, Complex64::new(5.0, 5.0));
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor, `c64(re, im)`.
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Creates a complex number from polar form `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{i theta}`. Used pervasively for carrier-frequency
    /// offset rotation and subcarrier twiddle factors.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared magnitude `|z|^2`. Cheaper than [`Complex64::abs`]; use it
    /// for power measurements.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase angle in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a value with non-finite components when `z == 0`, matching
    /// IEEE float division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        c64(self.re * k, self.im * k)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within absolute tolerance `tol` on both parts.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}i",
            self.re,
            if self.im < 0.0 { "-" } else { "+" },
            self.im.abs()
        )
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        c64(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, k: f64) -> Self {
        self.scale(k)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, z: Complex64) -> Complex64 {
        z.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, k: f64) -> Self {
        c64(self.re / k, self.im / k)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-12;

    #[test]
    fn add_sub() {
        let a = c64(1.0, 2.0);
        let b = c64(-0.5, 4.0);
        assert_eq!(a + b, c64(0.5, 6.0));
        assert_eq!(a - b, c64(1.5, -2.0));
    }

    #[test]
    fn mul_matches_foil() {
        let a = c64(2.0, 3.0);
        let b = c64(4.0, -5.0);
        // (2+3i)(4-5i) = 8 -10i +12i +15 = 23 + 2i
        assert_eq!(a * b, c64(23.0, 2.0));
    }

    #[test]
    fn div_is_mul_inverse() {
        let a = c64(2.0, 3.0);
        let b = c64(4.0, -5.0);
        let q = a / b;
        assert!((q * b).approx_eq(a, TOL));
    }

    #[test]
    fn inv_round_trip() {
        let z = c64(0.3, -0.7);
        assert!((z * z.inv()).approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn conj_properties() {
        let z = c64(1.5, -2.5);
        assert_eq!(z.conj().conj(), z);
        assert!((z * z.conj()).approx_eq(c64(z.norm_sqr(), 0.0), TOL));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - PI / 3.0).abs() < TOL);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let theta = 2.0 * PI * k as f64 / 16.0;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 0.73;
        assert!(c64(0.0, theta).exp().approx_eq(Complex64::cis(theta), TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            c64(4.0, 0.0),
            c64(-1.0, 0.0),
            c64(3.0, -4.0),
            c64(-2.0, 5.0),
        ] {
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-10), "sqrt({z:?})^2 = {:?}", s * s);
        }
    }

    #[test]
    fn real_scalar_ops() {
        let z = c64(1.0, -2.0);
        assert_eq!(z * 2.0, c64(2.0, -4.0));
        assert_eq!(2.0 * z, c64(2.0, -4.0));
        assert_eq!(z / 2.0, c64(0.5, -1.0));
    }

    #[test]
    fn sum_iterator() {
        let v = [c64(1.0, 1.0), c64(2.0, -3.0), c64(-0.5, 0.5)];
        let s: Complex64 = v.iter().sum();
        assert!(s.approx_eq(c64(2.5, -1.5), TOL));
    }

    #[test]
    fn zero_division_is_non_finite() {
        let z = c64(1.0, 1.0) / Complex64::ZERO;
        assert!(!z.is_finite());
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", c64(-1.5, 2.0)), "-1.5+2i");
    }
}
