//! Property-based tests for the n+ core: precoder invariants, handshake
//! codec round-trips, and carrier-sense projection identities over random
//! channels.

use nplus::carrier_sense::MultiDimCarrierSense;
use nplus::handshake::{decode_alignment_space, encode_alignment_space, max_space_error};
use nplus::link::{zf_sinr, SubcarrierObservation};
use nplus::power_control::{join_power_decision, residual_after_cancellation};
use nplus::precoder::{compute_precoders, residual_interference, OwnReceiver, ProtectedReceiver};
use nplus_linalg::{rank, CMatrix, CVector, Complex64, Subspace};
use nplus_phy::params::OfdmConfig;
use nplus_testkit::strategies::{complex, complex_matrix as matrix, complex_vector as vector};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With exact channel knowledge, the precoder's nulls are numerically
    /// perfect at every protected receiver, and the own receiver still
    /// gets signal — for any generic channel draw (the Fig. 2 join).
    #[test]
    fn precoder_nulls_are_exact(h1 in matrix(1, 2), h2 in matrix(2, 2)) {
        prop_assume!(rank(&h1, Some(1e-6)) == 1);
        prop_assume!(rank(&h2, Some(1e-6)) == 2);
        let p = compute_precoders(
            2,
            &[ProtectedReceiver::nulling(h1.clone())],
            &[OwnReceiver { channel: h2.clone(), n_streams: 1, unwanted: Subspace::zero(2) }],
        ).unwrap();
        let leak = residual_interference(&h1, &Subspace::zero(1), &p.vectors[0]);
        prop_assert!(leak < 1e-16, "leak {leak}");
        prop_assert!(h2.mul_vec(&p.vectors[0]).norm_sqr() > 1e-8);
    }

    /// Alignment constraint satisfied exactly: the arriving signal lies
    /// inside the advertised unwanted space (the Fig. 3 join).
    #[test]
    fn precoder_alignment_is_exact(
        h1 in matrix(1, 3),
        h2 in matrix(2, 3),
        h3 in matrix(3, 3),
        dir in vector(2),
    ) {
        prop_assume!(dir.norm() > 0.2);
        prop_assume!(rank(&h2, Some(1e-6)) == 2);
        prop_assume!(rank(&h3, Some(1e-6)) == 3);
        let u = Subspace::span(2, &[dir]);
        prop_assume!(u.dim() == 1);
        let p = compute_precoders(
            3,
            &[
                ProtectedReceiver::nulling(h1.clone()),
                ProtectedReceiver::aligning(h2.clone(), u.clone()),
            ],
            &[OwnReceiver { channel: h3, n_streams: 1, unwanted: Subspace::zero(3) }],
        ).unwrap();
        let v = &p.vectors[0];
        prop_assert!(h1.mul_vec(v).norm_sqr() < 1e-16);
        let arriving = h2.mul_vec(v);
        prop_assert!(u.contains(&arriving, 1e-7), "arrival escaped the unwanted space");
    }

    /// Total transmit power across the precoded streams is always 1.
    #[test]
    fn precoder_power_budget(h in matrix(3, 3), n_streams in 1usize..4) {
        prop_assume!(rank(&h, Some(1e-6)) == 3);
        let p = compute_precoders(
            3,
            &[],
            &[OwnReceiver { channel: h, n_streams, unwanted: Subspace::zero(3) }],
        ).unwrap();
        let total: f64 = p.vectors.iter().map(|v| v.norm_sqr()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total power {total}");
    }

    /// Handshake codec round-trips arbitrary 2-antenna 1-dim spaces with
    /// bounded subspace error, whatever their smoothness.
    #[test]
    fn handshake_codec_bounded_error(dirs in proptest::collection::vec(vector(2), 1..52)) {
        let spaces: Vec<Subspace> = dirs
            .iter()
            .filter(|d| d.norm() > 0.15)
            .map(|d| Subspace::span(2, std::slice::from_ref(d)))
            .collect();
        prop_assume!(!spaces.is_empty());
        prop_assume!(spaces.iter().all(|s| s.dim() == 1));
        let blob = encode_alignment_space(&spaces);
        let decoded = decode_alignment_space(&blob).unwrap();
        prop_assert_eq!(decoded.len(), spaces.len());
        let err = max_space_error(&spaces, &decoded);
        prop_assert!(err < 0.05, "subspace error {err}");
    }

    /// Decoding never panics on arbitrary bytes (it may reject them).
    #[test]
    fn handshake_decoder_total(blob in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_alignment_space(&blob);
    }

    /// ZF SINRs are non-negative and adding residual interference never
    /// increases any stream's SINR.
    #[test]
    fn zf_sinr_monotone_in_residuals(
        w in vector(3),
        known in vector(3),
        resid in vector(3),
    ) {
        prop_assume!(w.norm() > 0.2);
        let clean = SubcarrierObservation {
            wanted: vec![w.clone()],
            known_interference: if known.norm() > 0.2 { vec![known] } else { vec![] },
            residual_interference: vec![],
            noise_power: 1.0,
        };
        let dirty = SubcarrierObservation {
            residual_interference: vec![resid],
            ..clean.clone()
        };
        let s_clean = zf_sinr(&clean)[0];
        let s_dirty = zf_sinr(&dirty)[0];
        prop_assert!(s_clean >= 0.0 && s_dirty >= 0.0);
        prop_assert!(s_dirty <= s_clean + 1e-12);
    }

    /// The join-power rule always leaves post-cancellation residuals at or
    /// below the noise floor.
    #[test]
    fn power_control_invariant(h in matrix(2, 3), l_db in 15.0f64..35.0) {
        let pre = nplus::power_control::expected_interference_power(&h);
        let d = join_power_decision(&[&h], l_db);
        let resid = residual_after_cancellation(pre, &d, l_db);
        prop_assert!(resid <= 1.0 + 1e-9, "residual {resid}");
        prop_assert!(d.amplitude() > 0.0 && d.amplitude() <= 1.0);
    }

    /// Carrier-sense projection annihilates any signal arriving along the
    /// ongoing transmission's channel and never increases power.
    #[test]
    fn projection_annihilates_and_contracts(
        h in proptest::collection::vec(complex(), 3),
        symbols in proptest::collection::vec(complex(), 64),
    ) {
        let hv = CVector::from_vec(h.clone());
        prop_assume!(hv.norm() > 0.2);
        let cfg = OfdmConfig::usrp2();
        let hm: Vec<CMatrix> = (0..cfg.fft_len)
            .map(|_| CMatrix::from_cols(std::slice::from_ref(&hv)))
            .collect();
        let sensor = MultiDimCarrierSense::from_ongoing(3, cfg, &[hm]);
        // Signal along h at every antenna.
        let capture: Vec<Vec<Complex64>> = h
            .iter()
            .map(|&hi| symbols.iter().map(|&s| s * hi).collect())
            .collect();
        let raw = MultiDimCarrierSense::raw_power(&capture);
        let projected = sensor.sense_power(&capture);
        prop_assert!(projected <= raw + 1e-9);
        prop_assert!(projected < 1e-12 * raw.max(1e-12), "signal not annihilated: {projected} of {raw}");
    }
}
