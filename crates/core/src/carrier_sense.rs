//! Multi-dimensional carrier sense (paper §3.2).
//!
//! A contender with `A` antennas receives samples in an `A`-dimensional
//! space. Ongoing transmissions occupy, on each OFDM subcarrier, the
//! subspace spanned by their (per-subcarrier) channel vectors. Projecting
//! the received signal onto the orthogonal complement of that subspace
//! removes the ongoing transmissions entirely, and standard 802.11 carrier
//! sense — power thresholding plus preamble cross-correlation — runs on
//! the projected signal as if the medium were idle.
//!
//! Implementation: the capture is cut into FFT-sized blocks; each block is
//! transformed, each subcarrier's `A`-vector is replaced by its
//! coordinates in the complement subspace (zero-padded back to `A`
//! entries), and the block is transformed back. Power sensing reads the
//! projected power directly; preamble correlation runs on the projected
//! time-domain stream.

use nplus_linalg::{CMatrix, CVector, Complex64, Subspace};
use nplus_phy::fft::{fft, ifft, normalized_cross_correlation};
use nplus_phy::params::{occupied_subcarrier_indices, OfdmConfig};

/// Per-subcarrier occupied-space tracker at one sensing node.
#[derive(Debug, Clone)]
pub struct MultiDimCarrierSense {
    /// Complement of the occupied space, per FFT bin.
    complements: Vec<Subspace>,
    n_antennas: usize,
    cfg: OfdmConfig,
}

impl MultiDimCarrierSense {
    /// Builds the sensor for a node with `n_antennas` antennas and no
    /// ongoing transmissions (complement = full space everywhere).
    pub fn idle(n_antennas: usize, cfg: OfdmConfig) -> Self {
        MultiDimCarrierSense {
            complements: vec![Subspace::full(n_antennas); cfg.fft_len],
            n_antennas,
            cfg,
        }
    }

    /// Builds the sensor from the channels of ongoing transmissions.
    ///
    /// `ongoing[t]` is the per-bin channel matrix (`A × streams_t`) of
    /// ongoing transmission `t` as estimated from its preamble: each
    /// column is the effective channel vector of one stream.
    pub fn from_ongoing(n_antennas: usize, cfg: OfdmConfig, ongoing: &[Vec<CMatrix>]) -> Self {
        let mut complements = Vec::with_capacity(cfg.fft_len);
        for k in 0..cfg.fft_len {
            let mut dirs: Vec<CVector> = Vec::new();
            for tx in ongoing {
                let h = &tx[k];
                assert_eq!(h.rows(), n_antennas, "channel rows != sensing antennas");
                for c in 0..h.cols() {
                    dirs.push(h.col(c));
                }
            }
            let occupied = Subspace::span(n_antennas, &dirs);
            complements.push(occupied.complement());
        }
        MultiDimCarrierSense {
            complements,
            n_antennas,
            cfg,
        }
    }

    /// Number of degrees of freedom guaranteed unoccupied: the *minimum*
    /// complement dimension across occupied subcarriers. Generically all
    /// bins agree, but when they differ (e.g. a frequency-selective
    /// channel whose stream directions collapse on some bins) a joiner
    /// must fit the worst bin — its streams occupy the same spatial slot
    /// on every subcarrier. The previous statistic took the *upper*
    /// median on even bin counts, which both over-reported the free
    /// space and was ill-defined as a "median".
    pub fn free_dof(&self) -> usize {
        occupied_subcarrier_indices()
            .iter()
            .map(|&k| self.complements[k].dim())
            .min()
            .unwrap_or(self.n_antennas)
    }

    /// Number of antennas this sensor observes with.
    pub fn n_antennas(&self) -> usize {
        self.n_antennas
    }

    /// Projects a multi-antenna capture onto the complement of the
    /// occupied space, returning the projected time-domain streams (same
    /// shape as the input, truncated to whole FFT blocks).
    pub fn project_capture(&self, capture: &[Vec<Complex64>]) -> Vec<Vec<Complex64>> {
        assert_eq!(capture.len(), self.n_antennas, "capture antenna count");
        let n = self.cfg.fft_len;
        let len = capture[0].len() / n * n;
        let mut out = vec![vec![Complex64::ZERO; len]; self.n_antennas];
        let mut block_freq: Vec<Vec<Complex64>> = vec![Vec::new(); self.n_antennas];
        for b in (0..len).step_by(n) {
            // FFT each antenna's block.
            for (ant, stream) in capture.iter().enumerate() {
                block_freq[ant] = fft(&stream[b..b + n]);
            }
            // Project per bin.
            for k in 0..n {
                let v: CVector = (0..self.n_antennas).map(|ant| block_freq[ant][k]).collect();
                let projected = self.complements[k].project(&v);
                for ant in 0..self.n_antennas {
                    block_freq[ant][k] = projected[ant];
                }
            }
            // Back to time domain.
            for ant in 0..self.n_antennas {
                let t = ifft(&block_freq[ant]);
                out[ant][b..b + n].copy_from_slice(&t);
            }
        }
        out
    }

    /// Average power of the capture after projection — the §6.1 "power
    /// with projection" statistic. With only ongoing transmissions on the
    /// medium this sits at the noise floor; a new transmission raises it.
    pub fn sense_power(&self, capture: &[Vec<Complex64>]) -> f64 {
        let projected = self.project_capture(capture);
        let len = projected[0].len();
        if len == 0 {
            return 0.0;
        }
        let total: f64 = projected
            .iter()
            .flat_map(|s| s.iter())
            .map(|z| z.norm_sqr())
            .sum();
        total / (len as f64)
    }

    /// Raw (unprojected) power of the capture — the baseline 802.11
    /// sensing statistic, for comparison.
    pub fn raw_power(capture: &[Vec<Complex64>]) -> f64 {
        let len = capture.first().map_or(0, |s| s.len());
        if len == 0 {
            return 0.0;
        }
        let total: f64 = capture
            .iter()
            .flat_map(|s| s.iter())
            .map(|z| z.norm_sqr())
            .sum();
        total / (len as f64)
    }

    /// Cross-correlates the projected capture against a preamble template,
    /// returning the maximum normalized correlation across antennas and
    /// lags — the §6.1 "correlation with projection" statistic.
    pub fn detect_preamble(&self, capture: &[Vec<Complex64>], template: &[Complex64]) -> f64 {
        let projected = self.project_capture(capture);
        projected
            .iter()
            .flat_map(|s| normalized_cross_correlation(s, template))
            .fold(0.0, f64::max)
    }

    /// Cross-correlation without projection, for the ablation comparison.
    pub fn detect_preamble_raw(capture: &[Vec<Complex64>], template: &[Complex64]) -> f64 {
        capture
            .iter()
            .flat_map(|s| normalized_cross_correlation(s, template))
            .fold(0.0, f64::max)
    }
}

/// Carrier-sense decision thresholds.
#[derive(Debug, Clone, Copy)]
pub struct SenseThresholds {
    /// Power threshold relative to the noise floor (linear). Projected
    /// power above `noise * (1 + margin)` declares the DoF occupied.
    pub power_margin: f64,
    /// Correlation threshold for preamble detection.
    pub correlation: f64,
}

impl Default for SenseThresholds {
    fn default() -> Self {
        SenseThresholds {
            power_margin: 1.0, // 3 dB above the projected noise floor
            correlation: 0.55,
        }
    }
}

/// Combined occupied/free decision: a degree of freedom is busy when the
/// projected power exceeds the threshold *or* a preamble is detected in
/// the projected signal (mirroring 802.11's dual carrier-sense, §6.1).
pub fn dof_is_busy(
    sensor: &MultiDimCarrierSense,
    capture: &[Vec<Complex64>],
    template: &[Complex64],
    noise_power: f64,
    thresholds: &SenseThresholds,
) -> bool {
    // A capture with no antennas, or too short for even one FFT block on
    // any antenna, carries no evidence that the medium is idle — report
    // busy (the fail-safe carrier-sense answer: a node that cannot sense
    // must not transmit). The old code divided by `capture.len()` below,
    // so an empty capture produced a NaN noise floor that silently
    // compared as "not busy"; and since `project_capture` truncates to
    // whole FFT blocks, a sub-block capture measured zero power and was
    // equally silent no matter how loud the medium actually was.
    let min_len = capture.iter().map(Vec::len).min().unwrap_or(0);
    if capture.is_empty() || min_len < sensor.cfg.fft_len {
        return true;
    }
    let power = sensor.sense_power(capture);
    // The projected noise power scales with the complement dimension
    // (projection removes part of the noise too). The denominator is the
    // sensor's antenna count — the dimension of the space the noise
    // lives in — not whatever length the capture slice happens to have.
    let dof_frac = sensor.free_dof() as f64 / sensor.n_antennas().max(1) as f64;
    let floor = noise_power * dof_frac.max(1e-9);
    if power > floor * (1.0 + thresholds.power_margin) {
        return true;
    }
    sensor.detect_preamble(capture, template) >= thresholds.correlation
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_linalg::c64;
    use nplus_phy::preamble::stf_time;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cfg() -> OfdmConfig {
        OfdmConfig::usrp2()
    }

    fn flat_channel_matrix(col: &[Complex64], n_fft: usize) -> Vec<CMatrix> {
        let m = CMatrix::from_cols(&[CVector::from_vec(col.to_vec())]);
        vec![m; n_fft]
    }

    /// §3.2's core claim: after projection, a signal arriving along the
    /// ongoing transmission's channel vanishes.
    #[test]
    fn projection_removes_ongoing_signal() {
        let c = cfg();
        let h1 = [c64(0.8, 0.1), c64(-0.3, 0.5), c64(0.2, -0.6)];
        let sensor =
            MultiDimCarrierSense::from_ongoing(3, c, &[flat_channel_matrix(&h1, c.fft_len)]);
        assert_eq!(sensor.free_dof(), 2);
        // tx1's signal: arbitrary waveform times h1 at each antenna.
        let mut rng = StdRng::seed_from_u64(1);
        let wave: Vec<Complex64> = (0..256)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let capture: Vec<Vec<Complex64>> = h1
            .iter()
            .map(|&h| wave.iter().map(|&w| w * h).collect())
            .collect();
        let raw = MultiDimCarrierSense::raw_power(&capture);
        let projected = sensor.sense_power(&capture);
        assert!(raw > 0.01, "raw power {raw}");
        assert!(
            projected < raw * 1e-18,
            "projected power {projected} vs raw {raw}"
        );
    }

    /// A second transmission along an independent channel survives
    /// projection with most of its power.
    #[test]
    fn projection_preserves_new_signal() {
        let c = cfg();
        let h1 = [c64(0.8, 0.1), c64(-0.3, 0.5), c64(0.2, -0.6)];
        let h2 = [c64(0.1, -0.7), c64(0.6, 0.2), c64(-0.4, 0.3)];
        let sensor =
            MultiDimCarrierSense::from_ongoing(3, c, &[flat_channel_matrix(&h1, c.fft_len)]);
        let mut rng = StdRng::seed_from_u64(2);
        let wave: Vec<Complex64> = (0..256)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        let capture: Vec<Vec<Complex64>> = h2
            .iter()
            .map(|&h| wave.iter().map(|&w| w * h).collect())
            .collect();
        let raw = MultiDimCarrierSense::raw_power(&capture);
        let projected = sensor.sense_power(&capture);
        // The surviving fraction is sin²θ between h2 and h1 — nonzero
        // for independent directions (these fixed vectors sit ~0.16).
        assert!(projected > 0.1 * raw, "projected {projected} vs raw {raw}");
    }

    /// Fig. 9(a): a weak new transmission hidden under a strong ongoing
    /// one becomes clearly visible after projection.
    #[test]
    fn weak_joiner_visible_after_projection() {
        let c = cfg();
        let h1 = [c64(0.8, 0.1), c64(-0.3, 0.5), c64(0.2, -0.6)];
        let h2 = [c64(0.1, -0.7), c64(0.6, 0.2), c64(-0.4, 0.3)];
        let sensor =
            MultiDimCarrierSense::from_ongoing(3, c, &[flat_channel_matrix(&h1, c.fft_len)]);
        let mut rng = StdRng::seed_from_u64(3);
        let strong: Vec<Complex64> = (0..512)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5).scale(10.0))
            .collect();
        let weak: Vec<Complex64> = (0..512)
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5).scale(0.5))
            .collect();
        // Phase 1: only tx1.
        let cap1: Vec<Vec<Complex64>> = h1
            .iter()
            .map(|&h| strong.iter().map(|&w| w * h).collect())
            .collect();
        // Phase 2: tx1 + tx2.
        let cap2: Vec<Vec<Complex64>> = h1
            .iter()
            .zip(&h2)
            .map(|(&ha, &hb)| {
                strong
                    .iter()
                    .zip(&weak)
                    .map(|(&s, &w)| s * ha + w * hb)
                    .collect()
            })
            .collect();
        // Raw power barely moves (weak tx2 under strong tx1)...
        let raw_jump =
            MultiDimCarrierSense::raw_power(&cap2) / MultiDimCarrierSense::raw_power(&cap1);
        // ...but projected power jumps by orders of magnitude.
        let p1 = sensor.sense_power(&cap1).max(1e-30);
        let p2 = sensor.sense_power(&cap2);
        let proj_jump = p2 / p1;
        assert!(raw_jump < 1.2, "raw jump {raw_jump}");
        assert!(proj_jump > 1e3, "projected jump {proj_jump}");
    }

    /// Fig. 9(b): preamble correlation after projection detects a weak
    /// preamble under strong interference; raw correlation misses it.
    #[test]
    fn preamble_detection_through_interference() {
        let c = cfg();
        let h1 = [c64(0.9, 0.0), c64(-0.2, 0.4), c64(0.3, -0.5)];
        let h2 = [c64(0.0, -0.6), c64(0.7, 0.1), c64(-0.3, 0.4)];
        let sensor =
            MultiDimCarrierSense::from_ongoing(3, c, &[flat_channel_matrix(&h1, c.fft_len)]);
        let stf = stf_time(&c);
        let mut rng = StdRng::seed_from_u64(4);
        let interference: Vec<Complex64> = (0..stf.len())
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5).scale(8.0))
            .collect();
        // Capture: strong tx1 interference + weak STF from tx2 + noise.
        let capture: Vec<Vec<Complex64>> = h1
            .iter()
            .zip(&h2)
            .map(|(&ha, &hb)| {
                interference
                    .iter()
                    .zip(&stf)
                    .map(|(&i, &s)| {
                        i * ha
                            + s.scale(0.7) * hb
                            + c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5).scale(0.3)
                    })
                    .collect()
            })
            .collect();
        let raw = MultiDimCarrierSense::detect_preamble_raw(&capture, &stf[..64]);
        let projected = sensor.detect_preamble(&capture, &stf[..64]);
        assert!(
            projected > raw + 0.15,
            "projection should sharpen detection: raw {raw}, projected {projected}"
        );
        assert!(
            projected > 0.5,
            "projected correlation too weak: {projected}"
        );
    }

    #[test]
    fn idle_sensor_is_transparent() {
        let c = cfg();
        let sensor = MultiDimCarrierSense::idle(2, c);
        assert_eq!(sensor.free_dof(), 2);
        let mut rng = StdRng::seed_from_u64(5);
        let capture: Vec<Vec<Complex64>> = (0..2)
            .map(|_| {
                (0..128)
                    .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                    .collect()
            })
            .collect();
        let raw = MultiDimCarrierSense::raw_power(&capture);
        let proj = sensor.sense_power(&capture);
        assert!((raw - proj).abs() / raw < 1e-9);
    }

    #[test]
    fn two_ongoing_leave_one_dof() {
        let c = cfg();
        let h1 = [c64(0.8, 0.1), c64(-0.3, 0.5), c64(0.2, -0.6)];
        let h2 = [c64(0.1, -0.7), c64(0.6, 0.2), c64(-0.4, 0.3)];
        let sensor = MultiDimCarrierSense::from_ongoing(
            3,
            c,
            &[
                flat_channel_matrix(&h1, c.fft_len),
                flat_channel_matrix(&h2, c.fft_len),
            ],
        );
        assert_eq!(sensor.free_dof(), 1);
    }

    /// Regression: `free_dof` took the upper median across occupied
    /// bins, so a single worst bin with less free space was ignored —
    /// and on even bin counts the "median" was biased upward. With
    /// per-bin complements that genuinely differ, the statistic must be
    /// the conservative minimum.
    #[test]
    fn free_dof_is_minimum_across_differing_bins() {
        let c = cfg();
        let h1 = [c64(0.8, 0.1), c64(-0.3, 0.5), c64(0.2, -0.6)];
        let h2 = [c64(0.1, -0.7), c64(0.6, 0.2), c64(-0.4, 0.3)];
        let occ = occupied_subcarrier_indices();
        // One ongoing transmission whose stream count varies per bin:
        // two independent columns on the first occupied bin (1 free DoF
        // at a 3-antenna sensor), one column everywhere else (2 free).
        let one_col = CMatrix::from_cols(&[CVector::from_vec(h1.to_vec())]);
        let two_cols = CMatrix::from_cols(&[
            CVector::from_vec(h1.to_vec()),
            CVector::from_vec(h2.to_vec()),
        ]);
        let per_bin: Vec<CMatrix> = (0..c.fft_len)
            .map(|k| {
                if k == occ[0] {
                    two_cols.clone()
                } else {
                    one_col.clone()
                }
            })
            .collect();
        let sensor = MultiDimCarrierSense::from_ongoing(3, c, &[per_bin]);
        // The upper median over [1, 2, 2, …] was 2; the worst bin has 1.
        assert_eq!(sensor.free_dof(), 1);
        assert_eq!(sensor.n_antennas(), 3);
    }

    /// Regression: an empty capture used to produce a NaN noise floor
    /// (division by `capture.len()`) that silently compared as "not
    /// busy". No samples means no evidence of idleness: report busy.
    #[test]
    fn empty_capture_reports_busy() {
        let c = cfg();
        let sensor = MultiDimCarrierSense::idle(2, c);
        let stf = stf_time(&c);
        let thresholds = SenseThresholds::default();
        // No antenna streams at all.
        assert!(dof_is_busy(&sensor, &[], &stf[..64], 1.0, &thresholds));
        // Antenna streams present but zero samples captured.
        let empty: Vec<Vec<Complex64>> = vec![Vec::new(), Vec::new()];
        assert!(dof_is_busy(&sensor, &empty, &stf[..64], 1.0, &thresholds));
        // Shorter than one FFT block: projection would truncate to zero
        // blocks and measure zero power however loud the medium is —
        // also no evidence of idleness.
        let sub_block: Vec<Vec<Complex64>> = vec![vec![c64(100.0, 0.0); 10]; 2];
        assert!(dof_is_busy(
            &sensor,
            &sub_block,
            &stf[..64],
            1.0,
            &thresholds
        ));
        // One ragged-short stream is enough to invalidate the capture.
        let ragged: Vec<Vec<Complex64>> = vec![vec![c64(1.0, 0.0); 256], Vec::new()];
        assert!(dof_is_busy(&sensor, &ragged, &stf[..64], 1.0, &thresholds));
        // A zero-antenna sensor (degenerate but constructible) must not
        // divide by zero either.
        let none = MultiDimCarrierSense::idle(0, c);
        assert!(dof_is_busy(&none, &[], &stf[..64], 1.0, &thresholds));
    }

    #[test]
    fn busy_decision_tracks_power() {
        let c = cfg();
        let sensor = MultiDimCarrierSense::idle(2, c);
        let stf = stf_time(&c);
        let thresholds = SenseThresholds::default();
        // Pure noise at unit power: not busy.
        let mut rng = StdRng::seed_from_u64(6);
        let noise: Vec<Vec<Complex64>> = (0..2)
            .map(|_| {
                (0..256)
                    .map(|_| {
                        c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
                            .scale(2.0 / 3.0f64.sqrt())
                    })
                    .collect()
            })
            .collect();
        // Noise power ≈ 2·(1/12)·4/3·... just measure it.
        let noise_power = MultiDimCarrierSense::raw_power(&noise) / 2.0 * 2.0;
        assert!(!dof_is_busy(
            &sensor,
            &noise,
            &stf[..64],
            noise_power,
            &thresholds
        ));
        // Noise + strong signal: busy.
        let busy: Vec<Vec<Complex64>> = noise
            .iter()
            .map(|s| {
                s.iter()
                    .enumerate()
                    .map(|(i, &z)| z + Complex64::cis(0.3 * i as f64).scale(3.0))
                    .collect()
            })
            .collect();
        assert!(dof_is_busy(
            &sensor,
            &busy,
            &stf[..64],
            noise_power,
            &thresholds
        ));
    }
}
