//! Protocol-level network simulation: n+ versus 802.11n versus
//! multi-user beamforming.
//!
//! This module reproduces the methodology of the paper's §6.3–§6.4: for a
//! drawn topology, it simulates rounds of medium access under each
//! protocol and accounts throughput per flow. The physics is real — every
//! stream's pre-coding vectors are computed per subcarrier from
//! (hardware-corrupted) channel knowledge, residual interference is
//! evaluated against the *true* channels, and bitrates come from
//! per-stream effective SNRs — while the MAC is simulated at the
//! transmission-event level (contention outcomes, handshakes and
//! durations) rather than per sample. The sample-level path is validated
//! separately by the Fig. 9/11 experiments and the integration tests.
//!
//! Protocol models:
//!
//! * **n+** — first winner behaves like 802.11n; subsequent winners join
//!   through the precoder (§3.3) after join-power control (§4), end with
//!   the first winner (§3.1), and pick per-packet rates (§3.4).
//! * **802.11n** — one winner per round, `min(M, N)` streams to a single
//!   receiver, no concurrency.
//! * **Beamforming** — as 802.11n, but a multi-client AP may serve its
//!   clients concurrently (multi-user beamforming per Aryafar et al.,
//!   the paper's [7]); still no concurrency across transmitters.
//!
//! ## Engine architecture
//!
//! [`SimEngine`] is the reusable per-topology engine: it precomputes the
//! round-invariant context (occupied subcarriers, transmitter list,
//! per-transmitter flow lists) and — unless disabled via
//! [`SimConfig::cache_channels`] — a [`ChannelCache`] holding every
//! link's per-subcarrier frequency response, evaluated once instead of
//! inside the round × stream × subcarrier × interferer loop nest. Only
//! the **pure true channels** are cached; believed channels keep drawing
//! hardware error from the RNG in the exact same order, so seeded runs
//! are bit-for-bit identical with and without the cache. [`simulate`] is
//! the one-shot convenience wrapper; [`sweep`] runs batches of seeded
//! topologies and aggregates mean/CI statistics per protocol.

use crate::link::{select_stream_rate, zf_sinr_slices};
use crate::power_control::{join_power_decision, JoinPowerDecision};
use crate::precoder::{compute_precoders_ref, OwnReceiverRef, PrecoderError, ProtectedReceiverRef};
use nplus_channel::impairments::HardwareProfile;
use nplus_channel::placement::Testbed;
use nplus_linalg::{CMatrix, CVector, Subspace};
use nplus_mac::backoff::{resolve_contention, ContentionOutcome};
use nplus_mac::frames::{AckHeader, DataHeader, ReceiverEntry};
use nplus_mac::timing::SampleTiming;
use nplus_medium::chancache::ChannelCache;
use nplus_medium::topology::{build_topology, Topology, TopologyConfig};
use nplus_phy::params::{occupied_subcarrier_indices, OfdmConfig};
use nplus_phy::rates::{RateIndex, BASE_RATE, RATE_TABLE};
use nplus_phy::RATE_ESNR_THRESHOLDS_DB;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::borrow::Cow;
/// One traffic flow: a transmitter node sending to a receiver node
/// (indices into the scenario's node list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Transmitting node index.
    pub tx: usize,
    /// Receiving node index.
    pub rx: usize,
}

/// A network scenario: antenna counts plus traffic flows.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Antenna count per node.
    pub antennas: Vec<usize>,
    /// Traffic flows (backlogged).
    pub flows: Vec<Flow>,
}

impl Scenario {
    /// The paper's Fig. 3 scenario: three transmitter–receiver pairs with
    /// 1, 2 and 3 antennas. Node order: tx1, rx1, tx2, rx2, tx3, rx3.
    pub fn three_pairs() -> Self {
        Scenario {
            antennas: vec![1, 1, 2, 2, 3, 3],
            flows: vec![
                Flow { tx: 0, rx: 1 },
                Flow { tx: 2, rx: 3 },
                Flow { tx: 4, rx: 5 },
            ],
        }
    }

    /// The paper's Fig. 4 scenario: a single-antenna client uploading to
    /// a 2-antenna AP while a 3-antenna AP serves two 2-antenna clients.
    /// Node order: c1, AP1, AP2, c2, c3.
    pub fn ap_downlink() -> Self {
        Scenario {
            antennas: vec![1, 2, 3, 2, 2],
            flows: vec![
                Flow { tx: 0, rx: 1 }, // c1 -> AP1
                Flow { tx: 2, rx: 3 }, // AP2 -> c2
                Flow { tx: 2, rx: 4 }, // AP2 -> c3
            ],
        }
    }

    /// Distinct transmitter node indices that have traffic.
    pub fn transmitters(&self) -> Vec<usize> {
        let mut txs: Vec<usize> = self.flows.iter().map(|f| f.tx).collect();
        txs.sort_unstable();
        txs.dedup();
        txs
    }

    /// Flow indices of a transmitter.
    pub fn flows_of(&self, tx: usize) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.tx == tx)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Which protocol to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The paper's contribution.
    NPlus,
    /// Baseline: stock 802.11n behaviour.
    Dot11n,
    /// Baseline: multi-user beamforming (single winner, multi-client).
    Beamforming,
}

/// Simulation knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// OFDM geometry (10 MHz USRP2 profile by default).
    pub ofdm: OfdmConfig,
    /// MAC timing on the sample clock.
    pub timing: SampleTiming,
    /// Hardware impairment model (bounds cancellation depth).
    pub hardware: HardwareProfile,
    /// Join-power threshold `L` in dB (§4).
    pub l_db: f64,
    /// Enable join power control (ablation knob).
    pub power_control: bool,
    /// Packet size per flow per round, bytes.
    pub packet_bytes: usize,
    /// Rounds to simulate.
    pub rounds: usize,
    /// Precompute every link's per-subcarrier frequency responses once
    /// per topology instead of re-evaluating taps inside the round loop.
    /// Results are bit-for-bit identical either way (only pure true
    /// channels are cached); `false` exists for the perf baseline.
    pub cache_channels: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            ofdm: OfdmConfig::usrp2(),
            timing: SampleTiming::usrp2(),
            hardware: HardwareProfile::default(),
            l_db: crate::power_control::DEFAULT_L_DB,
            power_control: true,
            packet_bytes: 1500,
            rounds: 40,
            cache_channels: true,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Delivered goodput per flow, Mb/s.
    pub per_flow_mbps: Vec<f64>,
    /// Total network goodput, Mb/s.
    pub total_mbps: f64,
    /// Average degrees of freedom in use during data transfer.
    pub mean_dof: f64,
}

impl RunResult {
    /// Jain's fairness index over per-flow goodputs, in `(0, 1]`
    /// (1 = perfectly equal). n+ trades some fairness for concurrency —
    /// multi-antenna flows gain more — and this metric quantifies by how
    /// much.
    pub fn jain_fairness(&self) -> f64 {
        let n = self.per_flow_mbps.len() as f64;
        let sum: f64 = self.per_flow_mbps.iter().sum();
        let sq: f64 = self.per_flow_mbps.iter().map(|x| x * x).sum();
        if sq <= 0.0 {
            return 1.0;
        }
        sum * sum / (n * sq)
    }
}

/// One planned concurrent stream.
struct PlannedStream {
    flow: usize,
    /// Per occupied-subcarrier pre-coding vector (len 52), scaled by the
    /// transmitter's per-stream power and join-power factor.
    precoders: Vec<CVector>,
    /// Chosen rate.
    rate: RateIndex,
    /// Transmitting node (scenario index).
    tx_node: usize,
    /// Symbols of body time this stream participates in.
    active_symbols: usize,
}

/// Per-receiver protection state (per occupied subcarrier).
///
/// One state is registered per (transmission, receiver) pair, so a node
/// served by two concurrent transmitters — the hidden-terminal shape —
/// owns two states, each decoding only the streams registered with it
/// (`stream_ids`); the other transmission's arrivals land in this
/// state's unwanted space (it was constructed to contain them) or leak
/// as residual interference.
struct ReceiverState {
    node: usize,
    /// Ids (into the round's stream list) of the streams this state
    /// decodes: exactly the columns of `wanted`, in order.
    stream_ids: Vec<usize>,
    /// Advertised unwanted space per occupied subcarrier.
    unwanted: Vec<Subspace>,
    /// Wanted effective channels per subcarrier (columns appended as this
    /// receiver's streams are planned).
    wanted: Vec<Vec<CVector>>,
}

/// A memoized opening plan: the full per-subcarrier planning result of a
/// transmitter opening a round with a single receiver and no protected
/// receivers. In that case the precoders are an unconstrained orthonormal
/// basis and rate selection sees only the pure true channels — nothing
/// depends on the believed-channel draws — so the plan (or its rate
/// failure) is a fixed function of the topology and can be computed once
/// per run instead of once per round.
struct FirstPlan {
    /// Per-stream, per-subcarrier pre-coding vectors.
    precoders: Vec<Vec<CVector>>,
    /// Chosen rate per stream.
    rates: Vec<RateIndex>,
    /// The receiver's advertised unwanted space per subcarrier.
    unwanted: Vec<Subspace>,
    /// The receiver's wanted arrival columns per subcarrier.
    wanted: Vec<Vec<CVector>>,
}

/// Per-run scratch buffers, reused across rounds and subcarriers so the
/// hot path performs no per-subcarrier allocations for arrivals,
/// interference lists or SINR accumulation.
#[derive(Default)]
struct Scratch {
    /// Ongoing-stream arrival vectors at one receiver, one subcarrier.
    arrivals: Vec<CVector>,
    /// Residual (unknown) interference leaks.
    residual: Vec<CVector>,
    /// Secondary-contention eligible transmitters.
    eligible: Vec<usize>,
    /// Stream counts per receiver for handshake sizing.
    streams_per_rx: Vec<usize>,
    /// Stream ids destined to the receiver being settled.
    my_streams: Vec<usize>,
    /// Memoized opening plans keyed by `(tx, flow, n_streams)`; `None`
    /// records a rate-selection failure (also a pure topology fact).
    first_plans: Vec<((usize, usize, usize), Option<FirstPlan>)>,
}

/// Extends the span of `existing` with directions orthogonal to both
/// `existing` and `wanted`, up to `target_dim` dimensions.
fn extend_unwanted(
    ambient: usize,
    existing: &[CVector],
    wanted: &[CVector],
    target_dim: usize,
) -> Subspace {
    let base = Subspace::span(ambient, existing);
    if base.dim() >= target_dim {
        return base;
    }
    let mut all = existing.to_vec();
    all.extend(wanted.to_vec());
    let occupied = Subspace::span(ambient, &all);
    let free = occupied.complement();
    let mut basis = base.basis().to_vec();
    for b in free.basis() {
        if basis.len() >= target_dim {
            break;
        }
        basis.push(b.clone());
    }
    Subspace::span(ambient, &basis)
}

/// Success probability of a stream: 1 dB linear ramp below the rate's
/// ESNR threshold (the thresholds are ~90% delivery points; the ramp
/// keeps Monte-Carlo noise down versus a hard cliff).
fn success_prob(esnr_db: f64, rate: RateIndex) -> f64 {
    let thr = RATE_ESNR_THRESHOLDS_DB[rate];
    ((esnr_db - (thr - 1.0)) / 1.0).clamp(0.0, 1.0)
}

/// Resolves contention among `contenders` (scenario node indices),
/// doubling windows on collisions. Returns `(winner, slots_elapsed)`.
fn contend(contenders: &[usize], timing: &SampleTiming, rng: &mut StdRng) -> (usize, u64) {
    let mut cw: Vec<u32> = vec![timing.cw_min; contenders.len()];
    let mut slots_total: u64 = 0;
    for _ in 0..32 {
        match resolve_contention(&cw, rng) {
            ContentionOutcome::Winner { index, slots } => {
                return (contenders[index], slots_total + slots as u64);
            }
            ContentionOutcome::Collision { indices, slots } => {
                slots_total += slots as u64 + 20; // collided headers waste air
                for i in indices {
                    cw[i] = (cw[i] * 2 + 1).min(timing.cw_max);
                }
            }
            ContentionOutcome::Idle => unreachable!("contenders nonempty"),
        }
    }
    // Window exhausted without a unique winner: pick uniformly. A
    // deterministic fallback (e.g. the first contender) would bias the
    // long-run airtime share toward one transmitter.
    let i = rng.gen_range(0..contenders.len());
    (contenders[i], slots_total)
}

/// Typical alignment-blob size in bytes (CP¹ codec over 52 subcarriers:
/// header + first angles + escape mask + ~1 byte/subcarrier).
pub const TYPICAL_BLOB_BYTES: usize = 62;

/// Header exchange cost in OFDM symbols: data header + SIFS + per-receiver
/// ACK headers (each with an alignment blob of `blob_bytes`) + SIFS, all
/// at base rate.
///
/// `streams_per_rx` holds the actual stream allocation, one entry per
/// receiver. Both frame sizes come from the real codecs in `nplus-mac`:
/// the data header lists the real per-receiver stream counts, each ACK
/// carries one rate index per stream (§3.4 selects rates per stream),
/// and — since every receiver transmits its own ACK frame — each ACK is
/// padded to a whole OFDM symbol individually rather than rounding once
/// across the summed total.
fn handshake_symbols(cfg: &SimConfig, streams_per_rx: &[usize], blob_bytes: usize) -> usize {
    let one = [1usize];
    let per_rx: &[usize] = if streams_per_rx.is_empty() {
        &one
    } else {
        streams_per_rx
    };
    let hdr = DataHeader {
        src: 0,
        receivers: per_rx
            .iter()
            .map(|&n| ReceiverEntry {
                dst: 0,
                n_streams: n.max(1) as u8,
            })
            .collect(),
        n_antennas: 3,
        duration_symbols: 0,
        seq: 0,
    };
    let hdr_bits = hdr.to_bytes().len() * 8;
    let base = BASE_RATE.data_bits_per_symbol();
    let ack_symbols: usize = per_rx
        .iter()
        .map(|&n| {
            let ack = AckHeader {
                src: 0,
                dst: 0,
                rate_indices: vec![0; n.max(1)],
                alignment_blob: vec![0; blob_bytes],
            };
            (ack.to_bytes().len() * 8).div_ceil(base)
        })
        .sum();
    let sifs_syms = (cfg.timing.sifs as usize).div_ceil(cfg.timing.symbol as usize);
    hdr_bits.div_ceil(base) + ack_symbols + 2 * sifs_syms
}

/// The reusable per-topology simulation engine.
///
/// Construction precomputes everything that is invariant across rounds
/// and protocols: occupied subcarriers, the transmitter list, per-node
/// flow lists, and (by default) the [`ChannelCache`] of every link's
/// per-subcarrier frequency responses. One engine can then [`run`]
/// (SimEngine::run) any number of protocols/seeds against the same
/// topology without re-evaluating channel taps.
pub struct SimEngine<'a> {
    topo: &'a Topology,
    scenario: &'a Scenario,
    cfg: &'a SimConfig,
    /// Occupied subcarrier indices (FFT bins), in order.
    occ: Vec<usize>,
    /// Distinct transmitter node indices with traffic.
    transmitters: Vec<usize>,
    /// Flow indices per scenario node (empty for non-transmitters).
    flows_of: Vec<Vec<usize>>,
    /// Pure true-channel cache; `None` when disabled for perf baselines.
    cache: Option<ChannelCache>,
}

impl<'a> SimEngine<'a> {
    /// Builds the engine for one topology/scenario/config triple.
    pub fn new(topo: &'a Topology, scenario: &'a Scenario, cfg: &'a SimConfig) -> Self {
        let occ = occupied_subcarrier_indices();
        let cache = if cfg.cache_channels {
            Some(ChannelCache::build(topo, &occ, cfg.ofdm.fft_len))
        } else {
            None
        };
        SimEngine {
            topo,
            scenario,
            cfg,
            transmitters: scenario.transmitters(),
            flows_of: (0..scenario.antennas.len())
                .map(|n| scenario.flows_of(n))
                .collect(),
            occ,
            cache,
        }
    }

    /// True per-subcarrier channel matrix between two scenario nodes —
    /// served from the cache when enabled, recomputed otherwise (the two
    /// are bitwise identical).
    fn true_channel(&self, from: usize, to: usize, k_occ: usize) -> Cow<'_, CMatrix> {
        match &self.cache {
            Some(cache) => Cow::Borrowed(cache.matrix(from, to, k_occ)),
            None => {
                let link = self
                    .topo
                    .medium
                    .link(self.topo.nodes[from], self.topo.nodes[to])
                    .expect("missing link");
                Cow::Owned(link.channel_matrix(self.occ[k_occ], self.cfg.ofdm.fft_len))
            }
        }
    }

    /// What a transmitter believes the channel is (reciprocity +
    /// hardware error), per subcarrier. Never cached: the hardware error
    /// draw must consume the RNG stream on every call.
    fn believed_channel(&self, from: usize, to: usize, k_occ: usize, rng: &mut StdRng) -> CMatrix {
        let h = self.true_channel(from, to, k_occ);
        self.cfg.hardware.reciprocal_channel_knowledge(&h, rng)
    }

    fn n_ant(&self, node: usize) -> usize {
        self.scenario.antennas[node]
    }

    /// Allocates the winner's streams across its flows, respecting
    /// receiver capacity (`N_rx − K` spare dimensions each) and rotating
    /// the split across rounds for fairness.
    fn allocate_streams(&self, tx: usize, k_ongoing: usize, round: usize) -> Vec<(usize, usize)> {
        let flows = &self.flows_of[tx];
        let m = self.n_ant(tx).saturating_sub(k_ongoing);
        if m == 0 || flows.is_empty() {
            return Vec::new();
        }
        let caps: Vec<usize> = flows
            .iter()
            .map(|&f| {
                let rx = self.scenario.flows[f].rx;
                self.n_ant(rx).saturating_sub(k_ongoing.min(self.n_ant(rx)))
            })
            .collect();
        let mut alloc = vec![0usize; flows.len()];
        let mut remaining = m;
        let mut i = round % flows.len();
        let mut stalled = 0;
        while remaining > 0 && stalled < flows.len() {
            if alloc[i] < caps[i] {
                alloc[i] += 1;
                remaining -= 1;
                stalled = 0;
            } else {
                stalled += 1;
            }
            i = (i + 1) % flows.len();
        }
        flows
            .iter()
            .zip(alloc)
            .filter(|(_, a)| *a > 0)
            .map(|(&f, a)| (f, a))
            .collect()
    }

    /// Computes the memoizable opening plan of `tx` sending `n_streams`
    /// to the receiver of `f` with no protected receivers (see
    /// [`FirstPlan`]): unconstrained precoding basis, per-subcarrier
    /// unwanted spaces and arrival columns, joint-ZF rate selection —
    /// all from pure true channels, no RNG. Returns `None` when even the
    /// most robust rate cannot be sustained (a pure topology fact,
    /// memoized as a failure).
    fn plan_opening_single(&self, tx: usize, f: usize, n_streams: usize) -> Option<FirstPlan> {
        let n_sc = self.occ.len();
        let m_tx = self.n_ant(tx);
        let rx = self.scenario.flows[f].rx;
        let n_rx = self.n_ant(rx);
        let target = n_rx.saturating_sub(n_streams);

        // No ongoing arrivals: the advertised unwanted space is the same
        // construction on every subcarrier.
        let unwanted: Vec<Subspace> = (0..n_sc)
            .map(|_| extend_unwanted(n_rx, &[], &[], target))
            .collect();

        let mut precoders: Vec<Vec<CVector>> = vec![Vec::with_capacity(n_sc); n_streams];
        for k in 0..n_sc {
            let h = self.true_channel(tx, rx, k);
            let own = [OwnReceiverRef {
                channel: &h,
                n_streams,
                unwanted: &unwanted[k],
            }];
            match compute_precoders_ref(m_tx, &[], &own) {
                Ok(p) => {
                    for (i, v) in p.vectors.into_iter().enumerate() {
                        precoders[i].push(v);
                    }
                }
                Err(_) => return None,
            }
        }

        // Joint-ZF rate selection against the pure channel (no ongoing
        // interference, no residuals — the receiver decodes its own
        // streams against its unwanted-space basis).
        let mut per_stream_sinrs: Vec<Vec<f64>> = vec![Vec::with_capacity(n_sc); n_streams];
        let mut wanted: Vec<Vec<CVector>> = Vec::with_capacity(n_sc);
        for k in 0..n_sc {
            let h = self.true_channel(tx, rx, k);
            let cols: Vec<CVector> = precoders.iter().map(|pc| h.mul_vec(&pc[k])).collect();
            let sinrs = zf_sinr_slices(&cols, unwanted[k].basis(), &[], 1.0);
            for (s, &v) in sinrs.iter().enumerate() {
                per_stream_sinrs[s].push(v);
            }
            wanted.push(cols);
        }
        let mut rates = Vec::with_capacity(n_streams);
        for sinrs in &per_stream_sinrs {
            rates.push(select_stream_rate(sinrs)?);
        }
        Some(FirstPlan {
            precoders,
            rates,
            unwanted,
            wanted,
        })
    }

    /// Plans the transmission of one winner: computes precoders against
    /// the currently protected receivers, registers the new receiver
    /// state, and returns the planned streams. Returns `None` if the
    /// winner cannot join (no DoF, rate selection failure, or precoder
    /// degeneracy).
    #[allow(clippy::too_many_arguments)]
    fn plan_winner(
        &self,
        tx: usize,
        allocation: &[(usize, usize)],
        protected: &mut Vec<ReceiverState>,
        ongoing_streams: &mut Vec<PlannedStream>,
        body_symbols_left: usize,
        scratch: &mut Scratch,
        rng: &mut StdRng,
    ) -> Option<Vec<usize>> {
        let n_sc = self.occ.len();
        let m_tx = self.n_ant(tx);
        let total_new: usize = allocation.iter().map(|(_, n)| n).sum();
        if total_new == 0 {
            return None;
        }

        // Opening a round with one receiver and nothing to protect: the
        // whole plan is a pure function of the topology (see
        // [`FirstPlan`]) — serve it from the per-run memo. Multi-receiver
        // openings and joins stay on the full path below, where believed
        // channels (and hence the RNG stream) genuinely matter.
        if protected.is_empty() && allocation.len() == 1 {
            let (f, n_streams) = allocation[0];
            let key = (tx, f, n_streams);
            let idx = match scratch.first_plans.iter().position(|(k, _)| *k == key) {
                Some(i) => i,
                None => {
                    let plan = self.plan_opening_single(tx, f, n_streams);
                    scratch.first_plans.push((key, plan));
                    scratch.first_plans.len() - 1
                }
            };
            let plan = scratch.first_plans[idx].1.as_ref()?;
            let rx = self.scenario.flows[f].rx;
            let mut new_stream_ids = Vec::with_capacity(n_streams);
            for s in 0..n_streams {
                new_stream_ids.push(ongoing_streams.len());
                ongoing_streams.push(PlannedStream {
                    flow: f,
                    precoders: plan.precoders[s].clone(),
                    rate: plan.rates[s],
                    tx_node: tx,
                    active_symbols: body_symbols_left,
                });
            }
            protected.push(ReceiverState {
                node: rx,
                stream_ids: new_stream_ids.clone(),
                unwanted: plan.unwanted.clone(),
                wanted: plan.wanted.clone(),
            });
            return Some(new_stream_ids);
        }

        // Believed channels to protected receivers and own receivers.
        let believed_protected: Vec<Vec<CMatrix>> = protected
            .iter()
            .map(|r| {
                (0..n_sc)
                    .map(|k| self.believed_channel(tx, r.node, k, rng))
                    .collect()
            })
            .collect();
        let believed_own: Vec<Vec<CMatrix>> = allocation
            .iter()
            .map(|&(f, _)| {
                let rx = self.scenario.flows[f].rx;
                (0..n_sc)
                    .map(|k| self.believed_channel(tx, rx, k, rng))
                    .collect()
            })
            .collect();

        // Join power control against protected receivers (worst subcarrier
        // median is approximated by the middle subcarrier's matrix).
        let decision = if self.cfg.power_control && !protected.is_empty() {
            let mid = n_sc / 2;
            let mats: Vec<&CMatrix> = believed_protected.iter().map(|v| &v[mid]).collect();
            join_power_decision(&mats, self.cfg.l_db)
        } else {
            JoinPowerDecision::FullPower
        };
        let amp = decision.amplitude();

        // Unwanted space each own receiver will advertise: span of the
        // true arrivals it already sees, extended to its spare dimension
        // count. (The receiver estimates these from overheard headers;
        // estimation is near-exact and the codec round-trip is tested
        // separately.)
        let own_unwanted: Vec<Vec<Subspace>> = allocation
            .iter()
            .map(|&(f, n_streams)| {
                let rx = self.scenario.flows[f].rx;
                let n_rx = self.n_ant(rx);
                (0..n_sc)
                    .map(|k| {
                        scratch.arrivals.clear();
                        for s in ongoing_streams.iter() {
                            let h = self.true_channel(s.tx_node, rx, k);
                            scratch.arrivals.push(h.mul_vec(&s.precoders[k]));
                        }
                        let target = n_rx.saturating_sub(n_streams);
                        extend_unwanted(n_rx, &scratch.arrivals, &[], target)
                    })
                    .collect()
            })
            .collect();

        // Per-subcarrier precoding (borrowed views — no per-subcarrier
        // clones of channel matrices or subspaces).
        let mut per_stream_precoders: Vec<Vec<CVector>> = vec![Vec::with_capacity(n_sc); total_new];
        let mut prot_refs: Vec<ProtectedReceiverRef> = Vec::with_capacity(protected.len());
        let mut own_refs: Vec<OwnReceiverRef> = Vec::with_capacity(allocation.len());
        for k in 0..n_sc {
            prot_refs.clear();
            for (i, r) in protected.iter().enumerate() {
                prot_refs.push(ProtectedReceiverRef {
                    channel: &believed_protected[i][k],
                    unwanted: &r.unwanted[k],
                });
            }
            own_refs.clear();
            for (i, &(_, n_streams)) in allocation.iter().enumerate() {
                own_refs.push(OwnReceiverRef {
                    channel: &believed_own[i][k],
                    n_streams,
                    unwanted: &own_unwanted[i][k],
                });
            }
            match compute_precoders_ref(m_tx, &prot_refs, &own_refs) {
                Ok(p) => {
                    for (i, v) in p.vectors.into_iter().enumerate() {
                        per_stream_precoders[i].push(v.scale_re(amp));
                    }
                }
                Err(PrecoderError::NoDegreesOfFreedom | PrecoderError::TooManyStreams { .. }) => {
                    return None;
                }
            }
        }
        drop(prot_refs);
        drop(own_refs);

        // Rate selection per stream: SINR at the owning receiver with
        // current ongoing interference (known to the receiver) — §3.4: the
        // joiner need not worry about future winners.
        //
        // The receive space is exactly budgeted: n wanted streams plus the
        // (N − n)-dimensional unwanted space. All streams destined to one
        // receiver are zero-forced *jointly* — one pseudo-inverse per
        // subcarrier, mirroring `settle_round`'s receiver model — with the
        // receiver's unwanted-space basis as the known-interference
        // columns. Streams destined to *other* receivers were aligned
        // into the unwanted space (covered by its basis) or nulled, and
        // whatever leaks outside is residual interference the receiver
        // cannot cancel.
        let mut stream_rates: Vec<RateIndex> = Vec::with_capacity(total_new);
        // Wanted arrival columns per own receiver and subcarrier, kept so
        // registration reuses the true-channel products computed here.
        let mut wanted_cols: Vec<Vec<Vec<CVector>>> = Vec::with_capacity(allocation.len());
        {
            // Stream index ranges per own-receiver.
            let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(allocation.len());
            let mut acc = 0usize;
            for &(_, n_streams) in allocation {
                ranges.push((acc, acc + n_streams));
                acc += n_streams;
            }
            for (i, &(f, n_streams)) in allocation.iter().enumerate() {
                let rx = self.scenario.flows[f].rx;
                let (lo, hi) = ranges[i];
                let mut per_stream_sinrs: Vec<Vec<f64>> = vec![Vec::with_capacity(n_sc); n_streams];
                let mut cols_per_k: Vec<Vec<CVector>> = Vec::with_capacity(n_sc);
                for k in 0..n_sc {
                    let h_true = self.true_channel(tx, rx, k);
                    let mut wanted: Vec<CVector> = Vec::with_capacity(n_streams);
                    scratch.residual.clear();
                    for (other, pc) in per_stream_precoders.iter().enumerate() {
                        if pc.is_empty() {
                            continue;
                        }
                        let arrival = h_true.mul_vec(&pc[k]);
                        if other >= lo && other < hi {
                            // Sibling destined to this receiver: a wanted
                            // ZF column (jointly decoded).
                            wanted.push(arrival);
                        } else {
                            // Destined elsewhere: aligned part lives
                            // inside the unwanted space (already a
                            // column); only the hardware-error leak
                            // outside it degrades this receiver.
                            let leak = own_unwanted[i][k].reject(&arrival);
                            if leak.norm_sqr() > 1e-9 {
                                scratch.residual.push(leak);
                            }
                        }
                    }
                    let sinrs =
                        zf_sinr_slices(&wanted, own_unwanted[i][k].basis(), &scratch.residual, 1.0);
                    for (s, &v) in sinrs.iter().enumerate() {
                        per_stream_sinrs[s].push(v);
                    }
                    cols_per_k.push(wanted);
                }
                for sinrs in &per_stream_sinrs {
                    match select_stream_rate(sinrs) {
                        Some(r) => stream_rates.push(r),
                        None => return None,
                    }
                }
                wanted_cols.push(cols_per_k);
            }
        }

        // Register everything.
        let mut new_stream_ids = Vec::with_capacity(total_new);
        let mut stream_idx = 0usize;
        for ((&(f, n_streams), unwanted), wanted) in
            allocation.iter().zip(own_unwanted).zip(wanted_cols)
        {
            let rx = self.scenario.flows[f].rx;
            let mut stream_ids = Vec::with_capacity(n_streams);
            for _s in 0..n_streams {
                stream_ids.push(ongoing_streams.len());
                new_stream_ids.push(ongoing_streams.len());
                ongoing_streams.push(PlannedStream {
                    flow: f,
                    precoders: std::mem::take(&mut per_stream_precoders[stream_idx]),
                    rate: stream_rates[stream_idx],
                    tx_node: tx,
                    active_symbols: body_symbols_left,
                });
                stream_idx += 1;
            }
            // New protected receiver: its wanted effective channels are
            // exactly the arrival columns computed during rate selection.
            protected.push(ReceiverState {
                node: rx,
                stream_ids,
                unwanted,
                wanted,
            });
        }
        Some(new_stream_ids)
    }

    /// Evaluates the realized per-stream ESNRs at every receiver,
    /// including the residual interference the precoding failed to
    /// cancel, and returns delivered bits per flow.
    fn settle_round(
        &self,
        protected: &[ReceiverState],
        streams: &[PlannedStream],
        scratch: &mut Scratch,
    ) -> Vec<f64> {
        let n_sc = self.occ.len();
        let mut bits = vec![0.0; self.scenario.flows.len()];
        for rx_state in protected {
            // Streams this state decodes: exactly the ones registered
            // with it. Matching by receiver *node* here would break the
            // hidden-terminal shape — two transmitters serving the same
            // node register two states, and each state's `wanted`
            // columns cover only its own streams (the other
            // transmission's arrivals live in this state's unwanted
            // space, or leak as residual below).
            scratch.my_streams.clear();
            scratch
                .my_streams
                .extend(rx_state.stream_ids.iter().copied());
            if scratch.my_streams.is_empty() {
                continue;
            }
            // Per-stream SINR across subcarriers.
            let mut per_stream_sinrs: Vec<Vec<f64>> =
                vec![Vec::with_capacity(n_sc); scratch.my_streams.len()];
            for k in 0..n_sc {
                // Residual interference: arrivals of *other* transmitters'
                // streams outside the advertised unwanted space.
                scratch.residual.clear();
                for (i, s) in streams.iter().enumerate() {
                    if scratch.my_streams.contains(&i) {
                        continue;
                    }
                    if s.tx_node == rx_state.node {
                        continue; // half duplex: own transmissions not heard
                    }
                    let h = self.true_channel(s.tx_node, rx_state.node, k);
                    let arrival = h.mul_vec(&s.precoders[k]);
                    let leak = rx_state.unwanted[k].reject(&arrival);
                    if leak.norm_sqr() > 1e-12 {
                        scratch.residual.push(leak);
                    }
                }
                let sinrs = zf_sinr_slices(
                    &rx_state.wanted[k],
                    rx_state.unwanted[k].basis(),
                    &scratch.residual,
                    1.0,
                );
                for (si, &v) in sinrs.iter().enumerate() {
                    per_stream_sinrs[si].push(v);
                }
            }
            for (si, &stream_id) in scratch.my_streams.iter().enumerate() {
                let s = &streams[stream_id];
                let mcs = RATE_TABLE[s.rate];
                let esnr = nplus_phy::esnr::effective_snr(mcs.modulation, &per_stream_sinrs[si]);
                let esnr_db = 10.0 * esnr.max(1e-300).log10();
                let p = success_prob(esnr_db, s.rate);
                bits[s.flow] += (s.active_symbols * mcs.data_bits_per_symbol()) as f64 * p;
            }
        }
        bits
    }

    /// Simulates `cfg.rounds` rounds of the given protocol and returns
    /// the per-flow goodput. Engines are reusable: each call starts a
    /// fresh accounting with the caller's RNG.
    pub fn run(&self, protocol: Protocol, rng: &mut StdRng) -> RunResult {
        let cfg = self.cfg;
        let scenario = self.scenario;
        let mut scratch = Scratch::default();
        let mut bits = vec![0.0f64; scenario.flows.len()];
        let mut total_samples: u64 = 0;
        let mut dof_weighted: f64 = 0.0;
        let mut dof_time: f64 = 0.0;

        for round in 0..cfg.rounds {
            let mut protected: Vec<ReceiverState> = Vec::new();
            let mut streams: Vec<PlannedStream> = Vec::new();

            // Primary contention among all transmitters with traffic.
            let (first, slots) = contend(&self.transmitters, &cfg.timing, rng);
            let mut overhead = cfg.timing.difs + slots * cfg.timing.slot;

            // First winner's allocation.
            let first_alloc = match protocol {
                Protocol::NPlus | Protocol::Beamforming => self.allocate_streams(first, 0, round),
                Protocol::Dot11n => {
                    // Stock 802.11n: one receiver per transmission
                    // opportunity.
                    let flows = &self.flows_of[first];
                    let f = flows[round % flows.len()];
                    let rx = scenario.flows[f].rx;
                    let n = self.n_ant(first).min(self.n_ant(rx));
                    vec![(f, n)]
                }
            };

            // Plan the first winner with a provisional body length;
            // patched below once its rates are known.
            let planned = self.plan_winner(
                first,
                &first_alloc,
                &mut protected,
                &mut streams,
                usize::MAX,
                &mut scratch,
                rng,
            );
            let Some(first_ids) = planned else {
                // Even the first winner could not transmit (degenerate
                // channels): charge the overhead and move on.
                total_samples += overhead + cfg.timing.difs;
                continue;
            };
            scratch.streams_per_rx.clear();
            scratch
                .streams_per_rx
                .extend(first_alloc.iter().map(|&(_, n)| n));
            overhead += cfg.timing.symbol
                * handshake_symbols(cfg, &scratch.streams_per_rx, TYPICAL_BLOB_BYTES) as u64;

            // Body duration: one packet per serviced flow at the winner's
            // aggregate rate.
            let first_rate_sum: usize = first_ids
                .iter()
                .map(|&i| RATE_TABLE[streams[i].rate].data_bits_per_symbol())
                .sum();
            let packet_bits = cfg.packet_bytes * 8 * first_alloc.len();
            let body_symbols = packet_bits.div_ceil(first_rate_sum.max(1));
            for &i in &first_ids {
                streams[i].active_symbols = body_symbols;
            }

            // Secondary contention (n+ only): remaining transmitters join.
            if protocol == Protocol::NPlus {
                let mut k_used: usize = streams.len();
                let mut elapsed_body: usize = 0;
                loop {
                    scratch.eligible.clear();
                    scratch
                        .eligible
                        .extend(self.transmitters.iter().copied().filter(|&t| {
                            t != first
                                && streams.iter().all(|s| s.tx_node != t)
                                && self.n_ant(t) > k_used
                        }));
                    if scratch.eligible.is_empty() {
                        break;
                    }
                    let (joiner, join_slots) = contend(&scratch.eligible, &cfg.timing, rng);
                    let alloc = self.allocate_streams(joiner, k_used, round);
                    if alloc.is_empty() {
                        break;
                    }
                    // The join consumes body time: contention + its
                    // handshake, sized by the actual allocation.
                    scratch.streams_per_rx.clear();
                    scratch.streams_per_rx.extend(alloc.iter().map(|&(_, n)| n));
                    let hs = handshake_symbols(cfg, &scratch.streams_per_rx, TYPICAL_BLOB_BYTES);
                    let join_delay = ((join_slots * cfg.timing.slot) as usize)
                        .div_ceil(cfg.timing.symbol as usize)
                        + hs;
                    elapsed_body += join_delay;
                    if elapsed_body >= body_symbols {
                        break; // no air time left this round
                    }
                    let remaining = body_symbols - elapsed_body;
                    let planned = self.plan_winner(
                        joiner,
                        &alloc,
                        &mut protected,
                        &mut streams,
                        remaining,
                        &mut scratch,
                        rng,
                    );
                    match planned {
                        Some(ids) => {
                            k_used += ids.len();
                        }
                        None => {
                            // Joiner declined (power control / degenerate):
                            // others may still try.
                            continue;
                        }
                    }
                }
            }

            // Settle: realized SINRs including residuals.
            let round_bits = self.settle_round(&protected, &streams, &mut scratch);
            for (f, b) in round_bits.iter().enumerate() {
                bits[f] += b;
            }

            // Time accounting.
            let ack_syms = 2 + (cfg.timing.sifs as usize).div_ceil(cfg.timing.symbol as usize);
            let round_samples =
                overhead + cfg.timing.symbol * (body_symbols + ack_syms) as u64 + cfg.timing.difs;
            total_samples += round_samples;
            let mean_streams: f64 = streams.iter().map(|s| s.active_symbols as f64).sum::<f64>()
                / body_symbols.max(1) as f64;
            dof_weighted += mean_streams * body_symbols as f64;
            dof_time += body_symbols as f64;
        }

        let elapsed_s = total_samples as f64 / cfg.ofdm.bandwidth_hz;
        let per_flow_mbps: Vec<f64> = bits.iter().map(|b| b / elapsed_s / 1e6).collect();
        RunResult {
            total_mbps: per_flow_mbps.iter().sum(),
            per_flow_mbps,
            mean_dof: if dof_time > 0.0 {
                dof_weighted / dof_time
            } else {
                0.0
            },
        }
    }
}

/// Simulates `cfg.rounds` rounds of the given protocol and returns the
/// per-flow goodput. One-shot wrapper around [`SimEngine`]; batch callers
/// should build the engine once per topology (or use [`sweep`]) so the
/// channel cache is shared across runs.
pub fn simulate(
    topo: &Topology,
    scenario: &Scenario,
    protocol: Protocol,
    cfg: &SimConfig,
    rng: &mut StdRng,
) -> RunResult {
    SimEngine::new(topo, scenario, cfg).run(protocol, rng)
}

/// Aggregated statistics of one protocol across a seed sweep.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// The protocol these statistics describe.
    pub protocol: Protocol,
    /// Number of seeded topologies simulated.
    pub n_runs: usize,
    /// Mean total network goodput, Mb/s.
    pub mean_total_mbps: f64,
    /// Half-width of the 95% confidence interval on the mean total
    /// goodput (Student-t critical value below 30 runs, a continuous
    /// expansion converging to z = 1.96 above; 0 for fewer than two
    /// runs).
    pub ci95_total_mbps: f64,
    /// Mean goodput per flow, Mb/s.
    pub mean_per_flow_mbps: Vec<f64>,
    /// Mean degrees of freedom in use during data transfer.
    pub mean_dof: f64,
}

/// Two-sided 95% Student-t critical values indexed by `df - 1` for
/// `df = 1..=28` (sample sizes 2..=29). Larger sample sizes use the
/// first-order expansion `z + (z³ + z)/(4·df)`, which is within 0.2%
/// of the exact t value at df = 29 and converges to z = 1.96 — no
/// discontinuous CI narrowing at the table boundary.
const T_CRIT_95: [f64; 28] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048,
];

/// Half-width of the 95% confidence interval on the mean of `samples`.
///
/// Small seed counts are the common case in quick sweeps, where the
/// normal approximation's z = 1.96 understates the interval badly (the
/// correct critical value at n = 5 is 2.776, at n = 2 it is 12.706);
/// this uses the Student-t value for n < 30 and z above.
fn ci95_half_width(samples: &[f64], mean: f64) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let crit = if n < 30 {
        T_CRIT_95[n - 2]
    } else {
        // Cornish-Fisher first-order tail expansion of t around z.
        let z = 1.96f64;
        let df = (n - 1) as f64;
        z + (z.powi(3) + z) / (4.0 * df)
    };
    crit * (var / n as f64).sqrt()
}

/// One seed-indexed unit of Monte-Carlo sweep work: draw the topology
/// for `seed`, build one channel-cached [`SimEngine`], and run every
/// protocol against it.
///
/// The RNG derivations are the sweep's determinism contract: the
/// placement stream is seeded by the seed itself, and each protocol's
/// run stream by `seed ^ 0x5EED_CAFE` — both fixed functions of the
/// job's seed alone, never of execution order. That is what lets
/// [`sweep_parallel`] run jobs on any number of threads and still merge
/// results bit-for-bit identical to the serial [`sweep`].
pub struct SweepJob<'a> {
    testbed: &'a Testbed,
    scenario: &'a Scenario,
    cfg: &'a SimConfig,
    protocols: &'a [Protocol],
    /// The topology/run seed this job covers.
    pub seed: u64,
}

/// The per-seed output of one [`SweepJob`]: one [`RunResult`] per
/// requested protocol, in protocol order.
#[derive(Debug, Clone)]
pub struct SeedResults {
    /// The seed that produced these results.
    pub seed: u64,
    /// One result per protocol, in the order the job was given.
    pub per_protocol: Vec<RunResult>,
}

impl<'a> SweepJob<'a> {
    /// Builds the job for one seed of a sweep.
    pub fn new(
        testbed: &'a Testbed,
        scenario: &'a Scenario,
        cfg: &'a SimConfig,
        protocols: &'a [Protocol],
        seed: u64,
    ) -> Self {
        SweepJob {
            testbed,
            scenario,
            cfg,
            protocols,
            seed,
        }
    }

    /// Runs the job: topology draw, engine construction, one simulation
    /// per protocol. Pure in the seed — no shared mutable state.
    pub fn run(&self) -> SeedResults {
        let mut placement_rng = StdRng::seed_from_u64(self.seed);
        let topo = build_topology(
            self.testbed,
            &TopologyConfig::new(self.scenario.antennas.clone()),
            self.cfg.ofdm.bandwidth_hz,
            self.seed,
            &mut placement_rng,
        );
        let engine = SimEngine::new(&topo, self.scenario, self.cfg);
        let per_protocol = self
            .protocols
            .iter()
            .map(|&protocol| {
                let mut run_rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_CAFE);
                engine.run(protocol, &mut run_rng)
            })
            .collect();
        SeedResults {
            seed: self.seed,
            per_protocol,
        }
    }
}

// `sweep_parallel` shares the scenario/config/testbed across scoped
// worker threads and sends per-seed results back; all of it must be
// thread-safe by construction (the medium-side types carry their own
// assertions next to their definitions).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Scenario>();
    assert_send_sync::<SimConfig>();
    assert_send_sync::<Protocol>();
    assert_send_sync::<RunResult>();
    assert_send_sync::<SeedResults>();
};

/// Folds per-seed results (already in seed order) into per-protocol
/// statistics. The accumulation order is fixed — seed-major, protocol
/// within seed — so the aggregate is a pure function of the ordered
/// result list, independent of how the jobs were scheduled.
fn aggregate_sweep(
    scenario: &Scenario,
    protocols: &[Protocol],
    results: &[SeedResults],
) -> Vec<SweepStats> {
    let mut totals: Vec<Vec<f64>> = vec![Vec::with_capacity(results.len()); protocols.len()];
    let mut per_flow: Vec<Vec<f64>> = vec![vec![0.0; scenario.flows.len()]; protocols.len()];
    let mut dofs: Vec<f64> = vec![0.0; protocols.len()];

    for seed_results in results {
        for (p, r) in seed_results.per_protocol.iter().enumerate() {
            totals[p].push(r.total_mbps);
            for (f, v) in r.per_flow_mbps.iter().enumerate() {
                per_flow[p][f] += v;
            }
            dofs[p] += r.mean_dof;
        }
    }

    let n = results.len().max(1) as f64;
    protocols
        .iter()
        .enumerate()
        .map(|(p, &protocol)| {
            let mean = totals[p].iter().sum::<f64>() / n;
            SweepStats {
                protocol,
                n_runs: totals[p].len(),
                mean_total_mbps: mean,
                ci95_total_mbps: ci95_half_width(&totals[p], mean),
                mean_per_flow_mbps: per_flow[p].iter().map(|v| v / n).collect(),
                mean_dof: dofs[p] / n,
            }
        })
        .collect()
}

/// Runs `scenario` on one freshly drawn topology per seed and aggregates
/// mean/CI statistics per protocol.
///
/// For each seed the topology is drawn once (placement + fading, seeded
/// by the seed itself) and a single [`SimEngine`] — with its channel
/// cache — is shared by every protocol; the simulation RNG is
/// decorrelated from the placement stream. This is the batch entry point
/// for Monte-Carlo experiments in the style of Figs. 12–13; use
/// [`sweep_parallel`] for the multi-threaded variant (bit-for-bit
/// identical results).
pub fn sweep(
    testbed: &Testbed,
    scenario: &Scenario,
    cfg: &SimConfig,
    protocols: &[Protocol],
    seeds: &[u64],
) -> Vec<SweepStats> {
    sweep_parallel(testbed, scenario, cfg, protocols, seeds, 1)
}

/// [`sweep`] on up to `threads` worker threads (`0` = available
/// parallelism).
///
/// Seeds become independent [`SweepJob`]s executed by
/// [`executor::run_indexed`](crate::executor::run_indexed): workers pull
/// jobs from an atomic cursor, every job derives its RNGs from its seed
/// exactly as the serial path does, and results are merged in seed order
/// — so the returned statistics are **bit-for-bit identical** for every
/// thread count (asserted by the protocol-invariant proptests and the
/// `perf_sweep` CI smoke run).
pub fn sweep_parallel(
    testbed: &Testbed,
    scenario: &Scenario,
    cfg: &SimConfig,
    protocols: &[Protocol],
    seeds: &[u64],
    threads: usize,
) -> Vec<SweepStats> {
    let results = crate::executor::run_indexed(seeds.len(), threads, |i| {
        SweepJob::new(testbed, scenario, cfg, protocols, seeds[i]).run()
    });
    aggregate_sweep(scenario, protocols, &results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_channel::placement::Testbed;
    use nplus_medium::topology::{build_topology, TopologyConfig};
    use rand::SeedableRng;

    fn run(protocol: Protocol, seed: u64) -> RunResult {
        let scenario = Scenario::three_pairs();
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = build_topology(
            &tb,
            &TopologyConfig::new(scenario.antennas.clone()),
            10e6,
            seed,
            &mut rng,
        );
        let cfg = SimConfig {
            rounds: 12,
            ..SimConfig::default()
        };
        simulate(&topo, &scenario, protocol, &cfg, &mut rng)
    }

    #[test]
    fn nplus_beats_dot11n_on_average() {
        let mut n_total = 0.0;
        let mut d_total = 0.0;
        for seed in 0..6 {
            n_total += run(Protocol::NPlus, seed).total_mbps;
            d_total += run(Protocol::Dot11n, seed).total_mbps;
        }
        assert!(
            n_total > 1.3 * d_total,
            "n+ {:.1} Mb/s vs 802.11n {:.1} Mb/s — expected a clear win",
            n_total / 6.0,
            d_total / 6.0
        );
    }

    #[test]
    fn nplus_uses_more_dof() {
        let mut n_dof = 0.0;
        let mut d_dof = 0.0;
        for seed in 0..4 {
            n_dof += run(Protocol::NPlus, seed).mean_dof;
            d_dof += run(Protocol::Dot11n, seed).mean_dof;
        }
        assert!(
            n_dof > d_dof + 0.3 * 4.0,
            "n+ mean DoF {n_dof} vs 802.11n {d_dof}"
        );
    }

    #[test]
    fn throughput_is_positive_and_finite() {
        for protocol in [Protocol::NPlus, Protocol::Dot11n] {
            let r = run(protocol, 42);
            assert!(r.total_mbps.is_finite());
            assert!(r.total_mbps > 0.0, "{protocol:?} produced zero throughput");
            assert_eq!(r.per_flow_mbps.len(), 3);
        }
    }

    #[test]
    fn ap_downlink_scenario_runs_all_protocols() {
        let scenario = Scenario::ap_downlink();
        let tb = Testbed::sigcomm11();
        for protocol in [Protocol::NPlus, Protocol::Dot11n, Protocol::Beamforming] {
            let mut rng = StdRng::seed_from_u64(9);
            let topo = build_topology(
                &tb,
                &TopologyConfig::new(scenario.antennas.clone()),
                10e6,
                9,
                &mut rng,
            );
            let cfg = SimConfig {
                rounds: 8,
                ..SimConfig::default()
            };
            let r = simulate(&topo, &scenario, protocol, &cfg, &mut rng);
            assert!(r.total_mbps > 0.0, "{protocol:?} zero throughput");
        }
    }

    #[test]
    fn beamforming_beats_dot11n_on_downlink() {
        // MU beamforming serves both clients at once when AP2 wins, so it
        // must outperform single-user 802.11n in this scenario.
        let scenario = Scenario::ap_downlink();
        let tb = Testbed::sigcomm11();
        let (mut bf, mut dn) = (0.0, 0.0);
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = build_topology(
                &tb,
                &TopologyConfig::new(scenario.antennas.clone()),
                10e6,
                seed,
                &mut rng,
            );
            let cfg = SimConfig {
                rounds: 10,
                ..SimConfig::default()
            };
            bf += simulate(&topo, &scenario, Protocol::Beamforming, &cfg, &mut rng).total_mbps;
            dn += simulate(&topo, &scenario, Protocol::Dot11n, &cfg, &mut rng).total_mbps;
        }
        assert!(bf > dn, "beamforming {bf:.1} vs 802.11n {dn:.1}");
    }

    #[test]
    fn jain_fairness_bounds() {
        let equal = RunResult {
            per_flow_mbps: vec![5.0, 5.0, 5.0],
            total_mbps: 15.0,
            mean_dof: 1.0,
        };
        assert!((equal.jain_fairness() - 1.0).abs() < 1e-12);
        let skewed = RunResult {
            per_flow_mbps: vec![9.0, 1.0, 0.0],
            total_mbps: 10.0,
            mean_dof: 1.0,
        };
        let j = skewed.jain_fairness();
        assert!(j > 1.0 / 3.0 - 1e-12 && j < 1.0, "jain {j}");
        let dead = RunResult {
            per_flow_mbps: vec![0.0, 0.0],
            total_mbps: 0.0,
            mean_dof: 0.0,
        };
        assert_eq!(dead.jain_fairness(), 1.0);
    }

    #[test]
    fn scenario_helpers() {
        let s = Scenario::three_pairs();
        assert_eq!(s.transmitters(), vec![0, 2, 4]);
        assert_eq!(s.flows_of(4), vec![2]);
        let ap = Scenario::ap_downlink();
        assert_eq!(ap.transmitters(), vec![0, 2]);
        assert_eq!(ap.flows_of(2), vec![1, 2]);
    }

    /// Regression: the contention fallback after 32 collision rounds used
    /// to return `contenders[0]` deterministically, biasing the first
    /// transmitter. With a degenerate zero window every round collides,
    /// so every contend() call takes the fallback — the winner must now
    /// be uniform across contenders.
    #[test]
    fn contend_fallback_is_unbiased() {
        let timing = SampleTiming {
            sifs: 160,
            difs: 340,
            slot: 90,
            cw_min: 0,
            cw_max: 0,
            symbol: 80,
        };
        let contenders = [10usize, 11, 12, 13];
        let mut rng = StdRng::seed_from_u64(77);
        let mut wins = [0usize; 4];
        for _ in 0..400 {
            let (winner, _) = contend(&contenders, &timing, &mut rng);
            wins[winner - 10] += 1;
        }
        // The old code gave all 400 wins to index 0.
        for (i, &w) in wins.iter().enumerate() {
            assert!(
                w > 40,
                "contender {i} won only {w}/400 fallback contentions: {wins:?}"
            );
        }
    }

    /// Regression: `handshake_symbols` used to round the ACK airtime once
    /// across the summed total and ignore per-receiver stream counts.
    /// Each receiver sends its own ACK frame, so each must be padded to a
    /// symbol boundary individually, and multi-stream ACKs carry one rate
    /// byte per stream.
    #[test]
    fn handshake_symbols_pads_each_ack_and_counts_streams() {
        let cfg = SimConfig::default();
        let base = BASE_RATE.data_bits_per_symbol();
        let sifs_syms = (cfg.timing.sifs as usize).div_ceil(cfg.timing.symbol as usize);
        let hdr_bits = |n_rx: usize| {
            DataHeader {
                src: 0,
                receivers: vec![
                    ReceiverEntry {
                        dst: 0,
                        n_streams: 1
                    };
                    n_rx
                ],
                n_antennas: 3,
                duration_symbols: 0,
                seq: 0,
            }
            .to_bytes()
            .len()
                * 8
        };

        // ACK frame sizes straight from the nplus-mac codec, so the
        // accounting can never drift from what the wire format encodes.
        let ack_bits = |n_streams: usize, blob: usize| {
            AckHeader {
                src: 0,
                dst: 0,
                rate_indices: vec![0; n_streams],
                alignment_blob: vec![0; blob],
            }
            .to_bytes()
            .len()
                * 8
        };

        // A blob size whose per-ACK rounding differs from rounding the
        // summed total — the case the old accounting got wrong.
        let blob = (1usize..64)
            .find(|&b| 2 * ack_bits(1, b).div_ceil(base) != (2 * ack_bits(1, b)).div_ceil(base))
            .expect("some blob size must expose the summed-rounding bug");
        let expected =
            hdr_bits(2).div_ceil(base) + 2 * ack_bits(1, blob).div_ceil(base) + 2 * sifs_syms;
        assert_eq!(
            handshake_symbols(&cfg, &[1, 1], blob),
            expected,
            "two single-stream ACKs must be padded individually"
        );

        // A blob size where one extra stream's rate index crosses a
        // symbol boundary: multi-stream handshakes must cost more than
        // single-stream ones.
        let blob2 = (1usize..64)
            .find(|&b| ack_bits(2, b).div_ceil(base) > ack_bits(1, b).div_ceil(base))
            .expect("some blob size must expose the stream-count bug");
        assert!(
            handshake_symbols(&cfg, &[2], blob2) > handshake_symbols(&cfg, &[1], blob2),
            "extra streams must be accounted in the ACK"
        );

        // Empty allocation falls back to the single-receiver baseline.
        assert_eq!(
            handshake_symbols(&cfg, &[], blob),
            handshake_symbols(&cfg, &[1], blob)
        );
    }

    /// The engine is reusable: running twice with identically seeded RNGs
    /// must reproduce the result, and `simulate` must match `SimEngine`.
    #[test]
    fn engine_reuse_is_deterministic() {
        let scenario = Scenario::three_pairs();
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(21);
        let topo = build_topology(
            &tb,
            &TopologyConfig::new(scenario.antennas.clone()),
            10e6,
            21,
            &mut rng,
        );
        let cfg = SimConfig {
            rounds: 6,
            ..SimConfig::default()
        };
        let engine = SimEngine::new(&topo, &scenario, &cfg);
        let a = engine.run(Protocol::NPlus, &mut StdRng::seed_from_u64(5));
        let b = engine.run(Protocol::NPlus, &mut StdRng::seed_from_u64(5));
        let c = simulate(
            &topo,
            &scenario,
            Protocol::NPlus,
            &cfg,
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(a.per_flow_mbps, b.per_flow_mbps);
        assert_eq!(a.per_flow_mbps, c.per_flow_mbps);
        assert_eq!(a.total_mbps, c.total_mbps);
    }

    /// Regression: `ci95_total_mbps` used the z = 1.96 normal
    /// approximation at every sample size; at n = 5 the correct
    /// Student-t critical value is 2.776, widening the half-width by
    /// ~42%. Pins the n = 5 half-width exactly.
    #[test]
    fn ci95_uses_student_t_below_30_runs() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mean = 3.0;
        // Sample variance 2.5, standard error sqrt(2.5/5).
        let expected = 2.776 * (2.5f64 / 5.0).sqrt();
        let hw = ci95_half_width(&samples, mean);
        assert!((hw - expected).abs() < 1e-12, "n=5 half-width {hw}");
        // The old normal approximation was strictly narrower.
        assert!(hw > 1.96 * (2.5f64 / 5.0).sqrt() * 1.4);

        // n = 2 hits the fattest tail in the table.
        let hw2 = ci95_half_width(&[0.0, 1.0], 0.5);
        assert!((hw2 - 12.706 * (0.5f64 / 2.0).sqrt()).abs() < 1e-12);
        // Degenerate cases stay zero.
        assert_eq!(ci95_half_width(&[], 0.0), 0.0);
        assert_eq!(ci95_half_width(&[7.0], 7.0), 0.0);
        // At n >= 30 the expanded critical value takes over, continuous
        // with the table (t_29 ≈ 2.045; the expansion gives ≈ 2.042 —
        // no 4% jump down to 1.96 at the boundary).
        let big: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let m = big.iter().sum::<f64>() / 30.0;
        let var = big.iter().map(|x| (x - m).powi(2)).sum::<f64>() / 29.0;
        let crit30 = 1.96 + (1.96f64.powi(3) + 1.96) / (4.0 * 29.0);
        assert!((crit30 - 2.045).abs() < 5e-3, "crit at n=30: {crit30}");
        assert!((ci95_half_width(&big, m) - crit30 * (var / 30.0).sqrt()).abs() < 1e-12);
        // And it converges to the normal approximation for large n.
        let huge: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let hm = huge.iter().sum::<f64>() / 1000.0;
        let hvar = huge.iter().map(|x| (x - hm).powi(2)).sum::<f64>() / 999.0;
        let hw_huge = ci95_half_width(&huge, hm);
        assert!((hw_huge / (1.96 * (hvar / 1000.0).sqrt()) - 1.0).abs() < 2e-3);
    }

    /// The tentpole contract: `sweep_parallel` is bit-for-bit identical
    /// to the serial `sweep` for every thread count.
    #[test]
    fn sweep_parallel_matches_serial_bitwise() {
        let scenario = Scenario::ap_downlink();
        let cfg = SimConfig {
            rounds: 5,
            ..SimConfig::default()
        };
        let protocols = [Protocol::NPlus, Protocol::Dot11n, Protocol::Beamforming];
        let seeds: Vec<u64> = (0..5).collect();
        let tb = Testbed::sigcomm11();
        let serial = sweep(&tb, &scenario, &cfg, &protocols, &seeds);
        for threads in [2usize, 4, 0] {
            let par = sweep_parallel(&tb, &scenario, &cfg, &protocols, &seeds, threads);
            assert_eq!(serial.len(), par.len());
            for (s, p) in serial.iter().zip(&par) {
                assert_eq!(s.protocol, p.protocol, "{threads} threads");
                assert_eq!(s.n_runs, p.n_runs, "{threads} threads");
                assert_eq!(s.mean_total_mbps, p.mean_total_mbps, "{threads} threads");
                assert_eq!(s.ci95_total_mbps, p.ci95_total_mbps, "{threads} threads");
                assert_eq!(
                    s.mean_per_flow_mbps, p.mean_per_flow_mbps,
                    "{threads} threads"
                );
                assert_eq!(s.mean_dof, p.mean_dof, "{threads} threads");
            }
        }
    }

    /// A `SweepJob` is a pure function of its seed: running it twice —
    /// or via the engine by hand — reproduces the result exactly.
    #[test]
    fn sweep_job_is_pure_in_its_seed() {
        let scenario = Scenario::three_pairs();
        let cfg = SimConfig {
            rounds: 4,
            ..SimConfig::default()
        };
        let tb = Testbed::sigcomm11();
        let protocols = [Protocol::NPlus];
        let job = SweepJob::new(&tb, &scenario, &cfg, &protocols, 7);
        let a = job.run();
        let b = job.run();
        assert_eq!(a.seed, 7);
        assert_eq!(
            a.per_protocol[0].per_flow_mbps,
            b.per_protocol[0].per_flow_mbps
        );
        assert_eq!(a.per_protocol[0].total_mbps, b.per_protocol[0].total_mbps);
    }

    /// Regression: `settle_round` used to collect a state's streams by
    /// receiver *node*, so two transmitters concurrently serving the
    /// same receiver — the hidden-terminal star, where a joiner's flow
    /// targets a node another transmission already serves — left empty
    /// per-stream SINR vectors and panicked in `effective_snr`. This is
    /// the exact generated configuration that crashed the sweep binary.
    #[test]
    fn hidden_terminal_concurrent_service_settles() {
        // The generator's `hidden_terminal(3)` at seed 42, written out
        // (testkit's `Scenario` is a separate crate instance inside this
        // crate's own test harness): three transmitters, one shared
        // 2-antenna receiver.
        let scenario = Scenario {
            antennas: vec![2, 1, 3, 4],
            flows: vec![
                Flow { tx: 1, rx: 0 },
                Flow { tx: 2, rx: 0 },
                Flow { tx: 3, rx: 0 },
            ],
        };
        let cfg = SimConfig {
            rounds: 8,
            ..SimConfig::default()
        };
        let seeds: Vec<u64> = (0..4).collect();
        let stats = sweep(
            &Testbed::sigcomm11(),
            &scenario,
            &cfg,
            &[Protocol::NPlus, Protocol::Dot11n],
            &seeds,
        );
        for s in &stats {
            assert!(
                s.mean_total_mbps.is_finite() && s.mean_total_mbps > 0.0,
                "{:?} produced no goodput on the shared-receiver star",
                s.protocol
            );
        }
    }

    #[test]
    fn sweep_aggregates_all_protocols() {
        let scenario = Scenario::three_pairs();
        let cfg = SimConfig {
            rounds: 6,
            ..SimConfig::default()
        };
        let stats = sweep(
            &Testbed::sigcomm11(),
            &scenario,
            &cfg,
            &[Protocol::NPlus, Protocol::Dot11n],
            &[1, 2, 3],
        );
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert_eq!(s.n_runs, 3);
            assert!(s.mean_total_mbps.is_finite() && s.mean_total_mbps > 0.0);
            assert!(s.ci95_total_mbps.is_finite() && s.ci95_total_mbps >= 0.0);
            assert_eq!(s.mean_per_flow_mbps.len(), 3);
            assert!(s.mean_dof > 0.0);
        }
    }
}
