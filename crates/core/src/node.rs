//! Distributed join orchestration: the n+ node-side procedure.
//!
//! Everything a joining transmitter does between "the medium is occupied"
//! and "I am transmitting concurrently", using only information it can
//! obtain over the air (paper §2–§4):
//!
//! 1. capture the handshake preambles of prior contention winners and
//!    **estimate the reverse channels** from their LTFs;
//! 2. apply **reciprocity** to obtain the forward channels to the
//!    protected receivers (subject to the hardware calibration residual);
//! 3. run **join power control** against the threshold `L`;
//! 4. compute per-subcarrier **pre-coding vectors** (nulling/alignment);
//! 5. **pre-compensate CFO** against the first winner and emit per-antenna
//!    OFDM sample streams ready for the medium.
//!
//! The protocol simulators in [`crate::sim`] shortcut steps 1–2 with the
//! hardware error model applied directly to the true channels (the two are
//! statistically equivalent and the sim must be fast); this module is the
//! faithful sample-level path, used by the examples and integration tests.

use crate::power_control::{join_power_decision, JoinPowerDecision};
use crate::precoder::{
    compute_precoders, OwnReceiver, PrecoderError, Precoding, ProtectedReceiver,
};
use nplus_channel::impairments::HardwareProfile;
use nplus_linalg::{CMatrix, CVector, Complex64, Subspace};
use nplus_phy::chanest::estimate_mimo_from_preamble;
use nplus_phy::modulation::{modulate, Modulation};
use nplus_phy::ofdm::assemble_symbol_with_pilot_gain;
use nplus_phy::params::{data_subcarrier_indices, occupied_subcarrier_indices, OfdmConfig};
use rand::rngs::StdRng;

/// The channels a joiner has learned to one protected receiver, per
/// occupied subcarrier, in the *forward* direction (joiner → receiver).
#[derive(Debug, Clone)]
pub struct LearnedReceiver {
    /// Forward channel belief per occupied subcarrier (`N × M`).
    pub channels: Vec<CMatrix>,
    /// The receiver's advertised unwanted space per occupied subcarrier
    /// (decoded from its light-weight CTS). Zero-dim = nulling target.
    pub unwanted: Vec<Subspace>,
}

/// Estimates the reverse channel (receiver → joiner) from a captured
/// preamble and converts it into a forward belief via reciprocity.
///
/// `capture` holds the joiner's per-antenna samples aligned to the start
/// of the receiver's `n_rx_antennas`-antenna preamble (the receiver sent
/// it as part of its own past handshake). The hardware profile adds the
/// calibration residual that real Tx/Rx chain asymmetry leaves.
pub fn learn_forward_channel(
    capture: &[Vec<Complex64>],
    n_rx_antennas: usize,
    cfg: &OfdmConfig,
    hardware: &HardwareProfile,
    rng: &mut StdRng,
) -> Vec<CMatrix> {
    let m = capture.len(); // joiner antennas
                           // Reverse channel per joiner antenna: estimates[ant][rx_ant].h[k].
    let estimates: Vec<Vec<nplus_phy::ChannelEstimate>> = capture
        .iter()
        .map(|stream| estimate_mimo_from_preamble(stream, n_rx_antennas, cfg))
        .collect();
    occupied_subcarrier_indices()
        .iter()
        .map(|&k| {
            // Reverse H_rev is m × n_rx (joiner receives); forward is its
            // transpose by electromagnetic reciprocity.
            let mut fwd = CMatrix::zeros(n_rx_antennas, m);
            for (ant, per_rx) in estimates.iter().enumerate() {
                for (rx_ant, est) in per_rx.iter().enumerate() {
                    fwd[(rx_ant, ant)] = est.h[k];
                }
            }
            hardware.apply_calibration_error(&fwd, rng)
        })
        .collect()
}

/// The complete join decision for one prospective joiner.
#[derive(Debug)]
pub struct JoinPlan {
    /// Per-stream, per-occupied-subcarrier pre-coding vectors (already
    /// scaled by the power-control amplitude).
    pub precoders: Vec<Vec<CVector>>,
    /// The power decision that was applied.
    pub power: JoinPowerDecision,
}

/// Errors a joiner can hit.
#[derive(Debug)]
pub enum JoinError {
    /// The precoder could not satisfy the constraints on some subcarrier.
    Precoder(PrecoderError),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Precoder(e) => write!(f, "join failed: {e}"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Computes a join plan: power control plus per-subcarrier precoding
/// against the learned protected receivers, delivering `n_streams` to a
/// receiver with learned forward channels `own`.
pub fn plan_join(
    m_antennas: usize,
    protected: &[LearnedReceiver],
    own: &LearnedReceiver,
    n_streams: usize,
    l_db: f64,
) -> Result<JoinPlan, JoinError> {
    let n_sc = occupied_subcarrier_indices().len();
    // Power control on the median subcarrier (channel magnitudes vary
    // slowly; the paper's rule uses the estimated aggregate power).
    let mid = n_sc / 2;
    let mats: Vec<&CMatrix> = protected.iter().map(|p| &p.channels[mid]).collect();
    let power = if mats.is_empty() {
        JoinPowerDecision::FullPower
    } else {
        join_power_decision(&mats, l_db)
    };
    let amp = power.amplitude();

    let mut precoders: Vec<Vec<CVector>> = vec![Vec::with_capacity(n_sc); n_streams];
    for k in 0..n_sc {
        let prot: Vec<ProtectedReceiver> = protected
            .iter()
            .map(|p| ProtectedReceiver {
                channel: p.channels[k].clone(),
                unwanted: p.unwanted[k].clone(),
            })
            .collect();
        let own_rx = OwnReceiver {
            channel: own.channels[k].clone(),
            n_streams,
            unwanted: own.unwanted[k].clone(),
        };
        let p: Precoding =
            compute_precoders(m_antennas, &prot, &[own_rx]).map_err(JoinError::Precoder)?;
        for (s, v) in p.vectors.into_iter().enumerate() {
            precoders[s].push(v.scale_re(amp));
        }
    }
    Ok(JoinPlan { precoders, power })
}

/// Renders one spatial stream of QPSK-modulated bits into per-antenna
/// OFDM sample streams using the plan's per-subcarrier pre-coding
/// vectors. Returns `m_antennas` equal-length streams.
///
/// (The full coding chain lives in `nplus-phy::ofdm`; this helper maps
/// raw constellation bits so tests can measure exact BER.)
pub fn render_precoded_stream(
    bits: &[u8],
    plan_stream: &[CVector],
    m_antennas: usize,
    cfg: &OfdmConfig,
) -> Vec<Vec<Complex64>> {
    let data_idx = data_subcarrier_indices();
    let occ = occupied_subcarrier_indices();
    // Map occupied-subcarrier index -> position in `occ` for plan lookup.
    let occ_pos: std::collections::HashMap<usize, usize> =
        occ.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    let bps = 2; // QPSK
    let per_symbol = data_idx.len() * bps;
    assert!(
        bits.len().is_multiple_of(per_symbol),
        "bits must fill whole OFDM symbols"
    );
    let n_symbols = bits.len() / per_symbol;
    // Pilots must be precoded like the data (they share the null
    // constraints): use the precoding component at the first pilot
    // subcarrier for this antenna.
    let pilot_bin = nplus_phy::params::pilot_subcarrier_indices()[0];
    let mut streams = vec![Vec::with_capacity(n_symbols * cfg.symbol_len()); m_antennas];
    for s in 0..n_symbols {
        let syms = modulate(
            &bits[s * per_symbol..(s + 1) * per_symbol],
            Modulation::Qpsk,
        );
        for (ant, stream) in streams.iter_mut().enumerate() {
            let scaled: Vec<Complex64> = data_idx
                .iter()
                .zip(&syms)
                .map(|(&bin, &sym)| sym * plan_stream[occ_pos[&bin]][ant])
                .collect();
            let pilot_gain = plan_stream[occ_pos[&pilot_bin]][ant];
            stream.extend(assemble_symbol_with_pilot_gain(&scaled, s, pilot_gain, cfg));
        }
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use nplus_channel::fading::DelayProfile;
    use nplus_channel::impairments::IDEAL_HARDWARE;
    use nplus_channel::mimo::MimoLink;
    use nplus_medium::medium::{Medium, Transmission};
    use nplus_phy::preamble::{mimo_preamble, preamble_len};
    use rand::SeedableRng;

    /// Builds a medium where rx1 (1 ant) has sent its preamble, and tx2
    /// (2 ant) captures it to learn the forward channel by reciprocity.
    #[test]
    fn learned_channel_matches_truth_reciprocally() {
        let cfg = OfdmConfig::usrp2();
        let mut medium = Medium::new(cfg.bandwidth_hz, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let rx1 = medium.add_node(1, 0.0);
        let tx2 = medium.add_node(2, 0.0);
        medium.set_link(
            rx1,
            tx2,
            MimoLink::sample(1, 2, 15.0, &DelayProfile::los(), &mut rng),
        );
        medium.set_noise_power(0.0);
        // rx1 sends its (single-antenna) preamble (as its earlier CTS did).
        medium.transmit(Transmission {
            from: rx1,
            start: 0,
            streams: mimo_preamble(&cfg, 1),
            cfo_precompensation_hz: 0.0,
        });
        let plen = preamble_len(&cfg, 1);
        let capture = medium.capture(tx2, 0, plen);
        let mut rng2 = StdRng::seed_from_u64(1);
        let learned = learn_forward_channel(&capture, 1, &cfg, &IDEAL_HARDWARE, &mut rng2);
        // Compare against the true forward channel tx2 -> rx1 (the
        // reciprocal of what was estimated).
        let truth = medium.link(tx2, rx1).unwrap();
        for (i, &k) in occupied_subcarrier_indices().iter().enumerate() {
            let h_true = truth.channel_matrix(k, cfg.fft_len);
            assert!(
                learned[i].approx_eq(&h_true, 0.25),
                "bin {k}: {:?} vs {:?}",
                learned[i],
                h_true
            );
        }
    }

    /// A join planned purely from over-the-air estimates achieves a deep
    /// null at the protected receiver.
    #[test]
    fn over_the_air_join_nulls_deeply() {
        let cfg = OfdmConfig::usrp2();
        let mut medium = Medium::new(cfg.bandwidth_hz, 21);
        let mut rng = StdRng::seed_from_u64(3);
        let rx1 = medium.add_node(1, 0.0);
        let tx2 = medium.add_node(2, 0.0);
        let rx2 = medium.add_node(2, 0.0);
        medium.set_link(
            rx1,
            tx2,
            MimoLink::sample(1, 2, 12.0, &DelayProfile::los(), &mut rng),
        );
        medium.set_link(
            tx2,
            rx2,
            MimoLink::sample(2, 2, 18.0, &DelayProfile::los(), &mut rng),
        );
        // rx1's preamble on the air; tx2 listens (noise on).
        medium.set_noise_power(0.01); // strong preamble SNR regime
        medium.transmit(Transmission {
            from: rx1,
            start: 0,
            streams: mimo_preamble(&cfg, 1),
            cfo_precompensation_hz: 0.0,
        });
        let plen = preamble_len(&cfg, 1);
        let capture = medium.capture(tx2, 0, plen);
        let mut hw_rng = StdRng::seed_from_u64(2);
        let protected = LearnedReceiver {
            channels: learn_forward_channel(
                &capture,
                1,
                &cfg,
                &HardwareProfile::default(),
                &mut hw_rng,
            ),
            unwanted: vec![Subspace::zero(1); occupied_subcarrier_indices().len()],
        };
        // Own receiver: use the (reciprocal) truth for simplicity.
        let own_truth = medium.link(tx2, rx2).unwrap();
        let own = LearnedReceiver {
            channels: occupied_subcarrier_indices()
                .iter()
                .map(|&k| own_truth.channel_matrix(k, cfg.fft_len))
                .collect(),
            unwanted: vec![Subspace::zero(2); occupied_subcarrier_indices().len()],
        };
        let plan = plan_join(2, &[protected], &own, 1, 27.0).expect("join must be possible");

        // Evaluate the achieved nulling depth against the TRUE channel.
        let truth = medium.link(tx2, rx1).unwrap();
        let mut worst_db = f64::NEG_INFINITY;
        for (i, &k) in occupied_subcarrier_indices().iter().enumerate() {
            let h = truth.channel_matrix(k, cfg.fft_len);
            let resid = h.mul_vec(&plan.precoders[0][i]).norm_sqr();
            let pre = h.frobenius_norm().powi(2) / 2.0;
            worst_db = worst_db.max(10.0 * (resid / pre).log10());
        }
        assert!(
            worst_db < -15.0,
            "over-the-air nulling depth only {worst_db:.1} dB"
        );
    }

    /// The rendered precoded stream respects the per-antenna layout and
    /// total sample count.
    #[test]
    fn render_shapes() {
        let cfg = OfdmConfig::usrp2();
        let n_sc = occupied_subcarrier_indices().len();
        let plan_stream: Vec<CVector> = (0..n_sc)
            .map(|_| CVector::from_reals(&[0.6, 0.8]))
            .collect();
        let bits = vec![1u8; 96 * 3]; // 3 QPSK OFDM symbols
        let streams = render_precoded_stream(&bits, &plan_stream, 2, &cfg);
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].len(), 3 * cfg.symbol_len());
        assert_eq!(streams[1].len(), 3 * cfg.symbol_len());
        // Antenna 1 carries 0.8/0.6 times antenna 0's amplitude.
        let p0: f64 = streams[0].iter().map(|z| z.norm_sqr()).sum();
        let p1: f64 = streams[1].iter().map(|z| z.norm_sqr()).sum();
        assert!(((p1 / p0) - (0.8f64 / 0.6).powi(2)).abs() < 1e-9);
    }

    /// Power control inside plan_join throttles a too-strong joiner.
    #[test]
    fn plan_join_applies_power_control() {
        let n_sc = occupied_subcarrier_indices().len();
        // Protected channel at ~40 dB: must trigger reduction at L=27.
        let strong = CMatrix::from_vec(
            1,
            2,
            vec![nplus_linalg::c64(70.0, 0.0), nplus_linalg::c64(0.0, 70.0)],
        );
        let own_h = CMatrix::from_vec(
            2,
            2,
            vec![
                nplus_linalg::c64(3.0, 0.0),
                nplus_linalg::c64(0.0, 1.0),
                nplus_linalg::c64(1.0, -1.0),
                nplus_linalg::c64(2.0, 0.5),
            ],
        );
        let protected = LearnedReceiver {
            channels: vec![strong; n_sc],
            unwanted: vec![Subspace::zero(1); n_sc],
        };
        let own = LearnedReceiver {
            channels: vec![own_h; n_sc],
            unwanted: vec![Subspace::zero(2); n_sc],
        };
        let plan = plan_join(2, &[protected], &own, 1, 27.0).unwrap();
        match plan.power {
            JoinPowerDecision::Reduced { amplitude_factor } => {
                assert!(amplitude_factor < 1.0);
                // Precoders carry the reduced amplitude.
                let norm: f64 = plan.precoders[0][0].norm();
                assert!((norm - amplitude_factor).abs() < 1e-9);
            }
            other => panic!("expected power reduction, got {other:?}"),
        }
    }
}
