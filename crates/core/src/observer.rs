//! Round-level event tap for the simulation engine.
//!
//! [`SimEngine`](crate::sim::SimEngine) narrates every run through a
//! [`RoundObserver`]: one [`ContentionRecord`] per medium acquisition,
//! one [`JoinRecord`] per secondary-contention attempt, and one
//! [`RoundRecord`] per round carrying the settled per-flow bits, the
//! round's airtime and the final per-stream ledger. The engine's own
//! goodput/DoF accounting is itself an observer —
//! [`GoodputAccumulator`] — rather than ad-hoc accumulators inside the
//! round loop, which is the API's contract: **everything in a
//! [`RunResult`] is reconstructible from the event stream alone**, and
//! the `observer_contract` integration suite asserts the reconstruction
//! is bit-for-bit exact for every built-in policy.

use crate::sim::RunResult;
use nplus_phy::rates::RateIndex;

/// Which sweep job a run belongs to — the labels an observer needs to
/// file the stream it is watching (the recording codec above all).
///
/// Delivered through [`RunMeta::identity`] by the sweep layer
/// ([`SweepJob::run_observed`](crate::sim::SweepJob::run_observed));
/// plain engine calls carry `None` because a bare engine has no sweep
/// context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunIdentity {
    /// The job's topology/run seed.
    pub seed: u64,
    /// Registry name of the propagation environment the topology was
    /// drawn in.
    pub environment: String,
    /// The sweep's `CanonicalSpec` v3 content key, when the spec
    /// canonicalizes (`None` for ad-hoc specs — custom policies,
    /// testbed overrides, non-canonical configs).
    pub canonical_key: Option<u128>,
}

/// Run-level metadata, delivered once before the first round.
#[derive(Debug, Clone)]
pub struct RunMeta<'a> {
    /// Name of the policy being simulated.
    pub policy: &'a str,
    /// Number of flows in the scenario (the length of per-round
    /// `flow_bits` slices).
    pub n_flows: usize,
    /// Rounds the run will simulate.
    pub rounds: usize,
    /// Sample clock in Hz — what converts accumulated airtime samples
    /// into seconds (and hence bits into Mb/s).
    pub bandwidth_hz: f64,
    /// Which sweep job this run belongs to, when the caller supplied
    /// one (`None` for plain `run`/`run_observed` engine calls).
    pub identity: Option<RunIdentity>,
}

/// How the round's primary transmitter acquired the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentionKind {
    /// Primary CSMA contention among all backlogged transmitters.
    Primary,
    /// Secondary contention among join-eligible transmitters (n+ only).
    Join,
    /// Chosen by an omniscient scheduler — no contention took place.
    Scheduled,
}

/// One medium acquisition: who contended, who won, how long it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionRecord {
    /// Round index.
    pub round: usize,
    /// Primary, join, or scheduled.
    pub kind: ContentionKind,
    /// How many transmitters contended.
    pub n_contenders: usize,
    /// Winning scenario node.
    pub winner: usize,
    /// Backoff slots elapsed (including collision penalties); 0 for
    /// scheduled access.
    pub slots: u64,
}

/// One secondary-contention join attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinRecord {
    /// Round index.
    pub round: usize,
    /// The joining scenario node.
    pub tx: usize,
    /// Streams the joiner asked for (0 when its allocation came up
    /// empty).
    pub n_streams: usize,
    /// Whether the join went through: `false` when the allocation was
    /// empty, the body had no air time left, power control declined, or
    /// the precoder/rate plan failed.
    pub accepted: bool,
}

/// One planned stream in a round's final ledger, in planning order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRecord {
    /// Flow the stream serves.
    pub flow: usize,
    /// Transmitting scenario node.
    pub tx: usize,
    /// Selected rate (index into the MCS table).
    pub rate: RateIndex,
    /// Body symbols the stream was on the air.
    pub active_symbols: usize,
}

/// End-of-round settlement: everything the engine accounts from a round.
#[derive(Debug, Clone)]
pub struct RoundRecord<'a> {
    /// Round index.
    pub round: usize,
    /// Data-body length in OFDM symbols (0 when even the primary winner
    /// could not transmit).
    pub body_symbols: usize,
    /// Total airtime the round consumed, in samples (contention,
    /// handshakes, body, ACKs, interframe spacings).
    pub duration_samples: u64,
    /// Delivered bits per flow, post-settlement (success-probability
    /// weighted).
    pub flow_bits: &'a [f64],
    /// Final per-stream ledger, in planning order.
    pub streams: &'a [StreamRecord],
}

/// Event tap over a simulation run. All hooks default to no-ops;
/// implement the ones you need.
pub trait RoundObserver {
    /// Called once, before the first round.
    fn on_run_start(&mut self, _meta: &RunMeta) {}
    /// Called after each medium acquisition (primary, join, or
    /// scheduled).
    fn on_contention(&mut self, _ev: &ContentionRecord) {}
    /// Called after each secondary-contention join attempt resolves.
    fn on_join(&mut self, _ev: &JoinRecord) {}
    /// Called once per round after settlement, with the final ledger.
    fn on_round_end(&mut self, _ev: &RoundRecord) {}
}

/// The do-nothing observer (what plain `run` wires in).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RoundObserver for NullObserver {}

/// The engine's goodput/DoF accounting as an observer: folds
/// [`RoundRecord`]s into a [`RunResult`] exactly as the enum-era
/// accumulators did (same operations in the same order, so results are
/// bit-for-bit identical).
#[derive(Debug, Clone, Default)]
pub struct GoodputAccumulator {
    bits: Vec<f64>,
    total_samples: u64,
    dof_weighted: f64,
    dof_time: f64,
    bandwidth_hz: f64,
}

impl GoodputAccumulator {
    /// A fresh accumulator; sizes itself from [`RunMeta`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts the accumulated rounds into a [`RunResult`].
    pub fn finish(self) -> RunResult {
        let elapsed_s = self.total_samples as f64 / self.bandwidth_hz;
        let per_flow_mbps: Vec<f64> = self.bits.iter().map(|b| b / elapsed_s / 1e6).collect();
        RunResult {
            total_mbps: per_flow_mbps.iter().sum(),
            per_flow_mbps,
            mean_dof: if self.dof_time > 0.0 {
                self.dof_weighted / self.dof_time
            } else {
                0.0
            },
        }
    }
}

impl RoundObserver for GoodputAccumulator {
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.bits = vec![0.0; meta.n_flows];
        self.bandwidth_hz = meta.bandwidth_hz;
    }

    fn on_round_end(&mut self, ev: &RoundRecord) {
        for (f, b) in ev.flow_bits.iter().enumerate() {
            self.bits[f] += b;
        }
        self.total_samples += ev.duration_samples;
        let mean_streams: f64 = ev
            .streams
            .iter()
            .map(|s| s.active_symbols as f64)
            .sum::<f64>()
            / ev.body_symbols.max(1) as f64;
        self.dof_weighted += mean_streams * ev.body_symbols as f64;
        self.dof_time += ev.body_symbols as f64;
    }
}

/// Fans one event stream out to two observers (the engine uses this to
/// feed a caller's observer and its own accumulator from a single
/// narration).
pub(crate) struct Tee<'a> {
    pub a: &'a mut dyn RoundObserver,
    pub b: &'a mut dyn RoundObserver,
}

impl RoundObserver for Tee<'_> {
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.a.on_run_start(meta);
        self.b.on_run_start(meta);
    }

    fn on_contention(&mut self, ev: &ContentionRecord) {
        self.a.on_contention(ev);
        self.b.on_contention(ev);
    }

    fn on_join(&mut self, ev: &JoinRecord) {
        self.a.on_join(ev);
        self.b.on_join(ev);
    }

    fn on_round_end(&mut self, ev: &RoundRecord) {
        self.a.on_round_end(ev);
        self.b.on_round_end(ev);
    }
}
