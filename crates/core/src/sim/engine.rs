//! The reusable per-topology simulation engine.
//!
//! [`SimEngine`] owns the physics of a round — channel knowledge,
//! precoding, SINR settlement, handshake and airtime accounting — and
//! delegates every protocol decision to a
//! [`MacPolicy`](crate::policy::MacPolicy). Construction precomputes
//! the round-invariant context (occupied subcarriers, transmitter list,
//! per-transmitter flow lists) and — unless disabled via
//! [`SimConfig::cache_channels`] — a [`ChannelCache`] holding every
//! link's per-subcarrier frequency response, evaluated once instead of
//! inside the round × stream × subcarrier × interferer loop nest. Only
//! the **pure true channels** are cached; believed channels keep
//! drawing hardware error from the RNG in the exact same order, so
//! seeded runs are bit-for-bit identical with and without the cache.
//!
//! Every run is narrated through a
//! [`RoundObserver`](crate::observer::RoundObserver); the goodput/DoF
//! accounting that produces the [`RunResult`] is itself an observer
//! ([`GoodputAccumulator`](crate::observer::GoodputAccumulator)), so a
//! caller-supplied tap sees exactly the events the result is built
//! from.

use super::{
    MobilityModel, Protocol, RunResult, Scenario, SimConfig, SinrGrid, TrafficModel,
    BURST_ARRIVALS_PER_ROUND,
};
use crate::link::{zf_sinr_slices, zf_sinr_slices_into, ZfWorkspace};
use crate::observer::{
    ContentionKind, ContentionRecord, GoodputAccumulator, JoinRecord, NullObserver, RoundObserver,
    RoundRecord, RunIdentity, RunMeta, StreamRecord, Tee,
};
use crate::policy::{AllocScratch, MacPolicy, PolicyView};
use crate::power_control::{
    expected_interference_power_soa, join_power_decision_from_worst, JoinPowerDecision,
};
use crate::precoder::{
    compute_precoders_into, compute_precoders_into_with, OwnReceiverSoARef, PrecoderError,
    PrecoderWorkspace, ProtectedReceiverSoARef,
};
use nplus_channel::placement::Point;
use nplus_linalg::{CMatrixSoA, CVector, Subspace, SubspaceWorkspace, VecPool};
use nplus_mac::backoff::{resolve_contention_in, LeanResolution};
use nplus_mac::frames::{AckHeader, DataHeader};
use nplus_mac::timing::SampleTiming;
use nplus_medium::chancache::ChannelCache;
use nplus_medium::topology::Topology;
use nplus_phy::params::occupied_subcarrier_indices;
use nplus_phy::rates::{RateIndex, BASE_RATE, RATE_TABLE};
use nplus_phy::RATE_ESNR_THRESHOLDS_DB;
use rand::rngs::StdRng;
use rand::Rng;
use std::borrow::Cow;

/// One planned concurrent stream. Pooled: the slot (and each precoder's
/// heap buffer) is retained across rounds by the run's [`RoundBufs`].
#[derive(Default)]
struct PlannedStream {
    flow: usize,
    /// Per evaluated-bin pre-coding vector (one per [`SimEngine::eval_pos`]
    /// entry), scaled by the transmitter's per-stream power and join-power
    /// factor.
    precoders: VecPool<CVector>,
    /// Chosen rate.
    rate: RateIndex,
    /// Transmitting node (scenario index).
    tx_node: usize,
    /// Symbols of body time this stream participates in.
    active_symbols: usize,
}

/// Per-receiver protection state (per occupied subcarrier).
///
/// One state is registered per (transmission, receiver) pair, so a node
/// served by two concurrent transmitters — the hidden-terminal shape —
/// owns two states, each decoding only the streams registered with it
/// (`stream_ids`); the other transmission's arrivals land in this
/// state's unwanted space (it was constructed to contain them) or leak
/// as residual interference.
/// Pooled like [`PlannedStream`]: `unwanted`/`wanted` grow once to the
/// engine's evaluated-bin count and are then reassigned in place every
/// round, so the steady state allocates nothing.
#[derive(Default)]
struct ReceiverState {
    node: usize,
    /// Ids (into the round's stream list) of the streams this state
    /// decodes: exactly the columns of `wanted`, in order.
    stream_ids: Vec<usize>,
    /// Advertised unwanted space per evaluated bin.
    unwanted: Vec<Subspace>,
    /// Wanted effective channels per evaluated bin (columns appended as
    /// this receiver's streams are planned).
    wanted: Vec<VecPool<CVector>>,
}

impl ReceiverState {
    /// Ensures the per-bin vectors cover `n_eval` slots (allocating only
    /// on first growth — never shrinking, so slot buffers survive) and
    /// clears the wanted columns for the round being planned.
    fn reset_bins(&mut self, n_eval: usize) {
        while self.unwanted.len() < n_eval {
            self.unwanted.push(Subspace::default());
        }
        while self.wanted.len() < n_eval {
            self.wanted.push(VecPool::default());
        }
        for w in &mut self.wanted[..n_eval] {
            w.clear();
        }
    }
}

/// A memoized opening plan: the full per-subcarrier planning result of a
/// transmitter opening a round with a single receiver and no protected
/// receivers. In that case the precoders are an unconstrained orthonormal
/// basis and rate selection sees only the pure true channels — nothing
/// depends on the believed-channel draws — so the plan (or its rate
/// failure) is a fixed function of the topology and can be computed once
/// per run instead of once per round.
struct FirstPlan {
    /// Per-stream, per-subcarrier pre-coding vectors.
    precoders: Vec<Vec<CVector>>,
    /// Chosen rate per stream.
    rates: Vec<RateIndex>,
    /// The receiver's advertised unwanted space per subcarrier.
    unwanted: Vec<Subspace>,
    /// The receiver's wanted arrival columns per subcarrier.
    wanted: Vec<Vec<CVector>>,
}

/// Reusable buffers for [`extend_unwanted_into`]: the base span, its
/// complement, and the candidate basis being assembled.
#[derive(Default)]
struct UnwantedWorkspace {
    base: Subspace,
    free: Subspace,
    cand: VecPool<CVector>,
    sub_ws: SubspaceWorkspace,
    w: CVector,
}

/// The per-run arena: every buffer the round loop touches, reused across
/// rounds, bins and receivers so the steady state performs **zero**
/// allocations (proven by the counting-allocator test in `nplus-bench`).
/// Buffers grow to the run's high-water mark during the first rounds and
/// are only cleared — never shrunk or dropped — afterwards.
#[derive(Default)]
struct Scratch {
    /// Ongoing-stream arrival vectors at one receiver, one bin.
    arrivals: VecPool<CVector>,
    /// Residual (unknown) interference leaks.
    residual: VecPool<CVector>,
    /// Secondary-contention eligible transmitters.
    eligible: Vec<usize>,
    /// Stream counts per receiver for handshake sizing.
    streams_per_rx: Vec<usize>,
    /// Stream ids destined to the receiver being settled.
    my_streams: Vec<usize>,
    /// Memoized opening plans keyed by `(tx, flow, n_streams)`; `None`
    /// records a rate-selection failure (also a pure topology fact).
    first_plans: Vec<((usize, usize, usize), Option<FirstPlan>)>,
    /// Believed channels to protected receivers, flat `[p * n_eval + e]`.
    bp: Vec<CMatrixSoA>,
    /// Audibility per protected receiver (`false`: below the floor, no
    /// nulling constraint and no further believed-channel draws).
    bp_ok: Vec<bool>,
    /// Indices of the audible protected receivers.
    audible: Vec<usize>,
    /// Believed channels to own receivers, flat `[i * n_eval + e]`.
    bo: Vec<CMatrixSoA>,
    /// One arrival vector (`H · v`) being inspected.
    arr_tmp: CVector,
    /// Per-bin SINRs out of one joint-ZF solve.
    sinr_tmp: Vec<f64>,
    /// Per-stream SINR tracks across evaluated bins.
    sinr_acc: Vec<Vec<f64>>,
    /// Full-grid SINR buffer for decimated-grid interpolation.
    interp: Vec<f64>,
    unw_ws: UnwantedWorkspace,
    prec_ws: PrecoderWorkspace,
    zf_ws: ZfWorkspace,
}

/// Round-lifetime pools owned by [`SimEngine::run_observed`]: the stream
/// and receiver-state lists the enum-era engine allocated fresh each
/// round, plus the contention, allocation and settlement buffers.
#[derive(Default)]
struct RoundBufs {
    protected: VecPool<ReceiverState>,
    streams: VecPool<PlannedStream>,
    first_alloc: Vec<(usize, usize)>,
    join_alloc: Vec<(usize, usize)>,
    alloc_ws: AllocScratch,
    round_bits: Vec<f64>,
    records: Vec<StreamRecord>,
    /// Contention windows / backoff draws for [`contend`].
    cws: Vec<u32>,
    draws: Vec<u32>,
}

/// One fully evaluated omniscient-scheduler candidate: the outcome of
/// forcing a particular primary transmitter for the round.
struct CandidateRound {
    primary: usize,
    /// `(joiner, streams granted)` in join order.
    joins: Vec<(usize, usize)>,
    flow_bits: Vec<f64>,
    bits_total: f64,
    body_symbols: usize,
    duration_samples: u64,
    streams: Vec<StreamRecord>,
}

/// Extends the span of `existing` with directions orthogonal to it, up
/// to `target_dim` dimensions, writing the result into `out` through the
/// pooled subspace kernels (`assign_span`, `complement_into`). The
/// arithmetic — one span, one complement, one re-span of the assembled
/// basis — replicates the old allocating `extend_unwanted` operation for
/// operation, so results are bit-identical.
fn extend_unwanted_into(
    ambient: usize,
    existing: &[CVector],
    target_dim: usize,
    out: &mut Subspace,
    ws: &mut UnwantedWorkspace,
) {
    ws.base.assign_span(ambient, existing, &mut ws.w);
    if ws.base.dim() >= target_dim {
        out.assign_from(&ws.base);
        return;
    }
    ws.base.complement_into(&mut ws.free, &mut ws.sub_ws);
    ws.cand.clear();
    for b in ws.base.basis() {
        ws.cand.push_slot().copy_from(b);
    }
    for b in ws.free.basis() {
        if ws.cand.len() >= target_dim {
            break;
        }
        ws.cand.push_slot().copy_from(b);
    }
    out.assign_span(ambient, ws.cand.as_slice(), &mut ws.w);
}

/// Piecewise-geometric interpolation of a decimated SINR track back onto
/// the full occupied-bin grid: exact at every evaluated bin, constant
/// past the last one, log-domain (dB-linear) between bins. SINR fades
/// are multiplicative, so interpolating in the log domain tracks the
/// dips between evaluated bins far better than linear-in-linear — which
/// systematically overestimates frequency-selective notches and with
/// them the ESNR the rate ladder sees. Only the [`SinrGrid::Decimated`]
/// tier runs this — under [`SinrGrid::Full`] the track is already
/// full-grid and is passed through untouched (zero float operations,
/// preserving bit identity).
fn interpolate_track(eval_pos: &[usize], vals: &[f64], n_sc: usize, out: &mut Vec<f64>) {
    debug_assert_eq!(eval_pos.len(), vals.len());
    out.clear();
    let mut seg = 0usize;
    for k in 0..n_sc {
        while seg + 1 < eval_pos.len() && eval_pos[seg + 1] <= k {
            seg += 1;
        }
        let v = if seg + 1 >= eval_pos.len() || k == eval_pos[seg] {
            vals[seg]
        } else {
            let (k0, k1) = (eval_pos[seg], eval_pos[seg + 1]);
            let t = (k - k0) as f64 / (k1 - k0) as f64;
            // v0^(1-t) * v1^t, guarded against non-positive inputs (the
            // SINR kernel floors at 1/1e300, but a caller-supplied track
            // must not produce NaN): fall back to linear there.
            if vals[seg] > 0.0 && vals[seg + 1] > 0.0 {
                (vals[seg].ln() * (1.0 - t) + vals[seg + 1].ln() * t).exp()
            } else {
                vals[seg] + (vals[seg + 1] - vals[seg]) * t
            }
        };
        out.push(v);
    }
}

/// Success probability of a stream: 1 dB linear ramp below the rate's
/// ESNR threshold (the thresholds are ~90% delivery points; the ramp
/// keeps Monte-Carlo noise down versus a hard cliff).
fn success_prob(esnr_db: f64, rate: RateIndex) -> f64 {
    let thr = RATE_ESNR_THRESHOLDS_DB[rate];
    ((esnr_db - (thr - 1.0)) / 1.0).clamp(0.0, 1.0)
}

/// Resolves contention among `contenders` (scenario node indices),
/// doubling windows on collisions. Returns `(winner, slots_elapsed)`.
/// Runs on the lean [`resolve_contention_in`] kernel with caller-pooled
/// window/draw buffers; colliders are recovered from the draws
/// (`draws[i] == slots`), so outcomes and RNG consumption are bit-exact
/// with the old collision-list form.
fn contend(
    contenders: &[usize],
    timing: &SampleTiming,
    cws: &mut Vec<u32>,
    draws: &mut Vec<u32>,
    rng: &mut StdRng,
) -> (usize, u64) {
    cws.clear();
    cws.resize(contenders.len(), timing.cw_min);
    let mut slots_total: u64 = 0;
    for _ in 0..32 {
        match resolve_contention_in(cws, rng, draws) {
            LeanResolution::Winner { index, slots } => {
                return (contenders[index], slots_total + slots as u64);
            }
            LeanResolution::Collision { slots } => {
                slots_total += slots as u64 + 20; // collided headers waste air
                for (cw, &d) in cws.iter_mut().zip(draws.iter()) {
                    if d == slots {
                        *cw = (*cw * 2 + 1).min(timing.cw_max);
                    }
                }
            }
            LeanResolution::Idle => unreachable!("contenders nonempty"),
        }
    }
    // Window exhausted without a unique winner: pick uniformly. A
    // deterministic fallback (e.g. the first contender) would bias the
    // long-run airtime share toward one transmitter.
    let i = rng.gen_range(0..contenders.len());
    (contenders[i], slots_total)
}

/// Typical alignment-blob size in bytes (CP¹ codec over 52 subcarriers:
/// header + first angles + escape mask + ~1 byte/subcarrier).
pub const TYPICAL_BLOB_BYTES: usize = 62;

/// Header exchange cost in OFDM symbols: data header + SIFS + per-receiver
/// ACK headers (each with an alignment blob of `blob_bytes`) + SIFS, all
/// at base rate.
///
/// `streams_per_rx` holds the actual stream allocation, one entry per
/// receiver. Both frame sizes come from the real codecs in `nplus-mac`:
/// the data header lists the real per-receiver stream counts, each ACK
/// carries one rate index per stream (§3.4 selects rates per stream),
/// and — since every receiver transmits its own ACK frame — each ACK is
/// padded to a whole OFDM symbol individually rather than rounding once
/// across the summed total.
fn handshake_symbols(cfg: &SimConfig, streams_per_rx: &[usize], blob_bytes: usize) -> usize {
    let one = [1usize];
    let per_rx: &[usize] = if streams_per_rx.is_empty() {
        &one
    } else {
        streams_per_rx
    };
    // Frame sizes via the codecs' closed forms (`encoded_len` is pinned
    // bit-for-bit against `to_bytes().len()` by the frames tests), so the
    // hot path never materializes header byte vectors.
    let hdr_bits = DataHeader::encoded_len(per_rx.len()) * 8;
    let base = BASE_RATE.data_bits_per_symbol();
    let ack_symbols: usize = per_rx
        .iter()
        .map(|&n| (AckHeader::encoded_len(n.max(1), blob_bytes) * 8).div_ceil(base))
        .sum();
    let sifs_syms = (cfg.timing.sifs as usize).div_ceil(cfg.timing.symbol as usize);
    hdr_bits.div_ceil(base) + ack_symbols + 2 * sifs_syms
}

/// The reusable per-topology simulation engine.
///
/// Construction precomputes everything that is invariant across rounds
/// and policies: occupied subcarriers, the transmitter list, per-node
/// flow lists, and (by default) the [`ChannelCache`] of every link's
/// per-subcarrier frequency responses. One engine can then
/// [`run_policy`](SimEngine::run_policy) any number of policies/seeds
/// against the same topology without re-evaluating channel taps;
/// [`run`](SimEngine::run) is the enum-era entry point kept for
/// backward compatibility.
pub struct SimEngine<'a> {
    topo: &'a Topology,
    scenario: &'a Scenario,
    cfg: &'a SimConfig,
    /// Occupied subcarrier indices (FFT bins), in order.
    occ: Vec<usize>,
    /// Positions (into `occ`) of the bins the SINR grid evaluates: the
    /// identity under [`SinrGrid::Full`], every `k`-th bin under
    /// [`SinrGrid::Decimated`].
    eval_pos: Vec<usize>,
    /// Distinct transmitter node indices with traffic.
    transmitters: Vec<usize>,
    /// Flow indices per scenario node (empty for non-transmitters).
    flows_of: Vec<Vec<usize>>,
    /// Pure true-channel cache; `None` when disabled for perf baselines.
    cache: Option<ChannelCache>,
}

impl<'a> SimEngine<'a> {
    /// Builds the engine for one topology/scenario/config triple.
    pub fn new(topo: &'a Topology, scenario: &'a Scenario, cfg: &'a SimConfig) -> Self {
        let occ = occupied_subcarrier_indices();
        let eval_pos: Vec<usize> = match cfg.sinr_grid {
            SinrGrid::Full => (0..occ.len()).collect(),
            SinrGrid::Decimated(k) => (0..occ.len()).step_by(k.max(1)).collect(),
        };
        let cache = if cfg.cache_channels {
            Some(ChannelCache::build(topo, &occ, cfg.ofdm.fft_len))
        } else {
            None
        };
        SimEngine {
            topo,
            scenario,
            cfg,
            transmitters: scenario.transmitters(),
            flows_of: (0..scenario.antennas.len())
                .map(|n| scenario.flows_of(n))
                .collect(),
            occ,
            eval_pos,
            cache,
        }
    }

    /// Number of evaluated bins (`occ.len()` under the full grid).
    fn n_eval(&self) -> usize {
        self.eval_pos.len()
    }

    /// The full-grid SINR track a rate decision sees: pass-through under
    /// [`SinrGrid::Full`] (zero float operations — the legacy bitwise
    /// path), linear interpolation across the evaluated bins under
    /// [`SinrGrid::Decimated`].
    fn rate_sinrs<'s>(&self, per_eval: &'s [f64], interp: &'s mut Vec<f64>) -> &'s [f64] {
        match self.cfg.sinr_grid {
            SinrGrid::Full => per_eval,
            SinrGrid::Decimated(_) => {
                interpolate_track(&self.eval_pos, per_eval, self.occ.len(), interp);
                interp
            }
        }
    }

    /// The policy-facing view of this engine's scenario context.
    fn policy_view(&self) -> PolicyView<'_> {
        PolicyView::new(self.scenario, &self.flows_of)
    }

    /// True per-subcarrier channel matrix between two scenario nodes —
    /// served from `cache` when one is active (the engine's own, or a
    /// run's mobility-rescaled copy), recomputed from the medium
    /// otherwise (the two are bitwise identical).
    ///
    /// `None` is the typed "no such link" answer: in sparse worlds it
    /// means the link sits below the environment's received-power floor,
    /// and every caller treats it as *nothing arrives* — no interference
    /// contribution, no nulling constraint, no flow service — instead of
    /// panicking on a missing cache entry.
    fn true_channel<'c>(
        &'c self,
        cache: Option<&'c ChannelCache>,
        from: usize,
        to: usize,
        k_occ: usize,
    ) -> Option<Cow<'c, CMatrixSoA>> {
        match cache {
            Some(cache) => cache.matrix(from, to, k_occ).map(Cow::Borrowed),
            None => {
                let link = self
                    .topo
                    .medium
                    .link(self.topo.nodes[from], self.topo.nodes[to])?;
                Some(Cow::Owned(CMatrixSoA::from_aos(
                    &link.channel_matrix(self.occ[k_occ], self.cfg.ofdm.fft_len),
                )))
            }
        }
    }

    /// What a transmitter believes the channel is: reciprocity plus
    /// hardware error, per bin — or the exact true channel for a
    /// [`perfect_knowledge`](MacPolicy::perfect_knowledge) policy.
    /// Imperfect knowledge is never cached: the hardware error draw must
    /// consume the RNG stream on every call; perfect knowledge consumes
    /// no RNG at all. An absent link returns `false` (and leaves `out`
    /// untouched) and consumes no RNG either — below the floor there is
    /// no reverse channel to estimate from.
    #[allow(clippy::too_many_arguments)]
    fn believed_channel_into(
        &self,
        policy: &dyn MacPolicy,
        cache: Option<&ChannelCache>,
        from: usize,
        to: usize,
        k_occ: usize,
        rng: &mut StdRng,
        out: &mut CMatrixSoA,
    ) -> bool {
        let Some(h) = self.true_channel(cache, from, to, k_occ) else {
            return false;
        };
        if policy.perfect_knowledge() {
            out.assign_from(&h);
        } else {
            self.cfg
                .hardware
                .reciprocal_channel_knowledge_into(&h, rng, out);
        }
        true
    }

    fn n_ant(&self, node: usize) -> usize {
        self.scenario.antennas[node]
    }

    /// Computes the memoizable opening plan of `tx` sending `n_streams`
    /// to the receiver of `f` with no protected receivers (see
    /// [`FirstPlan`]): unconstrained precoding basis, per-subcarrier
    /// unwanted spaces and arrival columns, joint-ZF rate selection —
    /// all from pure true channels, no RNG. Returns `None` when even the
    /// most robust rate cannot be sustained, or the direct link is not
    /// modeled at all (below the floor in a sparse world) — both pure
    /// topology facts, memoized as failures.
    fn plan_opening_single(
        &self,
        policy: &dyn MacPolicy,
        cache: Option<&ChannelCache>,
        tx: usize,
        f: usize,
        n_streams: usize,
    ) -> Option<FirstPlan> {
        let n_eval = self.n_eval();
        let m_tx = self.n_ant(tx);
        let rx = self.scenario.flows[f].rx;
        let n_rx = self.n_ant(rx);
        let target = n_rx.saturating_sub(n_streams);

        // Cold path, executed once per (tx, flow, n_streams) key per run:
        // local workspaces and owned result vectors are fine here — the
        // hot path only ever copies out of the memoized plan.
        let mut unw_ws = UnwantedWorkspace::default();
        let mut prec_ws = PrecoderWorkspace::default();

        // No ongoing arrivals: the advertised unwanted space is the same
        // construction on every bin.
        let unwanted: Vec<Subspace> = (0..n_eval)
            .map(|_| {
                let mut s = Subspace::default();
                extend_unwanted_into(n_rx, &[], target, &mut s, &mut unw_ws);
                s
            })
            .collect();

        let mut precoders: Vec<Vec<CVector>> = vec![Vec::with_capacity(n_eval); n_streams];
        for (e, &k) in self.eval_pos.iter().enumerate() {
            let h = self.true_channel(cache, tx, rx, k)?;
            let own = [OwnReceiverSoARef {
                channel: &h,
                n_streams,
                unwanted: &unwanted[e],
            }];
            match compute_precoders_into(m_tx, &[], &own, &mut prec_ws) {
                Ok(()) => {
                    for (i, v) in prec_ws.out.iter().enumerate() {
                        precoders[i].push(v.clone());
                    }
                }
                Err(_) => return None,
            }
        }

        // Joint-ZF rate selection against the pure channel (no ongoing
        // interference, no residuals — the receiver decodes its own
        // streams against its unwanted-space basis).
        let mut per_stream_sinrs: Vec<Vec<f64>> = vec![Vec::with_capacity(n_eval); n_streams];
        let mut wanted: Vec<Vec<CVector>> = Vec::with_capacity(n_eval);
        for (e, &k) in self.eval_pos.iter().enumerate() {
            let h = self.true_channel(cache, tx, rx, k)?;
            let cols: Vec<CVector> = precoders.iter().map(|pc| h.mul_vec(&pc[e])).collect();
            let sinrs = zf_sinr_slices(&cols, unwanted[e].basis(), &[], 1.0);
            for (s, &v) in sinrs.iter().enumerate() {
                per_stream_sinrs[s].push(v);
            }
            wanted.push(cols);
        }
        let mut interp = Vec::new();
        let mut rates = Vec::with_capacity(n_streams);
        for sinrs in &per_stream_sinrs {
            rates.push(policy.select_rate(self.rate_sinrs(sinrs, &mut interp))?);
        }
        Some(FirstPlan {
            precoders,
            rates,
            unwanted,
            wanted,
        })
    }

    /// Plans the transmission of one winner: computes precoders against
    /// the currently protected receivers, registers the new receiver
    /// state, and returns the planned streams as the contiguous id range
    /// `[start, end)` they occupy in `streams` (ids are always appended
    /// sequentially). Returns `None` — with `protected`/`streams` rolled
    /// back to their entry state — if the winner cannot join (no DoF,
    /// rate selection failure, or precoder degeneracy).
    #[allow(clippy::too_many_arguments)]
    fn plan_winner(
        &self,
        policy: &dyn MacPolicy,
        cache: Option<&ChannelCache>,
        tx: usize,
        allocation: &[(usize, usize)],
        protected: &mut VecPool<ReceiverState>,
        streams: &mut VecPool<PlannedStream>,
        body_symbols_left: usize,
        scratch: &mut Scratch,
        rng: &mut StdRng,
    ) -> Option<(usize, usize)> {
        let n_eval = self.n_eval();
        let m_tx = self.n_ant(tx);
        let total_new: usize = allocation.iter().map(|(_, n)| n).sum();
        if total_new == 0 {
            return None;
        }
        let stream_base = streams.len();
        let rs_base = protected.len();

        // Opening a round with one receiver and nothing to protect: the
        // whole plan is a pure function of the topology (see
        // [`FirstPlan`]) — serve it from the per-run memo. Multi-receiver
        // openings and joins stay on the full path below, where believed
        // channels (and hence the RNG stream) genuinely matter.
        if protected.is_empty() && allocation.len() == 1 {
            let (f, n_streams) = allocation[0];
            let key = (tx, f, n_streams);
            let idx = match scratch.first_plans.iter().position(|(k, _)| *k == key) {
                Some(i) => i,
                None => {
                    let plan = self.plan_opening_single(policy, cache, tx, f, n_streams);
                    scratch.first_plans.push((key, plan));
                    scratch.first_plans.len() - 1
                }
            };
            let plan = scratch.first_plans[idx].1.as_ref()?;
            let rx = self.scenario.flows[f].rx;
            for s in 0..n_streams {
                let slot = streams.push_slot();
                slot.flow = f;
                slot.rate = plan.rates[s];
                slot.tx_node = tx;
                slot.active_symbols = body_symbols_left;
                slot.precoders.clear();
                for pc in &plan.precoders[s] {
                    slot.precoders.push_slot().copy_from(pc);
                }
            }
            let rs = protected.push_slot();
            rs.node = rx;
            rs.stream_ids.clear();
            rs.stream_ids.extend(stream_base..stream_base + n_streams);
            rs.reset_bins(n_eval);
            for e in 0..n_eval {
                rs.unwanted[e].assign_from(&plan.unwanted[e]);
                for c in &plan.wanted[e] {
                    rs.wanted[e].push_slot().copy_from(c);
                }
            }
            return Some((stream_base, stream_base + n_streams));
        }

        // Believed channels to the protected receivers this transmitter
        // can actually reach: a protected receiver below the winner's
        // power floor imposes no nulling constraint (nothing arrives to
        // leak there) and costs no hardware-error draws — the per-bin
        // loop stops at the first absent bin exactly like the old
        // short-circuiting `collect::<Option<Vec<_>>>()`, so the RNG
        // stream is untouched. A believed channel to an *own* receiver
        // that is absent kills the whole plan — the policy asked to
        // serve a flow whose link is below the floor.
        let n_prot = protected.len();
        while scratch.bp.len() < n_prot * n_eval {
            scratch.bp.push(CMatrixSoA::default());
        }
        scratch.bp_ok.clear();
        for p in 0..n_prot {
            let node = protected[p].node;
            let mut ok = true;
            for e in 0..n_eval {
                let k = self.eval_pos[e];
                let out = &mut scratch.bp[p * n_eval + e];
                if !self.believed_channel_into(policy, cache, tx, node, k, rng, out) {
                    ok = false;
                    break;
                }
            }
            scratch.bp_ok.push(ok);
        }
        while scratch.bo.len() < allocation.len() * n_eval {
            scratch.bo.push(CMatrixSoA::default());
        }
        for (i, &(f, _)) in allocation.iter().enumerate() {
            let rx = self.scenario.flows[f].rx;
            for e in 0..n_eval {
                let k = self.eval_pos[e];
                let out = &mut scratch.bo[i * n_eval + e];
                if !self.believed_channel_into(policy, cache, tx, rx, k, rng, out) {
                    return None;
                }
            }
        }
        scratch.audible.clear();
        scratch
            .audible
            .extend((0..n_prot).filter(|&p| scratch.bp_ok[p]));

        // Join power control against protected receivers (worst subcarrier
        // median is approximated by the middle subcarrier's matrix). The
        // §4 rule is a policy decision now: n+ runs it, `GreedyJoin` and
        // the oracle (whose nulls are exact) bypass it. Only audible
        // protected receivers enter the decision.
        let decision = if policy.join_power_control() {
            let mid = n_eval / 2;
            if scratch.audible.is_empty() {
                JoinPowerDecision::FullPower
            } else {
                // Fold the worst-case interference power incrementally
                // (starting from 0.0, exactly like `join_power_decision`'s
                // fold) instead of materializing a matrix list.
                let mut worst = 0.0f64;
                for &p in &scratch.audible {
                    let pow = expected_interference_power_soa(&scratch.bp[p * n_eval + mid]);
                    worst = f64::max(worst, pow);
                }
                join_power_decision_from_worst(worst, self.cfg.l_db)
            }
        } else {
            JoinPowerDecision::FullPower
        };
        let amp = decision.amplitude();

        // Unwanted space each own receiver will advertise: span of the
        // true arrivals it already sees, extended to its spare dimension
        // count. (The receiver estimates these from overheard headers;
        // estimation is near-exact and the codec round-trip is tested
        // separately.) The receiver states are pushed as pooled shells
        // now — their unwanted spaces assigned in place, wanted columns
        // and stream ids filled during rate selection below — and rolled
        // back wholesale on any failure. Only pre-existing streams are
        // live in `streams` at this point, exactly the set the old code
        // iterated as `ongoing_streams`.
        for &(f, n_streams) in allocation {
            let rx = self.scenario.flows[f].rx;
            let n_rx = self.n_ant(rx);
            let target = n_rx.saturating_sub(n_streams);
            let rs = protected.push_slot();
            rs.node = rx;
            rs.stream_ids.clear();
            rs.reset_bins(n_eval);
            for e in 0..n_eval {
                let k = self.eval_pos[e];
                scratch.arrivals.clear();
                for s in streams.as_slice() {
                    let Some(h) = self.true_channel(cache, s.tx_node, rx, k) else {
                        continue; // below the floor: arrives as nothing
                    };
                    h.mul_vec_into(&s.precoders[e], scratch.arrivals.push_slot());
                }
                extend_unwanted_into(
                    n_rx,
                    scratch.arrivals.as_slice(),
                    target,
                    &mut rs.unwanted[e],
                    &mut scratch.unw_ws,
                );
            }
        }

        // Push the new stream slots so the per-bin precoding loop can
        // fill them in place.
        for &(f, n_streams) in allocation {
            for _ in 0..n_streams {
                let slot = streams.push_slot();
                slot.flow = f;
                slot.rate = 0;
                slot.tx_node = tx;
                slot.active_symbols = body_symbols_left;
                slot.precoders.clear();
            }
        }

        // Per-bin precoding through the split-storage kernels, with
        // accessor closures reading straight out of the flat pooled
        // believed-channel arrays — no per-bin view lists, no clones.
        for e in 0..n_eval {
            let result = {
                let Scratch {
                    bp,
                    bo,
                    audible,
                    prec_ws,
                    ..
                } = &mut *scratch;
                let bp: &[CMatrixSoA] = bp;
                let bo: &[CMatrixSoA] = bo;
                let audible: &[usize] = audible;
                let (prot_states, own_states) = protected.as_slice().split_at(rs_base);
                compute_precoders_into_with(
                    m_tx,
                    audible.len(),
                    |i| {
                        let p = audible[i];
                        ProtectedReceiverSoARef {
                            channel: &bp[p * n_eval + e],
                            unwanted: &prot_states[p].unwanted[e],
                        }
                    },
                    allocation.len(),
                    |i| OwnReceiverSoARef {
                        channel: &bo[i * n_eval + e],
                        n_streams: allocation[i].1,
                        unwanted: &own_states[i].unwanted[e],
                    },
                    prec_ws,
                )
            };
            match result {
                Ok(()) => {
                    for i in 0..total_new {
                        streams[stream_base + i]
                            .precoders
                            .push_slot()
                            .assign_scale_re(&scratch.prec_ws.out[i], amp);
                    }
                }
                Err(PrecoderError::NoDegreesOfFreedom | PrecoderError::TooManyStreams { .. }) => {
                    streams.truncate(stream_base);
                    protected.truncate(rs_base);
                    return None;
                }
            }
        }

        // Rate selection per stream: SINR at the owning receiver with
        // current ongoing interference (known to the receiver) — §3.4: the
        // joiner need not worry about future winners.
        //
        // The receive space is exactly budgeted: n wanted streams plus the
        // (N − n)-dimensional unwanted space. All streams destined to one
        // receiver are zero-forced *jointly* — one pseudo-inverse per
        // subcarrier, mirroring `settle_round`'s receiver model — with the
        // receiver's unwanted-space basis as the known-interference
        // columns. Streams destined to *other* receivers were aligned
        // into the unwanted space (covered by its basis) or nulled, and
        // whatever leaks outside is residual interference the receiver
        // cannot cancel.
        // The wanted arrival columns land directly in the pooled
        // receiver states (exactly the true-channel products the old
        // code kept in `wanted_cols` for registration), and the rates in
        // the already-pushed stream slots — a failure truncates both
        // pools back to the entry state, leaving the caller's view
        // untouched just like the old early `return None`.
        let mut lo = 0usize;
        for (i, &(f, n_streams)) in allocation.iter().enumerate() {
            let rx = self.scenario.flows[f].rx;
            let hi = lo + n_streams;
            while scratch.sinr_acc.len() < n_streams {
                scratch.sinr_acc.push(Vec::new());
            }
            for acc in &mut scratch.sinr_acc[..n_streams] {
                acc.clear();
            }
            for e in 0..n_eval {
                let k = self.eval_pos[e];
                let Some(h_true) = self.true_channel(cache, tx, rx, k) else {
                    streams.truncate(stream_base);
                    protected.truncate(rs_base);
                    return None;
                };
                scratch.residual.clear();
                for other in 0..total_new {
                    h_true.mul_vec_into(
                        &streams[stream_base + other].precoders[e],
                        &mut scratch.arr_tmp,
                    );
                    if other >= lo && other < hi {
                        // Sibling destined to this receiver: a wanted
                        // ZF column (jointly decoded).
                        protected[rs_base + i].wanted[e]
                            .push_slot()
                            .copy_from(&scratch.arr_tmp);
                    } else {
                        // Destined elsewhere: aligned part lives inside
                        // the unwanted space (already a column); only the
                        // hardware-error leak outside it degrades this
                        // receiver.
                        let slot = scratch.residual.push_slot();
                        protected[rs_base + i].unwanted[e].reject_into(&scratch.arr_tmp, slot);
                        if slot.norm_sqr() <= 1e-9 {
                            scratch.residual.pop_slot();
                        }
                    }
                }
                {
                    let rs = &protected[rs_base + i];
                    zf_sinr_slices_into(
                        rs.wanted[e].as_slice(),
                        rs.unwanted[e].basis(),
                        scratch.residual.as_slice(),
                        1.0,
                        &mut scratch.zf_ws,
                        &mut scratch.sinr_tmp,
                    );
                }
                for (s, &v) in scratch.sinr_tmp.iter().enumerate() {
                    scratch.sinr_acc[s].push(v);
                }
            }
            for s in 0..n_streams {
                let rate =
                    policy.select_rate(self.rate_sinrs(&scratch.sinr_acc[s], &mut scratch.interp));
                match rate {
                    Some(r) => streams[stream_base + lo + s].rate = r,
                    None => {
                        streams.truncate(stream_base);
                        protected.truncate(rs_base);
                        return None;
                    }
                }
            }
            let rs = &mut protected[rs_base + i];
            rs.stream_ids.clear();
            rs.stream_ids.extend(stream_base + lo..stream_base + hi);
            lo = hi;
        }
        Some((stream_base, stream_base + total_new))
    }

    /// Evaluates the realized per-stream ESNRs at every receiver,
    /// including the residual interference the precoding failed to
    /// cancel, and returns delivered bits per flow.
    fn settle_round_into(
        &self,
        cache: Option<&ChannelCache>,
        protected: &[ReceiverState],
        streams: &[PlannedStream],
        scratch: &mut Scratch,
        bits: &mut Vec<f64>,
    ) {
        bits.clear();
        bits.resize(self.scenario.flows.len(), 0.0);
        for rx_state in protected {
            // Streams this state decodes: exactly the ones registered
            // with it. Matching by receiver *node* here would break the
            // hidden-terminal shape — two transmitters serving the same
            // node register two states, and each state's `wanted`
            // columns cover only its own streams (the other
            // transmission's arrivals live in this state's unwanted
            // space, or leak as residual below).
            scratch.my_streams.clear();
            scratch
                .my_streams
                .extend(rx_state.stream_ids.iter().copied());
            if scratch.my_streams.is_empty() {
                continue;
            }
            // Per-stream SINR across evaluated bins, in the pooled
            // accumulators.
            let n_mine = scratch.my_streams.len();
            while scratch.sinr_acc.len() < n_mine {
                scratch.sinr_acc.push(Vec::new());
            }
            for acc in &mut scratch.sinr_acc[..n_mine] {
                acc.clear();
            }
            for (e, &k) in self.eval_pos.iter().enumerate() {
                // Residual interference: arrivals of *other* transmitters'
                // streams outside the advertised unwanted space.
                scratch.residual.clear();
                for (i, s) in streams.iter().enumerate() {
                    if scratch.my_streams.contains(&i) {
                        continue;
                    }
                    if s.tx_node == rx_state.node {
                        continue; // half duplex: own transmissions not heard
                    }
                    let Some(h) = self.true_channel(cache, s.tx_node, rx_state.node, k) else {
                        continue; // below the floor: no interference here
                    };
                    h.mul_vec_into(&s.precoders[e], &mut scratch.arr_tmp);
                    let slot = scratch.residual.push_slot();
                    rx_state.unwanted[e].reject_into(&scratch.arr_tmp, slot);
                    if slot.norm_sqr() <= 1e-12 {
                        scratch.residual.pop_slot();
                    }
                }
                zf_sinr_slices_into(
                    rx_state.wanted[e].as_slice(),
                    rx_state.unwanted[e].basis(),
                    scratch.residual.as_slice(),
                    1.0,
                    &mut scratch.zf_ws,
                    &mut scratch.sinr_tmp,
                );
                for (si, &v) in scratch.sinr_tmp.iter().enumerate() {
                    scratch.sinr_acc[si].push(v);
                }
            }
            for (si, &stream_id) in scratch.my_streams.iter().enumerate() {
                let s = &streams[stream_id];
                let mcs = RATE_TABLE[s.rate];
                let track = self.rate_sinrs(&scratch.sinr_acc[si], &mut scratch.interp);
                let esnr = nplus_phy::esnr::effective_snr(mcs.modulation, track);
                let esnr_db = 10.0 * esnr.max(1e-300).log10();
                let p = success_prob(esnr_db, s.rate);
                bits[s.flow] += (s.active_symbols * mcs.data_bits_per_symbol()) as f64 * p;
            }
        }
    }

    /// Simulates `cfg.rounds` rounds of the given protocol and returns
    /// the per-flow goodput. Engines are reusable: each call starts a
    /// fresh accounting with the caller's RNG. Thin wrapper over
    /// [`run_policy`](SimEngine::run_policy) via [`Protocol::policy`],
    /// bit-for-bit identical to the enum-era engine.
    pub fn run(&self, protocol: Protocol, rng: &mut StdRng) -> RunResult {
        self.run_policy(protocol.policy(), rng)
    }

    /// Simulates `cfg.rounds` rounds of the given policy and returns the
    /// per-flow goodput.
    pub fn run_policy(&self, policy: &dyn MacPolicy, rng: &mut StdRng) -> RunResult {
        self.run_observed(policy, rng, &mut NullObserver)
    }

    /// [`run_policy`](SimEngine::run_policy) with an event tap: every
    /// contention outcome, join attempt and end-of-round settlement is
    /// narrated to `observer` — the exact stream the returned
    /// [`RunResult`] is accumulated from (the `observer_contract` suite
    /// asserts the reconstruction is bitwise exact).
    pub fn run_observed(
        &self,
        policy: &dyn MacPolicy,
        rng: &mut StdRng,
        observer: &mut dyn RoundObserver,
    ) -> RunResult {
        self.run_identified(policy, rng, observer, None)
    }

    /// [`run_observed`](SimEngine::run_observed) with a caller-supplied
    /// [`RunIdentity`] delivered through [`RunMeta`] — how the sweep
    /// layer labels each job's stream (seed, environment name,
    /// canonical key) for observers that persist what they watch. The
    /// identity rides along unread by the engine; results are
    /// bit-for-bit those of [`run_observed`](SimEngine::run_observed).
    pub fn run_identified(
        &self,
        policy: &dyn MacPolicy,
        rng: &mut StdRng,
        observer: &mut dyn RoundObserver,
        identity: Option<RunIdentity>,
    ) -> RunResult {
        let mut acc = GoodputAccumulator::new();
        let meta = RunMeta {
            policy: policy.name(),
            n_flows: self.scenario.flows.len(),
            rounds: self.cfg.rounds,
            bandwidth_hz: self.cfg.ofdm.bandwidth_hz,
            identity,
        };
        let mut tee = Tee {
            a: observer,
            b: &mut acc,
        };
        tee.on_run_start(&meta);
        let mut scratch = Scratch::default();
        let mut bufs = RoundBufs::default();
        let mut traffic = TrafficState::new(&self.cfg.traffic, self.scenario.flows.len());
        let mut mobility = MobilityState::new_for(self);
        let mut active: Vec<usize> = Vec::with_capacity(self.transmitters.len());
        for round in 0..self.cfg.rounds {
            if let Some(m) = mobility.as_mut() {
                if m.advance(round, rng) {
                    // Channels moved: memoized opening plans are stale.
                    scratch.first_plans.clear();
                }
            }
            // The mobility-rescaled per-run cache shadows the engine's
            // pristine one; both are absent only in the no-cache,
            // no-mobility perf baseline.
            let cache = match &mobility {
                Some(m) => Some(&m.cache),
                None => self.cache.as_ref(),
            };
            // Arrivals land before access: who contends this round is
            // decided by the queues as of now. Saturated traffic keeps
            // no queues, draws nothing, and activates everyone — the
            // exact legacy path.
            traffic.arrive(&self.cfg.traffic, rng);
            active.clear();
            active.extend(
                self.transmitters
                    .iter()
                    .copied()
                    .filter(|&t| self.flows_of[t].iter().any(|&f| traffic.has_backlog(f))),
            );
            if active.is_empty() {
                // Nothing queued anywhere: the medium idles one DIFS.
                self.emit_idle_round(round, self.cfg.timing.difs, &mut bufs.round_bits, &mut tee);
                continue;
            }
            if policy.omniscient() {
                self.omniscient_round(
                    policy,
                    round,
                    cache,
                    &active,
                    &mut traffic,
                    &mut scratch,
                    &mut bufs,
                    rng,
                    &mut tee,
                );
            } else {
                self.contended_round(
                    policy,
                    round,
                    cache,
                    &active,
                    &mut traffic,
                    &mut scratch,
                    &mut bufs,
                    rng,
                    &mut tee,
                );
            }
        }
        acc.finish()
    }

    /// A round nobody managed to use: charge the airtime, settle nothing.
    /// `bits` is the caller's pooled per-flow buffer (zeroed here).
    fn emit_idle_round(
        &self,
        round: usize,
        duration_samples: u64,
        bits: &mut Vec<f64>,
        obs: &mut dyn RoundObserver,
    ) {
        bits.clear();
        bits.resize(self.scenario.flows.len(), 0.0);
        obs.on_round_end(&RoundRecord {
            round,
            body_symbols: 0,
            duration_samples,
            flow_bits: bits,
            streams: &[],
        });
    }

    /// Opens a round for the planned primary winner: handshake airtime
    /// from the real allocation, body length from the winner's aggregate
    /// rate (one packet per serviced flow), and the winner's streams
    /// patched to span the whole body. Shared by the contended and
    /// omniscient access paths so the accounting can never drift apart.
    fn open_body(
        &self,
        first_alloc: &[(usize, usize)],
        first_range: (usize, usize),
        streams: &mut VecPool<PlannedStream>,
        scratch: &mut Scratch,
    ) -> (u64, usize) {
        let cfg = self.cfg;
        scratch.streams_per_rx.clear();
        scratch
            .streams_per_rx
            .extend(first_alloc.iter().map(|&(_, n)| n));
        let handshake_samples = cfg.timing.symbol
            * handshake_symbols(cfg, &scratch.streams_per_rx, TYPICAL_BLOB_BYTES) as u64;
        let first_rate_sum: usize = (first_range.0..first_range.1)
            .map(|i| RATE_TABLE[streams[i].rate].data_bits_per_symbol())
            .sum();
        let packet_bits = cfg.packet_bytes * 8 * first_alloc.len();
        let body_symbols = packet_bits.div_ceil(first_rate_sum.max(1));
        for i in first_range.0..first_range.1 {
            streams[i].active_symbols = body_symbols;
        }
        (handshake_samples, body_symbols)
    }

    /// Total round airtime: everything in `overhead` (contention,
    /// handshakes) plus the data body, the ACK exchange and the closing
    /// DIFS.
    fn round_airtime(&self, overhead: u64, body_symbols: usize) -> u64 {
        let cfg = self.cfg;
        let ack_syms = 2 + (cfg.timing.sifs as usize).div_ceil(cfg.timing.symbol as usize);
        overhead + cfg.timing.symbol * (body_symbols + ack_syms) as u64 + cfg.timing.difs
    }

    /// The round's final per-stream ledger, in planning order, into the
    /// caller's pooled buffer.
    fn stream_records_into(streams: &[PlannedStream], out: &mut Vec<StreamRecord>) {
        out.clear();
        out.extend(streams.iter().map(|s| StreamRecord {
            flow: s.flow,
            tx: s.tx_node,
            rate: s.rate,
            active_symbols: s.active_symbols,
        }));
    }

    /// Owning form of [`stream_records_into`] for the omniscient path,
    /// whose candidate rounds outlive the pooled buffers.
    fn stream_records(streams: &[PlannedStream]) -> Vec<StreamRecord> {
        let mut out = Vec::new();
        Self::stream_records_into(streams, &mut out);
        out
    }

    /// One random-access round: primary CSMA contention, the winner's
    /// policy-chosen allocation, optional secondary-contention joins,
    /// settlement and airtime accounting. This is the enum-era round
    /// loop verbatim, with the protocol decisions delegated. `active`
    /// is the round's backlogged-transmitter set (every transmitter
    /// under saturated traffic).
    #[allow(clippy::too_many_arguments)]
    fn contended_round(
        &self,
        policy: &dyn MacPolicy,
        round: usize,
        cache: Option<&ChannelCache>,
        active: &[usize],
        traffic: &mut TrafficState,
        scratch: &mut Scratch,
        bufs: &mut RoundBufs,
        rng: &mut StdRng,
        obs: &mut dyn RoundObserver,
    ) {
        let cfg = self.cfg;
        let view = self.policy_view();
        bufs.protected.clear();
        bufs.streams.clear();

        // Primary contention among the transmitters with traffic.
        let (first, slots) = contend(active, &cfg.timing, &mut bufs.cws, &mut bufs.draws, rng);
        obs.on_contention(&ContentionRecord {
            round,
            kind: ContentionKind::Primary,
            n_contenders: active.len(),
            winner: first,
            slots,
        });
        let mut overhead = cfg.timing.difs + slots * cfg.timing.slot;

        // First winner's allocation, pruned to flows with queued
        // packets (a no-op under saturated traffic).
        policy.primary_allocation_into(
            &view,
            first,
            round,
            &mut bufs.alloc_ws,
            &mut bufs.first_alloc,
        );
        traffic.retain_backlogged(&mut bufs.first_alloc);

        // Plan the first winner with a provisional body length;
        // patched below once its rates are known.
        let planned = self.plan_winner(
            policy,
            cache,
            first,
            &bufs.first_alloc,
            &mut bufs.protected,
            &mut bufs.streams,
            usize::MAX,
            scratch,
            rng,
        );
        let Some(first_range) = planned else {
            // Even the first winner could not transmit (degenerate
            // channels): charge the overhead and move on.
            self.emit_idle_round(round, overhead + cfg.timing.difs, &mut bufs.round_bits, obs);
            return;
        };
        let (handshake_samples, body_symbols) =
            self.open_body(&bufs.first_alloc, first_range, &mut bufs.streams, scratch);
        overhead += handshake_samples;

        // Secondary contention (joining policies only): remaining
        // transmitters join through the precoder.
        if policy.allows_join() {
            let mut k_used: usize = bufs.streams.len();
            let mut elapsed_body: usize = 0;
            loop {
                scratch.eligible.clear();
                scratch.eligible.extend(active.iter().copied().filter(|&t| {
                    t != first
                        && bufs.streams.iter().all(|s| s.tx_node != t)
                        && self.n_ant(t) > k_used
                }));
                if scratch.eligible.is_empty() {
                    break;
                }
                let n_contenders = scratch.eligible.len();
                let (joiner, join_slots) = contend(
                    &scratch.eligible,
                    &cfg.timing,
                    &mut bufs.cws,
                    &mut bufs.draws,
                    rng,
                );
                obs.on_contention(&ContentionRecord {
                    round,
                    kind: ContentionKind::Join,
                    n_contenders,
                    winner: joiner,
                    slots: join_slots,
                });
                policy.join_allocation_into(
                    &view,
                    joiner,
                    k_used,
                    round,
                    &mut bufs.alloc_ws,
                    &mut bufs.join_alloc,
                );
                traffic.retain_backlogged(&mut bufs.join_alloc);
                if bufs.join_alloc.is_empty() {
                    obs.on_join(&JoinRecord {
                        round,
                        tx: joiner,
                        n_streams: 0,
                        accepted: false,
                    });
                    break;
                }
                let requested: usize = bufs.join_alloc.iter().map(|&(_, n)| n).sum();
                // The join consumes body time: contention + its
                // handshake, sized by the actual allocation.
                scratch.streams_per_rx.clear();
                scratch
                    .streams_per_rx
                    .extend(bufs.join_alloc.iter().map(|&(_, n)| n));
                let hs = handshake_symbols(cfg, &scratch.streams_per_rx, TYPICAL_BLOB_BYTES);
                let join_delay = ((join_slots * cfg.timing.slot) as usize)
                    .div_ceil(cfg.timing.symbol as usize)
                    + hs;
                elapsed_body += join_delay;
                if elapsed_body >= body_symbols {
                    obs.on_join(&JoinRecord {
                        round,
                        tx: joiner,
                        n_streams: requested,
                        accepted: false,
                    });
                    break; // no air time left this round
                }
                let remaining = body_symbols - elapsed_body;
                let planned = self.plan_winner(
                    policy,
                    cache,
                    joiner,
                    &bufs.join_alloc,
                    &mut bufs.protected,
                    &mut bufs.streams,
                    remaining,
                    scratch,
                    rng,
                );
                match planned {
                    Some((j0, j1)) => {
                        obs.on_join(&JoinRecord {
                            round,
                            tx: joiner,
                            n_streams: j1 - j0,
                            accepted: true,
                        });
                        k_used += j1 - j0;
                    }
                    None => {
                        // Joiner declined (power control / degenerate):
                        // others may still try.
                        obs.on_join(&JoinRecord {
                            round,
                            tx: joiner,
                            n_streams: requested,
                            accepted: false,
                        });
                        continue;
                    }
                }
            }
        }

        // Settle: realized SINRs including residuals.
        self.settle_round_into(
            cache,
            bufs.protected.as_slice(),
            bufs.streams.as_slice(),
            scratch,
            &mut bufs.round_bits,
        );
        traffic.note_serviced(bufs.streams.iter().map(|s| s.flow));

        // Time accounting.
        let round_samples = self.round_airtime(overhead, body_symbols);
        Self::stream_records_into(bufs.streams.as_slice(), &mut bufs.records);
        obs.on_round_end(&RoundRecord {
            round,
            body_symbols,
            duration_samples: round_samples,
            flow_bits: &bufs.round_bits,
            streams: &bufs.records,
        });
    }

    /// One omniscient-scheduler round: evaluate every transmitter as the
    /// forced primary (no contention, perfect knowledge — no RNG is
    /// consumed) and keep the schedule delivering the most bits per unit
    /// airtime. Ties keep the earlier transmitter, so the search is
    /// fully deterministic.
    #[allow(clippy::too_many_arguments)]
    fn omniscient_round(
        &self,
        policy: &dyn MacPolicy,
        round: usize,
        cache: Option<&ChannelCache>,
        active: &[usize],
        traffic: &mut TrafficState,
        scratch: &mut Scratch,
        bufs: &mut RoundBufs,
        rng: &mut StdRng,
        obs: &mut dyn RoundObserver,
    ) {
        let cfg = self.cfg;
        let mut best: Option<CandidateRound> = None;
        for &t in active {
            if let Some(cand) =
                self.forced_round(policy, t, round, cache, active, traffic, scratch, bufs, rng)
            {
                // Compare bits-per-sample by cross-multiplication (both
                // sides non-negative, durations positive) — strictly
                // greater replaces, so ties keep the earlier primary.
                let replace = match &best {
                    None => true,
                    Some(b) => {
                        cand.bits_total * b.duration_samples as f64
                            > b.bits_total * cand.duration_samples as f64
                    }
                };
                if replace {
                    best = Some(cand);
                }
            }
        }
        match best {
            Some(c) => {
                traffic.note_serviced(c.streams.iter().map(|s| s.flow));
                obs.on_contention(&ContentionRecord {
                    round,
                    kind: ContentionKind::Scheduled,
                    n_contenders: active.len(),
                    winner: c.primary,
                    slots: 0,
                });
                for &(tx, n_streams) in &c.joins {
                    obs.on_join(&JoinRecord {
                        round,
                        tx,
                        n_streams,
                        accepted: true,
                    });
                }
                obs.on_round_end(&RoundRecord {
                    round,
                    body_symbols: c.body_symbols,
                    duration_samples: c.duration_samples,
                    flow_bits: &c.flow_bits,
                    streams: &c.streams,
                });
            }
            // No candidate could transmit at all: an idle DIFS-bounded
            // round, mirroring the contended path's failure charge.
            None => self.emit_idle_round(
                round,
                cfg.timing.difs + cfg.timing.difs,
                &mut bufs.round_bits,
                obs,
            ),
        }
    }

    /// Evaluates one omniscient-scheduler candidate: `primary` opens the
    /// round (zero contention slots), then the most capable remaining
    /// transmitters greedily join — largest antenna count first, ties to
    /// the lowest node index — paying handshake airtime but no backoff.
    /// Joiners whose plan fails are barred rather than retried (the
    /// scheduler knows they cannot fit).
    #[allow(clippy::too_many_arguments)]
    fn forced_round(
        &self,
        policy: &dyn MacPolicy,
        primary: usize,
        round: usize,
        cache: Option<&ChannelCache>,
        active: &[usize],
        traffic: &TrafficState,
        scratch: &mut Scratch,
        bufs: &mut RoundBufs,
        rng: &mut StdRng,
    ) -> Option<CandidateRound> {
        let cfg = self.cfg;
        let view = self.policy_view();
        bufs.protected.clear();
        bufs.streams.clear();
        let mut overhead = cfg.timing.difs; // scheduled: no backoff slots

        policy.primary_allocation_into(
            &view,
            primary,
            round,
            &mut bufs.alloc_ws,
            &mut bufs.first_alloc,
        );
        traffic.retain_backlogged(&mut bufs.first_alloc);
        let first_range = self.plan_winner(
            policy,
            cache,
            primary,
            &bufs.first_alloc,
            &mut bufs.protected,
            &mut bufs.streams,
            usize::MAX,
            scratch,
            rng,
        )?;
        let (handshake_samples, body_symbols) =
            self.open_body(&bufs.first_alloc, first_range, &mut bufs.streams, scratch);
        overhead += handshake_samples;

        let mut joins: Vec<(usize, usize)> = Vec::new();
        if policy.allows_join() {
            let mut k_used: usize = bufs.streams.len();
            let mut elapsed_body: usize = 0;
            let mut barred: Vec<usize> = Vec::new();
            loop {
                let joiner = active
                    .iter()
                    .copied()
                    .filter(|&t| {
                        t != primary
                            && !barred.contains(&t)
                            && bufs.streams.iter().all(|s| s.tx_node != t)
                            && self.n_ant(t) > k_used
                    })
                    .max_by_key(|&t| (self.n_ant(t), std::cmp::Reverse(t)));
                let Some(joiner) = joiner else {
                    break;
                };
                policy.join_allocation_into(
                    &view,
                    joiner,
                    k_used,
                    round,
                    &mut bufs.alloc_ws,
                    &mut bufs.join_alloc,
                );
                traffic.retain_backlogged(&mut bufs.join_alloc);
                if bufs.join_alloc.is_empty() {
                    barred.push(joiner);
                    continue;
                }
                scratch.streams_per_rx.clear();
                scratch
                    .streams_per_rx
                    .extend(bufs.join_alloc.iter().map(|&(_, n)| n));
                let join_delay =
                    handshake_symbols(cfg, &scratch.streams_per_rx, TYPICAL_BLOB_BYTES);
                if elapsed_body + join_delay >= body_symbols {
                    break; // no air time left this round
                }
                let remaining = body_symbols - (elapsed_body + join_delay);
                match self.plan_winner(
                    policy,
                    cache,
                    joiner,
                    &bufs.join_alloc,
                    &mut bufs.protected,
                    &mut bufs.streams,
                    remaining,
                    scratch,
                    rng,
                ) {
                    Some((j0, j1)) => {
                        elapsed_body += join_delay;
                        joins.push((joiner, j1 - j0));
                        k_used += j1 - j0;
                    }
                    // The scheduler is omniscient: a join that cannot be
                    // planned is never attempted, so it costs no airtime.
                    None => barred.push(joiner),
                }
            }
        }

        // Candidate rounds outlive the pooled buffers (the best one is
        // kept across the whole primary sweep), so they own their bits.
        let mut flow_bits = Vec::new();
        self.settle_round_into(
            cache,
            bufs.protected.as_slice(),
            bufs.streams.as_slice(),
            scratch,
            &mut flow_bits,
        );
        let bits_total: f64 = flow_bits.iter().sum();
        Some(CandidateRound {
            primary,
            joins,
            bits_total,
            flow_bits,
            body_symbols,
            duration_samples: self.round_airtime(overhead, body_symbols),
            streams: Self::stream_records(bufs.streams.as_slice()),
        })
    }
}

/// Per-run traffic queues. Under the pinned [`TrafficModel::Saturated`]
/// default no queues are kept, no RNG is drawn and every flow is always
/// backlogged — the exact legacy behavior, bit-for-bit.
struct TrafficState {
    /// Outstanding packets per flow; `None` means saturated (every
    /// queue reads as infinitely full).
    backlog: Option<Vec<u64>>,
    /// Bursty per-flow ON/OFF phase (empty for other models).
    on: Vec<bool>,
    /// Scratch: distinct flows serviced in the round being settled.
    serviced: Vec<usize>,
}

impl TrafficState {
    fn new(model: &TrafficModel, n_flows: usize) -> Self {
        match model {
            TrafficModel::Saturated => TrafficState {
                backlog: None,
                on: Vec::new(),
                serviced: Vec::new(),
            },
            TrafficModel::Poisson { .. } => TrafficState {
                backlog: Some(vec![0; n_flows]),
                on: Vec::new(),
                serviced: Vec::with_capacity(n_flows),
            },
            TrafficModel::Bursty { .. } => TrafficState {
                backlog: Some(vec![0; n_flows]),
                // Flows start their burst cycle ON so early rounds see
                // traffic under any epoch length.
                on: vec![true; n_flows],
                serviced: Vec::with_capacity(n_flows),
            },
        }
    }

    fn has_backlog(&self, flow: usize) -> bool {
        match &self.backlog {
            None => true,
            Some(b) => b[flow] > 0,
        }
    }

    /// Draws this round's arrivals, in flow order. Every non-saturated
    /// model consumes a fixed, data-independent RNG budget per round
    /// (Bursty: exactly one uniform per flow; Poisson: the standard
    /// product-method draw), so arrival streams never skew with what
    /// the MAC happened to deliver.
    fn arrive(&mut self, model: &TrafficModel, rng: &mut StdRng) {
        match model {
            TrafficModel::Saturated => {}
            TrafficModel::Poisson { mean_per_round } => {
                let backlog = self.backlog.as_mut().expect("poisson keeps queues");
                for q in backlog.iter_mut() {
                    *q += poisson_draw(*mean_per_round, rng);
                }
            }
            TrafficModel::Bursty {
                mean_on_rounds,
                mean_off_rounds,
            } => {
                let backlog = self.backlog.as_mut().expect("bursty keeps queues");
                for (f, q) in backlog.iter_mut().enumerate() {
                    // Geometric dwell in each phase: leave ON with
                    // probability 1/mean_on, OFF with 1/mean_off.
                    let u: f64 = rng.gen();
                    let p_leave = if self.on[f] {
                        1.0 / mean_on_rounds
                    } else {
                        1.0 / mean_off_rounds
                    };
                    if u < p_leave {
                        self.on[f] = !self.on[f];
                    }
                    if self.on[f] {
                        *q += BURST_ARRIVALS_PER_ROUND;
                    }
                }
            }
        }
    }

    /// Drops flows with empty queues from a policy's allocation. No-op
    /// under saturated traffic, so legacy allocations pass untouched.
    fn retain_backlogged(&self, alloc: &mut Vec<(usize, usize)>) {
        if let Some(b) = &self.backlog {
            alloc.retain(|&(f, _)| b[f] > 0);
        }
    }

    /// One packet leaves each *distinct* serviced flow's queue (a flow
    /// carried by several streams still delivered one packet —
    /// [`SimEngine::open_body`] sizes the body that way).
    fn note_serviced(&mut self, flows: impl Iterator<Item = usize>) {
        let Some(b) = self.backlog.as_mut() else {
            return;
        };
        self.serviced.clear();
        for f in flows {
            if !self.serviced.contains(&f) {
                self.serviced.push(f);
            }
        }
        for &f in &self.serviced {
            b[f] = b[f].saturating_sub(1);
        }
    }
}

/// Knuth's product method: exact Poisson sampling with a number of
/// uniforms that depends only on the draws themselves (never on
/// simulation state), keeping the arrival stream reproducible.
fn poisson_draw(mean: f64, rng: &mut StdRng) -> u64 {
    let limit = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// Per-run slow-mobility state: a waypoint walker that moves one node
/// per epoch and incrementally re-derives only the cached links
/// incident to the mover — the city-scale point of the sparse cache.
struct MobilityState {
    /// The run's working cache: pristine tables rescaled to the current
    /// positions. The engine reads every channel from here.
    cache: ChannelCache,
    /// The as-built tables the rescaling is always anchored to, so
    /// factors never compound across epochs.
    pristine: ChannelCache,
    /// As-built node positions (the factor's `d0` anchor).
    origin: Vec<Point>,
    /// Current node positions.
    positions: Vec<Point>,
    step_m: f64,
    epoch_rounds: usize,
}

impl MobilityState {
    /// Large-scale path-loss exponent the rescaling assumes; amplitude
    /// goes as `d^{-exp/2}`.
    const PATH_LOSS_EXP: f64 = 3.0;
    /// Distance clamp so a walker crossing its peer never divides by a
    /// vanishing separation.
    const MIN_DISTANCE_M: f64 = 0.1;

    /// `None` unless the run's config asks for waypoint mobility —
    /// static worlds allocate nothing and take the legacy round path.
    fn new_for(engine: &SimEngine<'_>) -> Option<Self> {
        let MobilityModel::Waypoint {
            step_m,
            epoch_rounds,
        } = engine.cfg.mobility
        else {
            return None;
        };
        let pristine = match &engine.cache {
            Some(c) => c.clone(),
            // Mobility rescales tables, so it needs tables: build them
            // even when `cache_channels` is off for perf baselines.
            None => ChannelCache::build(engine.topo, &engine.occ, engine.cfg.ofdm.fft_len),
        };
        let origin: Vec<Point> = engine.topo.placements.iter().map(|l| l.pos).collect();
        Some(MobilityState {
            cache: pristine.clone(),
            positions: origin.clone(),
            origin,
            pristine,
            step_m,
            epoch_rounds,
        })
    }

    /// Advances the walk at `round`: at every epoch boundary one node
    /// (round-robin over the topology) steps `step_m` meters in a
    /// run-RNG-drawn uniform direction, and each cached link incident
    /// to it is rescaled by the amplitude image of the distance change,
    /// `(d0/d)^{exp/2}`. The link set is frozen at t=0: below-floor
    /// links never spring to life and installed links fade rather than
    /// vanish, so mobility changes link *strength*, never link
    /// *existence*. Returns whether anything moved (exactly one uniform
    /// is drawn when it did, zero otherwise).
    fn advance(&mut self, round: usize, rng: &mut StdRng) -> bool {
        if round == 0 || !round.is_multiple_of(self.epoch_rounds) || self.positions.is_empty() {
            return false;
        }
        let mover = (round / self.epoch_rounds - 1) % self.positions.len();
        let ang = rng.gen::<f64>() * std::f64::consts::TAU;
        self.positions[mover].x += self.step_m * ang.cos();
        self.positions[mover].y += self.step_m * ang.sin();
        let touched: Vec<(usize, usize)> = self
            .pristine
            .links()
            .filter(|&(f, t)| f == mover || t == mover)
            .collect();
        for (f, t) in touched {
            let d0 = self.origin[f]
                .distance(&self.origin[t])
                .max(Self::MIN_DISTANCE_M);
            let d = self.positions[f]
                .distance(&self.positions[t])
                .max(Self::MIN_DISTANCE_M);
            // Pure per-link arithmetic (no RNG), so the HashMap's
            // iteration order cannot affect results.
            let factor = (d0 / d).powf(0.5 * Self::PATH_LOSS_EXP);
            let table = self
                .pristine
                .table(f, t)
                .expect("key came from pristine iteration")
                .scaled(factor);
            self.cache.set_table(f, t, table);
        }
        true
    }
}

/// Simulates `cfg.rounds` rounds of the given protocol and returns the
/// per-flow goodput. One-shot wrapper around [`SimEngine`]; batch callers
/// should build the engine once per topology (or use
/// [`SweepSpec`](crate::sim::SweepSpec)) so the channel cache is shared
/// across runs.
pub fn simulate(
    topo: &Topology,
    scenario: &Scenario,
    protocol: Protocol,
    cfg: &SimConfig,
    rng: &mut StdRng,
) -> RunResult {
    SimEngine::new(topo, scenario, cfg).run(protocol, rng)
}

/// [`simulate`] for an arbitrary [`MacPolicy`] — the policy-first entry
/// point ([`Protocol`] covers only the three enum-era protocols).
pub fn simulate_policy(
    topo: &Topology,
    scenario: &Scenario,
    policy: &dyn MacPolicy,
    cfg: &SimConfig,
    rng: &mut StdRng,
) -> RunResult {
    SimEngine::new(topo, scenario, cfg).run_policy(policy, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GreedyJoin, NPlus, Oracle};
    use nplus_channel::placement::Testbed;
    use nplus_mac::frames::ReceiverEntry;
    use nplus_medium::topology::{build_topology, TopologyConfig};
    use rand::SeedableRng;

    fn run(protocol: Protocol, seed: u64) -> RunResult {
        let scenario = Scenario::three_pairs();
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = build_topology(
            &tb,
            &TopologyConfig::new(scenario.antennas.clone()),
            10e6,
            seed,
            &mut rng,
        );
        let cfg = SimConfig {
            rounds: 12,
            ..SimConfig::default()
        };
        simulate(&topo, &scenario, protocol, &cfg, &mut rng)
    }

    #[test]
    fn nplus_beats_dot11n_on_average() {
        let mut n_total = 0.0;
        let mut d_total = 0.0;
        for seed in 0..6 {
            n_total += run(Protocol::NPlus, seed).total_mbps;
            d_total += run(Protocol::Dot11n, seed).total_mbps;
        }
        assert!(
            n_total > 1.3 * d_total,
            "n+ {:.1} Mb/s vs 802.11n {:.1} Mb/s — expected a clear win",
            n_total / 6.0,
            d_total / 6.0
        );
    }

    #[test]
    fn nplus_uses_more_dof() {
        let mut n_dof = 0.0;
        let mut d_dof = 0.0;
        for seed in 0..4 {
            n_dof += run(Protocol::NPlus, seed).mean_dof;
            d_dof += run(Protocol::Dot11n, seed).mean_dof;
        }
        assert!(
            n_dof > d_dof + 0.3 * 4.0,
            "n+ mean DoF {n_dof} vs 802.11n {d_dof}"
        );
    }

    #[test]
    fn throughput_is_positive_and_finite() {
        for protocol in [Protocol::NPlus, Protocol::Dot11n] {
            let r = run(protocol, 42);
            assert!(r.total_mbps.is_finite());
            assert!(r.total_mbps > 0.0, "{protocol:?} produced zero throughput");
            assert_eq!(r.per_flow_mbps.len(), 3);
        }
    }

    #[test]
    fn ap_downlink_scenario_runs_all_protocols() {
        let scenario = Scenario::ap_downlink();
        let tb = Testbed::sigcomm11();
        for protocol in [Protocol::NPlus, Protocol::Dot11n, Protocol::Beamforming] {
            let mut rng = StdRng::seed_from_u64(9);
            let topo = build_topology(
                &tb,
                &TopologyConfig::new(scenario.antennas.clone()),
                10e6,
                9,
                &mut rng,
            );
            let cfg = SimConfig {
                rounds: 8,
                ..SimConfig::default()
            };
            let r = simulate(&topo, &scenario, protocol, &cfg, &mut rng);
            assert!(r.total_mbps > 0.0, "{protocol:?} zero throughput");
        }
    }

    #[test]
    fn beamforming_beats_dot11n_on_downlink() {
        // MU beamforming serves both clients at once when AP2 wins, so it
        // must outperform single-user 802.11n in this scenario.
        let scenario = Scenario::ap_downlink();
        let tb = Testbed::sigcomm11();
        let (mut bf, mut dn) = (0.0, 0.0);
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let topo = build_topology(
                &tb,
                &TopologyConfig::new(scenario.antennas.clone()),
                10e6,
                seed,
                &mut rng,
            );
            let cfg = SimConfig {
                rounds: 10,
                ..SimConfig::default()
            };
            bf += simulate(&topo, &scenario, Protocol::Beamforming, &cfg, &mut rng).total_mbps;
            dn += simulate(&topo, &scenario, Protocol::Dot11n, &cfg, &mut rng).total_mbps;
        }
        assert!(bf > dn, "beamforming {bf:.1} vs 802.11n {dn:.1}");
    }

    /// Regression: the contention fallback after 32 collision rounds used
    /// to return `contenders[0]` deterministically, biasing the first
    /// transmitter. With a degenerate zero window every round collides,
    /// so every contend() call takes the fallback — the winner must now
    /// be uniform across contenders.
    #[test]
    fn contend_fallback_is_unbiased() {
        let timing = SampleTiming {
            sifs: 160,
            difs: 340,
            slot: 90,
            cw_min: 0,
            cw_max: 0,
            symbol: 80,
        };
        let contenders = [10usize, 11, 12, 13];
        let mut rng = StdRng::seed_from_u64(77);
        let mut wins = [0usize; 4];
        let (mut cws, mut draws) = (Vec::new(), Vec::new());
        for _ in 0..400 {
            let (winner, _) = contend(&contenders, &timing, &mut cws, &mut draws, &mut rng);
            wins[winner - 10] += 1;
        }
        // The old code gave all 400 wins to index 0.
        for (i, &w) in wins.iter().enumerate() {
            assert!(
                w > 40,
                "contender {i} won only {w}/400 fallback contentions: {wins:?}"
            );
        }
    }

    /// Regression: `handshake_symbols` used to round the ACK airtime once
    /// across the summed total and ignore per-receiver stream counts.
    /// Each receiver sends its own ACK frame, so each must be padded to a
    /// symbol boundary individually, and multi-stream ACKs carry one rate
    /// byte per stream.
    #[test]
    fn handshake_symbols_pads_each_ack_and_counts_streams() {
        let cfg = SimConfig::default();
        let base = BASE_RATE.data_bits_per_symbol();
        let sifs_syms = (cfg.timing.sifs as usize).div_ceil(cfg.timing.symbol as usize);
        let hdr_bits = |n_rx: usize| {
            DataHeader {
                src: 0,
                receivers: vec![
                    ReceiverEntry {
                        dst: 0,
                        n_streams: 1
                    };
                    n_rx
                ],
                n_antennas: 3,
                duration_symbols: 0,
                seq: 0,
            }
            .to_bytes()
            .len()
                * 8
        };

        // ACK frame sizes straight from the nplus-mac codec, so the
        // accounting can never drift from what the wire format encodes.
        let ack_bits = |n_streams: usize, blob: usize| {
            AckHeader {
                src: 0,
                dst: 0,
                rate_indices: vec![0; n_streams],
                alignment_blob: vec![0; blob],
            }
            .to_bytes()
            .len()
                * 8
        };

        // A blob size whose per-ACK rounding differs from rounding the
        // summed total — the case the old accounting got wrong.
        let blob = (1usize..64)
            .find(|&b| 2 * ack_bits(1, b).div_ceil(base) != (2 * ack_bits(1, b)).div_ceil(base))
            .expect("some blob size must expose the summed-rounding bug");
        let expected =
            hdr_bits(2).div_ceil(base) + 2 * ack_bits(1, blob).div_ceil(base) + 2 * sifs_syms;
        assert_eq!(
            handshake_symbols(&cfg, &[1, 1], blob),
            expected,
            "two single-stream ACKs must be padded individually"
        );

        // A blob size where one extra stream's rate index crosses a
        // symbol boundary: multi-stream handshakes must cost more than
        // single-stream ones.
        let blob2 = (1usize..64)
            .find(|&b| ack_bits(2, b).div_ceil(base) > ack_bits(1, b).div_ceil(base))
            .expect("some blob size must expose the stream-count bug");
        assert!(
            handshake_symbols(&cfg, &[2], blob2) > handshake_symbols(&cfg, &[1], blob2),
            "extra streams must be accounted in the ACK"
        );

        // Empty allocation falls back to the single-receiver baseline.
        assert_eq!(
            handshake_symbols(&cfg, &[], blob),
            handshake_symbols(&cfg, &[1], blob)
        );
    }

    /// The engine is reusable: running twice with identically seeded RNGs
    /// must reproduce the result, and `simulate` must match `SimEngine`.
    /// The enum entry point and its policy must agree exactly.
    #[test]
    fn engine_reuse_is_deterministic() {
        let scenario = Scenario::three_pairs();
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(21);
        let topo = build_topology(
            &tb,
            &TopologyConfig::new(scenario.antennas.clone()),
            10e6,
            21,
            &mut rng,
        );
        let cfg = SimConfig {
            rounds: 6,
            ..SimConfig::default()
        };
        let engine = SimEngine::new(&topo, &scenario, &cfg);
        let a = engine.run(Protocol::NPlus, &mut StdRng::seed_from_u64(5));
        let b = engine.run_policy(&NPlus, &mut StdRng::seed_from_u64(5));
        let c = simulate(
            &topo,
            &scenario,
            Protocol::NPlus,
            &cfg,
            &mut StdRng::seed_from_u64(5),
        );
        let d = simulate_policy(
            &topo,
            &scenario,
            &NPlus,
            &cfg,
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(a.per_flow_mbps, b.per_flow_mbps);
        assert_eq!(a.per_flow_mbps, c.per_flow_mbps);
        assert_eq!(a.per_flow_mbps, d.per_flow_mbps);
        assert_eq!(a.total_mbps, c.total_mbps);
    }

    /// The omniscient scheduler consumes no RNG (perfect knowledge, no
    /// contention) and beats n+ on the canonical scenario.
    #[test]
    fn oracle_is_deterministic_and_dominates_here() {
        let scenario = Scenario::three_pairs();
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(3);
        let topo = build_topology(
            &tb,
            &TopologyConfig::new(scenario.antennas.clone()),
            10e6,
            3,
            &mut rng,
        );
        let cfg = SimConfig {
            rounds: 6,
            ..SimConfig::default()
        };
        let engine = SimEngine::new(&topo, &scenario, &cfg);
        let a = engine.run_policy(&Oracle, &mut StdRng::seed_from_u64(1));
        let b = engine.run_policy(&Oracle, &mut StdRng::seed_from_u64(999));
        // Different RNG seeds, identical results: no RNG consumed.
        assert_eq!(a.per_flow_mbps, b.per_flow_mbps);
        assert_eq!(a.mean_dof, b.mean_dof);
        let np = engine.run_policy(&NPlus, &mut StdRng::seed_from_u64(1));
        assert!(
            a.total_mbps >= np.total_mbps,
            "oracle {:.2} below n+ {:.2}",
            a.total_mbps,
            np.total_mbps
        );
    }

    /// `GreedyJoin` differs from n+ only in the §4 power decision, so
    /// the RNG streams stay aligned and runs are comparable seed-by-seed.
    #[test]
    fn greedy_join_runs_and_uses_concurrency() {
        let scenario = Scenario::three_pairs();
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(0);
        let topo = build_topology(
            &tb,
            &TopologyConfig::new(scenario.antennas.clone()),
            10e6,
            0,
            &mut rng,
        );
        let cfg = SimConfig {
            rounds: 10,
            ..SimConfig::default()
        };
        let engine = SimEngine::new(&topo, &scenario, &cfg);
        let g = engine.run_policy(&GreedyJoin, &mut StdRng::seed_from_u64(4));
        let d = engine.run(Protocol::Dot11n, &mut StdRng::seed_from_u64(4));
        assert!(g.total_mbps.is_finite() && g.total_mbps > 0.0);
        assert!(g.mean_dof > d.mean_dof, "greedy join must still join");
    }

    /// Counts total delivered bits across a run — the load-sensitive
    /// observable (goodput in Mb/s hides idle rounds, which cost almost
    /// no airtime).
    #[derive(Default)]
    struct BitsTally {
        total: f64,
        idle_rounds: usize,
    }

    impl RoundObserver for BitsTally {
        fn on_round_end(&mut self, r: &RoundRecord<'_>) {
            self.total += r.flow_bits.iter().sum::<f64>();
            if r.streams.is_empty() {
                self.idle_rounds += 1;
            }
        }
    }

    fn three_pairs_topo(seed: u64) -> Topology {
        let scenario = Scenario::three_pairs();
        let tb = Testbed::sigcomm11();
        let mut rng = StdRng::seed_from_u64(seed);
        build_topology(
            &tb,
            &TopologyConfig::new(scenario.antennas.clone()),
            10e6,
            seed,
            &mut rng,
        )
    }

    /// Low-load Poisson arrivals idle most rounds and deliver strictly
    /// fewer bits than saturated traffic — deterministically in the run
    /// seed (arrivals come from the same RNG stream as the run).
    #[test]
    fn poisson_low_load_delivers_fewer_bits_deterministically() {
        let scenario = Scenario::three_pairs();
        let topo = three_pairs_topo(7);
        let rounds = 16;
        let sat_cfg = SimConfig {
            rounds,
            ..SimConfig::default()
        };
        let poi_cfg = SimConfig {
            rounds,
            traffic: TrafficModel::Poisson {
                mean_per_round: 0.2,
            },
            ..SimConfig::default()
        };
        let mut sat = BitsTally::default();
        SimEngine::new(&topo, &scenario, &sat_cfg).run_observed(
            &NPlus,
            &mut StdRng::seed_from_u64(2),
            &mut sat,
        );
        let mut poi = BitsTally::default();
        let a = SimEngine::new(&topo, &scenario, &poi_cfg).run_observed(
            &NPlus,
            &mut StdRng::seed_from_u64(2),
            &mut poi,
        );
        assert!(
            poi.total < sat.total,
            "0.2 pkt/round Poisson delivered {} bits vs saturated {}",
            poi.total,
            sat.total
        );
        assert!(
            poi.idle_rounds > sat.idle_rounds,
            "low load must idle rounds"
        );
        // Same seed, same arrivals, same result — bit-for-bit.
        let b = SimEngine::new(&topo, &scenario, &poi_cfg)
            .run_policy(&NPlus, &mut StdRng::seed_from_u64(2));
        assert_eq!(a.per_flow_mbps, b.per_flow_mbps);
        assert_eq!(a.total_mbps.to_bits(), b.total_mbps.to_bits());
    }

    /// Bursty flows with short ON and long OFF dwells starve the queue
    /// and deliver fewer bits than saturated traffic.
    #[test]
    fn bursty_traffic_starves_between_bursts() {
        let scenario = Scenario::three_pairs();
        let topo = three_pairs_topo(4);
        let rounds = 16;
        let sat_cfg = SimConfig {
            rounds,
            ..SimConfig::default()
        };
        let bur_cfg = SimConfig {
            rounds,
            traffic: TrafficModel::Bursty {
                mean_on_rounds: 1.0,
                mean_off_rounds: 1e6,
            },
            ..SimConfig::default()
        };
        let mut sat = BitsTally::default();
        SimEngine::new(&topo, &scenario, &sat_cfg).run_observed(
            &NPlus,
            &mut StdRng::seed_from_u64(9),
            &mut sat,
        );
        let mut bur = BitsTally::default();
        let r = SimEngine::new(&topo, &scenario, &bur_cfg).run_observed(
            &NPlus,
            &mut StdRng::seed_from_u64(9),
            &mut bur,
        );
        assert!(r.total_mbps.is_finite());
        assert!(
            bur.total < sat.total,
            "mean-1-round bursts delivered {} bits vs saturated {}",
            bur.total,
            sat.total
        );
    }

    /// Waypoint mobility perturbs results (channels really change), is
    /// deterministic in the run seed, and is bitwise independent of the
    /// engine-level cache toggle — the mobility path builds its own
    /// tables when the engine has none.
    #[test]
    fn waypoint_mobility_changes_results_and_ignores_cache_toggle() {
        let scenario = Scenario::three_pairs();
        let topo = three_pairs_topo(13);
        let rounds = 10;
        let still_cfg = SimConfig {
            rounds,
            ..SimConfig::default()
        };
        let move_cfg = SimConfig {
            rounds,
            mobility: MobilityModel::Waypoint {
                step_m: 8.0,
                epoch_rounds: 2,
            },
            ..SimConfig::default()
        };
        let still = SimEngine::new(&topo, &scenario, &still_cfg)
            .run_policy(&NPlus, &mut StdRng::seed_from_u64(6));
        let moved = SimEngine::new(&topo, &scenario, &move_cfg)
            .run_policy(&NPlus, &mut StdRng::seed_from_u64(6));
        assert_ne!(
            still.per_flow_mbps, moved.per_flow_mbps,
            "8 m steps every 2 rounds left every flow untouched"
        );
        let moved_again = SimEngine::new(&topo, &scenario, &move_cfg)
            .run_policy(&NPlus, &mut StdRng::seed_from_u64(6));
        assert_eq!(moved.per_flow_mbps, moved_again.per_flow_mbps);
        let uncached_cfg = SimConfig {
            cache_channels: false,
            ..move_cfg.clone()
        };
        let uncached = SimEngine::new(&topo, &scenario, &uncached_cfg)
            .run_policy(&NPlus, &mut StdRng::seed_from_u64(6));
        assert_eq!(moved.per_flow_mbps, uncached.per_flow_mbps);
        assert_eq!(moved.total_mbps.to_bits(), uncached.total_mbps.to_bits());
    }

    /// In a sparse city world an absent link is a typed miss, not a
    /// panic: a flow whose endpoints sit in cells beyond the link range
    /// settles to zero goodput while in-cell flows keep delivering.
    #[test]
    fn sparse_world_absent_link_flows_idle_instead_of_panicking() {
        use crate::sim::Flow;
        use nplus_channel::environment::{ChannelEnvironment, MULTI_CELL};
        use nplus_medium::topology::build_environment_topology;

        // Four cells 45 m apart: cell 0 and cell 3 are 135 m apart,
        // past the 100 m link range — no link is installed between them.
        let n = 32;
        let antennas: Vec<usize> = (0..n).map(|i| if i % 8 == 0 { 2 } else { 1 }).collect();
        let scenario = Scenario {
            antennas,
            flows: vec![
                Flow { tx: 1, rx: 0 },  // in-cell uplink, link installed
                Flow { tx: 2, rx: 25 }, // cell 0 → cell 3, below the floor
            ],
        };
        let tb = MULTI_CELL.testbed(n).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let topo =
            build_environment_topology(&MULTI_CELL, &tb, &scenario.antennas, 10e6, 17, &mut rng)
                .unwrap();
        assert!(
            topo.medium.link(topo.nodes[2], topo.nodes[25]).is_none(),
            "cross-map link unexpectedly installed"
        );
        let cfg = SimConfig {
            rounds: 8,
            ..SimConfig::default()
        };
        let engine = SimEngine::new(&topo, &scenario, &cfg);
        for policy in [&NPlus as &dyn MacPolicy, &crate::policy::Dot11n, &Oracle] {
            let r = engine.run_policy(policy, &mut StdRng::seed_from_u64(3));
            assert!(
                r.per_flow_mbps[0] > 0.0,
                "{}: in-cell flow starved",
                policy.name()
            );
            assert_eq!(
                r.per_flow_mbps[1],
                0.0,
                "{}: flow over an absent link delivered bits",
                policy.name()
            );
        }
    }

    /// The decimated-grid interpolator reproduces the evaluated bins
    /// exactly and stays within the track's range between them.
    #[test]
    fn interpolate_track_is_exact_at_evaluated_bins() {
        let eval_pos = vec![0usize, 4, 8, 12];
        let vals = [10.0, 2.0, 6.0, 4.0];
        let mut out = Vec::new();
        interpolate_track(&eval_pos, &vals, 15, &mut out);
        assert_eq!(out.len(), 15);
        for (i, &k) in eval_pos.iter().enumerate() {
            assert_eq!(out[k].to_bits(), vals[i].to_bits(), "bin {k} not exact");
        }
        // Midpoint of a segment is the *geometric* mean of its endpoints
        // (log-domain interpolation — fades are multiplicative).
        assert!((out[2] - (10.0f64 * 2.0).sqrt()).abs() < 1e-12);
        // Past the last evaluated bin: held flat.
        assert_eq!(out[13].to_bits(), vals[3].to_bits());
        assert_eq!(out[14].to_bits(), vals[3].to_bits());
        // Within range everywhere.
        for &v in &out {
            assert!((2.0..=10.0).contains(&v));
        }
    }

    /// `SinrGrid::Decimated(k)` runs end-to-end, produces positive
    /// finite goodput, and lands near the full-grid result (the SINR
    /// tracks are smooth across neighbouring OFDM bins).
    #[test]
    fn decimated_grid_tracks_full_grid() {
        let scenario = Scenario::three_pairs();
        let topo = three_pairs_topo(11);
        let full_cfg = SimConfig {
            rounds: 10,
            ..SimConfig::default()
        };
        let dec_cfg = SimConfig {
            sinr_grid: SinrGrid::Decimated(4),
            ..full_cfg.clone()
        };
        let full = SimEngine::new(&topo, &scenario, &full_cfg)
            .run_policy(&NPlus, &mut StdRng::seed_from_u64(8));
        let dec = SimEngine::new(&topo, &scenario, &dec_cfg)
            .run_policy(&NPlus, &mut StdRng::seed_from_u64(8));
        assert!(dec.total_mbps.is_finite() && dec.total_mbps > 0.0);
        let rel = (dec.total_mbps - full.total_mbps).abs() / full.total_mbps;
        assert!(
            rel < 0.25,
            "decimated {:.2} Mb/s vs full {:.2} Mb/s ({:.0}% apart)",
            dec.total_mbps,
            full.total_mbps,
            rel * 100.0
        );
        // Decimated runs are themselves deterministic.
        let again = SimEngine::new(&topo, &scenario, &dec_cfg)
            .run_policy(&NPlus, &mut StdRng::seed_from_u64(8));
        assert_eq!(dec.total_mbps.to_bits(), again.total_mbps.to_bits());
    }
}
