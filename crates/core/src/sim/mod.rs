//! Protocol-level network simulation: n+ versus 802.11n versus
//! multi-user beamforming versus the omniscient-scheduler upper bound.
//!
//! This module reproduces the methodology of the paper's §6.3–§6.4: for
//! a drawn topology, it simulates rounds of medium access and accounts
//! throughput per flow. The physics is real — every stream's pre-coding
//! vectors are computed per subcarrier from (hardware-corrupted)
//! channel knowledge, residual interference is evaluated against the
//! *true* channels, and bitrates come from per-stream effective SNRs —
//! while the MAC is simulated at the transmission-event level
//! (contention outcomes, handshakes and durations) rather than per
//! sample. The sample-level path is validated separately by the
//! Fig. 9/11 experiments and the integration tests.
//!
//! ## Architecture
//!
//! The module is layered (see `DESIGN.md` §2):
//!
//! * [`SimEngine`] owns the physics and the round
//!   machinery: channels (cached via `ChannelCache`), precoding, SINR
//!   settlement, handshake and airtime accounting.
//! * [`MacPolicy`] implementations make every
//!   protocol decision. The built-ins — [`NPlus`](crate::policy::NPlus),
//!   [`Dot11n`](crate::policy::Dot11n),
//!   [`Beamforming`](crate::policy::Beamforming),
//!   [`Oracle`](crate::policy::Oracle),
//!   [`GreedyJoin`](crate::policy::GreedyJoin) — live in
//!   [`crate::policy`]; [`Protocol`] survives as a thin constructor
//!   over the first three.
//! * [`RoundObserver`](crate::observer::RoundObserver) taps the round
//!   event stream; the engine's own accounting is the
//!   [`GoodputAccumulator`](crate::observer::GoodputAccumulator)
//!   observer.
//! * [`ChannelEnvironment`](nplus_channel::environment::ChannelEnvironment)
//!   implementations supply the propagation world the topologies are
//!   drawn from — testbed map, path loss, delay profiles, oscillator
//!   draw and hardware profile. The paper's indoor office is the
//!   [`Sigcomm11Indoor`](nplus_channel::environment::Sigcomm11Indoor)
//!   default; outdoor/rich-scatter/degraded-hardware worlds ship
//!   alongside it and are selectable by name.
//! * [`SweepSpec`] ([`sweep`](mod@crate::sim)) is the one batch entry
//!   point: it builds seeded topologies in the chosen environment,
//!   shares one channel-cached engine per seed across all policies, and
//!   aggregates mean/CI statistics — serially or on a scoped-thread
//!   pool with bit-for-bit identical results. [`simulate`], [`sweep()`]
//!   and [`sweep_parallel`] remain as thin wrappers.

mod engine;
mod sweep;

pub use engine::{simulate, simulate_policy, SimEngine, TYPICAL_BLOB_BYTES};
pub use sweep::{
    aggregate_results, sweep, sweep_parallel, CanonicalSpec, SeedResults, SweepError, SweepJob,
    SweepSpec, SweepStats, DEFAULT_POLICIES,
};

use crate::policy::MacPolicy;
use nplus_channel::impairments::HardwareProfile;
use nplus_mac::timing::SampleTiming;
use nplus_phy::params::OfdmConfig;
use std::fmt;
use std::str::FromStr;

/// One traffic flow: a transmitter node sending to a receiver node
/// (indices into the scenario's node list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Transmitting node index.
    pub tx: usize,
    /// Receiving node index.
    pub rx: usize,
}

/// A network scenario: antenna counts plus traffic flows.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Antenna count per node.
    pub antennas: Vec<usize>,
    /// Traffic flows (backlogged).
    pub flows: Vec<Flow>,
}

impl Scenario {
    /// The paper's Fig. 3 scenario: three transmitter–receiver pairs with
    /// 1, 2 and 3 antennas. Node order: tx1, rx1, tx2, rx2, tx3, rx3.
    pub fn three_pairs() -> Self {
        Scenario {
            antennas: vec![1, 1, 2, 2, 3, 3],
            flows: vec![
                Flow { tx: 0, rx: 1 },
                Flow { tx: 2, rx: 3 },
                Flow { tx: 4, rx: 5 },
            ],
        }
    }

    /// The paper's Fig. 4 scenario: a single-antenna client uploading to
    /// a 2-antenna AP while a 3-antenna AP serves two 2-antenna clients.
    /// Node order: c1, AP1, AP2, c2, c3.
    pub fn ap_downlink() -> Self {
        Scenario {
            antennas: vec![1, 2, 3, 2, 2],
            flows: vec![
                Flow { tx: 0, rx: 1 }, // c1 -> AP1
                Flow { tx: 2, rx: 3 }, // AP2 -> c2
                Flow { tx: 2, rx: 4 }, // AP2 -> c3
            ],
        }
    }

    /// Distinct transmitter node indices that have traffic.
    pub fn transmitters(&self) -> Vec<usize> {
        let mut txs: Vec<usize> = self.flows.iter().map(|f| f.tx).collect();
        txs.sort_unstable();
        txs.dedup();
        txs
    }

    /// Flow indices of a transmitter.
    pub fn flows_of(&self, tx: usize) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.tx == tx)
            .map(|(i, _)| i)
            .collect()
    }

    /// Structural validation: the checks a scenario must pass before the
    /// engine may see it. A scenario violating any of these used to
    /// panic deep inside topology construction or the round loop; every
    /// served entry point ([`SweepSpec::try_run`],
    /// [`CanonicalSpec`], the `sweep-server`
    /// protocol) now rejects it up front with the returned message.
    ///
    /// Rules: at least one node and one flow, every node's antenna count
    /// in `1..=`[`MAX_NODE_ANTENNAS`], every flow's endpoints distinct
    /// in-range node indices.
    ///
    /// # Errors
    /// A one-line human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.antennas.len();
        if n == 0 {
            return Err("scenario has no nodes".to_string());
        }
        for (i, &a) in self.antennas.iter().enumerate() {
            if a == 0 || a > MAX_NODE_ANTENNAS {
                return Err(format!(
                    "node {i}: antenna count {a} outside 1..={MAX_NODE_ANTENNAS}"
                ));
            }
        }
        if self.flows.is_empty() {
            return Err("scenario has no flows".to_string());
        }
        for (i, f) in self.flows.iter().enumerate() {
            if f.tx >= n || f.rx >= n {
                return Err(format!(
                    "flow {i}: endpoints {}->{} outside the {n}-node scenario",
                    f.tx, f.rx
                ));
            }
            if f.tx == f.rx {
                return Err(format!("flow {i}: node {} transmits to itself", f.tx));
            }
        }
        Ok(())
    }
}

/// Largest per-node antenna count [`Scenario::validate`] accepts. The
/// paper's testbed tops out at 3, the scenario generator at 4; 8 leaves
/// headroom for synthetic arrays while bounding the matrix sizes a
/// served request can demand.
pub const MAX_NODE_ANTENNAS: usize = 8;

/// The three protocols the paper compares head to head.
///
/// Since the [`MacPolicy`] redesign this enum
/// is a thin constructor kept for backward compatibility: each variant
/// maps to its trait implementation via [`Protocol::policy`], and the
/// results are bit-for-bit identical to the enum-era engine at every
/// seed (pinned by the `policy_regression` suite). New policies —
/// [`Oracle`](crate::policy::Oracle),
/// [`GreedyJoin`](crate::policy::GreedyJoin), or your own — skip the
/// enum entirely and plug into [`simulate_policy`], [`SweepSpec`] or
/// [`SimEngine::run_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The paper's contribution.
    NPlus,
    /// Baseline: stock 802.11n behaviour.
    Dot11n,
    /// Baseline: multi-user beamforming (single winner, multi-client).
    Beamforming,
}

impl Protocol {
    /// The policy implementation this protocol names.
    pub fn policy(self) -> &'static dyn MacPolicy {
        match self {
            Protocol::NPlus => &crate::policy::NPlus,
            Protocol::Dot11n => &crate::policy::Dot11n,
            Protocol::Beamforming => &crate::policy::Beamforming,
        }
    }

    /// The protocol's stable lower-case name (`"nplus"`, `"dot11n"`,
    /// `"beamforming"`) — identical to its policy's
    /// [`name`](crate::policy::MacPolicy::name) and what [`FromStr`]
    /// parses back.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::NPlus => "nplus",
            Protocol::Dot11n => "dot11n",
            Protocol::Beamforming => "beamforming",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`Protocol`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProtocolError {
    name: String,
}

impl fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown protocol {:?} (expected nplus, dot11n or beamforming)",
            self.name
        )
    }
}

impl std::error::Error for ParseProtocolError {}

impl FromStr for Protocol {
    type Err = ParseProtocolError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "nplus" => Ok(Protocol::NPlus),
            "dot11n" => Ok(Protocol::Dot11n),
            "beamforming" => Ok(Protocol::Beamforming),
            other => Err(ParseProtocolError {
                name: other.to_string(),
            }),
        }
    }
}

/// Per-flow offered-load model.
///
/// [`Saturated`](TrafficModel::Saturated) is the paper's methodology —
/// every flow always has a packet queued — and is the pinned default:
/// it draws **zero** RNG and takes the exact legacy round path, so all
/// pre-traffic results are bit-for-bit unchanged. The other models keep
/// a per-flow packet queue in the engine: arrivals are drawn from the
/// run RNG at the start of every round in flow order, only transmitters
/// with backlogged flows contend, and each serviced flow drains one
/// packet per round.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TrafficModel {
    /// Every flow is always backlogged (the paper's assumption).
    #[default]
    Saturated,
    /// Independent Poisson arrivals with the given mean packets per
    /// round per flow (Knuth sampling — deterministic in the RNG
    /// stream).
    Poisson {
        /// Mean packet arrivals per round per flow (> 0, finite).
        mean_per_round: f64,
    },
    /// ON/OFF bursts: while ON a flow receives
    /// [`BURST_ARRIVALS_PER_ROUND`] packets per round, while OFF none;
    /// dwell times are geometric with the given means (one uniform
    /// draw per flow per round — a fixed RNG budget). Flows start ON.
    Bursty {
        /// Mean ON dwell in rounds (>= 1, finite).
        mean_on_rounds: f64,
        /// Mean OFF dwell in rounds (>= 1, finite).
        mean_off_rounds: f64,
    },
}

/// Packets arriving per round to a flow in the ON phase of
/// [`TrafficModel::Bursty`].
pub const BURST_ARRIVALS_PER_ROUND: u64 = 3;

// Parameters are validated finite (see `TrafficModel::validate`), so
// the partial equivalence is total on every value that can reach a
// sweep — required for `CanonicalSpec`'s derived `Eq`.
impl Eq for TrafficModel {}

impl TrafficModel {
    /// Structural validation mirroring [`Scenario::validate`]: model
    /// parameters must be finite and positive (ON/OFF dwells at least
    /// one round) before a spec may reach the engine.
    ///
    /// # Errors
    /// A one-line human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            TrafficModel::Saturated => Ok(()),
            TrafficModel::Poisson { mean_per_round } => {
                if mean_per_round.is_finite() && mean_per_round > 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "poisson mean {mean_per_round} not a positive finite"
                    ))
                }
            }
            TrafficModel::Bursty {
                mean_on_rounds,
                mean_off_rounds,
            } => {
                for (name, v) in [("on", mean_on_rounds), ("off", mean_off_rounds)] {
                    if !v.is_finite() || v < 1.0 {
                        return Err(format!("bursty mean {name} dwell {v} below one round"));
                    }
                }
                Ok(())
            }
        }
    }

    /// The model's stable spec-string form — what [`FromStr`] parses
    /// back: `saturated`, `poisson:<mean>`, `bursty:<on>x<off>`.
    pub fn spec_string(&self) -> String {
        match *self {
            TrafficModel::Saturated => "saturated".to_string(),
            TrafficModel::Poisson { mean_per_round } => format!("poisson:{mean_per_round}"),
            TrafficModel::Bursty {
                mean_on_rounds,
                mean_off_rounds,
            } => format!("bursty:{mean_on_rounds}x{mean_off_rounds}"),
        }
    }
}

impl fmt::Display for TrafficModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec_string())
    }
}

impl FromStr for TrafficModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let model = if s == "saturated" {
            TrafficModel::Saturated
        } else if let Some(mean) = s.strip_prefix("poisson:") {
            let mean_per_round: f64 = mean
                .parse()
                .map_err(|_| format!("bad poisson mean {mean:?}"))?;
            TrafficModel::Poisson { mean_per_round }
        } else if let Some(dwells) = s.strip_prefix("bursty:") {
            let (on, off) = dwells
                .split_once('x')
                .ok_or_else(|| format!("bursty wants <on>x<off>, got {dwells:?}"))?;
            TrafficModel::Bursty {
                mean_on_rounds: on.parse().map_err(|_| format!("bad on dwell {on:?}"))?,
                mean_off_rounds: off.parse().map_err(|_| format!("bad off dwell {off:?}"))?,
            }
        } else {
            return Err(format!(
                "unknown traffic model {s:?} (expected saturated, poisson:<mean> or bursty:<on>x<off>)"
            ));
        };
        model.validate()?;
        Ok(model)
    }
}

/// Node mobility model.
///
/// [`Static`](MobilityModel::Static) is the pinned default: nodes stay
/// where the placement draw put them, zero RNG is consumed, and every
/// pre-mobility result is bit-for-bit unchanged.
/// [`Waypoint`](MobilityModel::Waypoint) models *slow* pedestrian drift:
/// every `epoch_rounds` rounds one node (round-robin) steps `step_m`
/// metres in a uniformly drawn direction, and only the cached channel
/// tables of links touching that node are re-derived (a distance-law
/// rescale of the pristine tables — the incremental invalidation the
/// city-scale cache is built for). The link set itself stays frozen at
/// its t = 0 draw: a flow whose link started below the floor does not
/// spring to life mid-run, and a link that started above it fades
/// rather than vanishes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MobilityModel {
    /// Nodes never move (the paper's assumption).
    #[default]
    Static,
    /// Slow round-robin waypoint drift.
    Waypoint {
        /// Step length in metres per epoch (> 0, finite).
        step_m: f64,
        /// Rounds between movement epochs (>= 1).
        epoch_rounds: usize,
    },
}

// As with `TrafficModel`: parameters are validated finite, making the
// derived partial equivalence total in practice.
impl Eq for MobilityModel {}

impl MobilityModel {
    /// Structural validation: step length finite and positive, epoch at
    /// least one round.
    ///
    /// # Errors
    /// A one-line human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            MobilityModel::Static => Ok(()),
            MobilityModel::Waypoint {
                step_m,
                epoch_rounds,
            } => {
                if !step_m.is_finite() || step_m <= 0.0 {
                    return Err(format!("waypoint step {step_m} not a positive finite"));
                }
                if epoch_rounds == 0 {
                    return Err("waypoint epoch of zero rounds".to_string());
                }
                Ok(())
            }
        }
    }

    /// The model's stable spec-string form — what [`FromStr`] parses
    /// back: `static`, `waypoint:<step_m>x<epoch_rounds>`.
    pub fn spec_string(&self) -> String {
        match *self {
            MobilityModel::Static => "static".to_string(),
            MobilityModel::Waypoint {
                step_m,
                epoch_rounds,
            } => format!("waypoint:{step_m}x{epoch_rounds}"),
        }
    }
}

impl fmt::Display for MobilityModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec_string())
    }
}

impl FromStr for MobilityModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let model = if s == "static" {
            MobilityModel::Static
        } else if let Some(params) = s.strip_prefix("waypoint:") {
            let (step, epoch) = params
                .split_once('x')
                .ok_or_else(|| format!("waypoint wants <step_m>x<epoch_rounds>, got {params:?}"))?;
            MobilityModel::Waypoint {
                step_m: step.parse().map_err(|_| format!("bad step {step:?}"))?,
                epoch_rounds: epoch.parse().map_err(|_| format!("bad epoch {epoch:?}"))?,
            }
        } else {
            return Err(format!(
                "unknown mobility model {s:?} (expected static or waypoint:<step_m>x<epoch_rounds>)"
            ));
        };
        model.validate()?;
        Ok(model)
    }
}

/// SINR evaluation grid: which OFDM data bins the engine plans and
/// settles on.
///
/// [`Full`](SinrGrid::Full) is the pinned default — precoders, believed
/// channels and SINRs are evaluated on **every** occupied data bin, the
/// exact legacy path, bit-for-bit unchanged.
/// [`Decimated`](SinrGrid::Decimated)`(k)` is the opt-in cheap tier:
/// the engine evaluates every `k`-th bin only and linearly interpolates
/// the per-stream SINR track back to the full grid before §3.4 rate
/// selection. Coherence-bandwidth smoothness (the taps span a few
/// hundred ns against a 3.2 µs symbol) keeps the rate decisions close:
/// the `decimated_grid_error_budget` suite bounds the mean-goodput
/// delta at `k = 4` under 1%. The tier is part of a sweep's identity —
/// [`CanonicalSpec`] encodes it, so a served cache never conflates a
/// decimated sweep with a full-grid one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SinrGrid {
    /// Evaluate every occupied data bin (the legacy path).
    #[default]
    Full,
    /// Evaluate every `k`-th occupied bin and interpolate (`k >= 2`).
    Decimated(usize),
}

impl SinrGrid {
    /// Structural validation mirroring [`TrafficModel::validate`]: a
    /// decimation stride must be at least 2 (1 is just [`SinrGrid::Full`]
    /// spelled expensively, 0 is meaningless).
    ///
    /// # Errors
    /// A one-line human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SinrGrid::Full => Ok(()),
            SinrGrid::Decimated(k) => {
                if k >= 2 {
                    Ok(())
                } else {
                    Err(format!("decimated grid stride {k} below 2"))
                }
            }
        }
    }

    /// The grid's stable spec-string form — what [`FromStr`] parses
    /// back: `full`, `decimated:<k>`.
    pub fn spec_string(&self) -> String {
        match *self {
            SinrGrid::Full => "full".to_string(),
            SinrGrid::Decimated(k) => format!("decimated:{k}"),
        }
    }
}

impl fmt::Display for SinrGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec_string())
    }
}

impl FromStr for SinrGrid {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let grid = if s == "full" {
            SinrGrid::Full
        } else if let Some(k) = s.strip_prefix("decimated:") {
            SinrGrid::Decimated(k.parse().map_err(|_| format!("bad stride {k:?}"))?)
        } else {
            return Err(format!(
                "unknown SINR grid {s:?} (expected full or decimated:<k>)"
            ));
        };
        grid.validate()?;
        Ok(grid)
    }
}

/// Simulation knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// OFDM geometry (10 MHz USRP2 profile by default).
    pub ofdm: OfdmConfig,
    /// MAC timing on the sample clock.
    pub timing: SampleTiming,
    /// Hardware impairment model (bounds cancellation depth).
    pub hardware: HardwareProfile,
    /// Join-power threshold `L` in dB (§4).
    pub l_db: f64,
    /// Packet size per flow per round, bytes.
    pub packet_bytes: usize,
    /// Rounds to simulate.
    pub rounds: usize,
    /// Precompute every link's per-subcarrier frequency responses once
    /// per topology instead of re-evaluating taps inside the round loop.
    /// Results are bit-for-bit identical either way (only pure true
    /// channels are cached); `false` exists for the perf baseline.
    pub cache_channels: bool,
    /// Per-flow offered load ([`TrafficModel::Saturated`] by default —
    /// the paper's always-backlogged assumption, zero RNG).
    pub traffic: TrafficModel,
    /// Node mobility ([`MobilityModel::Static`] by default — zero RNG).
    pub mobility: MobilityModel,
    /// SINR evaluation grid ([`SinrGrid::Full`] by default — the exact
    /// legacy every-bin path).
    pub sinr_grid: SinrGrid,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            ofdm: OfdmConfig::usrp2(),
            timing: SampleTiming::usrp2(),
            hardware: HardwareProfile::default(),
            l_db: crate::power_control::DEFAULT_L_DB,
            packet_bytes: 1500,
            rounds: 40,
            cache_channels: true,
            traffic: TrafficModel::Saturated,
            mobility: MobilityModel::Static,
            sinr_grid: SinrGrid::Full,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Delivered goodput per flow, Mb/s.
    pub per_flow_mbps: Vec<f64>,
    /// Total network goodput, Mb/s.
    pub total_mbps: f64,
    /// Average degrees of freedom in use during data transfer.
    pub mean_dof: f64,
}

impl RunResult {
    /// Jain's fairness index over per-flow goodputs (1 = perfectly
    /// equal, `1/n` = one flow takes everything). n+ trades some
    /// fairness for concurrency — multi-antenna flows gain more — and
    /// this metric quantifies by how much.
    ///
    /// Degenerate cases: fairness is **undefined** (`NaN`) for an empty
    /// flow list and when every flow delivered zero goodput — there is
    /// no allocation to be fair *about*. (Both used to report 1.0,
    /// "perfectly fair", which inflated sweep averages on scenarios
    /// with dead runs.) [`SweepStats::mean_fairness`] skips undefined
    /// runs when averaging.
    pub fn jain_fairness(&self) -> f64 {
        let n = self.per_flow_mbps.len() as f64;
        let sum: f64 = self.per_flow_mbps.iter().sum();
        let sq: f64 = self.per_flow_mbps.iter().map(|x| x * x).sum();
        if self.per_flow_mbps.is_empty() || sq <= 0.0 {
            return f64::NAN;
        }
        sum * sum / (n * sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_helpers() {
        let s = Scenario::three_pairs();
        assert_eq!(s.transmitters(), vec![0, 2, 4]);
        assert_eq!(s.flows_of(4), vec![2]);
        let ap = Scenario::ap_downlink();
        assert_eq!(ap.transmitters(), vec![0, 2]);
        assert_eq!(ap.flows_of(2), vec![1, 2]);
    }

    #[test]
    fn jain_fairness_bounds() {
        let equal = RunResult {
            per_flow_mbps: vec![5.0, 5.0, 5.0],
            total_mbps: 15.0,
            mean_dof: 1.0,
        };
        assert!((equal.jain_fairness() - 1.0).abs() < 1e-12);
        let skewed = RunResult {
            per_flow_mbps: vec![9.0, 1.0, 0.0],
            total_mbps: 10.0,
            mean_dof: 1.0,
        };
        let j = skewed.jain_fairness();
        assert!(j > 1.0 / 3.0 - 1e-12 && j < 1.0, "jain {j}");
    }

    /// Regression: an empty flow list and all-zero goodput used to
    /// report 1.0 — "perfectly fair" — for runs where no allocation
    /// exists to judge. Both are now explicitly undefined.
    #[test]
    fn jain_fairness_degenerate_cases_are_undefined() {
        let dead = RunResult {
            per_flow_mbps: vec![0.0, 0.0],
            total_mbps: 0.0,
            mean_dof: 0.0,
        };
        assert!(dead.jain_fairness().is_nan(), "all-zero goodput");
        let empty = RunResult {
            per_flow_mbps: vec![],
            total_mbps: 0.0,
            mean_dof: 0.0,
        };
        assert!(empty.jain_fairness().is_nan(), "empty flow list");
        // One live flow among dead ones is defined (and minimal).
        let solo = RunResult {
            per_flow_mbps: vec![7.0, 0.0, 0.0],
            total_mbps: 7.0,
            mean_dof: 1.0,
        };
        assert!((solo.jain_fairness() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn protocol_names_round_trip() {
        for p in [Protocol::NPlus, Protocol::Dot11n, Protocol::Beamforming] {
            assert_eq!(p.to_string().parse::<Protocol>(), Ok(p));
            // The enum name, its Display and its policy's name agree.
            assert_eq!(p.to_string(), p.name());
            assert_eq!(p.policy().name(), p.name());
        }
        let err = "802.11ax".parse::<Protocol>().unwrap_err();
        assert!(err.to_string().contains("802.11ax"));
    }

    #[test]
    fn traffic_model_spec_strings_round_trip() {
        for m in [
            TrafficModel::Saturated,
            TrafficModel::Poisson {
                mean_per_round: 0.25,
            },
            TrafficModel::Bursty {
                mean_on_rounds: 3.0,
                mean_off_rounds: 12.5,
            },
        ] {
            assert_eq!(m.spec_string().parse::<TrafficModel>(), Ok(m));
            assert_eq!(m.to_string(), m.spec_string());
        }
        assert_eq!(
            "saturated".parse::<TrafficModel>(),
            Ok(TrafficModel::Saturated)
        );
        // Invalid parameters fail at parse time, not inside the engine.
        assert!("poisson:0".parse::<TrafficModel>().is_err());
        assert!("poisson:nan".parse::<TrafficModel>().is_err());
        assert!("bursty:0.5x10".parse::<TrafficModel>().is_err());
        assert!("bursty:3".parse::<TrafficModel>().is_err());
        let err = "cbr:4".parse::<TrafficModel>().unwrap_err();
        assert!(err.contains("cbr:4"), "{err}");
    }

    #[test]
    fn mobility_model_spec_strings_round_trip() {
        for m in [
            MobilityModel::Static,
            MobilityModel::Waypoint {
                step_m: 1.5,
                epoch_rounds: 8,
            },
        ] {
            assert_eq!(m.spec_string().parse::<MobilityModel>(), Ok(m));
            assert_eq!(m.to_string(), m.spec_string());
        }
        assert!("waypoint:0x5".parse::<MobilityModel>().is_err());
        assert!("waypoint:2x0".parse::<MobilityModel>().is_err());
        assert!("waypoint:2".parse::<MobilityModel>().is_err());
        let err = "brownian".parse::<MobilityModel>().unwrap_err();
        assert!(err.contains("brownian"), "{err}");
    }

    #[test]
    fn model_defaults_are_the_pinned_legacy_path() {
        assert_eq!(TrafficModel::default(), TrafficModel::Saturated);
        assert_eq!(MobilityModel::default(), MobilityModel::Static);
        assert_eq!(SinrGrid::default(), SinrGrid::Full);
        let cfg = SimConfig::default();
        assert_eq!(cfg.traffic, TrafficModel::Saturated);
        assert_eq!(cfg.mobility, MobilityModel::Static);
        assert_eq!(cfg.sinr_grid, SinrGrid::Full);
    }

    #[test]
    fn sinr_grid_spec_strings_round_trip() {
        for g in [SinrGrid::Full, SinrGrid::Decimated(4)] {
            assert_eq!(g.spec_string().parse::<SinrGrid>(), Ok(g));
            assert_eq!(g.to_string(), g.spec_string());
        }
        // Degenerate strides fail at parse time, not inside the engine.
        assert!("decimated:0".parse::<SinrGrid>().is_err());
        assert!("decimated:1".parse::<SinrGrid>().is_err());
        assert!(SinrGrid::Decimated(1).validate().is_err());
        let err = "sparse:3".parse::<SinrGrid>().unwrap_err();
        assert!(err.contains("sparse:3"), "{err}");
    }
}
